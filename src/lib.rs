//! # netmax
//!
//! Umbrella crate for the Rust reproduction of **NetMax** —
//! *Communication-efficient Decentralized Machine Learning over
//! Heterogeneous Networks* (Zhou et al., ICDE 2021).
//!
//! This crate re-exports the workspace members so downstream users can
//! depend on a single crate:
//!
//! * [`linalg`] — dense matrices and the symmetric eigensolver behind λ₂.
//! * [`lp`] — the two-phase simplex solver behind the policy LP (Eq. 14).
//! * [`net`] — the discrete-event heterogeneous network simulator.
//! * [`ml`] — models, optimisers, synthetic datasets, and partitioners.
//! * [`core`] — NetMax itself: consensus SGD, the Network Monitor, the
//!   communication-policy generator, and the simulation engine.
//! * [`baselines`] — AD-PSGD, Allreduce-SGD, Prague, GoSGD, and
//!   parameter-server baselines.
//!
//! ## Quickstart
//!
//! This example runs as a doctest on every `cargo test --doc` (a small
//! worker count and `TrainConfig::quick_test`'s 2-epoch budget keep it to
//! well under a second):
//!
//! ```
//! use netmax::prelude::*;
//!
//! // 4 workers, fully connected, heterogeneous dynamic network,
//! // CIFAR10-like synthetic workload, ResNet18 communication profile.
//! // The scenario is pure data (see `WorkloadSpec`): it serializes to
//! // JSON and instantiates its datasets only when an environment is
//! // built.
//! let scenario = ScenarioBuilder::new()
//!     .workers(4)
//!     .network(NetworkKind::HeterogeneousDynamic)
//!     .workload(WorkloadSpec::cifar10_like())
//!     .profile(ModelProfile::resnet18())
//!     .train_config(TrainConfig::quick_test())
//!     .seed(42)
//!     .build();
//!
//! let mut algo = algorithm_for(AlgorithmKind::NetMax, 0.1);
//! let report = scenario.run_with(algo.as_mut());
//! println!("trained for {:.1} simulated seconds", report.wall_clock_s);
//! assert!(report.epochs_completed >= 2.0);
//! assert!(report.final_train_loss.is_finite());
//! ```
//!
//! ## Step-wise sessions
//!
//! `run_with` blocks to completion; the full execution surface is the
//! resumable [`Session`](netmax_core::engine::Session) state machine —
//! observe a run in flight, stop it on a declarative condition, or
//! checkpoint and resume it byte-identically:
//!
//! ```
//! use netmax::prelude::*;
//!
//! let mut scenario = ScenarioBuilder::new()
//!     .workers(4)
//!     .workload(WorkloadSpec::convex_ridge(7))
//!     .train_config(TrainConfig::quick_test())
//!     .seed(42)
//!     .build();
//! // Serializable stop condition: 150 global steps, whichever of it and
//! // the simulated-time safety net comes first.
//! scenario.cfg_mut().stop = Some(StopCondition::MaxGlobalSteps(150));
//!
//! let mut algo = algorithm_for(AlgorithmKind::AdPsgd, 0.1);
//! let mut env = scenario.build_env();
//! let mut session = Session::new(&mut env, algo.driver())?;
//! let report = loop {
//!     match session.step() {
//!         StepEvent::Sampled { sample } => assert!(sample.train_loss.is_finite()),
//!         StepEvent::Finished { report } => break report,
//!         _ => {} // GlobalStep / RoundComplete / MonitorRound
//!     }
//! };
//! assert_eq!(report.global_steps, 150);
//!
//! // The checkpoint is a versioned JSON document; restoring it into a
//! // fresh session resumes byte-identically (see ARCHITECTURE.md §3).
//! // The v2 schema added the active-membership state; v1 documents from
//! // older runs still restore.
//! let checkpoint = session.checkpoint();
//! assert!(checkpoint.to_string().contains("session-checkpoint/v2"));
//! # Ok::<(), netmax::core::engine::SessionError>(())
//! ```
//!
//! Scale up the same scenario (8+ workers, 48-epoch budgets, the paper's
//! network regimes) with the figure binaries in `crates/bench/src/bin/` —
//! see the README's figure map.

#![forbid(unsafe_code)]

pub use netmax_baselines as baselines;
pub use netmax_core as core;
pub use netmax_linalg as linalg;
pub use netmax_lp as lp;
pub use netmax_ml as ml;
pub use netmax_net as net;

/// Convenience re-exports covering the common experiment-driving surface.
pub mod prelude {
    pub use netmax_baselines::{
        algorithm_for, AdPsgd, AllreduceSgd, GoSgd, ParameterServer, Prague,
    };
    pub use netmax_core::engine::{
        Algorithm, AlgorithmKind, Observer, PartitionKind, RunReport, Sample, Scenario,
        ScenarioBuilder, Session, SessionError, StepEvent, StopCondition, TrainConfig,
    };
    pub use netmax_core::netmax::{NetMax, NetMaxConfig};
    pub use netmax_core::policy::{PolicyGenerator, PolicySearchConfig};
    pub use netmax_ml::profile::ModelProfile;
    pub use netmax_ml::workload::{Workload, WorkloadKind, WorkloadSpec};
    pub use netmax_net::{
        FaultPlan, LinkDynamics, LinkFault, LinkFaultKind, MarkovConfig, NetworkKind, NodeFault,
        Straggler,
    };
}
