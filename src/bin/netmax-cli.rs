//! `netmax-cli` — run simulated decentralized-training experiments from
//! the command line.
//!
//! ```text
//! netmax-cli list
//! netmax-cli run     --workload resnet18-cifar10 --algorithm netmax --workers 8 \
//!                    --network hetero --epochs 12 --seed 42
//! netmax-cli compare --workload resnet18-cifar10 --workers 8 --epochs 12
//! netmax-cli policy  --workers 8 --fast 0.2 --slow 0.94 --slowdown 50
//! ```

use netmax::core::diagnostics::audit_policy;
use netmax::core::policy::{PolicyGenerator, PolicySearchConfig};
use netmax::linalg::Matrix;
use netmax::net::Topology;
use netmax::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        return ExitCode::from(2);
    };
    let opts = Options::parse(&args[1..]);
    match cmd.as_str() {
        "list" => list(),
        "run" => run(&opts),
        "compare" => compare(&opts),
        "policy" => policy(&opts),
        "--help" | "-h" | "help" => {
            usage();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command: {other}");
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "netmax-cli — simulated decentralized training (NetMax, ICDE 2021)

commands:
  list                         available workloads, algorithms, networks
  run      one algorithm on one scenario
  compare  the paper's four headline algorithms on one scenario
  policy   generate + audit a communication policy for a synthetic cluster

options (run/compare):
  --workload <name>    e.g. resnet18-cifar10 (default)
  --algorithm <name>   e.g. netmax (run only)
  --workers <n>        default 8
  --network <kind>     hetero | homo | static | wan   (default hetero)
  --epochs <x>         default 8
  --seed <n>           default 42

options (policy):
  --workers <n>        default 8
  --fast <s>           intra-server iteration time (default 0.2)
  --slow <s>           inter-server iteration time (default 0.94)
  --slowdown <f>       factor applied to one cross link (default 50)
  --alpha <a>          learning rate (default 0.1)"
    );
}

struct Options {
    workload: String,
    algorithm: String,
    workers: usize,
    network: String,
    epochs: f64,
    seed: u64,
    fast: f64,
    slow: f64,
    slowdown: f64,
    alpha: f64,
}

impl Options {
    fn parse(args: &[String]) -> Self {
        let mut o = Options {
            workload: "resnet18-cifar10".into(),
            algorithm: "netmax".into(),
            workers: 8,
            network: "hetero".into(),
            epochs: 8.0,
            seed: 42,
            fast: 0.2,
            slow: 0.94,
            slowdown: 50.0,
            alpha: 0.1,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let Some(value) = it.next() else {
                eprintln!("missing value for {flag}");
                break;
            };
            match flag.as_str() {
                "--workload" => o.workload = value.clone(),
                "--algorithm" => o.algorithm = value.clone(),
                "--workers" => o.workers = value.parse().unwrap_or(o.workers),
                "--network" => o.network = value.clone(),
                "--epochs" => o.epochs = value.parse().unwrap_or(o.epochs),
                "--seed" => o.seed = value.parse().unwrap_or(o.seed),
                "--fast" => o.fast = value.parse().unwrap_or(o.fast),
                "--slow" => o.slow = value.parse().unwrap_or(o.slow),
                "--slowdown" => o.slowdown = value.parse().unwrap_or(o.slowdown),
                "--alpha" => o.alpha = value.parse().unwrap_or(o.alpha),
                other => eprintln!("ignoring unknown flag {other}"),
            }
        }
        o
    }
}

fn list() -> ExitCode {
    println!("workloads:");
    for kind in WorkloadKind::all() {
        println!("  {}", kind.name());
    }
    println!("algorithms:");
    for kind in AlgorithmKind::all() {
        println!("  {}", kind.name());
    }
    println!("networks:\n  hetero\n  static\n  homo\n  wan");
    ExitCode::SUCCESS
}

/// Builds the scenario plus one instantiated workload (datasets
/// included); runs share the instantiation through `build_env_with`
/// instead of regenerating the datasets per run.
fn build_scenario(o: &Options) -> Option<(Scenario, Workload)> {
    let spec = WorkloadKind::by_name(&o.workload)
        .map(|k| WorkloadSpec::new(k, o.seed))
        .or_else(|| {
            eprintln!("unknown workload '{}' (see `netmax-cli list`)", o.workload);
            None
        })?;
    let network = NetworkKind::by_name(&o.network).or_else(|| {
        eprintln!("unknown network '{}' (see `netmax-cli list`)", o.network);
        None
    })?;
    let workers = if network == NetworkKind::Wan { 6 } else { o.workers };
    let sc = ScenarioBuilder::new()
        .workers(workers)
        .network(network)
        .workload(spec)
        .max_epochs(o.epochs)
        .seed(o.seed)
        .build();
    let workload = sc.workload();
    Some((sc, workload))
}

fn print_report(r: &netmax::core::engine::RunReport) {
    println!(
        "{:<16} wall={:>9.1}s epoch/node={:>7.2}s comm/ep={:>7.2}s loss={:.4} acc={:.2}%",
        r.algorithm,
        r.wall_clock_s,
        r.epoch_time_avg_s(),
        r.comm_cost_per_epoch_s(),
        r.final_train_loss,
        100.0 * r.final_test_accuracy
    );
}

fn run(o: &Options) -> ExitCode {
    let Some((sc, workload)) = build_scenario(o) else {
        return ExitCode::from(2);
    };
    let Some(kind) = AlgorithmKind::by_name(&o.algorithm) else {
        eprintln!("unknown algorithm '{}' (see `netmax-cli list`)", o.algorithm);
        return ExitCode::from(2);
    };
    let mut algo = algorithm_for(kind, workload.optim.lr);
    let mut env = sc.build_env_with(workload);
    print_report(&algo.run(&mut env));
    ExitCode::SUCCESS
}

fn compare(o: &Options) -> ExitCode {
    let Some((sc, workload)) = build_scenario(o) else {
        return ExitCode::from(2);
    };
    for kind in AlgorithmKind::headline_four() {
        let mut algo = algorithm_for(kind, workload.optim.lr);
        // Arc-shared datasets: one instantiation serves all four runs.
        let mut env = sc.build_env_with(workload.clone());
        print_report(&algo.run(&mut env));
    }
    ExitCode::SUCCESS
}

fn policy(o: &Options) -> ExitCode {
    let m = o.workers.max(2);
    let per = m.div_ceil(2);
    let topo = Topology::fully_connected(m);
    let mut times = Matrix::zeros(m, m);
    for i in 0..m {
        for j in 0..m {
            if i != j {
                times[(i, j)] = if (i / per) == (j / per) { o.fast } else { o.slow };
            }
        }
    }
    // Slow one cross link by the requested factor.
    if per < m {
        times[(0, per)] *= o.slowdown;
        times[(per, 0)] *= o.slowdown;
    }

    let gen = PolicyGenerator::new(PolicySearchConfig::new(o.alpha));
    match gen.generate(&times, &topo) {
        Some(res) => {
            let audit = audit_policy(&res, &times, &topo, o.alpha);
            println!("policy for {m} workers (fast {}s / slow {}s / one link ×{}):", o.fast, o.slow, o.slowdown);
            println!("  rho            = {:.4}", res.rho);
            println!("  lambda2        = {:.4}", res.lambda2);
            println!("  spectral gap   = {:.4}", audit.spectral_gap);
            println!("  E[iter] policy = {:.3}s   uniform = {:.3}s   speedup = {:.2}x",
                audit.expected_iteration_s, audit.uniform_iteration_s, audit.iteration_speedup());
            println!("  slow-link mass = {:.4}", audit.slow_link_mass);
            println!("  bottleneck cut = {:?} | {:?}", audit.bottleneck.0, audit.bottleneck.1);
            println!("{:?}", res.policy);
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("no feasible policy for these parameters");
            ExitCode::FAILURE
        }
    }
}
