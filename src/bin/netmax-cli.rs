//! `netmax-cli` — run simulated decentralized-training experiments from
//! the command line.
//!
//! ```text
//! netmax-cli list
//! netmax-cli run     --workload resnet18-cifar10 --algorithm netmax --workers 8 \
//!                    --network hetero --epochs 12 --seed 42
//! netmax-cli compare --workload resnet18-cifar10 --workers 8 --epochs 12
//! netmax-cli policy  --workers 8 --fast 0.2 --slow 0.94 --slowdown 50
//! ```

use netmax::core::diagnostics::audit_policy;
use netmax::core::policy::{PolicyGenerator, PolicySearchConfig};
use netmax::linalg::Matrix;
use netmax::net::Topology;
use netmax::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        return ExitCode::from(2);
    };
    let opts = Options::parse(&args[1..]);
    match cmd.as_str() {
        "list" => list(),
        "run" => run(&opts),
        "compare" => compare(&opts),
        "policy" => policy(&opts),
        "--help" | "-h" | "help" => {
            usage();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command: {other}");
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "netmax-cli — simulated decentralized training (NetMax, ICDE 2021)

commands:
  list                         available workloads, algorithms, networks
  run      one algorithm on one scenario
  compare  the paper's four headline algorithms on one scenario
  policy   generate + audit a communication policy for a synthetic cluster

options (run/compare):
  --workload <name>    e.g. resnet18-cifar10 (default)
  --algorithm <name>   e.g. netmax (run only)
  --workers <n>        default 8
  --network <kind>     hetero | homo | static | wan   (default hetero)
  --epochs <x>         default 8
  --seed <n>           default 42

options (policy):
  --workers <n>        default 8
  --fast <s>           intra-server iteration time (default 0.2)
  --slow <s>           inter-server iteration time (default 0.94)
  --slowdown <f>       factor applied to one cross link (default 50)
  --alpha <a>          learning rate (default 0.1)"
    );
}

struct Options {
    workload: String,
    algorithm: String,
    workers: usize,
    network: String,
    epochs: f64,
    seed: u64,
    fast: f64,
    slow: f64,
    slowdown: f64,
    alpha: f64,
}

impl Options {
    fn parse(args: &[String]) -> Self {
        let mut o = Options {
            workload: "resnet18-cifar10".into(),
            algorithm: "netmax".into(),
            workers: 8,
            network: "hetero".into(),
            epochs: 8.0,
            seed: 42,
            fast: 0.2,
            slow: 0.94,
            slowdown: 50.0,
            alpha: 0.1,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let Some(value) = it.next() else {
                eprintln!("missing value for {flag}");
                break;
            };
            match flag.as_str() {
                "--workload" => o.workload = value.clone(),
                "--algorithm" => o.algorithm = value.clone(),
                "--workers" => o.workers = value.parse().unwrap_or(o.workers),
                "--network" => o.network = value.clone(),
                "--epochs" => o.epochs = value.parse().unwrap_or(o.epochs),
                "--seed" => o.seed = value.parse().unwrap_or(o.seed),
                "--fast" => o.fast = value.parse().unwrap_or(o.fast),
                "--slow" => o.slow = value.parse().unwrap_or(o.slow),
                "--slowdown" => o.slowdown = value.parse().unwrap_or(o.slowdown),
                "--alpha" => o.alpha = value.parse().unwrap_or(o.alpha),
                other => eprintln!("ignoring unknown flag {other}"),
            }
        }
        o
    }
}

fn workload_by_name(name: &str, seed: u64) -> Option<Workload> {
    Some(match name {
        "resnet18-cifar10" => Workload::resnet18_cifar10(seed),
        "vgg19-cifar10" => Workload::vgg19_cifar10(seed),
        "resnet18-cifar100" => Workload::resnet18_cifar100(seed),
        "resnet18-tiny-imagenet" => Workload::resnet18_tiny_imagenet(seed),
        "resnet50-imagenet" => Workload::resnet50_imagenet(seed),
        "mobilenet-mnist" => Workload::mobilenet_mnist(seed),
        "mobilenet-cifar100" => Workload::mobilenet_cifar100(seed),
        "googlenet-mnist" => Workload::googlenet_mnist(seed),
        "ridge" => Workload::convex_ridge(seed),
        _ => return None,
    })
}

fn algorithm_by_name(name: &str, alpha: f64) -> Option<AlgorithmKind> {
    let _ = alpha;
    Some(match name {
        "netmax" => AlgorithmKind::NetMax,
        "netmax-uniform" => AlgorithmKind::NetMaxUniform,
        "ad-psgd" => AlgorithmKind::AdPsgd,
        "ad-psgd-monitor" => AlgorithmKind::AdPsgdMonitored,
        "gosgd" => AlgorithmKind::GoSgd,
        "allreduce" => AlgorithmKind::AllreduceSgd,
        "prague" => AlgorithmKind::Prague,
        "ps-sync" => AlgorithmKind::PsSync,
        "ps-async" => AlgorithmKind::PsAsync,
        _ => return None,
    })
}

fn network_by_name(name: &str) -> Option<NetworkKind> {
    Some(match name {
        "hetero" => NetworkKind::HeterogeneousDynamic,
        "static" => NetworkKind::HeterogeneousStatic,
        "homo" => NetworkKind::Homogeneous,
        "wan" => NetworkKind::Wan,
        _ => return None,
    })
}

fn list() -> ExitCode {
    println!("workloads:");
    for w in [
        "resnet18-cifar10",
        "vgg19-cifar10",
        "resnet18-cifar100",
        "resnet18-tiny-imagenet",
        "resnet50-imagenet",
        "mobilenet-mnist",
        "mobilenet-cifar100",
        "googlenet-mnist",
        "ridge",
    ] {
        println!("  {w}");
    }
    println!("algorithms:");
    for a in [
        "netmax",
        "netmax-uniform",
        "ad-psgd",
        "ad-psgd-monitor",
        "gosgd",
        "allreduce",
        "prague",
        "ps-sync",
        "ps-async",
    ] {
        println!("  {a}");
    }
    println!("networks:\n  hetero\n  static\n  homo\n  wan");
    ExitCode::SUCCESS
}

fn build_scenario(o: &Options) -> Option<(Scenario, f64)> {
    let workload = workload_by_name(&o.workload, o.seed).or_else(|| {
        eprintln!("unknown workload '{}' (see `netmax-cli list`)", o.workload);
        None
    })?;
    let network = network_by_name(&o.network).or_else(|| {
        eprintln!("unknown network '{}' (see `netmax-cli list`)", o.network);
        None
    })?;
    let alpha = workload.optim.lr;
    let workers = if network == NetworkKind::Wan { 6 } else { o.workers };
    let sc = ScenarioBuilder::new()
        .workers(workers)
        .network(network)
        .workload(workload)
        .max_epochs(o.epochs)
        .seed(o.seed)
        .build();
    Some((sc, alpha))
}

fn print_report(r: &netmax::core::engine::RunReport) {
    println!(
        "{:<16} wall={:>9.1}s epoch/node={:>7.2}s comm/ep={:>7.2}s loss={:.4} acc={:.2}%",
        r.algorithm,
        r.wall_clock_s,
        r.epoch_time_avg_s(),
        r.comm_cost_per_epoch_s(),
        r.final_train_loss,
        100.0 * r.final_test_accuracy
    );
}

fn run(o: &Options) -> ExitCode {
    let Some((sc, alpha)) = build_scenario(o) else {
        return ExitCode::from(2);
    };
    let Some(kind) = algorithm_by_name(&o.algorithm, alpha) else {
        eprintln!("unknown algorithm '{}' (see `netmax-cli list`)", o.algorithm);
        return ExitCode::from(2);
    };
    let mut algo = algorithm_for(kind, alpha);
    let report = sc.run_with(algo.as_mut());
    print_report(&report);
    ExitCode::SUCCESS
}

fn compare(o: &Options) -> ExitCode {
    let Some((sc, alpha)) = build_scenario(o) else {
        return ExitCode::from(2);
    };
    for kind in AlgorithmKind::headline_four() {
        let mut algo = algorithm_for(kind, alpha);
        let report = sc.run_with(algo.as_mut());
        print_report(&report);
    }
    ExitCode::SUCCESS
}

fn policy(o: &Options) -> ExitCode {
    let m = o.workers.max(2);
    let per = m.div_ceil(2);
    let topo = Topology::fully_connected(m);
    let mut times = Matrix::zeros(m, m);
    for i in 0..m {
        for j in 0..m {
            if i != j {
                times[(i, j)] = if (i / per) == (j / per) { o.fast } else { o.slow };
            }
        }
    }
    // Slow one cross link by the requested factor.
    if per < m {
        times[(0, per)] *= o.slowdown;
        times[(per, 0)] *= o.slowdown;
    }

    let gen = PolicyGenerator::new(PolicySearchConfig::new(o.alpha));
    match gen.generate(&times, &topo) {
        Some(res) => {
            let audit = audit_policy(&res, &times, &topo, o.alpha);
            println!("policy for {m} workers (fast {}s / slow {}s / one link ×{}):", o.fast, o.slow, o.slowdown);
            println!("  rho            = {:.4}", res.rho);
            println!("  lambda2        = {:.4}", res.lambda2);
            println!("  spectral gap   = {:.4}", audit.spectral_gap);
            println!("  E[iter] policy = {:.3}s   uniform = {:.3}s   speedup = {:.2}x",
                audit.expected_iteration_s, audit.uniform_iteration_s, audit.iteration_speedup());
            println!("  slow-link mass = {:.4}", audit.slow_link_mass);
            println!("  bottleneck cut = {:?} | {:?}", audit.bottleneck.0, audit.bottleneck.1);
            println!("{:?}", res.policy);
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("no feasible policy for these parameters");
            ExitCode::FAILURE
        }
    }
}
