//! Offline API-subset shim for the `rand` crate.
//!
//! Provides the exact surface this workspace uses — `Rng` (`gen`,
//! `gen_range`, `gen_bool`), `SeedableRng::seed_from_u64`,
//! `rngs::StdRng`, and `seq::SliceRandom` (`shuffle`, `choose`) — backed
//! by a xoshiro256\*\* generator. Deterministic for a fixed seed, but the
//! stream differs from the real crate's ChaCha12-based `StdRng`.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform-bits source (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Constructs a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a half-open or inclusive range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self, inclusive: bool) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = (hi_w - lo_w + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "cannot sample from empty range");
                // Modulo sampling: the bias for the span sizes used in this
                // workspace (≪ 2^64) is far below statistical relevance.
                let draw = (rng.next_u64() as u128) % span;
                (lo_w + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self, inclusive: bool) -> Self {
                // 53 uniform mantissa bits mapped onto [0, 1); the inclusive
                // flag is immaterial at float resolution.
                let _ = inclusive;
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = lo as f64 + (hi as f64 - lo as f64) * unit;
                v as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// Types producible by [`Rng::gen`] (subset of the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws a sample from the standard distribution for this type.
    fn sample_standard(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        f64::sample_standard(rng) as f32
    }
}

impl Standard for bool {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() as u32
    }
}

impl Standard for usize {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() as usize
    }
}

/// High-level sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples from the standard distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators (subset of `rand::rngs`).

    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator standing in for `rand::rngs::StdRng`.
    ///
    /// Implemented as xoshiro256\*\* seeded through SplitMix64 — the
    /// recommended seeding procedure from the xoshiro reference
    /// implementation. Not reproducible against the real crate's ChaCha12
    /// stream, but fully deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl StdRng {
        /// Raw 256-bit generator state — an offline-shim extension used by
        /// the workspace's checkpoint/resume machinery. (The real crate
        /// exposes generator state through its optional `serde1` feature;
        /// when migrating off the shim, swap these for serde.)
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from raw state captured by
        /// [`StdRng::state`].
        ///
        /// # Panics
        /// Panics on the all-zero state, which is outside xoshiro256\*\*'s
        /// period (and can never be produced by [`StdRng::state`]).
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s.iter().any(|&w| w != 0), "all-zero xoshiro state is degenerate");
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** step.
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related sampling (subset of `rand::seq`).

    use super::Rng;

    /// Slice extension methods (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type of the sequence.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&y));
            let z = rng.gen_range(0usize..=4);
            assert!(z <= 4);
        }
    }

    #[test]
    fn gen_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_uniform_support() {
        let mut rng = StdRng::seed_from_u64(9);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
