//! Offline API-subset shim for `serde`.
//!
//! Exposes `Serialize` / `Deserialize` as both traits and no-op derive
//! macros so source-level annotations compile unchanged. No data-format
//! backend is provided; see `shims/README.md` for how to swap in the real
//! crate when registry access is available.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
///
/// The no-op derive does not implement it; nothing in this workspace
/// requires the bound yet.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}
