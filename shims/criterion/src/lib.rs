//! Offline API-subset shim for `criterion`.
//!
//! Provides the macro and builder surface this workspace's benches use.
//! Each benchmark is warmed up for `warm_up_time`, then timed in batches
//! until `measurement_time` elapses (or `sample_size` batches complete),
//! and the mean wall-clock time per iteration is printed to stdout. No
//! outlier analysis, HTML reports, or regression baselines.

use std::fmt::Display;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (deprecated upstream in favour
/// of `std::hint::black_box`, which the sources already use).
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    defaults: Settings,
}

#[derive(Clone)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            defaults: Settings {
                sample_size: 30,
                warm_up_time: Duration::from_millis(300),
                measurement_time: Duration::from_secs(2),
            },
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.to_string(),
            settings: self.defaults.clone(),
            _parent: PhantomData,
            _measurement: PhantomData,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, &self.defaults, f);
        self
    }
}

pub mod measurement {
    //! Measurement back-ends (subset: wall-clock only).

    /// Wall-clock time measurement.
    pub struct WallTime;
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `group/function/parameter`-style id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Id distinguished by the parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// A group of benchmarks sharing configuration, created by
/// [`Criterion::benchmark_group`].
pub struct BenchmarkGroup<'a, M> {
    name: String,
    settings: Settings,
    _parent: PhantomData<&'a mut Criterion>,
    _measurement: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the number of timing batches collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n;
        self
    }

    /// Sets the time budget for the measurement phase.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Sets the duration of the warm-up phase.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Times `f` under this group's settings.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), &self.settings, f);
        self
    }

    /// Times `f`, passing it a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id.id), &self.settings, |b| f(b, input));
        self
    }

    /// Ends the group (flush point in real criterion; a no-op here).
    pub fn finish(self) {}
}

/// Timing context passed to benchmark closures.
pub struct Bencher {
    settings: Settings,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Calls `routine` repeatedly and records mean wall-clock per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run untimed until the warm-up budget is spent, tracking
        // the apparent per-iteration cost to size timing batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.settings.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().checked_div(warm_iters as u32).unwrap_or_default();
        // Batch size targeting measurement_time / sample_size per batch.
        let batch_budget = self.settings.measurement_time.as_secs_f64()
            / self.settings.sample_size.max(1) as f64;
        let batch: u64 = if per_iter.is_zero() {
            1000
        } else {
            ((batch_budget / per_iter.as_secs_f64()).ceil() as u64).clamp(1, 1_000_000)
        };
        let deadline = Instant::now() + self.settings.measurement_time;
        let mut samples = 0usize;
        while samples < self.settings.sample_size && Instant::now() < deadline {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.total += t.elapsed();
            self.iters += batch;
            samples += 1;
        }
        // Guarantee at least one timed batch even if warm-up overran.
        if self.iters == 0 {
            let t = Instant::now();
            black_box(routine());
            self.total = t.elapsed();
            self.iters = 1;
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, settings: &Settings, mut f: F) {
    let mut b = Bencher { settings: settings.clone(), total: Duration::ZERO, iters: 0 };
    f(&mut b);
    if b.iters == 0 {
        println!("bench {label:<40} (no iterations recorded)");
        return;
    }
    let ns = b.total.as_nanos() as f64 / b.iters as f64;
    let (value, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    };
    println!("bench {label:<40} {value:>10.3} {unit}/iter ({} iters)", b.iters);
}

/// Declares a function running the listed benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed [`criterion_group!`] functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        c.defaults.warm_up_time = Duration::from_millis(5);
        c.defaults.measurement_time = Duration::from_millis(20);
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| std::hint::black_box(3u64.pow(7)));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_builder_chain_compiles() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| std::hint::black_box(n * n))
        });
        g.finish();
    }
}
