//! Offline no-op stand-in for `serde_derive`.
//!
//! The workspace's structs are annotated with `#[derive(Serialize,
//! Deserialize)]` so a real serialization backend can be enabled once the
//! build environment has registry access. Until then these derives expand
//! to nothing: no trait impls are generated, and nothing in the workspace
//! requires the `Serialize`/`Deserialize` bounds.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
