//! Offline API-subset shim for `proptest`.
//!
//! Implements the surface this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), [`Strategy`]
//! with `prop_map` / `prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` macros.
//!
//! Semantics: each test draws `ProptestConfig::cases` independent random
//! cases from a generator seeded deterministically from the test name (or
//! from `PROPTEST_SHIM_SEED` if set). There is **no shrinking** — a
//! failing case reports the assertion message, not a minimized input.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};
use std::ops::Range;

/// The generator handed to strategies while producing a test case.
pub type TestRng = StdRng;

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Cap on cumulative `prop_assume!` rejections before the test errors.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Configuration demanding `cases` successful random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Self::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256 cases with shrinking; without
        // shrinking we keep the default a bit lower for test-suite latency.
        ProptestConfig { cases: 64, max_global_rejects: 65_536 }
    }
}

/// Why a drawn test case did not count as a success.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!` — draw another.
    Reject(String),
    /// An assertion failed — the property does not hold.
    Fail(String),
}

impl TestCaseError {
    /// Constructs the failure variant.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// Constructs the rejection variant.
    pub fn reject(msg: String) -> Self {
        TestCaseError::Reject(msg)
    }
}

/// Derives the deterministic per-test generator.
///
/// Seeded from an FNV-1a hash of the test name so every test explores a
/// distinct but reproducible stream; `PROPTEST_SHIM_SEED` overrides the
/// base seed for re-running an observed failure locally.
pub fn rng_for_test(test_name: &str) -> TestRng {
    let base: u64 = std::env::var("PROPTEST_SHIM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xA076_1D64_78BD_642F);
    let mut h: u64 = 0xCBF2_9CE4_8422_2325 ^ base;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A: 0);
impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

pub mod collection {
    //! Collection strategies (subset of `proptest::collection`).

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Admissible length specifications for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy produced by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Defines property tests: zero-argument `#[test]` functions that draw the
/// declared strategies `config.cases` times and run the body on each draw.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
            let mut rejects: u32 = 0;
            let mut successes: u32 = 0;
            while successes < config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => successes += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(why)) => {
                        rejects += 1;
                        if rejects > config.max_global_rejects {
                            panic!(
                                "proptest shim: {} exceeded {} prop_assume! rejections (last: {})",
                                stringify!($name), config.max_global_rejects, why
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed for {} (case {} of {}): {}",
                            stringify!($name), successes + 1, config.cases, msg
                        );
                    }
                }
            }
        }
    )*};
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Vetoes the current case; the harness draws a replacement.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn assume_rejects_and_regenerates(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn vec_map_flat_map_compose(v in crate::collection::vec(0u32..5, 1..9)
            .prop_map(|v| v.len())
            .prop_flat_map(|n| crate::collection::vec(0usize..1.max(n), n)))
        {
            prop_assert!(!v.is_empty());
            prop_assert!(v.len() < 9);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::rng_for_test("x::y");
        let mut b = crate::rng_for_test("x::y");
        use rand::Rng;
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
