//! Cross-crate validation of the paper's theory (Section IV).
//!
//! These tests exercise the policy generator (`netmax-core`), the LP
//! solver (`netmax-lp`), and the eigensolver (`netmax-linalg`) together,
//! and check the *quantitative* convergence claims — not just types.

use netmax::core::gossip_matrix::{build_y, convergence_bound};
use netmax::core::policy::{PolicyGenerator, PolicySearchConfig};
use netmax::linalg::{
    is_doubly_stochastic, is_irreducible, is_nonnegative, is_symmetric,
    second_largest_eigenvalue, Matrix,
};
use netmax::net::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a heterogeneous iteration-time matrix: two server islands with
/// fast intra links and slow cross links.
fn cluster_times(m: usize, per_server: usize, fast: f64, slow: f64) -> Matrix {
    let mut t = Matrix::zeros(m, m);
    for i in 0..m {
        for j in 0..m {
            if i != j {
                t[(i, j)] = if (i / per_server) == (j / per_server) { fast } else { slow };
            }
        }
    }
    t
}

/// Theorem 3's structural claims hold for generated policies at the
/// paper's fleet sizes.
#[test]
fn generated_policies_satisfy_lemmas_1_2_3() {
    for (m, per) in [(8usize, 4usize), (16, 4), (6, 3)] {
        let topo = Topology::fully_connected(m);
        let times = cluster_times(m, per, 0.2, 1.0);
        let gen = PolicyGenerator::new(PolicySearchConfig::new(0.1));
        let res = gen.generate(&times, &topo).expect("feasible at paper scales");
        let p_node = vec![1.0 / m as f64; m];
        let y = build_y(&res.policy, &topo, &p_node, 0.1, res.rho);

        assert!(is_symmetric(&y, 1e-8), "M={m}: Lemma 1 symmetry");
        assert!(is_nonnegative(&y, 1e-9), "M={m}: Lemma 2");
        assert!(is_doubly_stochastic(&y, 1e-6), "M={m}: Lemma 1 stochasticity");
        assert!(is_irreducible(&y, 1e-12), "M={m}: Lemma 3");
        let l2 = second_largest_eigenvalue(&y);
        assert!(l2 < 1.0, "M={m}: Theorem 3 λ₂ < 1 (got {l2})");
        assert!((l2 - res.lambda2).abs() < 1e-9, "reported λ₂ must match Y_P's");
    }
}

/// Empirical check of the Theorem 1 contraction: running the actual
/// random gossip recursion `x^{k+1} = D^k x^k` (no gradients) from the
/// policy's own sampling distribution contracts the consensus deviation
/// at least as fast as `λ₂^k` predicts on average.
#[test]
fn consensus_contraction_matches_lambda2_bound() {
    let m = 6;
    let topo = Topology::fully_connected(m);
    let times = cluster_times(m, 3, 0.2, 1.0);
    let alpha = 0.1;
    let gen = PolicyGenerator::new(PolicySearchConfig::new(alpha));
    let res = gen.generate(&times, &topo).expect("feasible");
    let p = &res.policy;
    let rho = res.rho;

    // Deviation functional: ‖x − x̄·1‖².
    let dev = |x: &[f64]| {
        let mean = x.iter().sum::<f64>() / x.len() as f64;
        x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
    };

    let steps = 400;
    let trials = 96;
    let mut rng = StdRng::seed_from_u64(42);
    let mut mean_final = 0.0;
    let mut initial = 0.0;
    for _ in 0..trials {
        // Random initial disagreement.
        let mut x: Vec<f64> = (0..m).map(|_| rng.gen_range(-1.0..1.0)).collect();
        initial = dev(&x); // same magnitude across trials is fine for the ratio
        for _ in 0..steps {
            // One global step: worker i fires (uniform p_i = 1/M for a
            // feasible policy), picks neighbour m ~ p_{i,·}.
            let i = rng.gen_range(0..m);
            let u: f64 = rng.gen();
            let mut acc = 0.0;
            let mut chosen = i;
            for j in 0..m {
                acc += p[(i, j)];
                if u < acc {
                    chosen = j;
                    break;
                }
            }
            if chosen != i {
                // x_i ← (1 − αργ) x_i + αργ x_m with γ = 1/p_{i,m}.
                let w = alpha * rho / p[(i, chosen)];
                assert!(w < 1.0, "feasible policies keep the merge weight below 1");
                x[i] = (1.0 - w) * x[i] + w * x[chosen];
            }
        }
        mean_final += dev(&x) / trials as f64;
    }

    // Eq. (23) with σ = 0: E[dev_k] ≤ λ^k dev_0. Allow slack for
    // Monte-Carlo noise (factor 30 on a bound that spans many orders of
    // magnitude).
    let bound = res.lambda2.powi(steps) * initial;
    assert!(
        mean_final <= bound * 30.0 + 1e-9,
        "contraction too slow: measured {mean_final:.3e}, λ₂^k bound {bound:.3e} (λ₂ = {})",
        res.lambda2
    );
    // And the walk genuinely contracted.
    assert!(mean_final < initial * 1e-3, "no contraction observed");
}

/// The T_convergence objective is consistent: for the chosen policy,
/// `k = ln ε / ln λ₂` steps drive the λ^k term below ε.
#[test]
fn t_convergence_definition_consistent() {
    let topo = Topology::fully_connected(4);
    let times = cluster_times(4, 2, 0.2, 1.0);
    let cfg = PolicySearchConfig::new(0.1);
    let eps = cfg.epsilon;
    let res = PolicyGenerator::new(cfg).generate(&times, &topo).expect("feasible");
    let k = (eps.ln() / res.lambda2.ln()).ceil() as u64;
    let decay = res.lambda2.powi(k as i32);
    assert!(decay <= eps * 1.0001, "λ₂^k = {decay} should be ≤ ε = {eps}");
    // And T_convergence = t̄ · k (up to the ceil).
    let t_conv_reconstructed = res.t_bar * (eps.ln() / res.lambda2.ln());
    assert!((t_conv_reconstructed - res.t_convergence).abs() < 1e-9);
}

/// The ε parameter does not change the argmin (only the scale): policies
/// generated with different ε are identical.
#[test]
fn epsilon_invariance_of_argmin() {
    let topo = Topology::fully_connected(6);
    let times = cluster_times(6, 3, 0.1, 1.0);
    let run = |eps: f64| {
        let cfg = PolicySearchConfig { epsilon: eps, ..PolicySearchConfig::new(0.1) };
        PolicyGenerator::new(cfg).generate(&times, &topo).expect("feasible")
    };
    let a = run(0.01);
    let b = run(0.25);
    assert_eq!(a.policy.as_slice(), b.policy.as_slice());
    assert_eq!(a.rho, b.rho);
}

/// Theorem 2 (dynamic networks): the worst historical λ bounds the whole
/// trajectory — evaluating the bound with λ_max dominates any per-window
/// product.
#[test]
fn dynamic_bound_dominates_window_products() {
    let lambdas = [0.90, 0.95, 0.85, 0.92];
    let lambda_max = lambdas.iter().copied().fold(0.0f64, f64::max);
    let k_per_window = 25u64;
    let product: f64 = lambdas.iter().map(|l| l.powi(k_per_window as i32)).product();
    let k_total = k_per_window * lambdas.len() as u64;
    let bound = convergence_bound(lambda_max, k_total, 1.0, 0.0, 0.0);
    assert!(product <= bound + 1e-15, "Π λᵢ^k = {product} vs λmax^K = {bound}");
}
