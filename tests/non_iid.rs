//! Integration tests for the non-IID / non-uniform regimes (§V-F): data
//! partitioning, label propagation through gossip, and batch scaling.

use netmax::ml::partition::Partition;
use netmax::prelude::*;

#[test]
fn gossip_recovers_labels_a_single_worker_never_sees() {
    // Table IV: worker 0 has no examples of digits 0, 1, 2. After
    // decentralized training, the *consensus* model must still classify
    // those digits well above chance — the information can only have
    // arrived through gossip. This exercises partitioning, the engine,
    // merging, and metrics together.
    let workload = WorkloadSpec::mobilenet_mnist(5);
    let test = workload.instantiate().test.clone();
    let sc = ScenarioBuilder::new()
        .workers(8)
        .servers(2)
        .network(NetworkKind::HeterogeneousDynamic)
        .workload(workload)
        .partition(PartitionKind::PaperTable4)
        .max_epochs(8.0)
        .seed(5)
        .build();

    let mut env = sc.build_env();
    let mut algo = NetMax::paper_default(0.01);
    use netmax::core::engine::Algorithm;
    let _report = algo.run(&mut env);

    // Evaluate worker 0's own replica on ONLY the labels it never saw.
    let lost: Vec<u32> = vec![0, 1, 2];
    let lost_idx: Vec<usize> = (0..test.len())
        .filter(|&i| lost.contains(&test.label(i)))
        .collect();
    assert!(!lost_idx.is_empty());
    let model = &env.nodes[0].model;
    let correct = lost_idx
        .iter()
        .filter(|&&i| model.predict(test.feature(i)) == test.label(i))
        .count();
    let acc = correct as f64 / lost_idx.len() as f64;
    assert!(
        acc > 0.5,
        "worker 0 classifies its never-seen labels at {acc:.2} — gossip failed to propagate"
    );
}

#[test]
fn segmented_batches_scale_with_data_share() {
    // §V-F: "The batch size of each worker node is set to 64 × the
    // segment number" — verify through the environment.
    let workload = WorkloadSpec::resnet18_cifar100(1);
    let sc = ScenarioBuilder::new()
        .workers(8)
        .servers(2)
        .workload(workload)
        .partition(PartitionKind::Paper8Segments)
        .max_epochs(1.0)
        .seed(1)
        .build();
    let env = sc.build_env();
    // Nodes 4 and 6 hold two segments: double batch and double shard.
    let b = |i: usize| env.partition.batch_size(i, env.workload.batch_size);
    assert_eq!(b(4), 2 * b(0));
    assert_eq!(b(6), 2 * b(1));
    let shard = |i: usize| env.partition.node(i).len() as f64;
    let ratio = shard(4) / shard(0);
    assert!((ratio - 2.0).abs() < 0.2, "shard ratio {ratio}");
}

#[test]
fn noniid_accuracy_does_not_beat_iid() {
    // Table V reports MNIST non-IID at ~93% vs the usual ~99% IID. On the
    // synthetic mixture the gossip fully recovers the removed labels (the
    // problem is linearly separable), so the *magnitude* of the gap does
    // not reproduce — documented in EXPERIMENTS.md. The invariant that
    // must hold: removing labels can't help, and accuracy stays high
    // (i.e. gossip did its job).
    let run = |partition: PartitionKind| {
        let sc = ScenarioBuilder::new()
            .workers(8)
            .servers(2)
            .network(NetworkKind::HeterogeneousDynamic)
            .workload(WorkloadSpec::mobilenet_mnist(5))
            .partition(partition)
            .max_epochs(6.0)
            .seed(5)
            .build();
        let mut algo = algorithm_for(AlgorithmKind::NetMax, 0.01);
        sc.run_with(algo.as_mut()).final_test_accuracy
    };
    let iid = run(PartitionKind::Uniform);
    let noniid = run(PartitionKind::PaperTable4);
    assert!(iid >= noniid - 0.005, "non-IID {noniid:.3} should not beat IID {iid:.3}");
    assert!(noniid > 0.90, "non-IID accuracy collapsed: {noniid:.3}");
}

#[test]
fn table7_partition_covers_six_regions_with_all_labels() {
    let workload = Workload::mobilenet_mnist(2);
    let part = Partition::paper_table7(&workload.train);
    assert_eq!(part.num_nodes(), 6);
    let mut covered = [false; 10];
    for node in 0..6 {
        for &i in part.node(node) {
            covered[workload.train.label(i) as usize] = true;
        }
    }
    assert!(covered.iter().all(|&c| c), "a label is lost from every region");
}

#[test]
fn wan_cross_cloud_training_runs() {
    let sc = ScenarioBuilder::new()
        .workers(6)
        .network(NetworkKind::Wan)
        .workload(WorkloadSpec::googlenet_mnist(3))
        .partition(PartitionKind::PaperTable7)
        .max_epochs(3.0)
        .seed(3)
        .build();
    let mut algo = NetMax::paper_default(0.01);
    let r = sc.run_with(&mut algo);
    assert!(r.epochs_completed >= 3.0);
    assert!(r.final_test_accuracy > 0.6, "WAN run accuracy {}", r.final_test_accuracy);
    // WAN latencies are high: communication must dominate compute.
    assert!(r.comm_time_total_s() > r.comp_time_total_s());
}
