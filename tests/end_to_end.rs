//! End-to-end integration tests: full NetMax pipeline (consensus SGD +
//! Network Monitor + policy generation) against the baselines over the
//! simulated heterogeneous network.

use netmax::prelude::*;

fn hetero_scenario(epochs: f64, seed: u64) -> Scenario {
    ScenarioBuilder::new()
        .workers(8)
        .network(NetworkKind::HeterogeneousDynamic)
        .workload(WorkloadSpec::resnet18_cifar10(7))
        .train_config(TrainConfig {
            max_epochs: epochs,
            record_every_steps: 40,
            seed,
            ..TrainConfig::default()
        })
        .build()
}

#[test]
fn netmax_beats_adpsgd_to_the_loss_target() {
    // The §V-D headline (≈1.9× in the paper, measured at the convergence
    // target on loss-vs-time curves). Use a mid-length run and a target
    // both reached.
    let sc = hetero_scenario(16.0, 7);
    let mut netmax = NetMax::paper_default(0.1);
    let r_netmax = sc.run_with(&mut netmax);
    let mut adpsgd = algorithm_for(AlgorithmKind::AdPsgd, 0.1);
    let r_adpsgd = sc.run_with(adpsgd.as_mut());

    let target = r_netmax.final_train_loss.max(r_adpsgd.final_train_loss) * 1.02 + 1e-4;
    let t_netmax = r_netmax.time_to_loss(target).expect("NetMax reaches target");
    let t_adpsgd = r_adpsgd.time_to_loss(target).expect("AD-PSGD reaches target");
    assert!(
        t_netmax < t_adpsgd,
        "NetMax {t_netmax:.1}s should beat AD-PSGD {t_adpsgd:.1}s to loss {target:.3}"
    );
}

#[test]
fn netmax_beats_collectives_on_wall_clock() {
    let sc = hetero_scenario(8.0, 3);
    let walls: Vec<(AlgorithmKind, f64)> = [
        AlgorithmKind::NetMax,
        AlgorithmKind::AllreduceSgd,
        AlgorithmKind::Prague,
    ]
    .into_iter()
    .map(|kind| {
        let mut algo = algorithm_for(kind, 0.1);
        (kind, sc.run_with(algo.as_mut()).wall_clock_s)
    })
    .collect();
    let netmax = walls[0].1;
    assert!(netmax < walls[1].1, "NetMax {} vs Allreduce {}", netmax, walls[1].1);
    assert!(netmax < walls[2].1, "NetMax {} vs Prague {}", netmax, walls[2].1);
}

#[test]
fn full_pipeline_is_deterministic() {
    let run = || {
        let sc = hetero_scenario(4.0, 99);
        let mut algo = NetMax::paper_default(0.1);
        sc.run_with(&mut algo)
    };
    let a = run();
    let b = run();
    assert_eq!(a.wall_clock_s, b.wall_clock_s);
    assert_eq!(a.global_steps, b.global_steps);
    assert_eq!(a.final_train_loss, b.final_train_loss);
    assert_eq!(a.final_test_accuracy, b.final_test_accuracy);
    assert_eq!(a.samples.len(), b.samples.len());
}

#[test]
fn all_algorithms_converge_to_similar_accuracy() {
    // Table II's parity claim across the full algorithm roster.
    let sc = hetero_scenario(10.0, 5);
    let mut accs = Vec::new();
    for kind in [
        AlgorithmKind::NetMax,
        AlgorithmKind::AdPsgd,
        AlgorithmKind::AdPsgdMonitored,
        AlgorithmKind::GoSgd,
        AlgorithmKind::AllreduceSgd,
        AlgorithmKind::Prague,
        AlgorithmKind::PsSync,
        AlgorithmKind::PsAsync,
    ] {
        let mut algo = algorithm_for(kind, 0.1);
        let r = sc.run_with(algo.as_mut());
        assert!(
            r.final_test_accuracy > 0.75,
            "{}: accuracy {} too low",
            kind.label(),
            r.final_test_accuracy
        );
        accs.push((kind.label(), r.final_test_accuracy));
    }
    let lo = accs.iter().map(|(_, a)| *a).fold(f64::INFINITY, f64::min);
    let hi = accs.iter().map(|(_, a)| *a).fold(0.0f64, f64::max);
    assert!(hi - lo < 0.08, "accuracy spread too wide: {accs:?}");
}

#[test]
fn consensus_diameter_contracts_after_transient() {
    // Replicas start near-identical (small random init), spread out while
    // SGD pulls them towards the optimum at different rates, then the
    // gossip terms contract them again (Theorem 1's consensus claim).
    // The check: the final diameter sits well below the mid-run peak.
    let sc = hetero_scenario(8.0, 11);
    for kind in [AlgorithmKind::NetMax, AlgorithmKind::AdPsgd, AlgorithmKind::GoSgd] {
        let mut algo = algorithm_for(kind, 0.1);
        let r = sc.run_with(algo.as_mut());
        let peak = r
            .samples
            .iter()
            .map(|s| s.consensus_diameter)
            .fold(0.0f64, f64::max);
        let last = r.samples.last().unwrap().consensus_diameter;
        assert!(
            last < 0.8 * peak,
            "{}: final diameter {last} did not contract from peak {peak}",
            kind.label()
        );
    }
}

#[test]
fn workers_scale_from_4_to_16() {
    for n in [4usize, 16] {
        let sc = ScenarioBuilder::new()
            .workers(n)
            .network(NetworkKind::HeterogeneousDynamic)
            .workload(WorkloadSpec::resnet18_cifar10(7))
            .max_epochs(2.0)
            .seed(1)
            .build();
        let mut algo = NetMax::paper_default(0.1);
        let r = sc.run_with(&mut algo);
        assert_eq!(r.num_nodes, n);
        assert!(r.epochs_completed >= 2.0);
        assert!(r.final_train_loss.is_finite());
    }
}

#[test]
fn serial_execution_is_never_faster() {
    let mk = |exec| {
        let mut sc = hetero_scenario(4.0, 2);
        sc.cfg_mut().execution = exec;
        let mut algo = NetMax::paper_default(0.1);
        sc.run_with(&mut algo).wall_clock_s
    };
    let parallel = mk(netmax::core::engine::ExecutionMode::Parallel);
    let serial = mk(netmax::core::engine::ExecutionMode::Serial);
    assert!(
        parallel <= serial,
        "overlapping compute/comm cannot be slower: parallel {parallel} vs serial {serial}"
    );
}
