//! Timing models for collective operations (ring allreduce and the
//! parameter-server star).
//!
//! These cost models are the standard ones from the collective-
//! communication literature: a ring allreduce over `g` members moves
//! `2(g−1)` chunks of `bytes/g` per member, with every step paced by the
//! slowest link in the ring. The parameter-server model divides the
//! server's NIC bandwidth across concurrent transfers — precisely the
//! central-bottleneck effect the paper's §VI attributes to C-PSGD.

use netmax_net::Network;

/// Simulated time for a ring allreduce of `bytes` across `members`,
/// starting at `now`.
///
/// The ring visits members in the order given; each of the `2(g−1)` steps
/// transfers `bytes/g` between every adjacent pair simultaneously, so each
/// step is paced by the slowest adjacent pair.
///
/// `bandwidth_share` models congestion from other collectives running
/// concurrently on the same fabric (1.0 = exclusive use; 0.5 = half the
/// bandwidth, i.e. transfer times double).
///
/// # Panics
/// Panics if fewer than 2 members or `bandwidth_share` is not in (0, 1].
pub fn ring_allreduce_time(
    net: &dyn Network,
    members: &[usize],
    bytes: u64,
    now: f64,
    bandwidth_share: f64,
) -> f64 {
    assert!(members.len() >= 2, "ring allreduce needs at least 2 members");
    assert!(
        bandwidth_share > 0.0 && bandwidth_share <= 1.0,
        "bandwidth share must be in (0, 1]"
    );
    let g = members.len();
    let chunk = (bytes / g as u64).max(1);
    // Slowest adjacent pair paces every step.
    let mut step = 0.0f64;
    for w in 0..g {
        let a = members[w];
        let b = members[(w + 1) % g];
        step = step.max(net.comm_time(a, b, chunk, now));
    }
    2.0 * (g as f64 - 1.0) * step / bandwidth_share
}

/// Simulated time for `n_workers` to each push `bytes` to a central server
/// and pull `bytes` back, with the server's link to worker `i` taken from
/// `server_link_of(i)` and all transfers sharing the server NIC.
///
/// Returns the per-round completion time (the slowest worker's round trip
/// under fair bandwidth sharing).
pub fn star_exchange_time(
    net: &dyn Network,
    server_node: usize,
    workers: &[usize],
    bytes: u64,
    now: f64,
) -> f64 {
    assert!(!workers.is_empty());
    let share = workers.len() as f64;
    workers
        .iter()
        .filter(|&&w| w != server_node)
        .map(|&w| 2.0 * net.comm_time(server_node, w, bytes, now) * share)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmax_net::{HomogeneousNetwork, LinkQuality};

    fn net(n: usize) -> HomogeneousNetwork {
        HomogeneousNetwork::new(n, LinkQuality::new(0.001, 1e9))
    }

    #[test]
    fn ring_time_scales_with_members_and_bytes() {
        let n = net(8);
        let t4 = ring_allreduce_time(&n, &[0, 1, 2, 3], 100_000_000, 0.0, 1.0);
        let t8 = ring_allreduce_time(&n, &(0..8).collect::<Vec<_>>(), 100_000_000, 0.0, 1.0);
        // Total bytes moved per member ≈ 2 · bytes · (g−1)/g — nearly flat
        // in g, but latency terms add per step; t8 ≥ t4 on equal links.
        assert!(t8 > t4 * 0.9);
        let t_small = ring_allreduce_time(&n, &[0, 1, 2, 3], 1_000_000, 0.0, 1.0);
        assert!(t_small < t4);
    }

    #[test]
    fn contention_divides_bandwidth() {
        let n = net(4);
        let exclusive = ring_allreduce_time(&n, &[0, 1], 10_000_000, 0.0, 1.0);
        let contended = ring_allreduce_time(&n, &[0, 1], 10_000_000, 0.0, 0.5);
        assert!((contended / exclusive - 2.0).abs() < 1e-9);
    }

    #[test]
    fn star_bottleneck_grows_with_workers() {
        let n = net(8);
        let t2 = star_exchange_time(&n, 0, &[1, 2], 10_000_000, 0.0);
        let t7 = star_exchange_time(&n, 0, &[1, 2, 3, 4, 5, 6, 7], 10_000_000, 0.0);
        assert!(t7 > t2, "server congestion must grow with fleet size");
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn ring_needs_two() {
        let n = net(2);
        let _ = ring_allreduce_time(&n, &[0], 1000, 0.0, 1.0);
    }
}
