//! AD-PSGD (Lian et al. \[11\]) and its Network-Monitor extension (§III-D).
//!
//! Plain AD-PSGD: each worker repeatedly picks a neighbour **uniformly at
//! random** and averages models half-half — the `γ = 1/2` special case of
//! the gossip update. It is communication-agnostic: on a heterogeneous
//! network it keeps paying for slow links (the Fig. 2 motivation).
//!
//! AD-PSGD+Monitor (§V-H): the same averaging rule, but neighbour
//! selection follows the probabilities produced by a NetMax Network
//! Monitor. The paper finds this cuts wall-clock time below plain AD-PSGD
//! but converges slightly slower per epoch than NetMax because the merge
//! weight stays at 1/2 instead of NetMax's `αργ_{i,m}` compensation —
//! this implementation reproduces exactly that difference.

use netmax_core::engine::session::{matrix_from_json, matrix_to_json};
use netmax_core::engine::{
    Algorithm, Environment, GossipBehavior, GossipDriver, PeerChoice, SessionDriver,
};
use netmax_core::monitor::{EmaTimeTracker, MonitorConfig, NetworkMonitor};
use netmax_json::{FromJson, Json, JsonError, ToJson};
use netmax_linalg::Matrix;
use rand::Rng;

/// AD-PSGD, optionally steered by a Network Monitor.
pub struct AdPsgd {
    monitored: bool,
    monitor_cfg: Option<MonitorConfig>,
    monitor: Option<NetworkMonitor>,
    tracker: Option<EmaTimeTracker>,
    policy: Option<Matrix>,
    policies_applied: u64,
}

impl AdPsgd {
    /// Plain AD-PSGD: uniform neighbour selection.
    pub fn new() -> Self {
        Self {
            monitored: false,
            monitor_cfg: None,
            monitor: None,
            tracker: None,
            policy: None,
            policies_applied: 0,
        }
    }

    /// AD-PSGD with a NetMax Network Monitor steering neighbour selection
    /// (§III-D); `alpha` seeds the policy search.
    pub fn monitored(alpha: f64) -> Self {
        Self::monitored_with(MonitorConfig::paper_default(alpha))
    }

    /// Monitored AD-PSGD with an explicit monitor configuration.
    pub fn monitored_with(cfg: MonitorConfig) -> Self {
        Self {
            monitored: true,
            monitor_cfg: Some(cfg),
            monitor: None,
            tracker: None,
            policy: None,
            policies_applied: 0,
        }
    }

    /// Number of policies applied in the last run (monitored mode).
    pub fn policies_applied(&self) -> u64 {
        self.policies_applied
    }

    fn reset(&mut self, n: usize) {
        if self.monitored {
            let cfg = self.monitor_cfg.clone().expect("monitored without config");
            self.tracker = Some(EmaTimeTracker::new(n, cfg.beta));
            self.monitor = Some(NetworkMonitor::new(cfg));
        }
        self.policy = None;
        self.policies_applied = 0;
    }
}

impl Default for AdPsgd {
    fn default() -> Self {
        Self::new()
    }
}

impl GossipBehavior for AdPsgd {
    fn on_start(&mut self, env: &mut Environment) {
        self.reset(env.num_nodes());
    }

    fn select_peer(&mut self, env: &mut Environment, i: usize) -> PeerChoice {
        if let Some(policy) = &self.policy {
            // Monitor-steered selection (same sampling as NetMax); mass a
            // stale policy still assigns to crashed peers is skipped.
            let n = env.num_nodes();
            let u: f64 = env.node_rng(i).gen();
            let mut acc = 0.0;
            for m in 0..n {
                let p = policy[(i, m)];
                if p <= 0.0 || (m != i && !env.is_active(m)) {
                    continue;
                }
                acc += p;
                if u < acc {
                    return if m == i { PeerChoice::SelfStep } else { PeerChoice::Peer(m) };
                }
            }
            PeerChoice::SelfStep
        } else {
            match env.sample_active_neighbor(i) {
                Some(m) => PeerChoice::Peer(m),
                // Every neighbour is down: a gradient-only iteration.
                None => PeerChoice::SelfStep,
            }
        }
    }

    fn merge(&mut self, env: &mut Environment, i: usize, _m: usize, pulled: &[f32]) {
        // AD-PSGD always averages half-half — including in monitored mode;
        // that fixed weight is exactly what §V-H blames for its slower
        // per-epoch convergence versus NetMax.
        netmax_ml::params::blend(0.5, env.nodes[i].model.params_mut(), pulled);
    }

    fn on_iteration(&mut self, _env: &Environment, i: usize, peer: Option<usize>, t: f64) {
        if let (Some(tracker), Some(m)) = (self.tracker.as_mut(), peer) {
            tracker.record(i, m, t);
        }
    }

    fn monitor_period(&self) -> Option<f64> {
        if self.monitored {
            self.monitor_cfg.as_ref().map(|c| c.period_s)
        } else {
            None
        }
    }

    fn on_monitor(&mut self, env: &mut Environment, _now: f64) {
        let (Some(monitor), Some(tracker)) = (self.monitor.as_mut(), self.tracker.as_ref())
        else {
            return;
        };
        let alpha = env.workload.optim.lr_at(env.mean_epoch());
        if let Some(res) = monitor.round(tracker, &env.topology, alpha, env.active_flags()) {
            self.policy = Some(res.policy);
            self.policies_applied += 1;
        }
    }

    fn checkpoint_state(&self) -> Json {
        Json::obj([
            (
                "tracker",
                match &self.tracker {
                    Some(t) => t.checkpoint(),
                    None => Json::Null,
                },
            ),
            (
                "monitor",
                match &self.monitor {
                    Some(m) => m.checkpoint(),
                    None => Json::Null,
                },
            ),
            (
                "policy",
                match &self.policy {
                    Some(p) => matrix_to_json(p),
                    None => Json::Null,
                },
            ),
            ("policies_applied", self.policies_applied.to_json()),
        ])
    }

    fn restore_state(&mut self, _env: &Environment, state: &Json) -> Result<(), JsonError> {
        self.tracker = match state.field("tracker")? {
            Json::Null => None,
            t => Some(EmaTimeTracker::restore(t)?),
        };
        if let (Some(monitor), m @ Json::Obj(_)) = (self.monitor.as_mut(), state.field("monitor")?)
        {
            monitor.restore(m)?;
        }
        self.policy = match state.field("policy")? {
            Json::Null => None,
            p => Some(matrix_from_json(p)?),
        };
        self.policies_applied = u64::from_json(state.field("policies_applied")?)?;
        Ok(())
    }
}

impl Algorithm for AdPsgd {
    fn name(&self) -> &'static str {
        if self.monitored {
            "ad-psgd+monitor"
        } else {
            "ad-psgd"
        }
    }

    fn driver(&mut self) -> Box<dyn SessionDriver + '_> {
        let name = self.name();
        Box::new(GossipDriver::new(self, name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmax_core::engine::{Scenario, TrainConfig};
    use netmax_ml::workload::WorkloadSpec;
    use netmax_net::NetworkKind;

    fn scenario(seed: u64) -> Scenario {
        Scenario::builder()
            .workers(4)
            .network(NetworkKind::HeterogeneousDynamic)
            .workload(WorkloadSpec::convex_ridge(7))
            .train_config(TrainConfig { seed, max_epochs: 3.0, ..TrainConfig::quick_test() })
            .build()
    }

    #[test]
    fn plain_adpsgd_trains() {
        let report = scenario(1).run_with(&mut AdPsgd::new());
        assert!(report.epochs_completed >= 3.0);
        let first = report.samples.first().unwrap().train_loss;
        assert!(report.final_train_loss < first);
        assert_eq!(report.algorithm, "ad-psgd");
    }

    #[test]
    fn monitored_variant_applies_policies() {
        let mut algo = AdPsgd::monitored(0.05);
        if let Some(cfg) = algo.monitor_cfg.as_mut() {
            cfg.period_s = 2.0;
        }
        let _ = scenario(2).run_with(&mut algo);
        assert!(algo.policies_applied() > 0, "monitor never produced a policy");
    }

    #[test]
    fn deterministic() {
        let r1 = scenario(3).run_with(&mut AdPsgd::new());
        let r2 = scenario(3).run_with(&mut AdPsgd::new());
        assert_eq!(r1.final_train_loss, r2.final_train_loss);
        assert_eq!(r1.wall_clock_s, r2.wall_clock_s);
    }
}
