//! SAPS-PSGD \[15\]: communication over a **fixed subgraph of initially
//! high-speed links**, with optional sparsified model exchange.
//!
//! The paper's §I singles this baseline out as the motivation for
//! NetMax's *dynamic* adaptation: "SAPS-PSGD assumes that the network is
//! static and lets the worker nodes communicate with each other in a
//! fixed topology consisting of initially high-speed links. However, in
//! dynamic networks, some links of the topology … may become low-speed
//! links during the training" (the Fig. 2 story).
//!
//! Implementation: at start-up the algorithm probes every link once,
//! keeps the fastest links that still form a connected subgraph (a
//! maximum-spanning-tree-style greedy selection plus extra fast edges up
//! to a target degree), and then gossips uniformly over that frozen
//! subgraph forever — no re-measurement, exactly the static assumption
//! the paper criticises.

use netmax_core::engine::{
    Algorithm, Environment, GossipBehavior, GossipDriver, PeerChoice, SessionDriver,
};
use netmax_net::Topology;

/// SAPS-PSGD: fixed initially-fast subgraph gossip.
pub struct SapsPsgd {
    /// Target node degree of the retained subgraph (paper uses sparse
    /// topologies; 2 ≈ a ring of fast links).
    target_degree: usize,
    /// Sparsification ratio r ∈ (0, 1]: fraction of model coordinates
    /// exchanged per gossip round (1.0 = full model).
    sparsity: f64,
    /// The frozen subgraph, built on the first `run`.
    subgraph: Option<Topology>,
}

impl SapsPsgd {
    /// Creates SAPS-PSGD with the given subgraph degree and exchange
    /// sparsity (the reference uses sparsified exchange; `1.0` disables
    /// it).
    ///
    /// # Panics
    /// Panics unless `target_degree ≥ 1` and `0 < sparsity ≤ 1`.
    pub fn new(target_degree: usize, sparsity: f64) -> Self {
        assert!(target_degree >= 1, "subgraph degree must be ≥ 1");
        assert!(sparsity > 0.0 && sparsity <= 1.0, "sparsity must be in (0, 1]");
        Self { target_degree, sparsity, subgraph: None }
    }

    /// Paper-flavoured default: degree-2 fast subgraph, 25% sparsified
    /// exchange.
    pub fn paper_default() -> Self {
        Self::new(2, 0.25)
    }

    /// The frozen subgraph chosen at start-up (after a run).
    pub fn subgraph(&self) -> Option<&Topology> {
        self.subgraph.as_ref()
    }

    /// Builds the initially-fast subgraph: greedy Kruskal on *initial*
    /// link costs for connectivity, then extra fast edges up to the
    /// target degree.
    fn build_subgraph(env: &Environment, target_degree: usize) -> Topology {
        let n = env.num_nodes();
        // Probe every adjacent pair once at t = 0 (what SAPS does during
        // its warm-up phase).
        let mut edges: Vec<(f64, usize, usize)> = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if env.topology.is_edge(i, j) {
                    edges.push((env.comm_time(i, j, 0.0), i, j));
                }
            }
        }
        edges.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("comm time NaN"));

        // Kruskal for connectivity.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let r = find(parent, parent[x]);
                parent[x] = r;
            }
            parent[x]
        }
        let mut sub = Topology::empty(n);
        for &(_, i, j) in &edges {
            let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
            if ri != rj {
                parent[ri] = rj;
                sub.set_edge(i, j, true);
            }
        }
        // Densify with the fastest remaining edges up to target degree.
        for &(_, i, j) in &edges {
            if !sub.is_edge(i, j) && sub.degree(i) < target_degree && sub.degree(j) < target_degree
            {
                sub.set_edge(i, j, true);
            }
        }
        debug_assert!(sub.is_connected(), "subgraph must stay connected");
        sub
    }
}

impl GossipBehavior for SapsPsgd {
    /// The warm-up probe: build the initially-fast subgraph. Runs both on
    /// a fresh start and on checkpoint restore — the probe is a
    /// deterministic function of the network at `t = 0`, so rebuilding it
    /// reproduces the frozen subgraph exactly (nothing to serialize).
    fn on_start(&mut self, env: &mut Environment) {
        self.subgraph = Some(Self::build_subgraph(env, self.target_degree));
    }

    fn select_peer(&mut self, env: &mut Environment, i: usize) -> PeerChoice {
        let sub = self.subgraph.as_ref().expect("subgraph built at session start");
        let nbrs = sub.neighbors(i);
        debug_assert!(!nbrs.is_empty(), "connected subgraph leaves no node isolated");
        // The frozen subgraph is exactly SAPS's static assumption — but a
        // crashed peer cannot serve pulls, so the draw is over the
        // subgraph's *active* neighbours (full list when everyone is up).
        match env.sample_active_from(i, nbrs) {
            Some(m) => PeerChoice::Peer(m),
            None => PeerChoice::SelfStep,
        }
    }

    fn merge(&mut self, env: &mut Environment, i: usize, _m: usize, pulled: &[f32]) {
        if self.sparsity >= 1.0 {
            netmax_ml::params::blend(0.5, env.nodes[i].model.params_mut(), pulled);
            return;
        }
        // Sparsified exchange: only a strided subset of coordinates is
        // averaged this round (rotating offset so all coordinates are
        // covered over successive rounds).
        let stride = (1.0 / self.sparsity).round().max(1.0) as usize;
        let offset = env.nodes[i].local_steps as usize % stride;
        let params = env.nodes[i].model.params_mut();
        let mut idx = offset;
        while idx < params.len() {
            params[idx] = 0.5 * params[idx] + 0.5 * pulled[idx];
            idx += stride;
        }
    }
}

impl Algorithm for SapsPsgd {
    fn name(&self) -> &'static str {
        "saps-psgd"
    }

    fn driver(&mut self) -> Box<dyn SessionDriver + '_> {
        Box::new(GossipDriver::new(self, "saps-psgd"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmax_core::engine::{Scenario, TrainConfig};
    use netmax_ml::workload::WorkloadSpec;
    use netmax_net::NetworkKind;

    fn scenario(kind: NetworkKind, seed: u64, epochs: f64) -> Scenario {
        Scenario::builder()
            .workers(8)
            .network(kind)
            .workload(WorkloadSpec::convex_ridge(7))
            .train_config(TrainConfig { seed, max_epochs: epochs, ..TrainConfig::quick_test() })
            .build()
    }

    #[test]
    fn subgraph_is_connected_and_sparse() {
        let sc = scenario(NetworkKind::HeterogeneousDynamic, 1, 2.0);
        let mut algo = SapsPsgd::new(2, 1.0);
        let _ = sc.run_with(&mut algo);
        let sub = algo.subgraph().expect("subgraph built");
        assert!(sub.is_connected());
        // Far sparser than the complete graph (28 edges at n = 8).
        assert!(sub.num_edges() < 28);
        for i in 0..8 {
            assert!(sub.degree(i) >= 1);
        }
    }

    #[test]
    fn subgraph_prefers_fast_intra_links() {
        // Build with a *static* network so "initially fast" is stable:
        // intra-server links must dominate the chosen subgraph.
        let sc = scenario(NetworkKind::HeterogeneousStatic, 2, 2.0);
        let env = sc.build_env();
        let sub = SapsPsgd::build_subgraph(&env, 2);
        // Count how many chosen edges are intra-server (8 workers over 3
        // servers: (3,3,2) ⇒ intra pairs exist for every node).
        let mut intra = 0;
        let mut total = 0;
        for i in 0..8 {
            for j in (i + 1)..8 {
                if sub.is_edge(i, j) {
                    total += 1;
                    let t = env.comm_time(i, j, 0.0);
                    if t < 0.1 {
                        intra += 1;
                    }
                }
            }
        }
        assert!(total > 0);
        assert!(
            intra * 2 >= total,
            "at least half the subgraph edges should be fast (got {intra}/{total})"
        );
    }

    #[test]
    fn trains_and_reduces_loss() {
        let sc = scenario(NetworkKind::HeterogeneousDynamic, 3, 3.0);
        let report = sc.run_with(&mut SapsPsgd::new(2, 1.0));
        let first = report.samples.first().unwrap().train_loss;
        assert!(report.final_train_loss < first);
        assert_eq!(report.algorithm, "saps-psgd");
    }

    #[test]
    fn sparsified_exchange_still_converges() {
        let sc = scenario(NetworkKind::Homogeneous, 4, 3.0);
        let report = sc.run_with(&mut SapsPsgd::paper_default());
        let first = report.samples.first().unwrap().train_loss;
        assert!(
            report.final_train_loss < first,
            "sparsified gossip failed to reduce loss: {first} -> {}",
            report.final_train_loss
        );
    }

    #[test]
    fn deterministic() {
        let run = || {
            scenario(NetworkKind::HeterogeneousDynamic, 5, 2.0)
                .run_with(&mut SapsPsgd::new(2, 0.5))
        };
        let (a, b) = (run(), run());
        assert_eq!(a.final_train_loss, b.final_train_loss);
        assert_eq!(a.wall_clock_s, b.wall_clock_s);
    }
}
