//! GoSGD / Gossiping SGD \[12, 17\]: asynchronous gossip with a fixed
//! mixing weight.
//!
//! Structurally identical to AD-PSGD (uniform neighbour selection), but
//! the pulled model is merged with a configurable weight `w` rather than
//! exactly one half — the knob the gossip-learning literature tunes. The
//! paper groups GoSGD with AD-PSGD as "fixed uniform probability
//! distribution" baselines (§II-B), and it is what §III-D's extension
//! hook re-weights.

use netmax_core::engine::{
    Algorithm, Environment, GossipBehavior, GossipDriver, PeerChoice, SessionDriver,
};

/// Gossip SGD with a fixed mixing weight.
pub struct GoSgd {
    weight: f32,
}

impl GoSgd {
    /// Creates GoSGD with mixing weight `w ∈ (0, 1)`; the pulled model
    /// enters the convex combination with weight `w`.
    ///
    /// # Panics
    /// Panics unless `0 < w < 1`.
    pub fn new(w: f64) -> Self {
        assert!(w > 0.0 && w < 1.0, "mixing weight must be in (0, 1)");
        Self { weight: w as f32 }
    }
}

impl GossipBehavior for GoSgd {
    fn select_peer(&mut self, env: &mut Environment, i: usize) -> PeerChoice {
        match env.sample_active_neighbor(i) {
            Some(m) => PeerChoice::Peer(m),
            None => PeerChoice::SelfStep,
        }
    }

    fn merge(&mut self, env: &mut Environment, i: usize, _m: usize, pulled: &[f32]) {
        netmax_ml::params::blend(self.weight, env.nodes[i].model.params_mut(), pulled);
    }
}

impl Algorithm for GoSgd {
    fn name(&self) -> &'static str {
        "gosgd"
    }

    fn driver(&mut self) -> Box<dyn SessionDriver + '_> {
        Box::new(GossipDriver::new(self, "gosgd"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmax_core::engine::{Scenario, TrainConfig};
    use netmax_ml::workload::WorkloadSpec;
    use netmax_net::NetworkKind;

    #[test]
    fn gosgd_trains_and_reduces_loss() {
        let sc = Scenario::builder()
            .workers(4)
            .network(NetworkKind::Homogeneous)
            .workload(WorkloadSpec::convex_ridge(7))
            .train_config(TrainConfig { max_epochs: 3.0, ..TrainConfig::quick_test() })
            .build();
        let report = sc.run_with(&mut GoSgd::new(0.5));
        let first = report.samples.first().unwrap().train_loss;
        assert!(report.final_train_loss < first);
    }

    #[test]
    #[should_panic(expected = "mixing weight")]
    fn rejects_degenerate_weight() {
        let _ = GoSgd::new(1.0);
    }
}
