//! # netmax-baselines
//!
//! From-scratch implementations of every algorithm the paper compares
//! NetMax against (§V):
//!
//! * [`AdPsgd`] — asynchronous decentralized PSGD (Lian et al. \[11\]):
//!   uniform random neighbour selection, half-half model averaging. The
//!   monitored variant ([`AdPsgd::monitored`]) steers its selection
//!   probabilities with a NetMax Network Monitor, reproducing §III-D and
//!   the §V-H experiment.
//! * [`GoSgd`] — gossip SGD with weighted averaging \[12, 17\].
//! * [`AllreduceSgd`] — synchronous ring-allreduce SGD \[8\].
//! * [`Prague`] — randomized partial-allreduce groups \[14\].
//! * [`ParameterServer`] — centralized PSGD in synchronous
//!   ([`ParameterServer::synchronous`]) and asynchronous
//!   ([`ParameterServer::asynchronous`]) flavours (§V-G).
//! * [`SapsPsgd`] — the fixed initially-fast-subgraph strategy of
//!   SAPS-PSGD \[15\], the §I foil for NetMax's dynamic adaptation.
//! * [`BoundedStaleness`] — Hop/Gaia-style staleness-bounded gossip
//!   \[3, 25\], whose fleet-wide stalls under slow links §VI criticises.
//!
//! All of them run on the same engine, network simulator, and workloads
//! as NetMax, so every comparison in the figure harnesses is apples to
//! apples.

#![forbid(unsafe_code)]

pub mod ad_psgd;
pub mod allreduce;
pub mod bounded_staleness;
pub mod collectives;
pub mod gosgd;
pub mod param_server;
pub mod prague;
pub mod saps;

pub use ad_psgd::AdPsgd;
pub use allreduce::AllreduceSgd;
pub use bounded_staleness::BoundedStaleness;
pub use gosgd::GoSgd;
pub use param_server::ParameterServer;
pub use prague::Prague;
pub use saps::SapsPsgd;

use netmax_core::engine::{Algorithm, AlgorithmKind};
use netmax_core::netmax::{NetMax, NetMaxConfig};

/// Instantiates any of the paper's algorithms by kind.
///
/// `alpha` seeds the policy search of the monitor-bearing algorithms
/// (NetMax and AD-PSGD+Monitor); the others ignore it.
pub fn algorithm_for(kind: AlgorithmKind, alpha: f64) -> Box<dyn Algorithm> {
    match kind {
        AlgorithmKind::NetMax => Box::new(NetMax::new(NetMaxConfig::paper_default(alpha))),
        AlgorithmKind::NetMaxUniform => Box::new(NetMax::new(NetMaxConfig::uniform(alpha))),
        AlgorithmKind::AdPsgd => Box::new(AdPsgd::new()),
        AlgorithmKind::AdPsgdMonitored => Box::new(AdPsgd::monitored(alpha)),
        AlgorithmKind::GoSgd => Box::new(GoSgd::new(0.5)),
        AlgorithmKind::AllreduceSgd => Box::new(AllreduceSgd::new()),
        AlgorithmKind::Prague => Box::new(Prague::new(4)),
        AlgorithmKind::PsSync => Box::new(ParameterServer::synchronous()),
        AlgorithmKind::PsAsync => Box::new(ParameterServer::asynchronous()),
        AlgorithmKind::SapsPsgd => Box::new(SapsPsgd::paper_default()),
        AlgorithmKind::BoundedStaleness => Box::new(BoundedStaleness::new(8)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_instantiate() {
        for kind in [
            AlgorithmKind::NetMax,
            AlgorithmKind::NetMaxUniform,
            AlgorithmKind::AdPsgd,
            AlgorithmKind::AdPsgdMonitored,
            AlgorithmKind::GoSgd,
            AlgorithmKind::AllreduceSgd,
            AlgorithmKind::Prague,
            AlgorithmKind::PsSync,
            AlgorithmKind::PsAsync,
            AlgorithmKind::SapsPsgd,
            AlgorithmKind::BoundedStaleness,
        ] {
            let algo = algorithm_for(kind, 0.1);
            assert!(!algo.name().is_empty());
        }
    }
}
