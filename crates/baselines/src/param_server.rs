//! Parameter-server (C-PSGD) baselines — §V-G.
//!
//! The server holds the global model; it is co-located with worker 0's
//! machine (the paper assigns the PS "to one GPU server"), so its link to
//! worker `i` is the simulator's link `(0, i)`, and all concurrent
//! transfers share the server NIC (the central bottleneck §VI describes).
//!
//! * **PS-sync**: every round all workers push gradients, the server
//!   averages and applies them once, and all workers pull the new model.
//!   Paced by the slowest worker and the contended star exchange.
//! * **PS-async**: every worker loops independently — compute a gradient
//!   on its (stale) copy, push it, the server applies it immediately, and
//!   the worker pulls the fresh model. Fast workers iterate more often,
//!   which is exactly the bias the paper blames for PS-async's poor
//!   per-epoch convergence in Fig. 14(a).

use netmax_core::engine::{Algorithm, Environment, Recorder, RunReport};
use netmax_ml::optim::SgdState;
use netmax_net::EventQueue;

/// Which flavour of parameter server to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flavor {
    Sync,
    Async,
}

/// Parameter-server training (synchronous or asynchronous).
pub struct ParameterServer {
    flavor: Flavor,
}

impl ParameterServer {
    /// Synchronous parameter server (PS-syn in the paper's figures).
    pub fn synchronous() -> Self {
        Self { flavor: Flavor::Sync }
    }

    /// Asynchronous parameter server (PS-asyn).
    pub fn asynchronous() -> Self {
        Self { flavor: Flavor::Async }
    }

    /// Round-trip time for worker `i` to exchange one model with the
    /// server at `now`, under `share`-way NIC sharing.
    fn round_trip(env: &Environment, i: usize, now: f64, share: f64) -> f64 {
        if i == 0 {
            // Co-located with the server: intra-machine copy at the
            // simulator's fastest link.
            2.0 * env.comm_time(0, 1, now).min(1e-3)
        } else {
            2.0 * env.comm_time(0, i, now) * share
        }
    }

    fn run_sync(&self, env: &mut Environment) -> RunReport {
        let n = env.num_nodes();
        let mut rec = Recorder::new();

        // Global model starts from worker 0's init; broadcast.
        let mut global = env.pull_params(0);
        for i in 1..n {
            env.nodes[i].model.params_mut().copy_from_slice(&global);
        }
        let mut server_opt = SgdState::new(global.len());

        while !env.should_stop() {
            let now = env.nodes[0].clock;
            let mut mean_grad: Vec<f32> = Vec::new();
            let mut compute = Vec::with_capacity(n);
            for i in 0..n {
                let (g, c) = env.compute_gradient(i);
                compute.push(c);
                if mean_grad.is_empty() {
                    mean_grad = g;
                } else {
                    for (a, b) in mean_grad.iter_mut().zip(&g) {
                        *a += b;
                    }
                }
            }
            let inv = 1.0 / n as f32;
            for a in &mut mean_grad {
                *a *= inv;
            }
            let c_max = compute.iter().copied().fold(0.0, f64::max);
            // All workers exchange with the shared server NIC concurrently.
            let comm = (0..n)
                .map(|i| Self::round_trip(env, i, now + c_max, n as f64))
                .fold(0.0, f64::max);

            let lr = env.workload.optim.lr_at(env.mean_epoch());
            server_opt.step(&env.workload.optim, lr, &mut global, &mean_grad);
            for (i, &c) in compute.iter().enumerate() {
                env.nodes[i].model.params_mut().copy_from_slice(&global);
                env.book_iteration(i, c, c_max + comm);
            }
            env.global_step += n as u64;
            rec.maybe_record(env);
        }
        rec.finish(env, self.name())
    }

    fn run_async(&self, env: &mut Environment) -> RunReport {
        let n = env.num_nodes();
        let mut rec = Recorder::new();

        let mut global = env.pull_params(0);
        for i in 1..n {
            env.nodes[i].model.params_mut().copy_from_slice(&global);
        }
        let mut server_opt = SgdState::new(global.len());

        // Per-worker completion events; steady-state NIC sharing ≈ n ways.
        let mut queue: EventQueue<usize> = EventQueue::new();
        let compute: Vec<f64> = (0..n)
            .map(|i| {
                let b = env.partition.batch_size(i, env.workload.batch_size);
                env.workload.profile.compute_time(b)
            })
            .collect();
        let share = n as f64;
        for (i, &c) in compute.iter().enumerate() {
            let rt = Self::round_trip(env, i, 0.0, share);
            queue.push(env.cfg.execution.iteration_time(c, rt), i);
        }

        while let Some((now, i)) = queue.pop() {
            // Worker i finished: its gradient (computed on its stale copy)
            // reaches the server, which applies it immediately.
            let (grad, _c) = env.compute_gradient(i);
            let lr = env.lr(i);
            server_opt.step(&env.workload.optim, lr, &mut global, &grad);
            // Worker receives the fresh model.
            env.nodes[i].model.params_mut().copy_from_slice(&global);

            let rt = Self::round_trip(env, i, now, share);
            let iter = env.cfg.execution.iteration_time(compute[i], rt);
            env.book_iteration(i, compute[i], now - env.nodes[i].clock);
            env.global_step += 1;
            rec.maybe_record(env);
            if env.should_stop() {
                break;
            }
            queue.push(now + iter, i);
        }
        rec.finish(env, self.name())
    }
}

impl Algorithm for ParameterServer {
    fn name(&self) -> &'static str {
        match self.flavor {
            Flavor::Sync => "ps-syn",
            Flavor::Async => "ps-asyn",
        }
    }

    fn run(&mut self, env: &mut Environment) -> RunReport {
        match self.flavor {
            Flavor::Sync => self.run_sync(env),
            Flavor::Async => self.run_async(env),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmax_core::engine::{Scenario, TrainConfig};
    use netmax_ml::workload::WorkloadSpec;
    use netmax_net::NetworkKind;

    fn scenario(kind: NetworkKind, seed: u64) -> Scenario {
        Scenario::builder()
            .workers(4)
            .network(kind)
            .workload(WorkloadSpec::convex_ridge(7))
            .train_config(TrainConfig { seed, max_epochs: 3.0, ..TrainConfig::quick_test() })
            .build()
    }

    #[test]
    fn ps_sync_trains() {
        let report =
            scenario(NetworkKind::Homogeneous, 1).run_with(&mut ParameterServer::synchronous());
        let first = report.samples.first().unwrap().train_loss;
        assert!(report.final_train_loss < first);
        assert_eq!(report.algorithm, "ps-syn");
    }

    #[test]
    fn ps_async_trains() {
        let report =
            scenario(NetworkKind::Homogeneous, 2).run_with(&mut ParameterServer::asynchronous());
        let first = report.samples.first().unwrap().train_loss;
        assert!(report.final_train_loss < first);
        assert_eq!(report.algorithm, "ps-asyn");
    }

    #[test]
    fn ps_sync_keeps_replicas_identical() {
        let sc = scenario(NetworkKind::HeterogeneousDynamic, 3);
        let mut env = sc.build_env();
        let _ = ParameterServer::synchronous().run(&mut env);
        let models: Vec<_> = env.nodes.iter().map(|x| x.model.clone_box()).collect();
        assert_eq!(netmax_ml::metrics::consensus_diameter(&models), 0.0);
    }

    #[test]
    fn async_faster_than_sync_on_heterogeneous_network() {
        // The paper's Fig. 14(b): PS-syn is paced by the slowest link each
        // round, PS-asyn is not.
        let sync = scenario(NetworkKind::HeterogeneousDynamic, 4)
            .run_with(&mut ParameterServer::synchronous());
        let asyn = scenario(NetworkKind::HeterogeneousDynamic, 4)
            .run_with(&mut ParameterServer::asynchronous());
        assert!(
            asyn.wall_clock_s < sync.wall_clock_s,
            "async {a} should beat sync {s}",
            a = asyn.wall_clock_s,
            s = sync.wall_clock_s
        );
    }

    #[test]
    fn deterministic() {
        let r1 = scenario(NetworkKind::HeterogeneousDynamic, 5)
            .run_with(&mut ParameterServer::asynchronous());
        let r2 = scenario(NetworkKind::HeterogeneousDynamic, 5)
            .run_with(&mut ParameterServer::asynchronous());
        assert_eq!(r1.final_train_loss, r2.final_train_loss);
    }
}
