//! Parameter-server (C-PSGD) baselines — §V-G.
//!
//! The server holds the global model; it is co-located with worker 0's
//! machine (the paper assigns the PS "to one GPU server"), so its link to
//! worker `i` is the simulator's link `(0, i)`, and all concurrent
//! transfers share the server NIC (the central bottleneck §VI describes).
//!
//! * **PS-sync**: every round all workers push gradients, the server
//!   averages and applies them once, and all workers pull the new model.
//!   Paced by the slowest worker and the contended star exchange.
//! * **PS-async**: every worker loops independently — compute a gradient
//!   on its (stale) copy, push it, the server applies it immediately, and
//!   the worker pulls the fresh model. Fast workers iterate more often,
//!   which is exactly the bias the paper blames for PS-async's poor
//!   per-epoch convergence in Fig. 14(a).

use netmax_core::engine::{
    check_node_index, purge_events, queue_from_json, queue_to_json, Algorithm, DriverEvent,
    Environment, SessionDriver,
};
use netmax_json::{FromJson, Json, JsonError, ToJson};
use netmax_ml::optim::SgdState;
use netmax_net::EventQueue;

/// Which flavour of parameter server to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flavor {
    Sync,
    Async,
}

/// Parameter-server training (synchronous or asynchronous).
pub struct ParameterServer {
    flavor: Flavor,
}

impl ParameterServer {
    /// Synchronous parameter server (PS-syn in the paper's figures).
    pub fn synchronous() -> Self {
        Self { flavor: Flavor::Sync }
    }

    /// Asynchronous parameter server (PS-asyn).
    pub fn asynchronous() -> Self {
        Self { flavor: Flavor::Async }
    }

    /// Round-trip time for worker `i` to exchange one model with the
    /// server at `now`, under `share`-way NIC sharing.
    fn round_trip(env: &Environment, i: usize, now: f64, share: f64) -> f64 {
        if i == 0 {
            // Co-located with the server: intra-machine copy at the
            // simulator's fastest link.
            2.0 * env.comm_time(0, 1, now).min(1e-3)
        } else {
            2.0 * env.comm_time(0, i, now) * share
        }
    }
}

impl Algorithm for ParameterServer {
    fn name(&self) -> &'static str {
        match self.flavor {
            Flavor::Sync => "ps-syn",
            Flavor::Async => "ps-asyn",
        }
    }

    fn driver(&mut self) -> Box<dyn SessionDriver + '_> {
        match self.flavor {
            Flavor::Sync => Box::new(PsSyncDriver {
                server: None,
                members: Vec::new(),
                compute: Vec::new(),
                mean_grad: Vec::new(),
            }),
            Flavor::Async => Box::new(PsAsyncDriver {
                server: None,
                queue: EventQueue::new(),
                compute: Vec::new(),
                pending_push: None,
            }),
        }
    }
}

/// The server-side state both flavours carry across steps: the global
/// model and the server's own momentum buffer. `None` until the first
/// advance broadcasts the initial model.
struct ServerState {
    global: Vec<f32>,
    opt: SgdState,
}

impl ServerState {
    /// Broadcasts the lowest-indexed *active* worker's init as the global
    /// model (the server itself never crashes; worker 0 might).
    fn broadcast(env: &mut Environment) -> Option<Self> {
        let lead = (0..env.num_nodes()).find(|&i| env.is_active(i))?;
        let global = env.pull_params(lead).expect("broadcast source is active");
        for i in 0..env.num_nodes() {
            if i != lead && env.is_active(i) {
                env.nodes[i].model.params_mut().copy_from_slice(&global);
            }
        }
        let opt = SgdState::new(global.len());
        Some(Self { global, opt })
    }

    fn checkpoint(&self) -> Json {
        Json::obj([
            ("global", self.global.to_json()),
            ("velocity", self.opt.velocity().to_json()),
        ])
    }

    fn restore(state: &Json) -> Result<Self, JsonError> {
        let global: Vec<f32> = Vec::from_json(state.field("global")?)?;
        let velocity: Vec<f32> = Vec::from_json(state.field("velocity")?)?;
        if velocity.len() != global.len() {
            return Err(JsonError::schema("server optimiser state length mismatch".into()));
        }
        let mut opt = SgdState::new(global.len());
        opt.velocity_mut().copy_from_slice(&velocity);
        Ok(Self { global, opt })
    }
}

/// Round-granular session driver for PS-sync: one advance = one
/// synchronous push/aggregate/pull round. The per-round work buffers
/// persist across advances (transient scratch, not checkpointed).
///
/// Failure semantics: membership is re-derived every round — crashed
/// workers are excluded from the push/aggregate/pull exchange and their
/// clocks freeze; stragglers pace the whole round. The server itself
/// survives node crashes (it is a separate process co-located with
/// worker 0's *machine*, not with the worker).
struct PsSyncDriver {
    server: Option<ServerState>,
    /// This round's membership (the active workers).
    members: Vec<usize>,
    compute: Vec<f64>,
    mean_grad: Vec<f32>,
}

impl SessionDriver for PsSyncDriver {
    fn name(&self) -> &str {
        "ps-syn"
    }

    fn advance(&mut self, env: &mut Environment) -> DriverEvent {
        let n = env.num_nodes();
        self.members.clear();
        self.members.extend((0..n).filter(|&i| env.is_active(i)));
        let Some(&lead) = self.members.first() else {
            return DriverEvent::Exhausted;
        };
        if self.server.is_none() {
            self.server = ServerState::broadcast(env);
        }

        let members = self.members.len();
        // Round rendezvous: a freshly rejoined worker may lag the
        // lockstep fleet.
        let now = self.members.iter().map(|&i| env.nodes[i].clock).fold(0.0f64, f64::max);
        // The server's lr is read before the round's batch draws advance
        // the epoch counters — the same read-before-draw milestone
        // semantics as `Environment::gradient_step`.
        let lr = env.workload.optim.lr_at(env.mean_epoch());
        self.compute.clear();
        self.mean_grad.clear();
        for k in 0..members {
            let c = env.compute_gradient(self.members[k]);
            self.compute.push(c);
            let g = env.grad(self.members[k]);
            if self.mean_grad.is_empty() {
                self.mean_grad.extend_from_slice(g);
            } else {
                for (a, b) in self.mean_grad.iter_mut().zip(g) {
                    *a += b;
                }
            }
        }
        let inv = 1.0 / members as f32;
        for a in &mut self.mean_grad {
            *a *= inv;
        }
        let c_max = self.compute.iter().copied().fold(0.0, f64::max);
        // All live workers exchange with the shared server NIC
        // concurrently.
        let comm = self
            .members
            .iter()
            .map(|&i| ParameterServer::round_trip(env, i, now + c_max, members as f64))
            .fold(0.0, f64::max);

        let server = self.server.as_mut().expect("at least one live worker above");
        server.opt.step(&env.workload.optim, lr, &mut server.global, &self.mean_grad);
        for (slot, &c) in self.compute.iter().enumerate() {
            let i = self.members[slot];
            env.nodes[i].model.params_mut().copy_from_slice(&server.global);
            let wait = now - env.nodes[i].clock;
            env.book_iteration(i, c, wait + c_max + comm);
        }
        env.global_step += members as u64;
        DriverEvent::Round { steps: members as u64, time_s: env.nodes[lead].clock }
    }

    fn checkpoint_state(&self) -> Json {
        match &self.server {
            Some(s) => s.checkpoint(),
            None => Json::Null,
        }
    }

    fn restore_state(&mut self, _env: &mut Environment, state: &Json) -> Result<(), JsonError> {
        self.server = match state {
            Json::Null => None,
            s => Some(ServerState::restore(s)?),
        };
        Ok(())
    }
}

/// Event-granular session driver for PS-async: one advance = one worker's
/// push/apply/pull exchange. Re-scheduling a worker is deferred to the
/// advance after its completion so the session's stop check sits exactly
/// where the classic loop's `break` did.
///
/// Failure semantics: a crashed worker's in-flight exchange is dropped at
/// the pop (the server never sees its gradient) and it is not
/// re-scheduled; a rejoining worker pulls the fresh global model (the
/// engine warm-starts it) and re-enters the schedule from its rejoin
/// time.
struct PsAsyncDriver {
    server: Option<ServerState>,
    queue: EventQueue<usize>,
    /// Nominal per-node compute times (derived from the environment).
    compute: Vec<f64>,
    /// The next completion `(worker, time)` to enqueue before the next
    /// pop.
    pending_push: Option<(usize, f64)>,
}

impl SessionDriver for PsAsyncDriver {
    fn name(&self) -> &str {
        "ps-asyn"
    }

    fn advance(&mut self, env: &mut Environment) -> DriverEvent {
        let n = env.num_nodes();
        // Steady-state NIC sharing ≈ n ways.
        let share = n as f64;
        if self.server.is_none() {
            self.server = ServerState::broadcast(env);
            if self.server.is_none() {
                return DriverEvent::Exhausted;
            }
            self.compute = env.nominal_compute_times();
            for (i, &c) in self.compute.iter().enumerate() {
                if !env.is_active(i) {
                    continue;
                }
                let rt = ParameterServer::round_trip(env, i, 0.0, share);
                self.queue.push(env.cfg.execution.iteration_time(c, rt), i);
            }
        }
        if let Some((i, t)) = self.pending_push.take() {
            if env.is_active(i) {
                self.queue.push(t, i);
            }
        }
        let (now, i) = loop {
            let Some((now, i)) = self.queue.pop() else {
                return DriverEvent::Exhausted;
            };
            // Safety net only: `on_membership_change` eagerly purges a
            // crashed worker's events, so this should never fire.
            if env.is_active(i) {
                break (now, i);
            }
        };
        // Worker i finished: its gradient (computed on its stale copy)
        // reaches the server, which applies it immediately at the lr
        // captured before the worker's batch draw.
        let _c = env.compute_gradient(i);
        let lr = env.pending_lr(i);
        let server = self.server.as_mut().expect("server initialised above");
        server.opt.step(&env.workload.optim, lr, &mut server.global, env.grad(i));
        // Worker receives the fresh model.
        env.nodes[i].model.params_mut().copy_from_slice(&server.global);

        let rt = ParameterServer::round_trip(env, i, now, share);
        let iter = env.cfg.execution.iteration_time(self.compute[i], rt);
        let booked = now - env.nodes[i].clock;
        env.book_iteration(i, self.compute[i], booked);
        env.global_step += 1;
        self.pending_push = Some((i, now + iter));
        DriverEvent::Step { node: i, peer: None, iteration_s: booked }
    }

    fn on_membership_change(&mut self, env: &mut Environment, node: usize, active: bool) {
        if self.server.is_none() {
            return;
        }
        if active {
            // A rejoining PS worker pulls the authoritative global model
            // (overriding the engine's peer-replica warm start), then
            // re-enters the schedule from its rejoin time.
            if let Some(server) = &self.server {
                env.nodes[node].model.params_mut().copy_from_slice(&server.global);
            }
            let share = env.num_nodes() as f64;
            let start = env.nodes[node].clock;
            let rt = ParameterServer::round_trip(env, node, start, share);
            let iter = env.cfg.execution.iteration_time(self.compute[node], rt);
            self.queue.push(start + iter, node);
        } else {
            if matches!(self.pending_push, Some((i, _)) if i == node) {
                self.pending_push = None;
            }
            // Purge the crashed worker's in-flight exchange now — a stale
            // pre-crash event popping after a rejoin would give the
            // worker two concurrent exchange chains.
            self.queue = purge_events(&self.queue, |&i| i != node);
        }
    }

    fn checkpoint_state(&self) -> Json {
        Json::obj([
            (
                "server",
                match &self.server {
                    Some(s) => s.checkpoint(),
                    None => Json::Null,
                },
            ),
            ("queue", queue_to_json(&self.queue)),
            (
                "pending_push",
                match self.pending_push {
                    Some((i, t)) => {
                        Json::obj([("node", i.to_json()), ("time", t.to_json())])
                    }
                    None => Json::Null,
                },
            ),
        ])
    }

    fn restore_state(&mut self, env: &mut Environment, state: &Json) -> Result<(), JsonError> {
        self.server = match state.field("server")? {
            Json::Null => None,
            s => Some(ServerState::restore(s)?),
        };
        if self.server.is_some() {
            self.compute = env.nominal_compute_times();
        }
        self.queue = queue_from_json(state.field("queue")?)?;
        let n = env.num_nodes();
        for (_, _, &worker) in self.queue.entries() {
            check_node_index(worker, n)?;
        }
        self.pending_push = match state.field("pending_push")? {
            Json::Null => None,
            p => {
                let node = usize::from_json(p.field("node")?)?;
                check_node_index(node, n)?;
                Some((node, f64::from_json(p.field("time")?)?))
            }
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmax_core::engine::{Scenario, TrainConfig};
    use netmax_ml::workload::WorkloadSpec;
    use netmax_net::NetworkKind;

    fn scenario(kind: NetworkKind, seed: u64) -> Scenario {
        Scenario::builder()
            .workers(4)
            .network(kind)
            .workload(WorkloadSpec::convex_ridge(7))
            .train_config(TrainConfig { seed, max_epochs: 3.0, ..TrainConfig::quick_test() })
            .build()
    }

    #[test]
    fn ps_sync_trains() {
        let report =
            scenario(NetworkKind::Homogeneous, 1).run_with(&mut ParameterServer::synchronous());
        let first = report.samples.first().unwrap().train_loss;
        assert!(report.final_train_loss < first);
        assert_eq!(report.algorithm, "ps-syn");
    }

    #[test]
    fn ps_async_trains() {
        let report =
            scenario(NetworkKind::Homogeneous, 2).run_with(&mut ParameterServer::asynchronous());
        let first = report.samples.first().unwrap().train_loss;
        assert!(report.final_train_loss < first);
        assert_eq!(report.algorithm, "ps-asyn");
    }

    #[test]
    fn ps_sync_keeps_replicas_identical() {
        let sc = scenario(NetworkKind::HeterogeneousDynamic, 3);
        let mut env = sc.build_env();
        let _ = ParameterServer::synchronous().run(&mut env);
        let models: Vec<_> = env.nodes.iter().map(|x| x.model.clone_box()).collect();
        assert_eq!(netmax_ml::metrics::consensus_diameter(&models), 0.0);
    }

    #[test]
    fn async_faster_than_sync_on_heterogeneous_network() {
        // The paper's Fig. 14(b): PS-syn is paced by the slowest link each
        // round, PS-asyn is not.
        let sync = scenario(NetworkKind::HeterogeneousDynamic, 4)
            .run_with(&mut ParameterServer::synchronous());
        let asyn = scenario(NetworkKind::HeterogeneousDynamic, 4)
            .run_with(&mut ParameterServer::asynchronous());
        assert!(
            asyn.wall_clock_s < sync.wall_clock_s,
            "async {a} should beat sync {s}",
            a = asyn.wall_clock_s,
            s = sync.wall_clock_s
        );
    }

    #[test]
    fn deterministic() {
        let r1 = scenario(NetworkKind::HeterogeneousDynamic, 5)
            .run_with(&mut ParameterServer::asynchronous());
        let r2 = scenario(NetworkKind::HeterogeneousDynamic, 5)
            .run_with(&mut ParameterServer::asynchronous());
        assert_eq!(r1.final_train_loss, r2.final_train_loss);
    }
}
