//! Allreduce-SGD \[8\]: fully synchronous data-parallel SGD.
//!
//! Every round, all workers compute a mini-batch gradient, ring-allreduce
//! the gradients to their mean, and apply the identical averaged update.
//! Replicas stay bit-identical, so this is exactly large-batch SGD over
//! the union of shards. On a heterogeneous network the round is paced by
//! the slowest straggler *and* the slowest ring link — the weakness the
//! paper's Fig. 5/8 exposes.

use crate::collectives::ring_allreduce_time;
use netmax_core::engine::{Algorithm, DriverEvent, Environment, SessionDriver};
use netmax_json::{FromJson, Json, JsonError, ToJson};

/// Synchronous ring-allreduce SGD.
pub struct AllreduceSgd {
    _private: (),
}

impl AllreduceSgd {
    /// Creates the algorithm.
    pub fn new() -> Self {
        Self { _private: () }
    }
}

impl Default for AllreduceSgd {
    fn default() -> Self {
        Self::new()
    }
}

impl Algorithm for AllreduceSgd {
    fn name(&self) -> &'static str {
        "allreduce"
    }

    fn driver(&mut self) -> Box<dyn SessionDriver + '_> {
        Box::new(AllreduceDriver {
            started: false,
            ring: Vec::new(),
            compute: Vec::new(),
            mean_grad: Vec::new(),
        })
    }
}

/// Round-granular session driver: one advance = one fully synchronous
/// round (compute, ring-allreduce, identical averaged update on every
/// replica). The per-round work buffers persist across advances so a
/// steady-state round allocates nothing; they are transient scratch, not
/// checkpointed state.
///
/// Failure semantics: every round re-derives its membership from the
/// environment — crashed workers are excluded from the ring, the
/// gradient average, and the update (their clocks freeze), while
/// straggler workers pace the whole round (`c_max`), exactly the
/// synchronous weakness the paper's Fig. 5/8 exposes. A rejoining worker
/// is warm-started by the engine from a live replica, so the surviving
/// fleet's replicas stay bit-identical throughout.
struct AllreduceDriver {
    started: bool,
    /// This round's ring membership (the active workers).
    ring: Vec<usize>,
    compute: Vec<f64>,
    mean_grad: Vec<f32>,
}

impl SessionDriver for AllreduceDriver {
    fn name(&self) -> &str {
        "allreduce"
    }

    fn advance(&mut self, env: &mut Environment) -> DriverEvent {
        let n = env.num_nodes();
        self.ring.clear();
        self.ring.extend((0..n).filter(|&i| env.is_active(i)));
        let Some(&lead) = self.ring.first() else {
            // Every worker is down: nothing left to train.
            return DriverEvent::Exhausted;
        };
        if !self.started {
            self.started = true;
            // Real allreduce training broadcasts rank 0's initialisation
            // so the replicas are identical from the first step.
            let init = env.pull_params(lead).expect("broadcast source is active");
            for &i in &self.ring[1..] {
                env.nodes[i].model.params_mut().copy_from_slice(&init);
            }
        }
        let bytes = env.workload.profile.param_bytes();
        let members = self.ring.len();
        // Member clocks advance in lockstep; a freshly rejoined worker may
        // lag the fleet, so the round rendezvous at the latest member.
        let now = self.ring.iter().map(|&i| env.nodes[i].clock).fold(0.0f64, f64::max);

        // Parallel gradient computation; the round waits for the slowest
        // member.
        self.compute.clear();
        self.mean_grad.clear();
        for k in 0..members {
            let c = env.compute_gradient(self.ring[k]);
            self.compute.push(c);
            let g = env.grad(self.ring[k]);
            if self.mean_grad.is_empty() {
                self.mean_grad.extend_from_slice(g);
            } else {
                for (a, b) in self.mean_grad.iter_mut().zip(g) {
                    *a += b;
                }
            }
        }
        let inv = 1.0 / members as f32;
        for a in &mut self.mean_grad {
            *a *= inv;
        }
        let c_max = self.compute.iter().copied().fold(0.0, f64::max);
        let ar = if members >= 2 {
            ring_allreduce_time(env.network.as_ref(), &self.ring, bytes, now + c_max, 1.0)
        } else {
            0.0
        };

        for (slot, &c) in self.compute.iter().enumerate() {
            let i = self.ring[slot];
            env.apply_gradient(i, &self.mean_grad);
            // Rendezvous wait (zero in lockstep) is booked as exposed
            // communication.
            let wait = now - env.nodes[i].clock;
            env.book_iteration(i, c, wait + c_max + ar);
        }
        env.global_step += members as u64;
        DriverEvent::Round { steps: members as u64, time_s: env.nodes[lead].clock }
    }

    fn checkpoint_state(&self) -> Json {
        Json::obj([("started", self.started.to_json())])
    }

    fn restore_state(&mut self, _env: &mut Environment, state: &Json) -> Result<(), JsonError> {
        // Replicas come back from the environment checkpoint; the
        // broadcast must not rerun (mid-run it would be a no-op anyway —
        // allreduce keeps replicas bit-identical — but skipping is the
        // honest restore).
        self.started = bool::from_json(state.field("started")?)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmax_core::engine::{Scenario, TrainConfig};
    use netmax_ml::metrics::consensus_diameter;
    use netmax_ml::workload::WorkloadSpec;
    use netmax_net::NetworkKind;

    fn scenario(kind: NetworkKind, seed: u64) -> Scenario {
        Scenario::builder()
            .workers(4)
            .network(kind)
            .workload(WorkloadSpec::convex_ridge(7))
            .train_config(TrainConfig { seed, max_epochs: 3.0, ..TrainConfig::quick_test() })
            .build()
    }

    #[test]
    fn allreduce_trains_and_reduces_loss() {
        let report = scenario(NetworkKind::Homogeneous, 1).run_with(&mut AllreduceSgd::new());
        let first = report.samples.first().unwrap().train_loss;
        assert!(report.final_train_loss < first);
        assert!(report.epochs_completed >= 3.0);
    }

    #[test]
    fn replicas_stay_identical() {
        let sc = scenario(NetworkKind::Homogeneous, 2);
        let mut env = sc.build_env();
        let _ = AllreduceSgd::new().run(&mut env);
        let models: Vec<_> = env.nodes.iter().map(|x| x.model.clone_box()).collect();
        // Broadcast init + identical averaged updates ⇒ exact consensus
        // throughout.
        assert_eq!(consensus_diameter(&models), 0.0);
    }

    #[test]
    fn clocks_advance_in_lockstep() {
        let sc = scenario(NetworkKind::HeterogeneousDynamic, 3);
        let mut env = sc.build_env();
        let _ = AllreduceSgd::new().run(&mut env);
        let c0 = env.nodes[0].clock;
        for node in &env.nodes {
            assert!((node.clock - c0).abs() < 1e-9, "sync rounds must stay in lockstep");
        }
    }

    #[test]
    fn heterogeneous_network_slows_allreduce() {
        let fast = scenario(NetworkKind::Homogeneous, 4).run_with(&mut AllreduceSgd::new());
        let slow =
            scenario(NetworkKind::HeterogeneousDynamic, 4).run_with(&mut AllreduceSgd::new());
        assert!(
            slow.wall_clock_s > fast.wall_clock_s,
            "slow links must hurt the synchronous collective"
        );
    }
}
