//! Bounded-staleness decentralized training, in the spirit of Hop \[25\]
//! and Gaia \[3\] (§VI "Heterogeneity-aware Distributed Training").
//!
//! Workers gossip asynchronously like AD-PSGD, but a *staleness bound* S
//! caps how far any worker may run ahead of the slowest one (in local
//! iterations). When a worker reaches the bound it blocks until the
//! straggler catches up. The paper's critique, which this implementation
//! makes measurable: "when network links experience a continuous
//! slowdown, the whole system would be dragged down by these low-speed
//! links" — the bound converts one slow link into fleet-wide stalls.

use netmax_core::engine::{
    check_node_index, purge_events, queue_from_json, queue_to_json, Algorithm, DriverEvent,
    Environment, SessionDriver,
};
use netmax_json::{FromJson, Json, JsonError, ToJson};
use netmax_net::EventQueue;

/// AD-PSGD-style gossip with a hard staleness bound.
pub struct BoundedStaleness {
    /// Maximum allowed lead (in local iterations) over the slowest worker.
    bound: u64,
}

impl BoundedStaleness {
    /// Creates the algorithm with staleness bound `S ≥ 1`.
    ///
    /// # Panics
    /// Panics if `bound == 0` (that would be fully synchronous lockstep).
    pub fn new(bound: u64) -> Self {
        assert!(bound >= 1, "staleness bound must be ≥ 1");
        Self { bound }
    }
}

impl Algorithm for BoundedStaleness {
    fn name(&self) -> &'static str {
        "bounded-staleness"
    }

    fn driver(&mut self) -> Box<dyn SessionDriver + '_> {
        Box::new(BsDriver {
            bound: self.bound,
            queue: EventQueue::new(),
            compute: Vec::new(),
            iters: Vec::new(),
            blocked: Vec::new(),
            blocked_scratch: Vec::new(),
            pending_post: None,
            started: false,
        })
    }
}

/// One scheduled completion in the bounded-staleness event queue.
#[derive(Debug, Clone)]
struct Done {
    node: usize,
    peer: usize,
    compute_s: f64,
    iteration_s: f64,
}

impl ToJson for Done {
    fn to_json(&self) -> Json {
        Json::obj([
            ("node", self.node.to_json()),
            ("peer", self.peer.to_json()),
            ("compute_s", self.compute_s.to_json()),
            ("iteration_s", self.iteration_s.to_json()),
        ])
    }
}

impl FromJson for Done {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            node: usize::from_json(v.field("node")?)?,
            peer: usize::from_json(v.field("peer")?)?,
            compute_s: f64::from_json(v.field("compute_s")?)?,
            iteration_s: f64::from_json(v.field("iteration_s")?)?,
        })
    }
}

/// Event-granular session driver: one advance = one completed gossip
/// iteration. The staleness gate and the release of blocked workers for a
/// completed iteration are deferred to the *next* advance (no environment
/// state the recorder reads changes in between), which keeps the RNG
/// draws and stall bookings on the far side of the session's stop check —
/// exactly where the classic blocking loop had them.
struct BsDriver {
    bound: u64,
    queue: EventQueue<Done>,
    /// Nominal per-node compute times (derived from the environment).
    compute: Vec<f64>,
    /// Per-node completed-iteration counts for the staleness check.
    iters: Vec<u64>,
    /// Nodes currently blocked on the bound.
    blocked: Vec<usize>,
    /// Swap buffer for the blocked-worker release pass (transient scratch,
    /// not checkpointed; keeps the release loop allocation-free).
    blocked_scratch: Vec<usize>,
    /// Post-processing owed for the last completed event:
    /// `(node, now, compute_s)`.
    pending_post: Option<(usize, f64, f64)>,
    started: bool,
}

impl BsDriver {
    fn schedule(&mut self, env: &mut Environment, i: usize, c: f64) {
        let start = env.nodes[i].clock;
        // Peer draw over the *active* neighbours (the full list when
        // everyone is up). With no live neighbour the worker runs a
        // communication-free iteration against itself.
        let (peer, comm) = match env.sample_active_neighbor(i) {
            Some(m) => (m, env.comm_time(i, m, start)),
            None => (i, 0.0),
        };
        let iter = env.cfg.execution.iteration_time(c, comm);
        self.queue
            .push(start + iter, Done { node: i, peer, compute_s: c, iteration_s: iter });
    }

    /// Minimum completed-iteration count over the *live* fleet — the
    /// staleness reference. A crashed worker's frozen counter must not
    /// gate the survivors forever (dead-worker events are dropped, so its
    /// counter would never advance).
    fn min_live_iters(&self, env: &Environment) -> u64 {
        self.iters
            .iter()
            .enumerate()
            .filter(|&(j, _)| env.is_active(j))
            .map(|(_, &v)| v)
            .min()
            .unwrap_or(0)
    }

    /// The staleness gate + blocked-worker release for a completed
    /// iteration of `node` at time `now`.
    fn post_process(&mut self, env: &mut Environment, node: usize, now: f64, compute_s: f64) {
        // Staleness gate: may `node` start another iteration?
        let min_iters = self.min_live_iters(env);
        if self.iters[node] >= min_iters + self.bound {
            // Blocked until the stragglers advance; the wait is booked as
            // exposed communication when released.
            self.blocked.push(node);
        } else {
            self.schedule(env, node, compute_s);
        }
        self.release_blocked(env, now);
    }

    /// Releases every blocked worker whose lead is legal again (the gate
    /// reference may have advanced — or a gating straggler may have
    /// crashed). Swapping through the scratch buffer retains both
    /// vectors' capacity, so the release pass never allocates.
    fn release_blocked(&mut self, env: &mut Environment, now: f64) {
        let min_iters = self.min_live_iters(env);
        std::mem::swap(&mut self.blocked, &mut self.blocked_scratch);
        for idx in 0..self.blocked_scratch.len() {
            let b = self.blocked_scratch[idx];
            if !env.is_active(b) {
                // Crashed while blocked: it leaves the schedule entirely.
                continue;
            }
            if self.iters[b] < min_iters + self.bound {
                // The blocked worker resumes at the *current* global time:
                // charge the stall to its clock.
                let stall = (now - env.nodes[b].clock).max(0.0);
                env.book_iteration(b, 0.0, stall);
                let c = self.compute[b];
                self.schedule(env, b, c);
            } else {
                self.blocked.push(b);
            }
        }
        self.blocked_scratch.clear();
    }
}

impl SessionDriver for BsDriver {
    fn name(&self) -> &str {
        "bounded-staleness"
    }

    fn advance(&mut self, env: &mut Environment) -> DriverEvent {
        if !self.started {
            self.started = true;
            self.compute = env.nominal_compute_times();
            self.iters = vec![0; env.num_nodes()];
            for i in 0..env.num_nodes() {
                if !env.is_active(i) {
                    continue;
                }
                let c = self.compute[i];
                self.schedule(env, i, c);
            }
        }
        if let Some((node, now, compute_s)) = self.pending_post.take() {
            self.post_process(env, node, now, compute_s);
        }
        let (now, Done { node, peer, compute_s, iteration_s }) = loop {
            let Some(entry) = self.queue.pop() else {
                return DriverEvent::Exhausted;
            };
            // Safety net only: `on_membership_change` eagerly purges a
            // crashed worker's events, so this should never fire.
            if env.is_active(entry.1.node) {
                break entry;
            }
        };
        let _ = env.gradient_step(node);
        // A self-peer (no live neighbour at scheduling time) or a peer
        // that crashed mid-pull delivers nothing.
        if peer != node {
            let mut pulled = env.take_param_buf();
            if env.pull_params_into(peer, &mut pulled).is_ok() {
                netmax_ml::params::blend(0.5, env.nodes[node].model.params_mut(), &pulled);
            }
            env.recycle_param_buf(pulled);
        }
        env.book_iteration(node, compute_s, iteration_s);
        env.global_step += 1;
        self.iters[node] += 1;
        self.pending_post = Some((node, now, compute_s));
        DriverEvent::Step { node, peer: Some(peer), iteration_s }
    }

    fn on_membership_change(&mut self, env: &mut Environment, node: usize, active: bool) {
        if !self.started {
            return;
        }
        if active {
            // The rejoined worker restarts at the fleet's pace: its
            // counter jumps to the slowest *other* live worker's, so its
            // stale count neither trips its own gate instantly nor drags
            // the whole fleet back to it.
            if let Some(floor) = self
                .iters
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != node && env.is_active(j))
                .map(|(_, &v)| v)
                .min()
            {
                self.iters[node] = floor;
            }
            let c = self.compute[node];
            self.schedule(env, node, c);
        } else {
            if matches!(self.pending_post, Some((n, _, _)) if n == node) {
                self.pending_post = None;
            }
            // Purge the crashed worker's in-flight iteration now — a
            // stale pre-crash event popping after a rejoin would give
            // the worker two concurrent iteration chains.
            self.queue = purge_events(&self.queue, |d: &Done| d.node != node);
            // A crashed straggler no longer gates the fleet: re-evaluate
            // every blocked worker against the live minimum.
            self.release_blocked(env, env.wall_clock());
        }
    }

    fn checkpoint_state(&self) -> Json {
        Json::obj([
            ("started", self.started.to_json()),
            ("queue", queue_to_json(&self.queue)),
            ("iters", self.iters.to_json()),
            ("blocked", self.blocked.to_json()),
            (
                "pending_post",
                match self.pending_post {
                    Some((node, now, compute_s)) => Json::obj([
                        ("node", node.to_json()),
                        ("now", now.to_json()),
                        ("compute_s", compute_s.to_json()),
                    ]),
                    None => Json::Null,
                },
            ),
        ])
    }

    fn restore_state(&mut self, env: &mut Environment, state: &Json) -> Result<(), JsonError> {
        let n = env.num_nodes();
        self.started = bool::from_json(state.field("started")?)?;
        if self.started {
            self.compute = env.nominal_compute_times();
        }
        self.queue = queue_from_json(state.field("queue")?)?;
        for (_, _, done) in self.queue.entries() {
            check_node_index(done.node, n)?;
            check_node_index(done.peer, n)?;
        }
        self.iters = Vec::from_json(state.field("iters")?)?;
        if self.started && self.iters.len() != n {
            return Err(JsonError::schema(format!(
                "checkpoint has {} iteration counters, environment has {n} nodes",
                self.iters.len()
            )));
        }
        self.blocked = Vec::from_json(state.field("blocked")?)?;
        for &b in &self.blocked {
            check_node_index(b, n)?;
        }
        self.pending_post = match state.field("pending_post")? {
            Json::Null => None,
            p => {
                let node = usize::from_json(p.field("node")?)?;
                check_node_index(node, n)?;
                Some((
                    node,
                    f64::from_json(p.field("now")?)?,
                    f64::from_json(p.field("compute_s")?)?,
                ))
            }
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmax_core::engine::{Scenario, TrainConfig};
    use netmax_ml::workload::WorkloadSpec;
    use netmax_net::NetworkKind;

    fn scenario(kind: NetworkKind, seed: u64) -> Scenario {
        Scenario::builder()
            .workers(6)
            .network(kind)
            .workload(WorkloadSpec::convex_ridge(7))
            .train_config(TrainConfig { seed, max_epochs: 3.0, ..TrainConfig::quick_test() })
            .build()
    }

    #[test]
    fn trains_and_reduces_loss() {
        let report = scenario(NetworkKind::Homogeneous, 1).run_with(&mut BoundedStaleness::new(8));
        let first = report.samples.first().unwrap().train_loss;
        assert!(report.final_train_loss < first);
    }

    #[test]
    fn bound_limits_iteration_spread() {
        let sc = scenario(NetworkKind::HeterogeneousDynamic, 2);
        let mut env = sc.build_env();
        let bound = 4;
        let _ = BoundedStaleness::new(bound).run(&mut env);
        let iters: Vec<u64> = env.nodes.iter().map(|x| x.local_steps).collect();
        let spread = iters.iter().max().unwrap() - iters.iter().min().unwrap();
        // The gate is enforced between scheduling decisions; in-flight
        // iterations can exceed it by a small constant.
        assert!(
            spread <= bound + 2,
            "iteration spread {spread} exceeds bound {bound} (+slack): {iters:?}"
        );
    }

    #[test]
    fn tight_bound_is_slower_on_heterogeneous_network() {
        // The §VI critique: a slow link drags the bounded fleet.
        let tight = scenario(NetworkKind::HeterogeneousDynamic, 3)
            .run_with(&mut BoundedStaleness::new(1));
        let loose = scenario(NetworkKind::HeterogeneousDynamic, 3)
            .run_with(&mut BoundedStaleness::new(64));
        assert!(
            loose.wall_clock_s <= tight.wall_clock_s,
            "loose bound {l} should not be slower than tight {t}",
            l = loose.wall_clock_s,
            t = tight.wall_clock_s
        );
    }

    #[test]
    fn deterministic() {
        let run = || {
            scenario(NetworkKind::HeterogeneousDynamic, 5).run_with(&mut BoundedStaleness::new(4))
        };
        let (a, b) = (run(), run());
        assert_eq!(a.final_train_loss, b.final_train_loss);
        assert_eq!(a.wall_clock_s, b.wall_clock_s);
    }
}
