//! Bounded-staleness decentralized training, in the spirit of Hop \[25\]
//! and Gaia \[3\] (§VI "Heterogeneity-aware Distributed Training").
//!
//! Workers gossip asynchronously like AD-PSGD, but a *staleness bound* S
//! caps how far any worker may run ahead of the slowest one (in local
//! iterations). When a worker reaches the bound it blocks until the
//! straggler catches up. The paper's critique, which this implementation
//! makes measurable: "when network links experience a continuous
//! slowdown, the whole system would be dragged down by these low-speed
//! links" — the bound converts one slow link into fleet-wide stalls.

use netmax_core::engine::{Algorithm, Environment, Recorder, RunReport};
use netmax_net::EventQueue;
use rand::Rng;

/// AD-PSGD-style gossip with a hard staleness bound.
pub struct BoundedStaleness {
    /// Maximum allowed lead (in local iterations) over the slowest worker.
    bound: u64,
}

impl BoundedStaleness {
    /// Creates the algorithm with staleness bound `S ≥ 1`.
    ///
    /// # Panics
    /// Panics if `bound == 0` (that would be fully synchronous lockstep).
    pub fn new(bound: u64) -> Self {
        assert!(bound >= 1, "staleness bound must be ≥ 1");
        Self { bound }
    }
}

enum Ev {
    Done { node: usize, peer: usize, compute_s: f64, iteration_s: f64 },
}

impl Algorithm for BoundedStaleness {
    fn name(&self) -> &'static str {
        "bounded-staleness"
    }

    fn run(&mut self, env: &mut Environment) -> RunReport {
        let n = env.num_nodes();
        let mut rec = Recorder::new();
        let mut queue: EventQueue<Ev> = EventQueue::new();
        let compute: Vec<f64> = (0..n)
            .map(|i| {
                let b = env.partition.batch_size(i, env.workload.batch_size);
                env.workload.profile.compute_time(b)
            })
            .collect();
        // Iteration counts for the staleness check.
        let mut iters = vec![0u64; n];
        // Nodes currently blocked on the bound.
        let mut blocked: Vec<usize> = Vec::new();

        let schedule = |env: &mut Environment, queue: &mut EventQueue<Ev>, i: usize, c: f64| {
            let nbrs = env.topology.neighbors(i);
            let k = env.node_rng(i).gen_range(0..nbrs.len());
            let peer = nbrs[k];
            let start = env.nodes[i].clock;
            let comm = env.comm_time(i, peer, start);
            let iter = env.cfg.execution.iteration_time(c, comm);
            queue.push(start + iter, Ev::Done { node: i, peer, compute_s: c, iteration_s: iter });
        };

        for i in 0..n {
            schedule(env, &mut queue, i, compute[i]);
        }

        while let Some((now, Ev::Done { node, peer, compute_s, iteration_s })) = queue.pop() {
            let _ = env.gradient_step(node);
            let pulled = env.pull_params(peer);
            netmax_ml::params::blend(0.5, env.nodes[node].model.params_mut(), &pulled);
            env.book_iteration(node, compute_s, iteration_s);
            env.global_step += 1;
            iters[node] += 1;
            rec.maybe_record(env);
            if env.should_stop() {
                break;
            }

            // Staleness gate: may `node` start another iteration?
            let min_iters = iters.iter().copied().min().unwrap_or(0);
            if iters[node] >= min_iters + self.bound {
                // Blocked until the stragglers advance; the wait is booked
                // as exposed communication when released.
                blocked.push(node);
            } else {
                schedule(env, &mut queue, node, compute_s);
            }

            // Release any blocked workers whose lead is now legal.
            let min_iters = iters.iter().copied().min().unwrap_or(0);
            let mut still_blocked = Vec::new();
            for &b in &blocked {
                if iters[b] < min_iters + self.bound {
                    // The blocked worker resumes at the *current* global
                    // time: charge the stall to its clock.
                    let stall = (now - env.nodes[b].clock).max(0.0);
                    env.book_iteration(b, 0.0, stall);
                    schedule(env, &mut queue, b, compute[b]);
                } else {
                    still_blocked.push(b);
                }
            }
            blocked = still_blocked;
        }
        rec.finish(env, self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmax_core::engine::{Scenario, TrainConfig};
    use netmax_ml::workload::WorkloadSpec;
    use netmax_net::NetworkKind;

    fn scenario(kind: NetworkKind, seed: u64) -> Scenario {
        Scenario::builder()
            .workers(6)
            .network(kind)
            .workload(WorkloadSpec::convex_ridge(7))
            .train_config(TrainConfig { seed, max_epochs: 3.0, ..TrainConfig::quick_test() })
            .build()
    }

    #[test]
    fn trains_and_reduces_loss() {
        let report = scenario(NetworkKind::Homogeneous, 1).run_with(&mut BoundedStaleness::new(8));
        let first = report.samples.first().unwrap().train_loss;
        assert!(report.final_train_loss < first);
    }

    #[test]
    fn bound_limits_iteration_spread() {
        let sc = scenario(NetworkKind::HeterogeneousDynamic, 2);
        let mut env = sc.build_env();
        let bound = 4;
        let _ = BoundedStaleness::new(bound).run(&mut env);
        let iters: Vec<u64> = env.nodes.iter().map(|x| x.local_steps).collect();
        let spread = iters.iter().max().unwrap() - iters.iter().min().unwrap();
        // The gate is enforced between scheduling decisions; in-flight
        // iterations can exceed it by a small constant.
        assert!(
            spread <= bound + 2,
            "iteration spread {spread} exceeds bound {bound} (+slack): {iters:?}"
        );
    }

    #[test]
    fn tight_bound_is_slower_on_heterogeneous_network() {
        // The §VI critique: a slow link drags the bounded fleet.
        let tight = scenario(NetworkKind::HeterogeneousDynamic, 3)
            .run_with(&mut BoundedStaleness::new(1));
        let loose = scenario(NetworkKind::HeterogeneousDynamic, 3)
            .run_with(&mut BoundedStaleness::new(64));
        assert!(
            loose.wall_clock_s <= tight.wall_clock_s,
            "loose bound {l} should not be slower than tight {t}",
            l = loose.wall_clock_s,
            t = tight.wall_clock_s
        );
    }

    #[test]
    fn deterministic() {
        let run = || {
            scenario(NetworkKind::HeterogeneousDynamic, 5).run_with(&mut BoundedStaleness::new(4))
        };
        let (a, b) = (run(), run());
        assert_eq!(a.final_train_loss, b.final_train_loss);
        assert_eq!(a.wall_clock_s, b.wall_clock_s);
    }
}
