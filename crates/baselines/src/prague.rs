//! Prague \[14\]: heterogeneity-aware training via randomized
//! partial-allreduce groups.
//!
//! Every round the workers are randomly partitioned into groups; each
//! group runs a ring partial-allreduce that averages its members' *models*
//! (after each member's local SGD step). Groups proceed independently,
//! which tolerates member slowdown — but the grouping is **link-speed
//! agnostic**, and concurrent group collectives contend for the shared
//! fabric. The paper identifies exactly these two effects as the source of
//! Prague's high communication cost (§V-B): they are modelled here by the
//! slowest-ring-link pacing inside [`ring_allreduce_time`] and by dividing
//! bandwidth across the concurrently active groups.

use crate::collectives::ring_allreduce_time;
use netmax_core::engine::{Algorithm, DriverEvent, Environment, SessionDriver};
use rand::seq::SliceRandom;

/// Randomized partial-allreduce training.
pub struct Prague {
    group_size: usize,
}

impl Prague {
    /// Creates Prague with the given target group size (≥ 2); the last
    /// group of a round absorbs the remainder.
    ///
    /// # Panics
    /// Panics if `group_size < 2`.
    pub fn new(group_size: usize) -> Self {
        assert!(group_size >= 2, "groups need at least 2 members");
        Self { group_size }
    }
}

impl Algorithm for Prague {
    fn name(&self) -> &'static str {
        "prague"
    }

    fn driver(&mut self) -> Box<dyn SessionDriver + '_> {
        Box::new(PragueDriver { group_size: self.group_size })
    }
}

/// Round-granular session driver: one advance = one full round of random
/// grouping plus every group's partial-allreduce. The only mutable state
/// is the environment's (the grouping draws from `env.rng`), so the
/// driver itself checkpoints as stateless.
struct PragueDriver {
    group_size: usize,
}

impl SessionDriver for PragueDriver {
    fn name(&self) -> &str {
        "prague"
    }

    fn advance(&mut self, env: &mut Environment) -> DriverEvent {
        let n = env.num_nodes();
        let bytes = env.workload.profile.param_bytes();

        // Random group assignment for this round.
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut env.rng);
        let groups: Vec<Vec<usize>> = partition_groups(&order, self.group_size);
        let n_groups = groups.len().max(1);
        // Concurrent partial-allreduces contend for the shared fabric.
        // Contention is partial — groups overlap in time but not
        // fully, and only cross-server hops share physical links — so
        // each extra concurrent group costs 25% extra transfer time.
        let share = 1.0 / (1.0 + 0.25 * (n_groups as f64 - 1.0));

        for group in &groups {
            // Group rendezvous: members wait for the latest member.
            let start = group
                .iter()
                .map(|&i| env.nodes[i].clock)
                .fold(0.0f64, f64::max);

            // Local SGD step on every member (models, not gradients).
            let mut compute = Vec::with_capacity(group.len());
            for &i in group {
                compute.push(env.gradient_step(i));
            }
            let c_max = compute.iter().copied().fold(0.0, f64::max);

            let comm = if group.len() >= 2 {
                ring_allreduce_time(env.network.as_ref(), group, bytes, start + c_max, share)
            } else {
                0.0
            };

            // Partial-allreduce: group-average the member models.
            if group.len() >= 2 {
                let dim = env.nodes[group[0]].model.num_params();
                let mut mean = vec![0.0f32; dim];
                let inv = 1.0 / group.len() as f32;
                for &i in group {
                    for (a, p) in mean.iter_mut().zip(env.nodes[i].model.params()) {
                        *a += p * inv;
                    }
                }
                for &i in group {
                    env.nodes[i].model.params_mut().copy_from_slice(&mean);
                }
            }

            for (slot, &i) in group.iter().enumerate() {
                // Rendezvous wait is booked as exposed communication.
                let wait = start - env.nodes[i].clock;
                env.book_iteration(i, compute[slot], wait + c_max + comm);
            }
            env.global_step += group.len() as u64;
        }
        DriverEvent::Round { steps: n as u64, time_s: env.wall_clock() }
    }
}

/// Splits a shuffled order into groups of `size`, folding a trailing
/// single node into the previous group.
fn partition_groups(order: &[usize], size: usize) -> Vec<Vec<usize>> {
    let mut groups: Vec<Vec<usize>> = order.chunks(size).map(<[usize]>::to_vec).collect();
    if groups.len() >= 2 && groups.last().is_some_and(|g| g.len() == 1) {
        let last = groups.pop().expect("checked non-empty");
        groups
            .last_mut()
            .expect("checked len >= 2")
            .extend(last);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmax_core::engine::{Scenario, TrainConfig};
    use netmax_ml::workload::WorkloadSpec;
    use netmax_net::NetworkKind;

    fn scenario(kind: NetworkKind, seed: u64) -> Scenario {
        Scenario::builder()
            .workers(8)
            .network(kind)
            .workload(WorkloadSpec::convex_ridge(7))
            .train_config(TrainConfig { seed, max_epochs: 2.0, ..TrainConfig::quick_test() })
            .build()
    }

    #[test]
    fn partitioning_covers_everyone_without_singletons() {
        let order: Vec<usize> = (0..9).collect();
        let groups = partition_groups(&order, 4);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 9);
        assert!(groups.iter().all(|g| g.len() >= 2));

        let groups = partition_groups(&(0..8).collect::<Vec<_>>(), 4);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn prague_trains_and_reduces_loss() {
        let report = scenario(NetworkKind::Homogeneous, 1).run_with(&mut Prague::new(4));
        let first = report.samples.first().unwrap().train_loss;
        assert!(report.final_train_loss < first);
        assert!(report.epochs_completed >= 2.0);
    }

    #[test]
    fn group_members_agree_after_partial_allreduce() {
        let sc = scenario(NetworkKind::Homogeneous, 2);
        let mut env = sc.build_env();
        let _ = Prague::new(8).run(&mut env); // one group = everyone
        let d = netmax_ml::metrics::consensus_diameter(
            &env.nodes.iter().map(|x| x.model.clone_box()).collect::<Vec<_>>(),
        );
        assert_eq!(d, 0.0, "a full group partial-allreduce is exact consensus");
    }

    #[test]
    fn deterministic() {
        let r1 = scenario(NetworkKind::HeterogeneousDynamic, 5).run_with(&mut Prague::new(4));
        let r2 = scenario(NetworkKind::HeterogeneousDynamic, 5).run_with(&mut Prague::new(4));
        assert_eq!(r1.final_train_loss, r2.final_train_loss);
        assert_eq!(r1.wall_clock_s, r2.wall_clock_s);
    }
}
