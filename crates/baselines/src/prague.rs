//! Prague \[14\]: heterogeneity-aware training via randomized
//! partial-allreduce groups.
//!
//! Every round the workers are randomly partitioned into groups; each
//! group runs a ring partial-allreduce that averages its members' *models*
//! (after each member's local SGD step). Groups proceed independently,
//! which tolerates member slowdown — but the grouping is **link-speed
//! agnostic**, and concurrent group collectives contend for the shared
//! fabric. The paper identifies exactly these two effects as the source of
//! Prague's high communication cost (§V-B): they are modelled here by the
//! slowest-ring-link pacing inside [`ring_allreduce_time`] and by dividing
//! bandwidth across the concurrently active groups.

use crate::collectives::ring_allreduce_time;
use netmax_core::engine::{Algorithm, DriverEvent, Environment, SessionDriver};
use rand::seq::SliceRandom;

/// Randomized partial-allreduce training.
pub struct Prague {
    group_size: usize,
}

impl Prague {
    /// Creates Prague with the given target group size (≥ 2); the last
    /// group of a round absorbs the remainder.
    ///
    /// # Panics
    /// Panics if `group_size < 2`.
    pub fn new(group_size: usize) -> Self {
        assert!(group_size >= 2, "groups need at least 2 members");
        Self { group_size }
    }
}

impl Algorithm for Prague {
    fn name(&self) -> &'static str {
        "prague"
    }

    fn driver(&mut self) -> Box<dyn SessionDriver + '_> {
        Box::new(PragueDriver {
            group_size: self.group_size,
            order: Vec::new(),
            bounds: Vec::new(),
            compute: Vec::new(),
        })
    }
}

/// Round-granular session driver: one advance = one full round of random
/// grouping plus every group's partial-allreduce. The only *checkpointed*
/// mutable state is the environment's (the grouping draws from
/// `env.rng`); the work buffers below are per-round scratch that persists
/// across advances so steady-state rounds allocate nothing.
struct PragueDriver {
    group_size: usize,
    /// This round's shuffled node order (groups are contiguous ranges).
    order: Vec<usize>,
    /// `(start, end)` group boundaries into `order`.
    bounds: Vec<(usize, usize)>,
    /// Per-member compute times of the current group.
    compute: Vec<f64>,
}

impl SessionDriver for PragueDriver {
    fn name(&self) -> &str {
        "prague"
    }

    fn advance(&mut self, env: &mut Environment) -> DriverEvent {
        let n = env.num_nodes();
        let bytes = env.workload.profile.param_bytes();

        // Random group assignment for this round, over the *live* fleet:
        // Prague re-forms its groups from whoever is up (crashed workers
        // simply stop being drawn; a lone survivor trains in a singleton
        // "group" without a collective).
        self.order.clear();
        self.order.extend((0..n).filter(|&i| env.is_active(i)));
        let live = self.order.len();
        if live == 0 {
            return DriverEvent::Exhausted;
        }
        self.order.shuffle(&mut env.rng);
        partition_groups(live, self.group_size, &mut self.bounds);
        let n_groups = self.bounds.len().max(1);
        // Concurrent partial-allreduces contend for the shared fabric.
        // Contention is partial — groups overlap in time but not
        // fully, and only cross-server hops share physical links — so
        // each extra concurrent group costs 25% extra transfer time.
        let share = 1.0 / (1.0 + 0.25 * (n_groups as f64 - 1.0));

        for b in 0..self.bounds.len() {
            let (gs, ge) = self.bounds[b];
            // Group rendezvous: members wait for the latest member.
            let start = self.order[gs..ge]
                .iter()
                .map(|&i| env.nodes[i].clock)
                .fold(0.0f64, f64::max);

            // Local SGD step on every member (models, not gradients).
            self.compute.clear();
            for k in gs..ge {
                let i = self.order[k];
                self.compute.push(env.gradient_step(i));
            }
            let group = &self.order[gs..ge];
            let c_max = self.compute.iter().copied().fold(0.0, f64::max);

            let comm = if group.len() >= 2 {
                ring_allreduce_time(env.network.as_ref(), group, bytes, start + c_max, share)
            } else {
                0.0
            };

            // Partial-allreduce: group-average the member models (into a
            // pooled parameter buffer).
            if group.len() >= 2 {
                let dim = env.nodes[group[0]].model.num_params();
                let mut mean = env.take_param_buf();
                mean.clear();
                mean.resize(dim, 0.0);
                let inv = 1.0 / group.len() as f32;
                for &i in group {
                    for (a, p) in mean.iter_mut().zip(env.nodes[i].model.params()) {
                        *a += p * inv;
                    }
                }
                for &i in group {
                    env.nodes[i].model.params_mut().copy_from_slice(&mean);
                }
                env.recycle_param_buf(mean);
            }

            for (slot, &i) in group.iter().enumerate() {
                // Rendezvous wait is booked as exposed communication.
                let wait = start - env.nodes[i].clock;
                env.book_iteration(i, self.compute[slot], wait + c_max + comm);
            }
            env.global_step += group.len() as u64;
        }
        DriverEvent::Round { steps: live as u64, time_s: env.wall_clock() }
    }
}

/// Splits a shuffled order of `n` nodes into contiguous groups of `size`,
/// folding a trailing single node into the previous group; boundaries are
/// written into `bounds`.
fn partition_groups(n: usize, size: usize, bounds: &mut Vec<(usize, usize)>) {
    bounds.clear();
    let mut start = 0;
    while start < n {
        let end = (start + size).min(n);
        bounds.push((start, end));
        start = end;
    }
    if bounds.len() >= 2 && bounds.last().is_some_and(|&(s, e)| e - s == 1) {
        let (_, end) = bounds.pop().expect("checked non-empty");
        bounds.last_mut().expect("checked len >= 2").1 = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmax_core::engine::{Scenario, TrainConfig};
    use netmax_ml::workload::WorkloadSpec;
    use netmax_net::NetworkKind;

    fn scenario(kind: NetworkKind, seed: u64) -> Scenario {
        Scenario::builder()
            .workers(8)
            .network(kind)
            .workload(WorkloadSpec::convex_ridge(7))
            .train_config(TrainConfig { seed, max_epochs: 2.0, ..TrainConfig::quick_test() })
            .build()
    }

    #[test]
    fn partitioning_covers_everyone_without_singletons() {
        let mut bounds = Vec::new();
        partition_groups(9, 4, &mut bounds);
        let total: usize = bounds.iter().map(|&(s, e)| e - s).sum();
        assert_eq!(total, 9);
        assert!(bounds.iter().all(|&(s, e)| e - s >= 2));
        // Contiguous cover of 0..9.
        assert_eq!(bounds.first().map(|&(s, _)| s), Some(0));
        assert!(bounds.windows(2).all(|w| w[0].1 == w[1].0));

        partition_groups(8, 4, &mut bounds);
        assert_eq!(bounds.len(), 2);
    }

    #[test]
    fn prague_trains_and_reduces_loss() {
        let report = scenario(NetworkKind::Homogeneous, 1).run_with(&mut Prague::new(4));
        let first = report.samples.first().unwrap().train_loss;
        assert!(report.final_train_loss < first);
        assert!(report.epochs_completed >= 2.0);
    }

    #[test]
    fn group_members_agree_after_partial_allreduce() {
        let sc = scenario(NetworkKind::Homogeneous, 2);
        let mut env = sc.build_env();
        let _ = Prague::new(8).run(&mut env); // one group = everyone
        let d = netmax_ml::metrics::consensus_diameter(
            &env.nodes.iter().map(|x| x.model.clone_box()).collect::<Vec<_>>(),
        );
        assert_eq!(d, 0.0, "a full group partial-allreduce is exact consensus");
    }

    #[test]
    fn deterministic() {
        let r1 = scenario(NetworkKind::HeterogeneousDynamic, 5).run_with(&mut Prague::new(4));
        let r2 = scenario(NetworkKind::HeterogeneousDynamic, 5).run_with(&mut Prague::new(4));
        assert_eq!(r1.final_train_loss, r2.final_train_loss);
        assert_eq!(r1.wall_clock_s, r2.wall_clock_s);
    }
}
