// A global allocator shim is inherently `unsafe`; this is the one test
// harness in this crate that needs it.
#![allow(unsafe_code)]

//! Steady-state allocation-freedom of every baseline driver.
//!
//! Counterpart of `netmax-core`'s `no_alloc` harness: each algorithm's
//! session is warmed up (scratch buffers, pull-buffer pool, event-queue
//! capacity, driver work buffers), then a window of pure step/round
//! events must allocate nothing. Monitor-bearing variants are exercised
//! in uniform (monitor-off) mode — monitor rounds allocate by design,
//! bounded per round, not per step.

use netmax_baselines::{
    AdPsgd, AllreduceSgd, BoundedStaleness, GoSgd, ParameterServer, Prague, SapsPsgd,
};
use netmax_core::engine::{Algorithm, Scenario, Session, StepEvent, StopCondition, TrainConfig};
use netmax_core::{NetMax, NetMaxConfig};
use netmax_ml::workload::WorkloadSpec;
use netmax_net::NetworkKind;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn alloc_count() -> u64 {
    ALLOCS.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn scenario() -> Scenario {
    Scenario::builder()
        .workers(4)
        .network(NetworkKind::Homogeneous)
        .workload(WorkloadSpec::convex_ridge(7))
        .train_config(TrainConfig {
            record_every_steps: u64::MAX / 2,
            stop: Some(StopCondition::MaxGlobalSteps(100_000)),
            ..TrainConfig::quick_test()
        })
        .build()
}

/// Warm `warm` counted events, then require `measure` further events to
/// allocate nothing. Steps and rounds both count as one event.
fn assert_driver_alloc_free(algo: &mut dyn Algorithm, warm: usize, measure: usize) {
    let name = algo.name();
    let sc = scenario();
    let mut env = sc.build_env();
    let mut session = Session::new(&mut env, algo.driver()).unwrap();
    let mut events = 0;
    while events < warm {
        match session.step() {
            StepEvent::GlobalStep { .. } | StepEvent::RoundComplete { .. } => events += 1,
            // The recorder always samples once at global step 1; the
            // cadence is pushed past the window after that.
            StepEvent::Sampled { .. } => {}
            other => panic!("{name}: unexpected warm-up event {other:?}"),
        }
    }
    let before = alloc_count();
    let mut measured = 0;
    while measured < measure {
        match session.step() {
            StepEvent::GlobalStep { .. } | StepEvent::RoundComplete { .. } => measured += 1,
            other => panic!("{name}: unexpected steady-state event {other:?}"),
        }
    }
    let allocs = alloc_count() - before;
    assert_eq!(allocs, 0, "{name}: {allocs} allocation(s) in {measure} steady-state events");
}

#[test]
fn ad_psgd_steady_state_is_allocation_free() {
    assert_driver_alloc_free(&mut AdPsgd::new(), 100, 400);
}

#[test]
fn gosgd_steady_state_is_allocation_free() {
    assert_driver_alloc_free(&mut GoSgd::new(0.5), 100, 400);
}

#[test]
fn saps_steady_state_is_allocation_free() {
    assert_driver_alloc_free(&mut SapsPsgd::paper_default(), 100, 400);
}

#[test]
fn netmax_uniform_steady_state_is_allocation_free() {
    assert_driver_alloc_free(&mut NetMax::new(NetMaxConfig::uniform(0.05)), 100, 400);
}

#[test]
fn bounded_staleness_steady_state_is_allocation_free() {
    assert_driver_alloc_free(&mut BoundedStaleness::new(4), 100, 400);
}

#[test]
fn allreduce_steady_state_is_allocation_free() {
    assert_driver_alloc_free(&mut AllreduceSgd::new(), 20, 100);
}

#[test]
fn ps_sync_steady_state_is_allocation_free() {
    assert_driver_alloc_free(&mut ParameterServer::synchronous(), 20, 100);
}

#[test]
fn ps_async_steady_state_is_allocation_free() {
    assert_driver_alloc_free(&mut ParameterServer::asynchronous(), 100, 400);
}

#[test]
fn prague_steady_state_is_allocation_free() {
    assert_driver_alloc_free(&mut Prague::new(2), 20, 100);
}
