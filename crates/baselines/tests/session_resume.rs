//! The determinism guarantee of the step-wise session API, asserted for
//! every algorithm variant the paper evaluates: *checkpoint at step `k`,
//! restore into a fresh session, run to completion* must produce a
//! [`RunReport`] byte-identical (as serialized JSON) to an uninterrupted
//! run.

use netmax_baselines::algorithm_for;
use netmax_core::engine::{
    AlgorithmKind, CheckpointFormat, CheckpointScratch, Scenario, Session, StepEvent,
    StopCondition, TrainConfig,
};
use netmax_json::{Json, ToJson};
use netmax_ml::workload::WorkloadSpec;
use netmax_net::NetworkKind;

const ALPHA: f64 = 0.05;

fn scenario(kind: AlgorithmKind) -> Scenario {
    // Heterogeneous dynamic network: the hardest regime (time-varying
    // links, monitor activity). Short monitor runs matter for the
    // monitor-bearing variants, so keep 3 epochs.
    Scenario::builder()
        .workers(4)
        .network(NetworkKind::HeterogeneousDynamic)
        .workload(WorkloadSpec::convex_ridge(7))
        .train_config(TrainConfig {
            seed: 23 + kind as u64,
            max_epochs: 2.0,
            ..TrainConfig::quick_test()
        })
        .build()
}

/// Runs `kind` uninterrupted, then re-runs with a checkpoint/restore split
/// after `k` global steps, and compares the serialized reports.
fn assert_resume_identical(kind: AlgorithmKind, k: u64) {
    let sc = scenario(kind);

    let mut algo = algorithm_for(kind, ALPHA);
    let mut env = sc.build_env();
    let full = algo.run(&mut env);

    // Interrupted run: step to >= k global steps, checkpoint, drop.
    let mut algo1 = algorithm_for(kind, ALPHA);
    let mut env1 = sc.build_env();
    let checkpoint = {
        let mut session = Session::new(&mut env1, algo1.driver()).expect("valid session");
        while session.env().global_step < k {
            if let StepEvent::Finished { .. } = session.step() {
                break;
            }
        }
        session.checkpoint()
    };
    // Serialize through text: what the CLI writes to disk is what must
    // restore.
    let text = checkpoint.pretty();

    let mut algo2 = algorithm_for(kind, ALPHA);
    let mut env2 = sc.build_env();
    let mut resumed =
        Session::restore(&mut env2, algo2.driver(), &Json::parse(&text).unwrap())
            .expect("checkpoint restores");
    let report = resumed.run();

    assert_eq!(
        report.to_json().to_string(),
        full.to_json().to_string(),
        "{kind:?}: resume after {k} steps must match the uninterrupted run"
    );
}

#[test]
fn every_variant_resumes_byte_identically() {
    for kind in AlgorithmKind::all() {
        assert_resume_identical(kind, 60);
    }
}

/// The same determinism guarantee through the binary
/// (`session-checkpoint/v3`) on-disk path: suspend at step `k` into
/// binary bytes, restore via the magic-sniffing entry point, and the
/// finished report is byte-identical to the uninterrupted run. Covers
/// every algorithm variant, i.e. all four driver families (gossip,
/// round-structured, parameter-server, monitor-bearing).
fn assert_binary_resume_identical(kind: AlgorithmKind, k: u64) {
    let sc = scenario(kind);

    let mut algo = algorithm_for(kind, ALPHA);
    let mut env = sc.build_env();
    let full = algo.run(&mut env);

    let mut algo1 = algorithm_for(kind, ALPHA);
    let mut env1 = sc.build_env();
    let bytes = {
        let mut session = Session::new(&mut env1, algo1.driver()).expect("valid session");
        while session.env().global_step < k {
            if let StepEvent::Finished { .. } = session.step() {
                break;
            }
        }
        // What the CLI writes with `--format binary` is what must restore.
        let mut scratch = CheckpointScratch::new();
        session.checkpoint_bytes(CheckpointFormat::Binary, &mut scratch).expect("binary encode")
    };

    let mut algo2 = algorithm_for(kind, ALPHA);
    let mut env2 = sc.build_env();
    let mut resumed = Session::restore_bytes(&mut env2, algo2.driver(), &bytes)
        .expect("binary checkpoint restores");
    let report = resumed.run();

    assert_eq!(
        report.to_json().to_string(),
        full.to_json().to_string(),
        "{kind:?}: binary resume after {k} steps must match the uninterrupted run"
    );
}

#[test]
fn every_variant_resumes_byte_identically_through_binary_checkpoints() {
    for kind in AlgorithmKind::all() {
        assert_binary_resume_identical(kind, 60);
    }
}

#[test]
fn resume_immediately_after_start_matches() {
    // k = 1 exercises the checkpoint with warm-up state barely populated.
    for kind in [AlgorithmKind::NetMax, AlgorithmKind::Prague, AlgorithmKind::PsAsync] {
        assert_resume_identical(kind, 1);
    }
}

#[test]
fn resume_of_finished_session_is_the_final_report() {
    let sc = scenario(AlgorithmKind::AdPsgd);
    let mut algo = algorithm_for(AlgorithmKind::AdPsgd, ALPHA);
    let mut env = sc.build_env();
    let (full, text) = {
        let mut session = Session::new(&mut env, algo.driver()).unwrap();
        let report = session.run();
        (report, session.checkpoint().pretty())
    };
    let mut algo2 = algorithm_for(AlgorithmKind::AdPsgd, ALPHA);
    let mut env2 = sc.build_env();
    let mut resumed =
        Session::restore(&mut env2, algo2.driver(), &Json::parse(&text).unwrap()).unwrap();
    assert!(resumed.is_finished());
    let report = resumed.run();
    assert_eq!(report.to_json().to_string(), full.to_json().to_string());
}

#[test]
fn restore_rejects_algorithm_mismatch() {
    let sc = scenario(AlgorithmKind::AdPsgd);
    let mut algo = algorithm_for(AlgorithmKind::AdPsgd, ALPHA);
    let mut env = sc.build_env();
    let ckpt = {
        let mut session = Session::new(&mut env, algo.driver()).unwrap();
        for _ in 0..10 {
            session.step();
        }
        session.checkpoint()
    };
    let mut other = algorithm_for(AlgorithmKind::GoSgd, ALPHA);
    let mut env2 = sc.build_env();
    let err = match Session::restore(&mut env2, other.driver(), &ckpt) {
        Err(e) => e,
        Ok(_) => panic!("algorithm mismatch must be rejected"),
    };
    assert!(err.to_string().contains("ad-psgd"), "{err}");
}

#[test]
fn loss_target_stop_condition_ends_the_run_early() {
    let mut sc = scenario(AlgorithmKind::AdPsgd);
    // Stop once the recorded training loss dips under the initial loss —
    // guaranteed mid-run for this convex workload.
    let mut algo = algorithm_for(AlgorithmKind::AdPsgd, ALPHA);
    let mut env = sc.build_env();
    let unbounded = algo.run(&mut env);
    let first = unbounded.samples.first().unwrap().train_loss;
    let target = (first + unbounded.final_train_loss) / 2.0;

    sc.cfg_mut().stop = Some(StopCondition::LossBelow(target));
    let mut algo = algorithm_for(AlgorithmKind::AdPsgd, ALPHA);
    let mut env = sc.build_env();
    let report = algo.run(&mut env);
    assert!(report.global_steps < unbounded.global_steps, "loss stop must cut the run short");
    assert!(
        report.samples.iter().any(|s| s.train_loss <= target),
        "stopping sample must have crossed the target"
    );
}
