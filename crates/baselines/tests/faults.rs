//! Failure semantics of every baseline driver under the declarative
//! fault plan: synchronous rounds stall on stragglers and exclude
//! crashed workers, asynchronous drivers drop dead-worker events, Prague
//! re-forms its groups, and checkpoint/resume stays byte-identical
//! through a crash for every driver family.

use netmax_baselines::{
    AdPsgd, AllreduceSgd, BoundedStaleness, ParameterServer, Prague, SapsPsgd,
};
use netmax_core::engine::{Algorithm, Scenario, Session, StepEvent, TrainConfig};
use netmax_json::{Json, ToJson};
use netmax_ml::workload::WorkloadSpec;
use netmax_net::{FaultPlan, NetworkKind, NodeFault, Straggler};

fn crash_plan(node: usize, crash_s: f64, rejoin_s: Option<f64>) -> FaultPlan {
    FaultPlan {
        node_faults: vec![NodeFault { node, crash_s, rejoin_s }],
        ..FaultPlan::none()
    }
}

fn scenario(seed: u64, workers: usize, faults: FaultPlan) -> Scenario {
    Scenario::builder()
        .workers(workers)
        .network(NetworkKind::Homogeneous)
        .workload(WorkloadSpec::convex_ridge(7))
        .train_config(TrainConfig { seed, max_epochs: 3.0, ..TrainConfig::quick_test() })
        .faults(faults)
        .build()
}

/// Runs to completion and asserts the truthfulness basics every fault
/// run must satisfy: progress happened, the epoch target was reached by
/// the live fleet, and the dead node's accounting is frozen.
fn run_and_check_crash(algo: &mut dyn Algorithm, sc: &Scenario, dead: usize) {
    let mut env = sc.build_env();
    let report = algo.run(&mut env);
    assert!(report.global_steps > 0, "{}: no progress", report.algorithm);
    assert!(
        report.epochs_completed >= sc.cfg().max_epochs,
        "{}: live fleet stopped at {} epochs",
        report.algorithm,
        report.epochs_completed
    );
    let live_min = report
        .per_node
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != dead)
        .map(|(_, n)| n.clock_s)
        .fold(f64::INFINITY, f64::min);
    assert!(
        report.per_node[dead].clock_s < live_min,
        "{}: dead node clock {} does not trail live fleet {}",
        report.algorithm,
        report.per_node[dead].clock_s,
        live_min
    );
    // The dead node computed nothing after the crash: its local steps
    // are far below the live fleet's.
    let live_steps = env
        .nodes
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != dead)
        .map(|(_, n)| n.local_steps)
        .min()
        .unwrap();
    assert!(
        env.nodes[dead].local_steps < live_steps,
        "{}: dead node kept iterating",
        report.algorithm
    );
}

#[test]
fn allreduce_excludes_the_crashed_worker_and_survivors_stay_identical() {
    let sc = scenario(1, 4, crash_plan(2, 0.4, None));
    run_and_check_crash(&mut AllreduceSgd::new(), &sc, 2);

    let mut env = sc.build_env();
    let _ = AllreduceSgd::new().run(&mut env);
    // The surviving replicas remain bit-identical (identical averaged
    // updates every round); the dead replica is frozen and different.
    assert_eq!(env.nodes[0].model.params(), env.nodes[1].model.params());
    assert_eq!(env.nodes[0].model.params(), env.nodes[3].model.params());
    assert_ne!(env.nodes[0].model.params(), env.nodes[2].model.params());
}

#[test]
fn allreduce_rejoin_restores_exact_replica_identity() {
    // The warm start clones the donor's *full* optimiser state (params
    // and momentum): after the rejoin, identical mean gradients through
    // identical velocity keep every live replica bit-identical — the
    // synchronous-SGD invariant survives churn.
    let sc = scenario(10, 4, crash_plan(2, 0.4, Some(1.0)));
    let mut env = sc.build_env();
    let _ = AllreduceSgd::new().run(&mut env);
    for i in 1..4 {
        assert_eq!(
            env.nodes[0].model.params(),
            env.nodes[i].model.params(),
            "replica {i} drifted after the rejoin"
        );
    }
}

#[test]
fn fleet_wide_outage_with_scheduled_rejoins_resumes_training() {
    // Every worker goes down in an overlapping window, then rejoins: the
    // run must idle through the gap and resume at the rejoin times, not
    // silently finish the moment the drivers drain.
    let faults = FaultPlan {
        node_faults: (0..4)
            .map(|node| NodeFault {
                node,
                crash_s: 0.4 + 0.05 * node as f64,
                rejoin_s: Some(2.0 + 0.1 * node as f64),
            })
            .collect(),
        ..FaultPlan::none()
    };
    let sc = scenario(11, 4, faults);
    let mut env = sc.build_env();
    let mut algo = AdPsgd::new();
    let mut session = Session::new(&mut env, algo.driver()).unwrap();
    let mut ups = 0;
    let report = loop {
        match session.step() {
            StepEvent::NodeUp { .. } => ups += 1,
            StepEvent::Finished { report } => break report,
            _ => {}
        }
    };
    assert_eq!(ups, 4, "every scheduled rejoin must apply");
    assert!(
        report.epochs_completed >= sc.cfg().max_epochs,
        "training must resume after the outage, got {} epochs",
        report.epochs_completed
    );
    assert!(report.wall_clock_s > 2.0, "the clock must advance past the outage gap");
}

#[test]
fn allreduce_round_is_paced_by_the_straggler() {
    let plain = scenario(2, 4, FaultPlan::none());
    let strag = scenario(
        2,
        4,
        FaultPlan { stragglers: vec![Straggler { node: 1, factor: 8.0 }], ..FaultPlan::none() },
    );
    let fast = plain.run_with(&mut AllreduceSgd::new());
    let slow = strag.run_with(&mut AllreduceSgd::new());
    assert!(
        slow.wall_clock_s > 2.0 * fast.wall_clock_s,
        "an 8x straggler must dominate every synchronous round: {} vs {}",
        slow.wall_clock_s,
        fast.wall_clock_s
    );
}

#[test]
fn ps_sync_excludes_the_crashed_worker() {
    let sc = scenario(3, 4, crash_plan(1, 0.4, None));
    run_and_check_crash(&mut ParameterServer::synchronous(), &sc, 1);
}

#[test]
fn ps_async_drops_dead_worker_events() {
    let sc = scenario(4, 4, crash_plan(3, 0.4, None));
    run_and_check_crash(&mut ParameterServer::asynchronous(), &sc, 3);
}

#[test]
fn ps_async_rejoin_pulls_the_global_model() {
    let sc = scenario(5, 4, crash_plan(2, 0.4, Some(1.0)));
    let mut env = sc.build_env();
    let mut algo = ParameterServer::asynchronous();
    let mut session = Session::new(&mut env, algo.driver()).unwrap();
    let mut rejoined = false;
    loop {
        match session.step() {
            StepEvent::NodeUp { node, .. } => {
                assert_eq!(node, 2);
                rejoined = true;
            }
            StepEvent::GlobalStep { node, .. } if rejoined && node == 2 => {
                // The rejoined worker is back in the schedule.
                break;
            }
            StepEvent::Finished { .. } => panic!("run ended before node 2 re-entered"),
            _ => {}
        }
    }
}

#[test]
fn prague_reforms_groups_around_the_crash() {
    let sc = scenario(6, 8, crash_plan(5, 0.4, None));
    run_and_check_crash(&mut Prague::new(4), &sc, 5);
}

#[test]
fn bounded_staleness_is_released_when_the_gating_straggler_crashes() {
    // A 16x straggler under a tight bound gates the fleet; when it
    // crashes the survivors must be released and still reach the epoch
    // target (the frozen counter must not gate them forever).
    let faults = FaultPlan {
        stragglers: vec![Straggler { node: 0, factor: 16.0 }],
        node_faults: vec![NodeFault { node: 0, crash_s: 1.0, rejoin_s: None }],
        ..FaultPlan::none()
    };
    let sc = scenario(7, 4, faults);
    run_and_check_crash(&mut BoundedStaleness::new(2), &sc, 0);
}

#[test]
fn gossip_family_tolerates_crash_and_rejoin() {
    for (name, algo) in [
        ("ad-psgd", &mut AdPsgd::new() as &mut dyn Algorithm),
        ("gosgd", &mut netmax_baselines::GoSgd::new(0.5)),
        ("saps-psgd", &mut SapsPsgd::new(2, 1.0)),
    ] {
        let sc = scenario(8, 4, crash_plan(1, 0.4, Some(1.2)));
        let mut env = sc.build_env();
        let report = algo.run(&mut env);
        assert!(
            report.epochs_completed >= sc.cfg().max_epochs,
            "{name}: stopped at {} epochs",
            report.epochs_completed
        );
        // The rejoined node resumed iterating after the rejoin.
        assert!(
            env.nodes[1].local_steps > 0 && env.nodes[1].clock > 1.2,
            "{name}: node 1 never resumed (steps {}, clock {})",
            env.nodes[1].local_steps,
            env.nodes[1].clock
        );
    }
}

#[test]
fn faulted_checkpoint_resume_is_byte_identical_for_every_driver_family() {
    // One round driver (allreduce), one event driver (ps-async), one
    // gossip driver (ad-psgd), one gated driver (bounded-staleness):
    // suspend after the crash, resume, and require the byte-identical
    // report.
    type MakeAlgo = fn() -> Box<dyn Algorithm>;
    let cases: Vec<(&str, MakeAlgo)> = vec![
        ("allreduce", || Box::new(AllreduceSgd::new())),
        ("ps-asyn", || Box::new(ParameterServer::asynchronous())),
        ("ad-psgd", || Box::new(AdPsgd::new())),
        ("bounded-staleness", || Box::new(BoundedStaleness::new(4))),
    ];
    for (name, make) in cases {
        let sc = scenario(9, 4, crash_plan(2, 0.4, Some(1.2)));
        let full = {
            let mut env = sc.build_env();
            let mut algo = make();
            let mut session = Session::new(&mut env, algo.driver()).unwrap();
            session.run()
        };
        let text = {
            let mut env = sc.build_env();
            let mut algo = make();
            let mut session = Session::new(&mut env, algo.driver()).unwrap();
            let mut saw_down = false;
            loop {
                match session.step() {
                    StepEvent::NodeDown { .. } => saw_down = true,
                    StepEvent::GlobalStep { .. } | StepEvent::RoundComplete { .. }
                        if saw_down =>
                    {
                        break;
                    }
                    StepEvent::Finished { .. } => panic!("{name}: finished before crash"),
                    _ => {}
                }
            }
            session.checkpoint().pretty()
        };
        let resumed = {
            let mut env = sc.build_env();
            let mut algo = make();
            let mut session =
                Session::restore(&mut env, algo.driver(), &Json::parse(&text).unwrap())
                    .unwrap_or_else(|e| panic!("{name}: restore failed: {e}"));
            session.run()
        };
        assert_eq!(
            full.to_json().to_string(),
            resumed.to_json().to_string(),
            "{name}: resume through a crash diverged"
        );
    }
}
