//! Full eigendecomposition and spectral diagnostics.
//!
//! The policy search only needs eigen*values* ([`crate::eig`]), but the
//! diagnostics layer of the reproduction also wants eigen*vectors*: the
//! second eigenvector of `Y_P` (the Fiedler-like direction) identifies
//! *which* worker partition mixes slowest — i.e. where the communication
//! bottleneck sits — and the spectral gap `1 − λ₂` is the mixing-rate
//! readout that Theorem 1 turns into a convergence bound.

use crate::matrix::Matrix;

/// A full symmetric eigendecomposition: `a = V diag(λ) Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues sorted descending.
    pub values: Vec<f64>,
    /// Column `k` of this matrix is the eigenvector for `values[k]`.
    pub vectors: Matrix,
}

/// Computes the full eigendecomposition of a symmetric matrix with the
/// cyclic Jacobi method, accumulating rotations into the eigenvectors.
///
/// # Panics
/// Panics if the matrix is not square.
pub fn symmetric_eigen(a: &Matrix) -> SymmetricEigen {
    assert!(a.is_square(), "symmetric_eigen: matrix must be square");
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    const MAX_SWEEPS: usize = 100;
    const TOL: f64 = 1e-12;
    for _ in 0..MAX_SWEEPS {
        if m.max_offdiag_abs() < TOL {
            break;
        }
        for p in 0..n.saturating_sub(1) {
            for q in p + 1..n {
                rotate_with_vectors(&mut m, &mut v, p, q);
            }
        }
    }

    // Sort eigenpairs by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    let diag = m.diagonal();
    order.sort_by(|&x, &y| diag[y].total_cmp(&diag[x]));

    let values: Vec<f64> = order.iter().map(|&k| diag[k]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_col)] = v[(r, old_col)];
        }
    }
    SymmetricEigen { values, vectors }
}

fn rotate_with_vectors(m: &mut Matrix, v: &mut Matrix, p: usize, q: usize) {
    let apq = m[(p, q)];
    if apq.abs() < f64::MIN_POSITIVE {
        return;
    }
    let (app, aqq) = (m[(p, p)], m[(q, q)]);
    let theta = (aqq - app) / (2.0 * apq);
    let t = if theta >= 0.0 {
        1.0 / (theta + (1.0 + theta * theta).sqrt())
    } else {
        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
    };
    let c = 1.0 / (1.0 + t * t).sqrt();
    let s = t * c;

    let n = m.rows();
    for k in 0..n {
        if k != p && k != q {
            let (akp, akq) = (m[(k, p)], m[(k, q)]);
            m[(k, p)] = c * akp - s * akq;
            m[(p, k)] = m[(k, p)];
            m[(k, q)] = s * akp + c * akq;
            m[(q, k)] = m[(k, q)];
        }
    }
    m[(p, p)] = app - t * apq;
    m[(q, q)] = aqq + t * apq;
    m[(p, q)] = 0.0;
    m[(q, p)] = 0.0;

    // Accumulate V ← V · J(p, q, θ).
    for k in 0..n {
        let (vkp, vkq) = (v[(k, p)], v[(k, q)]);
        v[(k, p)] = c * vkp - s * vkq;
        v[(k, q)] = s * vkp + c * vkq;
    }
}

impl SymmetricEigen {
    /// The spectral gap `λ₁ − λ₂` — for doubly stochastic gossip matrices
    /// (λ₁ = 1) this is the mixing rate `1 − λ₂`.
    pub fn spectral_gap(&self) -> f64 {
        assert!(self.values.len() >= 2, "gap needs at least two eigenvalues");
        self.values[0] - self.values[1]
    }

    /// The eigenvector for the k-th largest eigenvalue.
    pub fn vector(&self, k: usize) -> Vec<f64> {
        (0..self.vectors.rows()).map(|r| self.vectors[(r, k)]).collect()
    }

    /// Splits nodes by the sign of the second eigenvector — the two
    /// slowest-mixing communities of the gossip graph (where the
    /// communication bottleneck lies).
    pub fn bottleneck_cut(&self) -> (Vec<usize>, Vec<usize>) {
        let v2 = self.vector(1);
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for (i, &x) in v2.iter().enumerate() {
            if x >= 0.0 {
                pos.push(i);
            } else {
                neg.push(i);
            }
        }
        (pos, neg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &SymmetricEigen) -> Matrix {
        // V diag(λ) Vᵀ
        let n = e.values.len();
        let mut d = Matrix::zeros(n, n);
        for (i, &l) in e.values.iter().enumerate() {
            d[(i, i)] = l;
        }
        e.vectors.matmul(&d).matmul(&e.vectors.transpose())
    }

    #[test]
    fn decomposition_reconstructs_matrix() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 1.0],
        ]);
        let e = symmetric_eigen(&a);
        let r = reconstruct(&e);
        assert!(
            a.sub(&r).frobenius_norm() < 1e-9,
            "reconstruction error too large:\n{r:?}"
        );
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_rows(&[
            vec![2.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 2.0],
        ]);
        let e = symmetric_eigen(&a);
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        let err = vtv.sub(&Matrix::identity(3)).frobenius_norm();
        assert!(err < 1e-9, "VᵀV deviates from I by {err}");
    }

    #[test]
    fn values_match_scalar_eigensolver() {
        let a = Matrix::from_rows(&[
            vec![0.6, 0.3, 0.1],
            vec![0.3, 0.4, 0.3],
            vec![0.1, 0.3, 0.6],
        ]);
        let e = symmetric_eigen(&a);
        let vals = crate::eig::symmetric_eigenvalues(&a);
        for (x, y) in e.values.iter().zip(&vals) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn bottleneck_cut_finds_island_structure() {
        // Two weakly coupled islands {0,1} and {2,3}: the second
        // eigenvector must separate them.
        let eps = 0.01;
        let a = Matrix::from_rows(&[
            vec![0.7 - eps, 0.3, eps, 0.0],
            vec![0.3, 0.7 - eps, 0.0, eps],
            vec![eps, 0.0, 0.7 - eps, 0.3],
            vec![0.0, eps, 0.3, 0.7 - eps],
        ]);
        let e = symmetric_eigen(&a);
        let (mut side_a, mut side_b) = e.bottleneck_cut();
        side_a.sort_unstable();
        side_b.sort_unstable();
        let cut = (side_a.clone(), side_b.clone());
        let ok = cut == (vec![0, 1], vec![2, 3]) || cut == (vec![2, 3], vec![0, 1]);
        assert!(ok, "cut failed to split the islands: {side_a:?} | {side_b:?}");
    }

    #[test]
    fn spectral_gap_of_complete_lazy_walk() {
        let m = Matrix::from_rows(&[
            vec![0.5, 0.25, 0.25],
            vec![0.25, 0.5, 0.25],
            vec![0.25, 0.25, 0.5],
        ]);
        let e = symmetric_eigen(&m);
        assert!((e.spectral_gap() - 0.75).abs() < 1e-9);
    }
}
