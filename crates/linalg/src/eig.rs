//! Eigenvalue routines for symmetric matrices.
//!
//! The policy search evaluates λ₂ of `Y_P` for hundreds of candidate
//! policies per Network-Monitor round, so the eigensolver must be robust on
//! symmetric (near-)doubly-stochastic matrices. We use the classical
//! **cyclic Jacobi** method: it is unconditionally convergent on symmetric
//! matrices, needs no shifts or balancing, and for the small M (number of
//! worker nodes) in this problem it is also fast.
//!
//! [`power_iteration`] is provided as an independent cross-check used by the
//! property tests (dominant eigenvalue of a doubly stochastic matrix must
//! be 1, and deflation by the all-ones vector must recover λ₂).

use crate::matrix::Matrix;

/// Hard cap on Jacobi sweeps; convergence is typically reached in < 15
/// sweeps for matrices of this size.
const MAX_SWEEPS: usize = 100;

/// Off-diagonal magnitude at which the Jacobi iteration stops.
const JACOBI_TOL: f64 = 1e-12;

/// Computes all eigenvalues of a symmetric matrix, sorted **descending**.
///
/// Uses the cyclic Jacobi method. The input must be square and symmetric;
/// symmetry is checked with a loose tolerance in debug builds.
///
/// # Panics
/// Panics if the matrix is not square.
pub fn symmetric_eigenvalues(a: &Matrix) -> Vec<f64> {
    assert!(a.is_square(), "symmetric_eigenvalues: matrix must be square");
    debug_assert!(
        crate::stochastic::is_symmetric(a, 1e-7),
        "symmetric_eigenvalues: matrix is not symmetric"
    );
    let n = a.rows();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![a[(0, 0)]];
    }

    let mut m = a.clone();
    for _sweep in 0..MAX_SWEEPS {
        if m.max_offdiag_abs() < JACOBI_TOL {
            break;
        }
        for p in 0..n - 1 {
            for q in p + 1..n {
                jacobi_rotate(&mut m, p, q);
            }
        }
    }

    let mut eigs = m.diagonal();
    eigs.sort_by(|a, b| b.total_cmp(a));
    eigs
}

/// Applies one Jacobi rotation zeroing `m[(p, q)]` (and `m[(q, p)]`).
///
/// The iterate stays *exactly* symmetric (both triangles are written with
/// the same value), so the rotation reads row `p`/`q` contiguously where
/// the textbook form walks columns: `m[(k, p)] == m[(p, k)]` bit-for-bit,
/// and `c·a_kp − s·a_kq` is computed from the same inputs either way. The
/// row walk turns the strided, branchy column update into two slice
/// passes the compiler vectorises.
fn jacobi_rotate(m: &mut Matrix, p: usize, q: usize) {
    debug_assert!(p < q, "jacobi_rotate: requires p < q");
    let apq = m[(p, q)];
    if apq.abs() < f64::MIN_POSITIVE {
        return;
    }
    let app = m[(p, p)];
    let aqq = m[(q, q)];
    let theta = (aqq - app) / (2.0 * apq);
    // Stable computation of t = tan(rotation angle): the smaller root of
    // t^2 + 2*theta*t - 1 = 0.
    let t = if theta >= 0.0 {
        1.0 / (theta + (1.0 + theta * theta).sqrt())
    } else {
        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
    };
    let c = 1.0 / (1.0 + t * t).sqrt();
    let s = t * c;

    let n = m.rows();
    {
        let data = m.as_mut_slice();
        let (lo, hi) = data.split_at_mut(q * n);
        let rp = &mut lo[p * n..p * n + n];
        let rq = &mut hi[..n];
        for (a, b) in rp.iter_mut().zip(rq.iter_mut()) {
            let akp = *a;
            let akq = *b;
            *a = c * akp - s * akq;
            *b = s * akp + c * akq;
        }
    }
    // The four entries in rows p/q that the closed forms govern were
    // rotated along with the rest of the rows; overwrite them.
    m[(p, p)] = app - t * apq;
    m[(q, q)] = aqq + t * apq;
    m[(p, q)] = 0.0;
    m[(q, p)] = 0.0;
    // Mirror the rotated rows back onto columns p and q so the exact
    // symmetry invariant survives for the next rotation.
    for k in 0..n {
        if k != p && k != q {
            m[(k, p)] = m[(p, k)];
            m[(k, q)] = m[(q, k)];
        }
    }
}

/// Returns the second largest eigenvalue of a symmetric matrix.
///
/// This is the λ (or λ₂) of the paper's Eq. (7)/(9): the quantity that
/// bounds the convergence rate of any consensus algorithm expressible as
/// `x^{k+1} = D^k (x^k - α g^k)`.
///
/// # Panics
/// Panics if the matrix has fewer than 2 rows.
pub fn second_largest_eigenvalue(a: &Matrix) -> f64 {
    let eigs = symmetric_eigenvalues(a);
    assert!(eigs.len() >= 2, "second_largest_eigenvalue: need at least a 2x2 matrix");
    eigs[1]
}

/// Result of a [`power_iteration`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerIterationResult {
    /// The estimated dominant eigenvalue (Rayleigh quotient at termination).
    pub eigenvalue: f64,
    /// Number of iterations performed.
    pub iterations: usize,
    /// `true` if the iteration met its tolerance before the iteration cap.
    pub converged: bool,
}

/// Power iteration for the dominant eigenvalue of a symmetric matrix,
/// optionally deflated against a fixed vector.
///
/// If `deflate` is `Some(v)`, every iterate is orthogonalised against `v`,
/// so the returned value estimates the dominant eigenvalue on the subspace
/// orthogonal to `v`. For a doubly stochastic symmetric matrix, deflating
/// against the all-ones vector yields λ₂. This is used as an independent
/// cross-check of the Jacobi solver in tests.
pub fn power_iteration(
    a: &Matrix,
    deflate: Option<&[f64]>,
    max_iters: usize,
    tol: f64,
) -> PowerIterationResult {
    assert!(a.is_square(), "power_iteration: matrix must be square");
    let n = a.rows();
    assert!(n > 0, "power_iteration: empty matrix");

    // Deterministic start vector. A nonlinear (hashed) sequence is used
    // instead of an affine one: affine sequences can be exactly orthogonal
    // to structured eigenvectors (e.g. of block-diagonal gossip matrices).
    let mut v: Vec<f64> = (0..n as u64)
        .map(|i| {
            // SplitMix64 finaliser, mapped to (0.5, 1.5).
            let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            0.5 + (z as f64 / u64::MAX as f64)
        })
        .collect();
    orthogonalize(&mut v, deflate);
    normalize(&mut v);

    let mut lambda = 0.0;
    for it in 0..max_iters {
        let mut w = a.matvec(&v);
        orthogonalize(&mut w, deflate);
        let norm = l2(&w);
        if norm < 1e-300 {
            // The deflated operator annihilated the iterate: eigenvalue 0.
            return PowerIterationResult { eigenvalue: 0.0, iterations: it, converged: true };
        }
        for x in &mut w {
            *x /= norm;
        }
        // Rayleigh quotient.
        let av = a.matvec(&w);
        let new_lambda: f64 = w.iter().zip(&av).map(|(a, b)| a * b).sum();
        let delta = (new_lambda - lambda).abs();
        lambda = new_lambda;
        v = w;
        if it > 0 && delta < tol {
            return PowerIterationResult { eigenvalue: lambda, iterations: it + 1, converged: true };
        }
    }
    PowerIterationResult { eigenvalue: lambda, iterations: max_iters, converged: false }
}

fn l2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

fn normalize(v: &mut [f64]) {
    let n = l2(v);
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

fn orthogonalize(v: &mut [f64], against: Option<&[f64]>) {
    if let Some(u) = against {
        let uu: f64 = u.iter().map(|x| x * x).sum();
        if uu == 0.0 {
            return;
        }
        let uv: f64 = u.iter().zip(v.iter()).map(|(a, b)| a * b).sum();
        let coef = uv / uu;
        for (x, &y) in v.iter_mut().zip(u) {
            *x -= coef * y;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let m = Matrix::from_rows(&[
            vec![3.0, 0.0, 0.0],
            vec![0.0, -1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ]);
        let e = symmetric_eigenvalues(&m);
        assert!(approx(e[0], 3.0, 1e-12));
        assert!(approx(e[1], 2.0, 1e-12));
        assert!(approx(e[2], -1.0, 1e-12));
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = symmetric_eigenvalues(&m);
        assert!(approx(e[0], 3.0, 1e-10));
        assert!(approx(e[1], 1.0, 1e-10));
        assert!(approx(second_largest_eigenvalue(&m), 1.0, 1e-10));
    }

    #[test]
    fn trace_is_preserved() {
        let m = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 1.0],
        ]);
        let e = symmetric_eigenvalues(&m);
        let sum: f64 = e.iter().sum();
        assert!(approx(sum, m.trace(), 1e-9));
    }

    #[test]
    fn doubly_stochastic_has_top_eigenvalue_one() {
        // Lazy random-walk matrix on a triangle: symmetric, doubly stochastic.
        let m = Matrix::from_rows(&[
            vec![0.5, 0.25, 0.25],
            vec![0.25, 0.5, 0.25],
            vec![0.25, 0.25, 0.5],
        ]);
        let e = symmetric_eigenvalues(&m);
        assert!(approx(e[0], 1.0, 1e-10));
        // Complete-graph lazy walk: the other eigenvalues are 0.25.
        assert!(approx(e[1], 0.25, 1e-10));
        assert!(approx(e[2], 0.25, 1e-10));
    }

    #[test]
    fn power_iteration_matches_jacobi_on_dominant() {
        let m = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 1.0],
        ]);
        let jac = symmetric_eigenvalues(&m);
        let pow = power_iteration(&m, None, 10_000, 1e-13);
        assert!(pow.converged);
        assert!(approx(pow.eigenvalue, jac[0], 1e-8));
    }

    #[test]
    fn deflated_power_iteration_recovers_lambda2() {
        let m = Matrix::from_rows(&[
            vec![0.6, 0.3, 0.1],
            vec![0.3, 0.4, 0.3],
            vec![0.1, 0.3, 0.6],
        ]);
        let ones = vec![1.0; 3];
        let jac2 = second_largest_eigenvalue(&m);
        let pow = power_iteration(&m, Some(&ones), 10_000, 1e-13);
        assert!(pow.converged);
        assert!(approx(pow.eigenvalue, jac2, 1e-8));
    }

    #[test]
    fn one_by_one() {
        let m = Matrix::from_rows(&[vec![7.0]]);
        assert_eq!(symmetric_eigenvalues(&m), vec![7.0]);
    }
}
