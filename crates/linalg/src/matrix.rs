//! Dense row-major `f64` matrix.
//!
//! Deliberately minimal: only the operations the NetMax policy machinery
//! needs. Matrices here are at most a few dozen rows (one per worker node),
//! so a contiguous `Vec<f64>` with naive O(n³) products is the right tool.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64` values.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a nested slice of rows.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths or if `rows` is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "from_rows: need at least one row");
        let cols = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "from_rows: ragged rows"
        );
        let data = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Self { rows: rows.len(), cols, data }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the flat row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Sum of row `i`.
    pub fn row_sum(&self, i: usize) -> f64 {
        self.row(i).iter().sum()
    }

    /// Sum of column `j`.
    pub fn col_sum(&self, j: usize) -> f64 {
        (0..self.rows).map(|i| self[(i, j)]).sum()
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Naive matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not agree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: inner dimensions disagree ({}x{} * {}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(rrow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec: dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Elementwise scaling by `s`, in place.
    pub fn scale(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Returns `self + rhs`.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "add: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Returns `self - rhs`.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "sub: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute off-diagonal entry (square matrices only).
    ///
    /// Used as the convergence criterion of the Jacobi eigensolver.
    pub fn max_offdiag_abs(&self) -> f64 {
        debug_assert!(self.is_square());
        let mut m = 0.0f64;
        for i in 0..self.rows {
            for j in 0..self.cols {
                if i != j {
                    m = m.max(self[(i, j)].abs());
                }
            }
        }
        m
    }

    /// The matrix diagonal.
    pub fn diagonal(&self) -> Vec<f64> {
        debug_assert!(self.is_square());
        (0..self.rows).map(|i| self[(i, i)]).collect()
    }

    /// Trace (sum of the diagonal).
    pub fn trace(&self) -> f64 {
        self.diagonal().iter().sum()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:>10.6} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.trace(), 3.0);
    }

    #[test]
    fn from_rows_roundtrip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let v = vec![5.0, 6.0];
        assert_eq!(a.matvec(&v), vec![17.0, 39.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn row_and_col_sums() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.row_sum(0), 3.0);
        assert_eq!(a.col_sum(1), 6.0);
    }

    #[test]
    fn norms_and_offdiag() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![4.0, 0.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.max_offdiag_abs(), 4.0);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 5.0]]);
        assert_eq!(a.add(&b).as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).as_slice(), &[2.0, 3.0]);
        let mut c = a.clone();
        c.scale(2.0);
        assert_eq!(c.as_slice(), &[2.0, 4.0]);
    }
}
