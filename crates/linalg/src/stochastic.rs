//! Structural validators for gossip/consensus matrices.
//!
//! Theorem 3 of the NetMax paper rests on three lemmas about the matrix
//! `Y_P = E[(D^k)^T D^k]` built from any feasible communication policy `P`:
//!
//! * **Lemma 1** — `Y_P` is symmetric and each row/column sums to 1;
//! * **Lemma 2** — `Y_P` is non-negative;
//! * **Lemma 3** — if the policy graph is connected, the graph of `Y_P` is
//!   connected (hence `Y_P` is irreducible and, by Perron–Frobenius, its
//!   second eigenvalue is strictly below 1).
//!
//! These predicates are asserted in debug builds by the policy generator and
//! exercised heavily by the property tests.

use crate::matrix::Matrix;

/// `true` if `m` is symmetric within absolute tolerance `tol`.
pub fn is_symmetric(m: &Matrix, tol: f64) -> bool {
    if !m.is_square() {
        return false;
    }
    let n = m.rows();
    for i in 0..n {
        for j in (i + 1)..n {
            if (m[(i, j)] - m[(j, i)]).abs() > tol {
                return false;
            }
        }
    }
    true
}

/// `true` if every entry of `m` is ≥ `-tol`.
pub fn is_nonnegative(m: &Matrix, tol: f64) -> bool {
    m.as_slice().iter().all(|&x| x >= -tol)
}

/// `true` if `m` is square, non-negative, and every row and column sums to 1
/// within `tol` (a doubly stochastic matrix).
pub fn is_doubly_stochastic(m: &Matrix, tol: f64) -> bool {
    if !m.is_square() || !is_nonnegative(m, tol) {
        return false;
    }
    let n = m.rows();
    (0..n).all(|i| (m.row_sum(i) - 1.0).abs() <= tol)
        && (0..n).all(|j| (m.col_sum(j) - 1.0).abs() <= tol)
}

/// `true` if the directed graph induced by the non-zero pattern of `m`
/// (edge `j -> i` iff `|m[(i,j)]| > tol`) is strongly connected.
///
/// For symmetric matrices this coincides with plain connectivity and with
/// matrix irreducibility, which is the hypothesis of the Perron–Frobenius
/// argument in the paper's Theorem 3 proof.
pub fn is_irreducible(m: &Matrix, tol: f64) -> bool {
    if !m.is_square() {
        return false;
    }
    let n = m.rows();
    if n == 0 {
        return false;
    }
    // BFS forward and backward from node 0; strong connectivity for this
    // small n is cheapest checked directly.
    reaches_all(m, tol, false) && reaches_all(m, tol, true)
}

fn reaches_all(m: &Matrix, tol: f64, transpose: bool) -> bool {
    let n = m.rows();
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    let mut count = 1usize;
    while let Some(u) = stack.pop() {
        for v in 0..n {
            let w = if transpose { m[(v, u)] } else { m[(u, v)] };
            if !seen[v] && w.abs() > tol {
                seen[v] = true;
                count += 1;
                stack.push(v);
            }
        }
    }
    count == n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_detection() {
        let s = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 3.0]]);
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.5, 3.0]]);
        assert!(is_symmetric(&s, 1e-12));
        assert!(!is_symmetric(&a, 1e-12));
        // Within loose tolerance the asymmetric one passes.
        assert!(is_symmetric(&a, 1.0));
    }

    #[test]
    fn doubly_stochastic_detection() {
        let ds = Matrix::from_rows(&[
            vec![0.5, 0.25, 0.25],
            vec![0.25, 0.5, 0.25],
            vec![0.25, 0.25, 0.5],
        ]);
        assert!(is_doubly_stochastic(&ds, 1e-12));

        // Row-stochastic but not column-stochastic.
        let rs = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 0.0]]);
        assert!(!is_doubly_stochastic(&rs, 1e-12));

        // Negative entry.
        let neg = Matrix::from_rows(&[vec![1.5, -0.5], vec![-0.5, 1.5]]);
        assert!(!is_doubly_stochastic(&neg, 1e-12));

        // Non-square.
        let ns = Matrix::zeros(2, 3);
        assert!(!is_doubly_stochastic(&ns, 1e-12));
    }

    #[test]
    fn irreducibility_of_connected_and_disconnected() {
        // Path graph 0-1-2 with self-loops: connected.
        let path = Matrix::from_rows(&[
            vec![0.5, 0.5, 0.0],
            vec![0.5, 0.0, 0.5],
            vec![0.0, 0.5, 0.5],
        ]);
        assert!(is_irreducible(&path, 1e-12));

        // Two disconnected blocks.
        let blocks = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0],
            vec![0.0, 0.5, 0.5],
            vec![0.0, 0.5, 0.5],
        ]);
        assert!(!is_irreducible(&blocks, 1e-12));
    }

    #[test]
    fn identity_is_reducible_for_n_over_1() {
        assert!(!is_irreducible(&Matrix::identity(3), 1e-12));
        assert!(is_irreducible(&Matrix::identity(1), 1e-12));
    }
}
