//! # netmax-linalg
//!
//! Dense linear algebra substrate for the NetMax reproduction.
//!
//! The NetMax communication-policy search (Algorithm 3 of the paper) needs,
//! for every candidate policy matrix `P`, the **second largest eigenvalue**
//! λ₂ of the symmetric doubly-stochastic matrix
//! `Y_P = E[(D^k)^T D^k]` (Eq. 20–22). This crate provides:
//!
//! * [`Matrix`] — a small, dependency-free dense row-major `f64` matrix with
//!   the operations the policy machinery needs (products, transpose, norms,
//!   row/column sums).
//! * [`eig`] — a cyclic Jacobi eigensolver for symmetric matrices
//!   ([`eig::symmetric_eigenvalues`]) plus a power-iteration cross-check
//!   ([`eig::power_iteration`]) used in tests, and the convenience
//!   [`eig::second_largest_eigenvalue`] that the policy generator calls.
//! * [`stochastic`] — validators for the structural properties the paper
//!   proves about `Y_P`: double stochasticity (Lemma 1), non-negativity
//!   (Lemma 2) and irreducibility/connectivity (Lemma 3).
//! * [`spectral`] — full eigendecomposition with eigenvectors, used by
//!   the diagnostics layer to locate communication bottlenecks (the sign
//!   cut of `Y_P`'s second eigenvector).
//! * [`sparse`] — a symmetric sparse matrix ([`SparseSymmetric`]) plus a
//!   deflated power-iteration λ₂ solver
//!   ([`second_largest_eigenvalue_sparse`]) for large sparse fabrics,
//!   pinned to the dense Jacobi reference by the parity test suite.
//!
//! Everything is `f64`. At the paper's scale (M ≤ a few dozen worker
//! nodes) the dense representation is both the fastest and the clearest
//! choice and remains the reference oracle; the sparse path exists so
//! per-round costs scale with the edge set, not M², at fleet sizes in the
//! thousands.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod eig;
pub mod matrix;
pub mod sparse;
pub mod spectral;
pub mod stochastic;

pub use eig::{power_iteration, second_largest_eigenvalue, symmetric_eigenvalues};
pub use matrix::Matrix;
pub use sparse::{second_largest_eigenvalue_sparse, SparseSymmetric};
pub use spectral::{symmetric_eigen, SymmetricEigen};
pub use stochastic::{is_doubly_stochastic, is_irreducible, is_nonnegative, is_symmetric};

/// Default absolute tolerance used by the structural validators.
pub const DEFAULT_TOL: f64 = 1e-9;
