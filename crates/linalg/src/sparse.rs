//! Sparse symmetric matrices and the sparse λ₂ solver.
//!
//! The dense Jacobi path in [`crate::eig`] is exact but O(n²) in storage
//! and O(n³) in time — fine for the paper's 8–16 workers, a dead end at
//! n = 4096. The policy search only ever builds `Y_P` over the live edge
//! set of a sparse fabric (torus, random-connected), so this module stores
//! exactly those nonzeros and estimates λ₂ with deflated power iteration.
//!
//! ## Why the `(Y + I)/2` shift
//!
//! Power iteration finds the eigenvalue of **largest magnitude** on the
//! deflated subspace. `Y_P`'s spectrum lives in `[-1, 1]`, so a strongly
//! negative eigenvalue near −1 could masquerade as λ₂. Iterating on
//! `B = (Y + I)/2` maps the spectrum affinely to `[0, 1]` — order
//! preserved, eigenvectors unchanged — so the dominant deflated eigenvalue
//! of `B` is exactly `(1 + λ₂)/2`, and `λ₂ = 2μ − 1` is sign-safe.
//! Near-degenerate λ₂ ≈ λ₃ pairs are benign: any mixture of their
//! eigenvectors has a Rayleigh quotient within the pair's spread, which is
//! all the policy search needs to rank candidates.

use crate::eig::PowerIterationResult;
use crate::matrix::Matrix;

/// A symmetric `n × n` matrix stored as per-row nonzero lists.
///
/// Rows keep their `(column, value)` entries in **ascending column
/// order**, so a matvec accumulates terms in the same order as a dense
/// row scan restricted to the nonzeros — which is what makes the sparse
/// and dense paths agree bit-for-bit when the dense matrix is zero
/// outside the stored pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseSymmetric {
    n: usize,
    rows: Vec<Vec<(usize, f64)>>,
}

impl SparseSymmetric {
    /// Creates an `n × n` all-zero matrix (no stored entries).
    pub fn zeros(n: usize) -> Self {
        Self { n, rows: vec![Vec::new(); n] }
    }

    /// Builds a matrix from explicit per-row `(column, value)` lists.
    ///
    /// # Panics
    /// Panics if a row's columns are out of range or not strictly
    /// ascending. Symmetry of the stored pattern is the caller's
    /// responsibility and is checked in debug builds.
    pub fn from_rows(rows: Vec<Vec<(usize, f64)>>) -> Self {
        let n = rows.len();
        for (i, row) in rows.iter().enumerate() {
            let mut prev = None;
            for &(j, _) in row {
                assert!(j < n, "row {i}: column {j} out of range");
                assert!(prev.is_none_or(|p| p < j), "row {i}: columns must be strictly ascending");
                prev = Some(j);
            }
        }
        let m = Self { n, rows };
        debug_assert!(m.is_pattern_symmetric(), "stored pattern is not symmetric");
        m
    }

    /// Sets `a[i][j]` (and `a[j][i]` for `i ≠ j`), inserting or updating
    /// the stored entry. Zero values are stored too — the pattern, not
    /// the value, defines the structure.
    ///
    /// # Panics
    /// Panics on out-of-range indices.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.n && j < self.n, "set: index out of range");
        for (r, c) in [(i, j), (j, i)] {
            match self.rows[r].binary_search_by_key(&c, |&(col, _)| col) {
                Ok(pos) => self.rows[r][pos].1 = v,
                Err(pos) => self.rows[r].insert(pos, (c, v)),
            }
            if i == j {
                break;
            }
        }
    }

    /// The stored value at `(i, j)`, or `0.0` when outside the pattern.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.rows[i]
            .binary_search_by_key(&j, |&(col, _)| col)
            .map_or(0.0, |pos| self.rows[i][pos].1)
    }

    /// Matrix dimension.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for the degenerate 0 × 0 matrix.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of stored entries (both triangles plus the diagonal).
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// The nonzero entries of row `i` in ascending column order.
    pub fn row(&self, i: usize) -> &[(usize, f64)] {
        &self.rows[i]
    }

    /// Extracts the sparse pattern-and-values of a dense symmetric matrix
    /// (entries exactly equal to `0.0` are dropped).
    pub fn from_dense(a: &Matrix) -> Self {
        assert!(a.is_square(), "from_dense: matrix must be square");
        let n = a.rows();
        let rows = (0..n)
            .map(|i| (0..n).filter(|&j| a[(i, j)] != 0.0).map(|j| (j, a[(i, j)])).collect())
            .collect();
        Self { n, rows }
    }

    /// Expands back to a dense matrix (small-n tests and oracles).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n, self.n);
        for (i, row) in self.rows.iter().enumerate() {
            for &(j, v) in row {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// `out ← A·v`, accumulating each row's terms in ascending column
    /// order (allocation-free).
    ///
    /// # Panics
    /// Panics if the vector lengths disagree with the dimension.
    pub fn matvec_into(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.n, "matvec: vector length mismatch");
        assert_eq!(out.len(), self.n, "matvec: output length mismatch");
        for (o, row) in out.iter_mut().zip(&self.rows) {
            *o = row.iter().map(|&(j, a)| a * v[j]).sum();
        }
    }

    /// `A·v` as a fresh vector.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        self.matvec_into(v, &mut out);
        out
    }

    fn is_pattern_symmetric(&self) -> bool {
        self.rows.iter().enumerate().all(|(i, row)| {
            row.iter().all(|&(j, v)| (self.get(j, i) - v).abs() <= 1e-9 * (1.0 + v.abs()))
        })
    }
}

/// Second-largest eigenvalue of a symmetric doubly-stochastic sparse
/// matrix via deflated power iteration on the shifted operator
/// `B = (Y + I)/2` (see the module docs for why the shift is needed).
///
/// Deflation is against the all-ones vector — the known dominant
/// eigenvector of any doubly-stochastic `Y`. The returned
/// [`PowerIterationResult::eigenvalue`] is `λ₂` itself (already mapped
/// back from `B`'s spectrum).
///
/// # Panics
/// Panics on an empty matrix.
pub fn second_largest_eigenvalue_sparse(
    y: &SparseSymmetric,
    max_iters: usize,
    tol: f64,
) -> PowerIterationResult {
    let n = y.len();
    assert!(n > 0, "second_largest_eigenvalue_sparse: empty matrix");

    // Deterministic start vector: the same SplitMix64 scheme as the dense
    // `power_iteration`, so the two solvers are paired draws in tests.
    let mut v: Vec<f64> = (0..n as u64)
        .map(|i| {
            let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            0.5 + (z as f64 / u64::MAX as f64)
        })
        .collect();
    deflate_ones(&mut v);
    normalize(&mut v);

    let mut scratch = vec![0.0; n];
    // Shifted matvec: w ← (Y·v + v)/2.
    let mut apply = |v: &[f64], w: &mut Vec<f64>| {
        y.matvec_into(v, &mut scratch);
        w.clear();
        w.extend(scratch.iter().zip(v).map(|(&yv, &x)| 0.5 * (yv + x)));
    };

    let mut mu = 0.0;
    let mut w = Vec::with_capacity(n);
    let mut bw = Vec::with_capacity(n);
    for it in 0..max_iters {
        apply(&v, &mut w);
        deflate_ones(&mut w);
        let norm = l2(&w);
        if norm < 1e-300 {
            // The deflated shifted operator annihilated the iterate: the
            // deflated spectrum of B is 0, i.e. λ₂ = −1.
            return PowerIterationResult { eigenvalue: -1.0, iterations: it, converged: true };
        }
        for x in &mut w {
            *x /= norm;
        }
        apply(&w, &mut bw);
        let new_mu: f64 = w.iter().zip(&bw).map(|(a, b)| a * b).sum();
        let delta = (new_mu - mu).abs();
        mu = new_mu;
        std::mem::swap(&mut v, &mut w);
        if it > 0 && delta < tol {
            return PowerIterationResult {
                eigenvalue: 2.0 * mu - 1.0,
                iterations: it + 1,
                converged: true,
            };
        }
    }
    PowerIterationResult { eigenvalue: 2.0 * mu - 1.0, iterations: max_iters, converged: false }
}

fn l2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

fn normalize(v: &mut [f64]) {
    let n = l2(v);
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

/// Orthogonalises against the (unnormalised) all-ones vector: subtracts
/// the mean from every component.
fn deflate_ones(v: &mut [f64]) {
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    for x in v.iter_mut() {
        *x -= mean;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eig::second_largest_eigenvalue;

    fn lazy_walk_triangle() -> Matrix {
        Matrix::from_rows(&[
            vec![0.5, 0.25, 0.25],
            vec![0.25, 0.5, 0.25],
            vec![0.25, 0.25, 0.5],
        ])
    }

    #[test]
    fn roundtrip_dense_sparse_dense() {
        let d = lazy_walk_triangle();
        let s = SparseSymmetric::from_dense(&d);
        assert_eq!(s.nnz(), 9);
        assert_eq!(s.to_dense(), d);
        assert_eq!(s.get(0, 1), 0.25);
        assert_eq!(s.get(2, 2), 0.5);
    }

    #[test]
    fn matvec_matches_dense() {
        let d = lazy_walk_triangle();
        let s = SparseSymmetric::from_dense(&d);
        let v = vec![1.0, -2.0, 3.0];
        assert_eq!(s.matvec(&v), d.matvec(&v));
    }

    #[test]
    fn set_and_get_maintain_symmetry() {
        let mut s = SparseSymmetric::zeros(4);
        s.set(0, 2, 0.7);
        s.set(1, 1, 0.3);
        assert_eq!(s.get(0, 2), 0.7);
        assert_eq!(s.get(2, 0), 0.7);
        assert_eq!(s.get(1, 1), 0.3);
        assert_eq!(s.get(3, 3), 0.0);
        s.set(0, 2, 0.1);
        assert_eq!(s.get(2, 0), 0.1);
        assert_eq!(s.nnz(), 3);
    }

    #[test]
    fn lambda2_matches_jacobi_on_lazy_walk() {
        let d = lazy_walk_triangle();
        let s = SparseSymmetric::from_dense(&d);
        let dense = second_largest_eigenvalue(&d);
        let sparse = second_largest_eigenvalue_sparse(&s, 50_000, 1e-13);
        assert!(sparse.converged);
        assert!((sparse.eigenvalue - dense).abs() < 1e-8, "{} vs {dense}", sparse.eigenvalue);
    }

    #[test]
    fn lambda2_is_sign_safe_near_minus_one() {
        // Two-node averaging: spectrum {1, -1}; plain deflated power
        // iteration on Y would report magnitude 1 with the wrong sign.
        let d = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let s = SparseSymmetric::from_dense(&d);
        let r = second_largest_eigenvalue_sparse(&s, 50_000, 1e-13);
        assert!(r.converged);
        assert!((r.eigenvalue - (-1.0)).abs() < 1e-8, "λ₂ should be -1, got {}", r.eigenvalue);
    }

    #[test]
    fn disconnected_graph_reports_lambda2_one() {
        // Block-diagonal doubly stochastic: eigenvalue 1 has multiplicity
        // 2, so λ₂ = 1 — deflating only the global all-ones vector must
        // still surface the second invariant subspace.
        let d = Matrix::from_rows(&[
            vec![0.5, 0.5, 0.0, 0.0],
            vec![0.5, 0.5, 0.0, 0.0],
            vec![0.0, 0.0, 0.5, 0.5],
            vec![0.0, 0.0, 0.5, 0.5],
        ]);
        let s = SparseSymmetric::from_dense(&d);
        let r = second_largest_eigenvalue_sparse(&s, 50_000, 1e-13);
        assert!((r.eigenvalue - 1.0).abs() < 1e-8, "λ₂ should be 1, got {}", r.eigenvalue);
    }
}
