//! Property-based tests for the linear-algebra substrate.
//!
//! These validate the eigensolver on randomly generated symmetric and
//! doubly stochastic matrices — exactly the matrix class the NetMax policy
//! generator feeds it.

use netmax_linalg::{
    is_doubly_stochastic, is_symmetric, power_iteration, second_largest_eigenvalue,
    symmetric_eigenvalues, Matrix,
};
use proptest::prelude::*;

/// Strategy: a random symmetric n×n matrix with entries in [-5, 5].
fn symmetric_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-5.0f64..5.0, n * (n + 1) / 2).prop_map(move |upper| {
        let mut m = Matrix::zeros(n, n);
        let mut it = upper.into_iter();
        for i in 0..n {
            for j in i..n {
                let v = it.next().unwrap();
                m[(i, j)] = v;
                m[(j, i)] = v;
            }
        }
        m
    })
}

/// Strategy: a random symmetric doubly stochastic matrix, built as a convex
/// combination of the identity and symmetrised pairwise-averaging steps
/// (each `I + γ e_i (e_j - e_i)^T`-style gossip matrix is averaged with its
/// transpose counterpart). This mirrors how `Y_P` arises in the paper.
fn doubly_stochastic_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec((0usize..n, 0usize..n, 0.01f64..1.0), 1..12).prop_map(
        move |steps| {
            // Start from identity, repeatedly mix mass between pairs (i, j)
            // symmetrically: a two-sided doubly-stochastic transform.
            let mut m = Matrix::identity(n);
            for (i, j, w) in steps {
                if i == j {
                    continue;
                }
                // Convex combination with the permutation-free averaging
                // matrix that moves weight w/2 between rows/cols i and j.
                let mut t = Matrix::identity(n);
                t[(i, i)] = 1.0 - w / 2.0;
                t[(j, j)] = 1.0 - w / 2.0;
                t[(i, j)] = w / 2.0;
                t[(j, i)] = w / 2.0;
                // Product of symmetric doubly stochastic with symmetric
                // doubly stochastic is doubly stochastic but not always
                // symmetric, so symmetrise via (A B A) which preserves both.
                m = t.matmul(&m).matmul(&t);
            }
            m
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The eigenvalue sum must equal the trace (similarity invariance).
    #[test]
    fn eigenvalue_sum_equals_trace(m in symmetric_matrix(5)) {
        let eigs = symmetric_eigenvalues(&m);
        let sum: f64 = eigs.iter().sum();
        prop_assert!((sum - m.trace()).abs() < 1e-6 * (1.0 + m.trace().abs()));
    }

    /// Eigenvalues must come back sorted descending.
    #[test]
    fn eigenvalues_sorted_descending(m in symmetric_matrix(6)) {
        let eigs = symmetric_eigenvalues(&m);
        for w in eigs.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
    }

    /// Jacobi and (deflated) power iteration must agree on symmetric PSD-ish
    /// doubly stochastic matrices.
    #[test]
    fn jacobi_matches_power_iteration(m in doubly_stochastic_matrix(5)) {
        prop_assert!(is_symmetric(&m, 1e-9));
        prop_assert!(is_doubly_stochastic(&m, 1e-9));

        let eigs = symmetric_eigenvalues(&m);
        // Dominant eigenvalue of a doubly stochastic matrix is exactly 1.
        prop_assert!((eigs[0] - 1.0).abs() < 1e-9);

        // Power iteration resolves the deflated dominant eigenvalue only if
        // the spectrum has a usable gap below it; skip near-degenerate draws
        // (they arise from effectively disconnected gossip graphs).
        let gap = eigs[1].abs()
            - eigs[2..].iter().fold(0.0f64, |acc, &e| acc.max(e.abs()));
        prop_assume!(gap > 0.05);

        let ones = vec![1.0; m.rows()];
        let p = power_iteration(&m, Some(&ones), 50_000, 1e-14);
        let l2 = second_largest_eigenvalue(&m);
        // Power iteration estimates the second-largest-in-magnitude on the
        // deflated subspace; compare against the larger magnitude of the
        // remaining spectrum.
        let max_abs_rest = eigs[1..]
            .iter()
            .fold(0.0f64, |acc, &e| acc.max(e.abs()));
        prop_assert!(
            (p.eigenvalue.abs() - max_abs_rest).abs() < 1e-6,
            "power {} vs rest-magnitude {} (λ₂ = {})", p.eigenvalue, max_abs_rest, l2
        );
    }

    /// Gershgorin: all eigenvalues of a doubly stochastic matrix lie in [-1, 1].
    #[test]
    fn doubly_stochastic_spectrum_bounded(m in doubly_stochastic_matrix(4)) {
        let eigs = symmetric_eigenvalues(&m);
        for e in eigs {
            prop_assert!(e <= 1.0 + 1e-9);
            prop_assert!(e >= -1.0 - 1e-9);
        }
    }

    /// matmul associativity on small matrices (sanity of the kernel).
    #[test]
    fn matmul_associative(a in symmetric_matrix(3), b in symmetric_matrix(3), c in symmetric_matrix(3)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        let diff = left.sub(&right).frobenius_norm();
        prop_assert!(diff < 1e-8 * (1.0 + left.frobenius_norm()));
    }
}
