//! Parity suite: the sparse λ₂ solver against the dense Jacobi oracle.
//!
//! Random connected topologies (n ≤ 64, densities from spanning-tree to
//! near-complete) are turned into Metropolis-weighted gossip matrices —
//! symmetric, doubly stochastic, with the graph's sparsity pattern —
//! exactly the matrix class `Y_P` belongs to. The sparse power-iteration
//! λ₂ must match the dense Jacobi eigenvalue within tolerance, including
//! the adversarial shapes: near-degenerate λ₂ ≈ λ₃ spectra, graphs that
//! fall apart after masking nodes, and a single live edge.

use netmax_linalg::{
    second_largest_eigenvalue, second_largest_eigenvalue_sparse, symmetric_eigenvalues,
    Matrix, SparseSymmetric,
};
use proptest::prelude::*;

const MAX_ITERS: usize = 200_000;
const TOL: f64 = 1e-12;
/// Comparison tolerance between the two solvers. Power iteration's
/// Rayleigh-quotient error is quadratic in the residual, so this is loose
/// relative to the stopping tolerance but tight in absolute terms.
const PARITY_TOL: f64 = 1e-6;

/// Undirected edge list of a connected graph on `n` nodes, built from a
/// deterministic spanning tree (node k attaches to `parents[k-1] % k`)
/// plus any extra pairs selected by `extra`.
fn connected_edges(n: usize, parents: &[usize], extra: &[u8]) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    for k in 1..n {
        let p = parents[k - 1] % k;
        edges.push((p, k));
    }
    let mut idx = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            let tree_edge = edges.contains(&(i, j));
            if idx < extra.len() && extra[idx] == 1 && !tree_edge {
                edges.push((i, j));
            }
            idx += 1;
        }
    }
    edges
}

/// Metropolis-Hastings gossip matrix over an edge list: symmetric, doubly
/// stochastic, zero outside the graph pattern (plus the diagonal).
fn metropolis(n: usize, edges: &[(usize, usize)]) -> Matrix {
    let mut deg = vec![0usize; n];
    for &(i, j) in edges {
        deg[i] += 1;
        deg[j] += 1;
    }
    let mut m = Matrix::zeros(n, n);
    for &(i, j) in edges {
        let w = 1.0 / (deg[i].max(deg[j]) as f64 + 1.0);
        m[(i, j)] = w;
        m[(j, i)] = w;
    }
    for i in 0..n {
        let off: f64 = (0..n).filter(|&j| j != i).map(|j| m[(i, j)]).sum();
        m[(i, i)] = 1.0 - off;
    }
    m
}

fn assert_parity(dense: &Matrix, label: &str) {
    let sparse = SparseSymmetric::from_dense(dense);
    let jacobi = second_largest_eigenvalue(dense);
    let power = second_largest_eigenvalue_sparse(&sparse, MAX_ITERS, TOL);
    assert!(
        (power.eigenvalue - jacobi).abs() < PARITY_TOL,
        "{label}: sparse λ₂ {} vs dense {jacobi} ({} iters, converged={})",
        power.eigenvalue,
        power.iterations,
        power.converged
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random connected topologies across the density spectrum: sparse λ₂
    /// matches dense Jacobi.
    #[test]
    fn lambda2_parity_on_random_connected_graphs(
        n in 2usize..65,
        parents in proptest::collection::vec(0usize..64, 63),
        extra in proptest::collection::vec(0u8..2, 0..256),
        density in 0.0f64..1.0,
    ) {
        // Thin the extra edges by the drawn density so the suite covers
        // spanning trees through near-complete graphs.
        let extra: Vec<u8> = extra
            .iter()
            .enumerate()
            .map(|(k, &e)| u8::from(e == 1 && ((k % 17) as f64 / 17.0) < density))
            .collect();
        let edges = connected_edges(n, &parents, &extra);
        let m = metropolis(n, &edges);
        assert_parity(&m, "random-connected");
    }

    /// Masking a random subset of nodes (dropping their edges, keeping
    /// them as isolated self-loop rows) can disconnect the graph; the
    /// sparse solver must still agree — λ₂ = 1 for disconnected patterns.
    #[test]
    fn lambda2_parity_on_disconnected_after_masking(
        n in 4usize..33,
        parents in proptest::collection::vec(0usize..32, 31),
        dead in proptest::collection::vec(0u8..2, 32),
    ) {
        let edges = connected_edges(n, &parents, &[]);
        let live: Vec<(usize, usize)> = edges
            .iter()
            .copied()
            .filter(|&(i, j)| dead[i] == 0 && dead[j] == 0)
            .collect();
        // Masked-out nodes keep identity rows (the monitor's convention
        // for crashed nodes), which leaves the matrix doubly stochastic.
        let m = metropolis(n, &live);
        assert_parity(&m, "masked");
    }
}

#[test]
fn single_live_edge_parity() {
    // After churn only one edge may remain live: a 2-block averaging pair
    // embedded in identity rows. λ₂ = 1 (the isolated nodes), and the
    // spectrum also contains the pair's −1-like mode under full mixing.
    for n in [2usize, 3, 8, 17] {
        let m = metropolis(n, &[(0, 1)]);
        assert_parity(&m, &format!("single-edge n={n}"));
    }
}

#[test]
fn near_degenerate_lambda2_lambda3_parity() {
    // A ring's λ₂/λ₃ pair is exactly degenerate (the cos(2πk/n) modes for
    // k and n−k coincide); one chord breaks the symmetry only slightly,
    // leaving λ₂ ≈ λ₃ with a tiny gap — the worst case for power
    // iteration's eigenvector separation. Rayleigh-quotient convergence
    // must still land within the degenerate pair.
    let n = 16;
    let mut edges: Vec<(usize, usize)> =
        (0..n).map(|i| (i.min((i + 1) % n), i.max((i + 1) % n))).collect();
    edges.push((0, 2));
    let m = metropolis(n, &edges);
    let eigs = symmetric_eigenvalues(&m);
    assert!(
        (eigs[1] - eigs[2]).abs() < 0.05,
        "test graph should be near-degenerate: {} vs {}",
        eigs[1],
        eigs[2]
    );
    assert_parity(&m, "near-degenerate");
}

#[test]
fn exactly_degenerate_pair_parity() {
    // Two disjoint identical components: λ₂ = λ₃ exactly... actually
    // λ₂ = 1 exactly with multiplicity ≥ 2 once both blocks are closed.
    let m = metropolis(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
    assert_parity(&m, "exact-degenerate");
}

#[test]
fn ring_and_torus_like_patterns_parity() {
    for n in [4usize, 9, 16, 25, 36, 64] {
        // Ring.
        let ring: Vec<(usize, usize)> = (0..n).map(|i| (i.min((i + 1) % n), i.max((i + 1) % n))).collect();
        assert_parity(&metropolis(n, &ring), &format!("ring n={n}"));
        // Torus over the square grid when n is a perfect square ≥ 3×3.
        let side = (n as f64).sqrt() as usize;
        if side * side == n && side >= 3 {
            let mut edges = Vec::new();
            let id = |r: usize, c: usize| r * side + c;
            for r in 0..side {
                for c in 0..side {
                    let (a, b) = (id(r, c), id((r + 1) % side, c));
                    edges.push((a.min(b), a.max(b)));
                    let (a, b) = (id(r, c), id(r, (c + 1) % side));
                    edges.push((a.min(b), a.max(b)));
                }
            }
            edges.sort_unstable();
            edges.dedup();
            assert_parity(&metropolis(n, &edges), &format!("torus {side}x{side}"));
        }
    }
}
