//! Dependency-free binary document codec — the checkpoint fast path.
//!
//! Two layers, both versioned and panic-free:
//!
//! * a **container**: magic (`NMXB`) + format version + a length-prefixed
//!   schema tag + named length-prefixed sections
//!   ([`write_document`] / [`read_document`]), and
//! * a **value codec**: a tagged little-endian encoding of [`Json`]
//!   values ([`encode_value`] / [`decode_value`]) with bit-exact float
//!   round-trips (`f64::to_bits`, no text-float hazards) and packed
//!   forms for homogeneous numeric arrays (`f32`/`f64`/`u64`), which is
//!   where checkpoint documents — parameter and momentum vectors — spend
//!   almost all of their bytes.
//!
//! The low-level `write_*` helpers are public so callers that already
//! hold typed state (a node's `&[f32]` parameters, a sampler's indices)
//! can stream the *exact same bytes* the generic encoder would produce
//! for the equivalent [`Json`] value, without materializing that value.
//! [`encode_value`] is itself implemented on those helpers, so the
//! equivalence holds by construction and is asserted in tests.
//!
//! Decoding never panics: every length is checked against the remaining
//! input before use, nesting is depth-limited, and all failures surface
//! as a typed [`CodecError`].

use crate::Json;

/// Magic bytes opening every binary document.
pub const MAGIC: [u8; 4] = *b"NMXB";

/// Container format version written by this codec.
pub const VERSION: u16 = 1;

/// Nesting depth limit for encoded/decoded values. Checkpoint documents
/// nest a handful of levels; the limit only exists so hostile input
/// cannot recurse the decoder off the stack.
const MAX_DEPTH: u32 = 96;

/// Value-encoding tag bytes.
const T_NULL: u8 = 0x00;
const T_FALSE: u8 = 0x01;
const T_TRUE: u8 = 0x02;
const T_INT: u8 = 0x03;
const T_NUM: u8 = 0x04;
const T_STR: u8 = 0x05;
const T_ARR: u8 = 0x06;
const T_OBJ: u8 = 0x07;
const T_ARR_F32: u8 = 0x08;
const T_ARR_F64: u8 = 0x09;
const T_ARR_U64: u8 = 0x0A;

/// A typed binary-codec failure. Every decode path returns one of these;
/// nothing in this module panics on malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before a declared length or fixed-width field
    /// completed.
    Truncated,
    /// The input does not begin with the binary magic.
    NotBinary,
    /// The container's format version is not understood.
    Version(u16),
    /// An unknown value tag byte.
    Tag(u8),
    /// A string was not valid UTF-8.
    Utf8,
    /// A declared length or element count exceeds the remaining input,
    /// or a value is too large for its length prefix.
    Length,
    /// A value or container nests deeper than the codec's limit.
    TooDeep,
    /// Well-formed content followed by unconsumed trailing bytes.
    Trailing,
    /// The container carries a different schema tag than the caller
    /// requires: `(found, expected)`.
    Schema(String, String),
    /// The container has no section with the required name.
    MissingSection(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "binary document truncated"),
            CodecError::NotBinary => write!(f, "not a binary document (missing NMXB magic)"),
            CodecError::Version(v) => write!(f, "unsupported binary format version {v}"),
            CodecError::Tag(t) => write!(f, "unknown binary value tag 0x{t:02X}"),
            CodecError::Utf8 => write!(f, "binary document contains invalid UTF-8"),
            CodecError::Length => write!(f, "binary document declares an impossible length"),
            CodecError::TooDeep => write!(f, "binary value nests too deeply"),
            CodecError::Trailing => write!(f, "trailing bytes after binary value"),
            CodecError::Schema(found, expected) => {
                write!(f, "binary document has schema `{found}`, expected `{expected}`")
            }
            CodecError::MissingSection(name) => {
                write!(f, "binary document is missing section `{name}`")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Whether `bytes` starts with the binary-document magic — the format
/// sniff callers use to dispatch between JSON text and binary decoding.
pub fn is_binary(bytes: &[u8]) -> bool {
    bytes.starts_with(&MAGIC)
}

// ---------------------------------------------------------------------
// Low-level writers. Each emits the exact byte form the generic encoder
// uses; callers with typed state compose them to produce documents
// byte-identical to `encode_value` on the equivalent `Json`.
// ---------------------------------------------------------------------

fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_u64_raw(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_len(out: &mut Vec<u8>, len: usize) -> Result<(), CodecError> {
    let v = u32::try_from(len).map_err(|_| CodecError::Length)?;
    write_u32(out, v);
    Ok(())
}

/// Writes the `null` value.
pub fn write_null(out: &mut Vec<u8>) {
    out.push(T_NULL);
}

/// Writes a boolean value.
pub fn write_bool(out: &mut Vec<u8>, b: bool) {
    out.push(if b { T_TRUE } else { T_FALSE });
}

/// Writes an integer value (16-byte little-endian `i128`).
pub fn write_int(out: &mut Vec<u8>, i: i128) {
    out.push(T_INT);
    out.extend_from_slice(&i.to_le_bytes());
}

/// Writes a float value faithfully (`to_bits`, including non-finite).
pub fn write_f64(out: &mut Vec<u8>, x: f64) {
    out.push(T_NUM);
    out.extend_from_slice(&x.to_bits().to_le_bytes());
}

/// Writes a float the way `f64::to_json` would represent it: finite
/// values bit-exactly, non-finite values as `null`. Mirror this when
/// streaming typed state that would otherwise pass through `ToJson`.
pub fn write_f64_json(out: &mut Vec<u8>, x: f64) {
    if x.is_finite() {
        write_f64(out, x);
    } else {
        write_null(out);
    }
}

/// Writes a string value.
pub fn write_str(out: &mut Vec<u8>, s: &str) -> Result<(), CodecError> {
    out.push(T_STR);
    write_len(out, s.len())?;
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

/// Writes an object key (length-prefixed, untagged — keys are always
/// strings). Follow with the entry's value.
pub fn write_key(out: &mut Vec<u8>, key: &str) -> Result<(), CodecError> {
    write_len(out, key.len())?;
    out.extend_from_slice(key.as_bytes());
    Ok(())
}

/// Opens an object of `count` entries. Follow with `count` ×
/// ([`write_key`] + one value).
pub fn write_obj_header(out: &mut Vec<u8>, count: usize) -> Result<(), CodecError> {
    out.push(T_OBJ);
    write_len(out, count)
}

/// Opens a generic (unpacked) array of `count` values.
pub fn write_arr_header(out: &mut Vec<u8>, count: usize) -> Result<(), CodecError> {
    out.push(T_ARR);
    write_len(out, count)
}

/// Whether a float survives the f64 → f32 → f64 round trip bit-exactly —
/// the packing criterion for [`T_ARR_F32`] arrays.
fn f32_exact(x: f64) -> bool {
    ((x as f32) as f64).to_bits() == x.to_bits()
}

/// Writes an `f32` slice exactly as the generic encoder writes the
/// equivalent `Json` array (`Vec<f32>::to_json`): all-finite slices pack
/// as raw little-endian `f32` bits; a slice with non-finite elements
/// falls back to the generic form with `null` in those positions
/// (mirroring `ToJson`); an empty slice is an empty generic array.
pub fn write_f32_slice(out: &mut Vec<u8>, xs: &[f32]) -> Result<(), CodecError> {
    if xs.is_empty() {
        return write_arr_header(out, 0);
    }
    if xs.iter().all(|x| x.is_finite()) {
        out.push(T_ARR_F32);
        write_len(out, xs.len())?;
        for x in xs {
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        return Ok(());
    }
    write_arr_header(out, xs.len())?;
    for x in xs {
        write_f64_json(out, f64::from(*x));
    }
    Ok(())
}

/// Writes a `u64` slice exactly as the generic encoder writes the
/// equivalent `Json` array of integers (packed little-endian `u64`;
/// empty slices are an empty generic array).
pub fn write_u64_slice(out: &mut Vec<u8>, xs: &[u64]) -> Result<(), CodecError> {
    if xs.is_empty() {
        return write_arr_header(out, 0);
    }
    out.push(T_ARR_U64);
    write_len(out, xs.len())?;
    for x in xs {
        write_u64_raw(out, *x);
    }
    Ok(())
}

/// [`write_u64_slice`] for `usize` element types (index lists).
pub fn write_usize_slice(out: &mut Vec<u8>, xs: &[usize]) -> Result<(), CodecError> {
    if xs.is_empty() {
        return write_arr_header(out, 0);
    }
    out.push(T_ARR_U64);
    write_len(out, xs.len())?;
    for x in xs {
        write_u64_raw(out, *x as u64);
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Generic value encoding.
// ---------------------------------------------------------------------

/// How a `Json` array packs on the wire, decided deterministically from
/// its element types so re-encoding a decoded document reproduces the
/// same bytes.
enum Packing {
    F32,
    F64,
    U64,
    Generic,
}

fn packing(items: &[Json]) -> Packing {
    if items.is_empty() {
        return Packing::Generic;
    }
    let all_num = items.iter().all(|v| matches!(v, Json::Num(_)));
    if all_num {
        let exact = items.iter().all(|v| match v {
            Json::Num(x) => f32_exact(*x),
            _ => false,
        });
        return if exact { Packing::F32 } else { Packing::F64 };
    }
    let all_u64 = items.iter().all(|v| match v {
        Json::Int(i) => u64::try_from(*i).is_ok(),
        _ => false,
    });
    if all_u64 {
        return Packing::U64;
    }
    Packing::Generic
}

/// Encodes one [`Json`] value. Floats are written bit-exactly; arrays of
/// homogeneous numbers pack into raw little-endian lanes. The encoding
/// is canonical: equal values produce equal bytes, and
/// `encode(decode(bytes))` reproduces `bytes` for any valid input.
pub fn encode_value(out: &mut Vec<u8>, v: &Json) -> Result<(), CodecError> {
    encode_at(out, v, 0)
}

fn encode_at(out: &mut Vec<u8>, v: &Json, depth: u32) -> Result<(), CodecError> {
    if depth > MAX_DEPTH {
        return Err(CodecError::TooDeep);
    }
    match v {
        Json::Null => write_null(out),
        Json::Bool(b) => write_bool(out, *b),
        Json::Int(i) => write_int(out, *i),
        Json::Num(x) => write_f64(out, *x),
        Json::Str(s) => write_str(out, s)?,
        Json::Arr(items) => match packing(items) {
            Packing::F32 => {
                out.push(T_ARR_F32);
                write_len(out, items.len())?;
                for v in items {
                    let bits = match v {
                        Json::Num(x) => (*x as f32).to_bits(),
                        _ => 0,
                    };
                    out.extend_from_slice(&bits.to_le_bytes());
                }
            }
            Packing::F64 => {
                out.push(T_ARR_F64);
                write_len(out, items.len())?;
                for v in items {
                    let bits = match v {
                        Json::Num(x) => x.to_bits(),
                        _ => 0,
                    };
                    out.extend_from_slice(&bits.to_le_bytes());
                }
            }
            Packing::U64 => {
                out.push(T_ARR_U64);
                write_len(out, items.len())?;
                for v in items {
                    let word = match v {
                        Json::Int(i) => u64::try_from(*i).unwrap_or_default(),
                        _ => 0,
                    };
                    write_u64_raw(out, word);
                }
            }
            Packing::Generic => {
                write_arr_header(out, items.len())?;
                for item in items {
                    encode_at(out, item, depth + 1)?;
                }
            }
        },
        Json::Obj(entries) => {
            write_obj_header(out, entries.len())?;
            for (key, val) in entries {
                write_key(out, key)?;
                encode_at(out, val, depth + 1)?;
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Decoding.
// ---------------------------------------------------------------------

/// A bounds-checked little-endian reader over a byte slice.
struct Reader<'a> {
    rest: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { rest: bytes }
    }

    fn remaining(&self) -> usize {
        self.rest.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let (head, tail) = self.rest.split_at_checked(n).ok_or(CodecError::Truncated)?;
        self.rest = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        let head = self.take(1)?;
        head.first().copied().ok_or(CodecError::Truncated)
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        let b: [u8; 2] = self.take(2)?.try_into().map_err(|_| CodecError::Truncated)?;
        Ok(u16::from_le_bytes(b))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let b: [u8; 4] = self.take(4)?.try_into().map_err(|_| CodecError::Truncated)?;
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        let b: [u8; 8] = self.take(8)?.try_into().map_err(|_| CodecError::Truncated)?;
        Ok(u64::from_le_bytes(b))
    }

    fn i128(&mut self) -> Result<i128, CodecError> {
        let b: [u8; 16] = self.take(16)?.try_into().map_err(|_| CodecError::Truncated)?;
        Ok(i128::from_le_bytes(b))
    }

    fn str(&mut self) -> Result<&'a str, CodecError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| CodecError::Utf8)
    }

    /// Reads an element count declared for items of at least
    /// `min_element_bytes` each, rejecting counts the remaining input
    /// cannot possibly satisfy (so no oversized allocation happens on
    /// hostile input).
    fn count(&mut self, min_element_bytes: usize) -> Result<usize, CodecError> {
        let count = self.u32()? as usize;
        let need = count.checked_mul(min_element_bytes).ok_or(CodecError::Length)?;
        if need > self.remaining() {
            return Err(CodecError::Length);
        }
        Ok(count)
    }
}

/// Decodes one [`Json`] value, requiring the input to be fully consumed.
/// Malformed, truncated, or trailing input yields a typed error; this
/// function never panics.
pub fn decode_value(bytes: &[u8]) -> Result<Json, CodecError> {
    let mut r = Reader::new(bytes);
    let v = decode_at(&mut r, 0)?;
    if r.remaining() != 0 {
        return Err(CodecError::Trailing);
    }
    Ok(v)
}

fn decode_at(r: &mut Reader<'_>, depth: u32) -> Result<Json, CodecError> {
    if depth > MAX_DEPTH {
        return Err(CodecError::TooDeep);
    }
    let tag = r.u8()?;
    match tag {
        T_NULL => Ok(Json::Null),
        T_FALSE => Ok(Json::Bool(false)),
        T_TRUE => Ok(Json::Bool(true)),
        T_INT => Ok(Json::Int(r.i128()?)),
        T_NUM => Ok(Json::Num(f64::from_bits(r.u64()?))),
        T_STR => Ok(Json::Str(r.str()?.to_string())),
        T_ARR => {
            let count = r.count(1)?;
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(decode_at(r, depth + 1)?);
            }
            Ok(Json::Arr(items))
        }
        T_OBJ => {
            let count = r.count(5)?;
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let key = r.str()?.to_string();
                let val = decode_at(r, depth + 1)?;
                entries.push((key, val));
            }
            Ok(Json::Obj(entries))
        }
        T_ARR_F32 => {
            let count = r.count(4)?;
            let bytes = r.take(count * 4)?;
            let items = bytes
                .chunks_exact(4)
                .map(|c| {
                    let b: [u8; 4] = c.try_into().unwrap_or_default();
                    Json::Num(f64::from(f32::from_bits(u32::from_le_bytes(b))))
                })
                .collect();
            Ok(Json::Arr(items))
        }
        T_ARR_F64 => {
            let count = r.count(8)?;
            let bytes = r.take(count * 8)?;
            let items = bytes
                .chunks_exact(8)
                .map(|c| {
                    let b: [u8; 8] = c.try_into().unwrap_or_default();
                    Json::Num(f64::from_bits(u64::from_le_bytes(b)))
                })
                .collect();
            Ok(Json::Arr(items))
        }
        T_ARR_U64 => {
            let count = r.count(8)?;
            let bytes = r.take(count * 8)?;
            let items = bytes
                .chunks_exact(8)
                .map(|c| {
                    let b: [u8; 8] = c.try_into().unwrap_or_default();
                    Json::Int(i128::from(u64::from_le_bytes(b)))
                })
                .collect();
            Ok(Json::Arr(items))
        }
        other => Err(CodecError::Tag(other)),
    }
}

// ---------------------------------------------------------------------
// Container.
// ---------------------------------------------------------------------

/// Assembles a complete binary document: magic, version, schema tag, and
/// the named sections in the given order. Section payloads are opaque
/// bytes (typically [`encode_value`] output or packed records) built in
/// their own buffers — assembly is a straight concatenation with no
/// backpatching.
pub fn write_document(
    out: &mut Vec<u8>,
    schema: &str,
    sections: &[(&str, &[u8])],
) -> Result<(), CodecError> {
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    write_len(out, schema.len())?;
    out.extend_from_slice(schema.as_bytes());
    write_len(out, sections.len())?;
    for (name, payload) in sections {
        write_len(out, name.len())?;
        out.extend_from_slice(name.as_bytes());
        let len = u64::try_from(payload.len()).map_err(|_| CodecError::Length)?;
        write_u64_raw(out, len);
        out.extend_from_slice(payload);
    }
    Ok(())
}

/// A parsed binary document: the schema tag plus zero-copy views of its
/// sections, in wire order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryDocument<'a> {
    /// The document's schema tag.
    pub schema: &'a str,
    sections: Vec<(&'a str, &'a [u8])>,
}

impl<'a> BinaryDocument<'a> {
    /// The payload of the first section named `name`, if present.
    pub fn section(&self, name: &str) -> Option<&'a [u8]> {
        self.sections.iter().find(|(n, _)| *n == name).map(|(_, p)| *p)
    }

    /// Like [`BinaryDocument::section`], but a typed error when absent.
    pub fn require(&self, name: &str) -> Result<&'a [u8], CodecError> {
        self.section(name).ok_or_else(|| CodecError::MissingSection(name.to_string()))
    }

    /// The sections in wire order.
    pub fn sections(&self) -> impl Iterator<Item = (&'a str, &'a [u8])> + '_ {
        self.sections.iter().copied()
    }

    /// Requires the document to carry exactly `schema`, as a typed error.
    pub fn check_schema(&self, schema: &str) -> Result<(), CodecError> {
        if self.schema == schema {
            Ok(())
        } else {
            Err(CodecError::Schema(self.schema.to_string(), schema.to_string()))
        }
    }
}

/// Parses a binary document's container framing (sections are *not*
/// value-decoded). Rejects bad magic, unknown versions, truncation, and
/// trailing bytes with typed errors; never panics.
pub fn read_document(bytes: &[u8]) -> Result<BinaryDocument<'_>, CodecError> {
    if !is_binary(bytes) {
        return Err(CodecError::NotBinary);
    }
    let mut r = Reader::new(bytes);
    let _magic = r.take(MAGIC.len())?;
    let version = r.u16()?;
    if version != VERSION {
        return Err(CodecError::Version(version));
    }
    let schema = r.str()?;
    let count = r.count(13)?; // name len (4) + u64 payload len (8) + ≥1 name byte
    let mut sections = Vec::with_capacity(count);
    for _ in 0..count {
        let name = r.str()?;
        let len = r.u64()?;
        let len = usize::try_from(len).map_err(|_| CodecError::Length)?;
        let payload = r.take(len)?;
        sections.push((name, payload));
    }
    if r.remaining() != 0 {
        return Err(CodecError::Trailing);
    }
    Ok(BinaryDocument { schema, sections })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ToJson;

    fn roundtrip(v: &Json) -> Json {
        let mut buf = Vec::new();
        encode_value(&mut buf, v).unwrap();
        decode_value(&buf).unwrap()
    }

    #[test]
    fn scalars_roundtrip_bit_exactly() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(-1),
            Json::Int(i128::MAX),
            Json::Int(i128::MIN),
            Json::Num(0.1),
            Json::Num(-0.0),
            Json::Num(f64::MAX),
            Json::Num(5e-324),
            Json::Str(String::new()),
            Json::Str("héllo\n".into()),
        ] {
            assert_eq!(roundtrip(&v).to_string(), v.to_string());
        }
        // Bit-level check for the signed zero (text form can't see it).
        match roundtrip(&Json::Num(-0.0)) {
            Json::Num(x) => assert_eq!(x.to_bits(), (-0.0f64).to_bits()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn f32_arrays_pack_and_roundtrip() {
        let xs: Vec<f32> = vec![0.1, -2.5, 3.25e-8, f32::MIN_POSITIVE];
        let v = xs.to_json();
        let mut buf = Vec::new();
        encode_value(&mut buf, &v).unwrap();
        // tag + count + 4 bytes per lane.
        assert_eq!(buf.len(), 1 + 4 + 4 * xs.len());
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn f64_and_u64_arrays_pack() {
        let v = vec![0.1f64, 0.2, 0.3].to_json();
        let mut buf = Vec::new();
        encode_value(&mut buf, &v).unwrap();
        assert_eq!(buf.len(), 1 + 4 + 8 * 3);
        assert_eq!(roundtrip(&v), v);

        let v = vec![0u64, 7, u64::MAX].to_json();
        let mut buf = Vec::new();
        encode_value(&mut buf, &v).unwrap();
        assert_eq!(buf.len(), 1 + 4 + 8 * 3);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn mixed_and_empty_arrays_stay_generic() {
        for v in [
            Json::Arr(vec![]),
            Json::Arr(vec![Json::Int(1), Json::Num(2.0)]),
            Json::Arr(vec![Json::Int(-1), Json::Int(2)]),
            Json::Arr(vec![Json::Null, Json::Num(1.0)]),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn canonical_reencode_is_byte_identical() {
        let doc = Json::obj([
            ("params", vec![0.5f32, -1.25].to_json()),
            ("clock", 12.75f64.to_json()),
            ("indices", vec![3usize, 1, 4].to_json()),
            ("nested", Json::obj([("deep", Json::Arr(vec![Json::Str("x".into())]))])),
        ]);
        let mut a = Vec::new();
        encode_value(&mut a, &doc).unwrap();
        let decoded = decode_value(&a).unwrap();
        let mut b = Vec::new();
        encode_value(&mut b, &decoded).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn typed_writers_match_generic_encoder() {
        // The low-level writers must stream the same bytes the generic
        // encoder produces from the equivalent Json value.
        let params = [0.5f32, -7.0, 0.125];
        let indices = [9usize, 0, 42];
        let words = [1u64, 2, 3, 4];
        let json = Json::obj([
            ("params", params.as_slice().to_json()),
            ("indices", indices.as_slice().to_json()),
            ("rng", words.as_slice().to_json()),
            ("clock", 3.5f64.to_json()),
            ("bad", f64::NAN.to_json()),
            ("steps", 7usize.to_json()),
        ]);
        let mut generic = Vec::new();
        encode_value(&mut generic, &json).unwrap();

        let mut typed = Vec::new();
        write_obj_header(&mut typed, 6).unwrap();
        write_key(&mut typed, "params").unwrap();
        write_f32_slice(&mut typed, &params).unwrap();
        write_key(&mut typed, "indices").unwrap();
        write_usize_slice(&mut typed, &indices).unwrap();
        write_key(&mut typed, "rng").unwrap();
        write_u64_slice(&mut typed, &words).unwrap();
        write_key(&mut typed, "clock").unwrap();
        write_f64_json(&mut typed, 3.5);
        write_key(&mut typed, "bad").unwrap();
        write_f64_json(&mut typed, f64::NAN);
        write_key(&mut typed, "steps").unwrap();
        write_int(&mut typed, 7);
        assert_eq!(generic, typed);
    }

    #[test]
    fn nonfinite_f32_slice_matches_tojson_fallback() {
        let xs = [1.0f32, f32::INFINITY, -0.5];
        let mut typed = Vec::new();
        write_f32_slice(&mut typed, &xs).unwrap();
        let mut generic = Vec::new();
        encode_value(&mut generic, &xs.as_slice().to_json()).unwrap();
        assert_eq!(typed, generic);
    }

    #[test]
    fn container_roundtrips_and_sniffs() {
        let mut meta = Vec::new();
        encode_value(&mut meta, &Json::obj([("v", Json::Int(3))])).unwrap();
        let mut out = Vec::new();
        write_document(&mut out, "test/doc/v1", &[("meta", &meta), ("raw", b"abc")])
            .unwrap();
        assert!(is_binary(&out));
        let doc = read_document(&out).unwrap();
        assert_eq!(doc.schema, "test/doc/v1");
        doc.check_schema("test/doc/v1").unwrap();
        assert_eq!(doc.section("raw"), Some(b"abc".as_slice()));
        assert_eq!(decode_value(doc.require("meta").unwrap()).unwrap().to_string(), "{\"v\":3}");
        assert!(matches!(doc.check_schema("other"), Err(CodecError::Schema(_, _))));
        assert!(matches!(doc.require("gone"), Err(CodecError::MissingSection(_))));
        assert!(!is_binary(b"{\"json\":true}"));
        assert!(matches!(read_document(b"{}"), Err(CodecError::NotBinary)));
    }

    #[test]
    fn truncation_yields_typed_errors_at_every_prefix() {
        let doc = Json::obj([
            ("params", vec![0.5f32, -1.0].to_json()),
            ("words", vec![1u64, 2].to_json()),
            ("s", Json::Str("text".into())),
        ]);
        let mut buf = Vec::new();
        encode_value(&mut buf, &doc).unwrap();
        for cut in 0..buf.len() {
            let head = &buf[..cut];
            assert!(decode_value(head).is_err(), "prefix of {cut} bytes decoded");
        }
        let mut out = Vec::new();
        write_document(&mut out, "t/v1", &[("a", &buf)]).unwrap();
        for cut in 0..out.len() {
            assert!(read_document(&out[..cut]).is_err(), "container prefix {cut} parsed");
        }
    }

    #[test]
    fn hostile_lengths_do_not_allocate_or_panic() {
        // A T_ARR claiming u32::MAX elements with no bytes behind it.
        let mut evil = vec![T_ARR];
        evil.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_value(&evil), Err(CodecError::Length));
        // Packed array with an impossible element count.
        let mut evil = vec![T_ARR_F64];
        evil.extend_from_slice(&u32::MAX.to_le_bytes());
        evil.extend_from_slice(&[0u8; 16]);
        assert_eq!(decode_value(&evil), Err(CodecError::Length));
        // Unknown tag.
        assert_eq!(decode_value(&[0x7F]), Err(CodecError::Tag(0x7F)));
        // Trailing garbage.
        assert_eq!(decode_value(&[T_NULL, 0]), Err(CodecError::Trailing));
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let mut v = Json::Null;
        for _ in 0..200 {
            v = Json::Arr(vec![v]);
        }
        let mut buf = Vec::new();
        assert_eq!(encode_value(&mut buf, &v), Err(CodecError::TooDeep));
        // Hand-build the equivalent wire form to hit the decoder's limit.
        let mut bytes = Vec::new();
        for _ in 0..200 {
            bytes.push(T_ARR);
            bytes.extend_from_slice(&1u32.to_le_bytes());
        }
        bytes.push(T_NULL);
        assert_eq!(decode_value(&bytes), Err(CodecError::TooDeep));
    }
}
