//! # netmax-json
//!
//! A minimal, dependency-free JSON layer for the NetMax workspace: a
//! [`Json`] value model, a strict parser ([`Json::parse`]), compact and
//! pretty writers, and the [`ToJson`] / [`FromJson`] conversion traits
//! every serializable experiment type implements.
//!
//! The build environment has no registry access, so the workspace's
//! `serde` dependency is an API-shim whose derives expand to nothing (see
//! `shims/README.md`). Experiment specs and run artifacts still need real
//! on-disk JSON — `netmax-bench run --json`, the spec registry, and the
//! `BENCH_*.json` performance baselines all round-trip through this crate.
//! When registry access becomes available the `ToJson`/`FromJson` impls
//! can be swapped for `serde_json` without touching the schema.
//!
//! Integers are kept in an [`i128`] variant so `u64` seeds survive the
//! round-trip exactly instead of being squeezed through an `f64`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
mod parse;
mod write;

pub use codec::CodecError;
pub use parse::JsonError;

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written without fraction or exponent; `i128` so the full
    /// `u64` and `i64` ranges round-trip losslessly.
    Int(i128),
    /// A fractional or exponent-form number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved (and is the order written
    /// back out), which keeps artifacts diffable.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks a key up in an object, as an error-carrying operation.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key).ok_or_else(|| JsonError::schema(format!("missing field `{key}`")))
    }

    /// The value as a float; accepts both number variants, and `null` maps
    /// to NaN (the writer emits `null` for non-finite floats).
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Num(x) => Ok(*x),
            Json::Int(i) => Ok(*i as f64),
            Json::Null => Ok(f64::NAN),
            other => Err(JsonError::schema(format!("expected number, got {}", other.kind()))),
        }
    }

    /// The value as an `i128` (integral numbers only).
    pub fn as_int(&self) -> Result<i128, JsonError> {
        match self {
            Json::Int(i) => Ok(*i),
            other => Err(JsonError::schema(format!("expected integer, got {}", other.kind()))),
        }
    }

    /// The value as a `u64`.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        u64::try_from(self.as_int()?)
            .map_err(|_| JsonError::schema("integer out of u64 range".to_string()))
    }

    /// The value as a `usize`.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        usize::try_from(self.as_int()?)
            .map_err(|_| JsonError::schema("integer out of usize range".to_string()))
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::schema(format!("expected bool, got {}", other.kind()))),
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(JsonError::schema(format!("expected string, got {}", other.kind()))),
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(JsonError::schema(format!("expected array, got {}", other.kind()))),
        }
    }

    /// The value's type name, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) => "integer",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Parses a JSON document (strict: one value, nothing trailing).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        parse::parse(text)
    }

    /// Writes the value as a pretty-printed document (2-space indent,
    /// trailing newline) — the format of every artifact this workspace
    /// commits.
    pub fn pretty(&self) -> String {
        write::pretty(self)
    }
}

impl fmt::Display for Json {
    /// Compact single-line form.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write::compact(self, f)
    }
}

/// Conversion into a [`Json`] value.
///
/// The offline stand-in for `serde::Serialize`: implemented by hand for
/// each spec/report type so the schema is explicit and reviewable.
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] value.
///
/// The offline stand-in for `serde::Deserialize`.
pub trait FromJson: Sized {
    /// Reconstructs `Self`, reporting schema mismatches as errors.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        if self.is_finite() {
            Json::Num(*self)
        } else {
            // JSON has no NaN/inf literal; `null` is the conventional spill.
            Json::Null
        }
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64()
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        // Widening to f64 is exact, and the f64 writer emits the shortest
        // round-tripping decimal, so `f32 → Json → f32` is lossless.
        f64::from(*self).to_json()
    }
}

impl FromJson for f32 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.as_f64()? as f32)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str().map(str::to_string)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i128)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                <$t>::try_from(v.as_int()?).map_err(|_| {
                    JsonError::schema(concat!("integer out of ", stringify!($t), " range").to_string())
                })
            }
        }
    )*};
}

impl_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(x) => x.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_arr()?.iter().map(T::from_json).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-7", "3.25", "\"hi\\n\"", "[]", "{}"] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.to_string()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn u64_seed_survives_exactly() {
        let seed = u64::MAX - 3;
        let v = seed.to_json();
        let text = v.to_string();
        assert_eq!(u64::from_json(&Json::parse(&text).unwrap()).unwrap(), seed);
    }

    #[test]
    fn nested_document_round_trips() {
        let text = r#"{"name":"fig08","seeds":[7,8],"cfg":{"epochs":12.5,"quick":false},"note":null}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.field("name").unwrap().as_str().unwrap(), "fig08");
        assert_eq!(v.get("seeds").unwrap().as_arr().unwrap().len(), 2);
        let reparsed = Json::parse(&v.pretty()).unwrap();
        assert_eq!(reparsed, v);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.to_json(), Json::Null);
        assert!(f64::from_json(&Json::Null).unwrap().is_nan());
        let x = 0.1f64 + 0.2;
        let back = f64::from_json(&Json::parse(&x.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, x, "shortest-round-trip Display must reparse exactly");
    }

    #[test]
    fn schema_errors_name_the_problem() {
        let v = Json::parse(r#"{"a": 1}"#).unwrap();
        let err = v.field("b").unwrap_err().to_string();
        assert!(err.contains("missing field `b`"), "{err}");
        let err = v.field("a").unwrap().as_str().unwrap_err().to_string();
        assert!(err.contains("expected string"), "{err}");
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "01", "1 2", "\"\\q\"", "nul"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn f32_round_trips_exactly() {
        for x in [0.1f32, -3.625, f32::MIN_POSITIVE, 1.0e30, 0.0] {
            let back = f32::from_json(&Json::parse(&x.to_json().to_string()).unwrap()).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
        assert!(f32::from_json(&Json::Null).unwrap().is_nan());
    }

    #[test]
    fn option_and_vec_round_trip() {
        let xs: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let v = xs.to_json();
        let back: Vec<Option<u32>> = Vec::from_json(&Json::parse(&v.to_string()).unwrap()).unwrap();
        assert_eq!(back, xs);
    }
}
