//! Strict recursive-descent JSON parser.

use crate::Json;
use std::fmt;

/// Parse or schema error, with the byte offset where parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    /// Byte offset into the input for parse errors; `None` for schema
    /// (conversion) errors raised on an already-parsed value.
    offset: Option<usize>,
}

impl JsonError {
    pub(crate) fn parse(message: impl Into<String>, offset: usize) -> Self {
        Self { message: message.into(), offset: Some(offset) }
    }

    /// A conversion error on an already-parsed value.
    pub fn schema(message: String) -> Self {
        Self { message, offset: None }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(at) => write!(f, "json parse error at byte {at}: {}", self.message),
            None => write!(f, "json schema error: {}", self.message),
        }
    }
}

impl std::error::Error for JsonError {}

pub(crate) fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser { text, bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::parse("trailing characters after value", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    /// The input as a `&str`, for panic-free scalar decoding (`pos` stays
    /// on character boundaries by construction; `str::get` makes that
    /// assumption fallible instead of a bounds panic).
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::parse(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => {
                Err(JsonError::parse(format!("unexpected character `{}`", other as char), self.pos))
            }
            None => Err(JsonError::parse("unexpected end of input", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes.get(self.pos..).is_some_and(|r| r.starts_with(word.as_bytes())) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::parse(format!("expected `{word}`"), self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(JsonError::parse("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::parse("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::parse("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError::parse("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(JsonError::parse(
                                format!("invalid escape `\\{}`", other as char),
                                self.pos - 1,
                            ))
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(JsonError::parse("unescaped control character", self.pos))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    match self.text.get(self.pos..).and_then(|s| s.chars().next()) {
                        Some(c) => {
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        None => {
                            return Err(JsonError::parse("malformed UTF-8 sequence", self.pos))
                        }
                    }
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        // Combine UTF-16 surrogate pairs (`😀` style).
        let code = if (0xD800..0xDC00).contains(&first) {
            if self.bytes.get(self.pos..).is_some_and(|r| r.starts_with(b"\\u")) {
                self.pos += 2;
                let second = self.hex4()?;
                if !(0xDC00..0xE000).contains(&second) {
                    return Err(JsonError::parse("invalid low surrogate", self.pos));
                }
                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
            } else {
                return Err(JsonError::parse("lone UTF-16 surrogate", self.pos));
            }
        } else {
            first
        };
        char::from_u32(code)
            .ok_or_else(|| JsonError::parse("invalid unicode escape", self.pos))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| JsonError::parse("truncated \\u escape", self.pos))?;
            let digit = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => return Err(JsonError::parse("invalid hex digit in \\u escape", self.pos)),
            };
            code = code * 16 + u32::from(digit);
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone or a non-zero-led digit run.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(JsonError::parse("leading zero in number", start));
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(JsonError::parse("invalid number", start)),
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::parse("digits required after decimal point", self.pos));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::parse("digits required in exponent", self.pos));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let Some(text) = self.text.get(start..self.pos) else {
            return Err(JsonError::parse("invalid number", start));
        };
        if fractional {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| JsonError::parse(format!("bad float: {e}"), start))
        } else {
            // Fall back to f64 if an integer literal overflows i128.
            match text.parse::<i128>() {
                Ok(i) => Ok(Json::Int(i)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::Num)
                    .map_err(|e| JsonError::parse(format!("bad number: {e}"), start)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_classify_as_int_or_float() {
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        assert_eq!(parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(parse("42.0").unwrap(), Json::Num(42.0));
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse(r#""é""#).unwrap(), Json::Str("é".into()));
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert!(parse(r#""\uD83D""#).is_err(), "lone surrogate must fail");
    }

    #[test]
    fn offsets_point_at_the_error() {
        let err = parse("[1, x]").unwrap_err();
        assert!(err.to_string().contains("byte 4"), "{err}");
    }
}
