//! Compact and pretty JSON writers.
//!
//! Floats are written with Rust's `Display`, which emits the shortest
//! string that parses back to the same `f64` — so write→parse is exact.
//! Non-finite floats never reach this layer (`ToJson for f64` maps them
//! to `null`), but a direct `Json::Num(NAN)` is still written as `null`
//! rather than producing an invalid document.

use crate::Json;
use std::fmt;

pub(crate) fn compact(v: &Json, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match v {
        Json::Null => f.write_str("null"),
        Json::Bool(b) => write!(f, "{b}"),
        Json::Int(i) => write!(f, "{i}"),
        Json::Num(x) => write_f64(*x, f),
        Json::Str(s) => write_escaped(s, f),
        Json::Arr(items) => {
            f.write_str("[")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                compact(item, f)?;
            }
            f.write_str("]")
        }
        Json::Obj(pairs) => {
            f.write_str("{")?;
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write_escaped(k, f)?;
                f.write_str(":")?;
                compact(val, f)?;
            }
            f.write_str("}")
        }
    }
}

pub(crate) fn pretty(v: &Json) -> String {
    let mut out = String::new();
    pretty_into(v, 0, &mut out);
    out.push('\n');
    out
}

fn pretty_into(v: &Json, indent: usize, out: &mut String) {
    match v {
        Json::Arr(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                push_indent(indent + 1, out);
                pretty_into(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Json::Obj(pairs) if !pairs.is_empty() => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                push_indent(indent + 1, out);
                out.push_str(&format!("{}: ", Json::Str(k.clone())));
                pretty_into(val, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

fn push_indent(levels: usize, out: &mut String) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_f64(x: f64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if !x.is_finite() {
        return f.write_str("null");
    }
    // `Display` for an integral f64 prints e.g. `42`, which would reparse
    // as Json::Int and break PartialEq round-trips — force a `.0`.
    if x == x.trunc() && x.abs() < 1e15 {
        write!(f, "{x:.1}")
    } else {
        write!(f, "{x}")
    }
}

fn write_escaped(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{0008}' => f.write_str("\\b")?,
            '\u{000C}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integral_floats_keep_their_point() {
        assert_eq!(Json::Num(42.0).to_string(), "42.0");
        assert_eq!(Json::parse("42.0").unwrap(), Json::Num(42.0));
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
    }

    #[test]
    fn control_chars_escape() {
        let s = Json::Str("a\"b\\c\nd\u{0001}".into()).to_string();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(Json::parse(&s).unwrap(), Json::Str("a\"b\\c\nd\u{0001}".into()));
    }

    #[test]
    fn pretty_is_reparsable_and_indented() {
        let v = Json::parse(r#"{"a":[1,2],"b":{"c":true}}"#).unwrap();
        let p = v.pretty();
        assert!(p.contains("  \"a\": ["));
        assert_eq!(Json::parse(&p).unwrap(), v);
    }

    #[test]
    fn huge_floats_do_not_get_point_forced() {
        let x = 1e300;
        let text = Json::Num(x).to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.as_f64().unwrap(), x);
    }
}
