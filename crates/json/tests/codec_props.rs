//! Property tests for the binary document codec: canonical bit-exact
//! round-trips over arbitrary checkpoint-shaped values, and panic-freedom
//! on arbitrary / corrupted / truncated input bytes.

use netmax_json::codec;
use netmax_json::Json;
use proptest::prelude::*;
use proptest::{collection, TestRng};
use rand::Rng;

/// Strategy for arbitrary depth-bounded [`Json`] values, biased toward
/// the shapes checkpoints contain: full-range integers, arbitrary `f64`
/// bit patterns (subnormals, NaN payloads, infinities), and homogeneous
/// numeric arrays that exercise the packed f32/f64/u64 lanes.
struct ArbJson {
    max_depth: u32,
}

impl Strategy for ArbJson {
    type Value = Json;

    fn generate(&self, rng: &mut TestRng) -> Json {
        gen_json(rng, self.max_depth)
    }
}

fn gen_json(rng: &mut TestRng, depth: u32) -> Json {
    let pick = if depth == 0 { rng.gen_range(0..5) } else { rng.gen_range(0..9) };
    match pick {
        0 => Json::Null,
        1 => Json::Bool(rng.gen_range(0..2) == 1),
        2 => match rng.gen_range(0..3) {
            0 => Json::Int(i128::from(rng.gen::<u64>())),
            1 => Json::Int(-i128::from(rng.gen::<u64>())),
            _ => Json::Int(i128::from(rng.gen::<u64>() as i64)),
        },
        3 => Json::Num(f64::from_bits(rng.gen::<u64>())),
        4 => {
            let len = rng.gen_range(0..12);
            Json::Str((0..len).map(|_| char::from(rng.gen_range(32u8..127))).collect())
        }
        // Homogeneous numeric arrays: candidates for the packed lanes.
        5 => {
            let len = rng.gen_range(0..10);
            match rng.gen_range(0..3) {
                0 => Json::Arr(
                    (0..len)
                        .map(|_| Json::Num(f64::from(f32::from_bits(rng.gen::<u32>()))))
                        .collect(),
                ),
                1 => Json::Arr(
                    (0..len).map(|_| Json::Num(f64::from_bits(rng.gen::<u64>()))).collect(),
                ),
                _ => Json::Arr((0..len).map(|_| Json::Int(i128::from(rng.gen::<u64>()))).collect()),
            }
        }
        6 | 7 => {
            let len = rng.gen_range(0..6);
            Json::Arr((0..len).map(|_| gen_json(rng, depth - 1)).collect())
        }
        _ => {
            let len = rng.gen_range(0..6);
            Json::Obj((0..len).map(|i| (format!("k{i}"), gen_json(rng, depth - 1))).collect())
        }
    }
}

/// Strategy for an arbitrary byte vector (the shim's ranges are
/// half-open, so draw `u16` and narrow).
fn bytes(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    collection::vec(0u16..256, len).prop_map(|v| v.into_iter().map(|b| b as u8).collect())
}

/// `true` when the value contains no NaN — the one case where `Json`'s
/// derived `PartialEq` cannot witness a bit-exact round-trip.
fn nan_free(v: &Json) -> bool {
    match v {
        Json::Num(x) => !x.is_nan(),
        Json::Arr(items) => items.iter().all(nan_free),
        Json::Obj(entries) => entries.iter().all(|(_, v)| nan_free(v)),
        _ => true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Canonical bit-exact round-trip: encoding, decoding, and re-encoding
    /// an arbitrary value reproduces the original bytes exactly — packed
    /// lanes, NaN payloads, and negative zero included. For NaN-free
    /// values the decoded structure is also `==` the original.
    #[test]
    fn value_round_trip_is_bit_exact(v in ArbJson { max_depth: 3 }) {
        let mut bytes = Vec::new();
        codec::encode_value(&mut bytes, &v).unwrap();
        let decoded = codec::decode_value(&bytes).unwrap();
        let mut again = Vec::new();
        codec::encode_value(&mut again, &decoded).unwrap();
        prop_assert_eq!(&bytes, &again, "re-encode changed bytes for {}", v);
        if nan_free(&v) {
            prop_assert_eq!(&decoded, &v);
        }
    }

    /// Document containers round-trip: schema and every section payload
    /// come back verbatim, and every *proper prefix* of the container is
    /// a typed error, never a panic or a silent success.
    #[test]
    fn document_round_trip_and_truncation(
        payloads in collection::vec(bytes(0..40), 1..5),
    ) {
        let names: Vec<String> = (0..payloads.len()).map(|i| format!("s{i}")).collect();
        let sections: Vec<(&str, &[u8])> = names
            .iter()
            .map(String::as_str)
            .zip(payloads.iter().map(Vec::as_slice))
            .collect();
        let mut bytes = Vec::new();
        codec::write_document(&mut bytes, "netmax-test/doc/v1", &sections).unwrap();
        prop_assert!(codec::is_binary(&bytes));
        let doc = codec::read_document(&bytes).unwrap();
        prop_assert_eq!(doc.schema, "netmax-test/doc/v1");
        for (name, payload) in &sections {
            prop_assert_eq!(doc.require(name).unwrap(), *payload);
        }
        for cut in 0..bytes.len() {
            prop_assert!(
                codec::read_document(&bytes[..cut]).is_err(),
                "prefix of {} bytes parsed as a document", cut
            );
        }
    }

    /// Decoding arbitrary bytes never panics — both entry points return
    /// typed errors (or a legitimate value) for any input.
    #[test]
    fn arbitrary_bytes_never_panic(raw in bytes(0..300)) {
        let _ = codec::decode_value(&raw);
        let _ = codec::read_document(&raw);
    }

    /// Single-byte corruption of a valid encoding never panics, and every
    /// proper prefix of a valid value encoding is a typed error.
    #[test]
    fn corrupted_and_truncated_values_never_panic(
        v in ArbJson { max_depth: 2 },
        flip_pos in 0usize..10_000,
        flip_bit in 0u32..8,
    ) {
        let mut bytes = Vec::new();
        codec::encode_value(&mut bytes, &v).unwrap();
        for cut in 0..bytes.len() {
            prop_assert!(
                codec::decode_value(&bytes[..cut]).is_err(),
                "proper prefix of {} bytes decoded successfully", cut
            );
        }
        if !bytes.is_empty() {
            let pos = flip_pos % bytes.len();
            bytes[pos] ^= 1 << flip_bit;
            let _ = codec::decode_value(&bytes);
        }
    }
}
