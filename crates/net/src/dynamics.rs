//! Composable per-link dynamics.
//!
//! The paper evaluates exactly one dynamic regime — a single slow link
//! re-drawn on a fixed period — but a network substrate worth stress-
//! testing against needs a *vocabulary* of dynamics, not a hardcoded
//! special case. [`LinkDynamics`] is that vocabulary: a pure-data,
//! JSON-round-tripping description of how every link's quality evolves
//! over virtual time, evaluated by [`ElasticNetwork`]:
//!
//! * [`LinkDynamics::Static`] — links never change.
//! * [`LinkDynamics::PeriodicRedraw`] — the paper's §V-A regime (one
//!   random link slowed 2×–100×, re-drawn every window), bit-for-bit
//!   identical to the historical `HeterogeneousDynamicNetwork` behaviour.
//! * [`LinkDynamics::MarkovModulated`] — every link walks its own Markov
//!   chain over a set of slowdown states; short dwell times produce
//!   fast-drifting links that stress the Monitor → LP → policy loop far
//!   harder than the paper's single slow link.
//! * [`LinkDynamics::Trace`] — an explicit piecewise-constant schedule of
//!   per-link slowdown windows loaded from JSON (replay of a measured
//!   trace).
//!
//! Every variant is a **pure function of `(seed, link, t)`**: querying a
//! factor never mutates anything, so simulations stay exactly
//! reproducible and costs may be queried speculatively in any order.
//!
//! [`ElasticNetwork`]: crate::conditions::ElasticNetwork

use crate::conditions::SlowdownConfig;
use netmax_json::{FromJson, Json, JsonError, ToJson};
use serde::{Deserialize, Serialize};

/// SplitMix64: deterministic, platform-independent hash step (shared by
/// every dynamics variant so schedules are identical across platforms).
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The unordered pair slowed during `window` of the periodic-redraw
/// regime, and its factor — the paper's "randomly slow down one of the
/// communication links by 2× to 100×, change it every 5 minutes".
///
/// Exposed so tests can assert schedule properties without a network.
pub fn periodic_slowed_pair(
    cfg: &SlowdownConfig,
    seed: u64,
    n: usize,
    window: u64,
) -> (usize, usize, f64) {
    let w = if cfg.dynamic { window } else { 0 };
    let h1 = splitmix64(seed ^ w.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let h2 = splitmix64(h1);
    let h3 = splitmix64(h2);
    // Draw an unordered pair (i < j) uniformly.
    let i = (h1 % n as u64) as usize;
    let mut j = (h2 % (n as u64 - 1)) as usize;
    if j >= i {
        j += 1;
    }
    let (a, b) = if i < j { (i, j) } else { (j, i) };
    let u = (h3 >> 11) as f64 / (1u64 << 53) as f64; // uniform [0,1)
    let factor = cfg.min_factor + u * (cfg.max_factor - cfg.min_factor);
    (a, b, factor)
}

/// Markov-modulated bandwidth configuration: every link independently
/// walks a Markov chain over `factors`, holding each state for `dwell_s`
/// virtual seconds and transitioning with probability `change_prob` at
/// each window boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarkovConfig {
    /// The slowdown states (each ≥ 1; include 1.0 for a healthy state).
    pub factors: Vec<f64>,
    /// Seconds of virtual time each state is held before a transition is
    /// considered.
    pub dwell_s: f64,
    /// Probability of leaving the current state at a window boundary
    /// (the new state is drawn uniformly from `factors`).
    pub change_prob: f64,
}

impl MarkovConfig {
    /// A slowly drifting regime: mostly healthy, occasionally degraded,
    /// states held for minutes.
    pub fn slow_drift() -> Self {
        Self { factors: vec![1.0, 4.0, 16.0], dwell_s: 60.0, change_prob: 0.5 }
    }

    /// A fast-drifting regime: the same states re-drawn every few
    /// seconds — faster than any monitor period, the worst case for
    /// adaptation.
    pub fn fast_drift() -> Self {
        Self { factors: vec![1.0, 4.0, 16.0], dwell_s: 5.0, change_prob: 0.5 }
    }

    /// The state of one link's chain at time `now`. Pure in
    /// `(seed, link_key, now)`, and cheap on the simulation hot path:
    /// each window's transition draw is an independent hash of
    /// `(chain_seed, window)`, so the current state is found by scanning
    /// *backward* to the most recent change window — expected
    /// `1 / change_prob` hash steps, independent of how far the virtual
    /// clock has advanced (a forward replay from window zero would make
    /// late-run queries linearly more expensive).
    fn state_at(&self, chain_seed: u64, now: f64) -> f64 {
        let window = (now / self.dwell_s).floor().max(0.0) as u64;
        let k = self.factors.len() as u64;
        if self.change_prob > 0.0 {
            let mut w = window;
            while w > 0 {
                let h = splitmix64(chain_seed ^ w.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                if u < self.change_prob {
                    // The chain last transitioned at window `w`; the draw
                    // itself determines the state entered.
                    return self.factors[(splitmix64(h) % k) as usize];
                }
                w -= 1;
            }
        }
        // No transition since the start: the initial state.
        self.factors[(splitmix64(chain_seed) % k) as usize]
    }

    fn validate(&self) -> Result<(), String> {
        if self.factors.is_empty() {
            return Err("markov dynamics need at least one state".into());
        }
        if let Some(f) = self.factors.iter().find(|f| !(f.is_finite() && **f >= 1.0)) {
            return Err(format!("markov state factor must be finite and ≥ 1, got {f}"));
        }
        if !(self.dwell_s.is_finite() && self.dwell_s > 0.0) {
            return Err(format!("markov dwell must be finite and positive, got {}", self.dwell_s));
        }
        if !(0.0..=1.0).contains(&self.change_prob) {
            return Err(format!("markov change probability must be in [0, 1], got {}", self.change_prob));
        }
        Ok(())
    }
}

impl ToJson for MarkovConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("factors", self.factors.to_json()),
            ("dwell_s", self.dwell_s.to_json()),
            ("change_prob", self.change_prob.to_json()),
        ])
    }
}

impl FromJson for MarkovConfig {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            factors: Vec::from_json(v.field("factors")?)?,
            dwell_s: f64::from_json(v.field("dwell_s")?)?,
            change_prob: f64::from_json(v.field("change_prob")?)?,
        })
    }
}

/// One window of a trace schedule: the unordered link `{a, b}` is slowed
/// by `factor` during `[start_s, end_s)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceWindow {
    /// One endpoint of the affected link.
    pub a: usize,
    /// The other endpoint.
    pub b: usize,
    /// Window start (inclusive), virtual seconds.
    pub start_s: f64,
    /// Window end (exclusive), virtual seconds.
    pub end_s: f64,
    /// Slowdown factor applied during the window (≥ 1).
    pub factor: f64,
}

impl ToJson for TraceWindow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("a", self.a.to_json()),
            ("b", self.b.to_json()),
            ("start_s", self.start_s.to_json()),
            ("end_s", self.end_s.to_json()),
            ("factor", self.factor.to_json()),
        ])
    }
}

impl FromJson for TraceWindow {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            a: usize::from_json(v.field("a")?)?,
            b: usize::from_json(v.field("b")?)?,
            start_s: f64::from_json(v.field("start_s")?)?,
            end_s: f64::from_json(v.field("end_s")?)?,
            factor: f64::from_json(v.field("factor")?)?,
        })
    }
}

/// How every link's quality evolves over virtual time. See the module
/// docs for the variants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LinkDynamics {
    /// Links never change.
    Static,
    /// The paper's §V-A regime: one random link slowed, re-drawn per
    /// window (bit-identical to the historical behaviour).
    PeriodicRedraw(SlowdownConfig),
    /// Per-link Markov chains over slowdown states.
    MarkovModulated(MarkovConfig),
    /// Explicit piecewise-constant schedule of slowdown windows.
    Trace(Vec<TraceWindow>),
}

impl LinkDynamics {
    /// The multiplicative slowdown factor (≥ 1) on the unordered link
    /// `{from, to}` of an `n`-node fabric at virtual time `now`. Pure in
    /// `(seed, link, now)`.
    pub fn factor(&self, seed: u64, n: usize, from: usize, to: usize, now: f64) -> f64 {
        let (lo, hi) = if from < to { (from, to) } else { (to, from) };
        match self {
            LinkDynamics::Static => 1.0,
            LinkDynamics::PeriodicRedraw(cfg) => {
                let window = (now / cfg.change_period_s).floor().max(0.0) as u64;
                let (a, b, factor) = periodic_slowed_pair(cfg, seed, n, window);
                if (lo, hi) == (a, b) {
                    factor
                } else {
                    1.0
                }
            }
            LinkDynamics::MarkovModulated(cfg) => {
                let link_key = splitmix64(
                    seed ^ (lo as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)
                        ^ (hi as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                cfg.state_at(link_key, now)
            }
            LinkDynamics::Trace(windows) => windows
                .iter()
                .filter(|w| {
                    let (wa, wb) = if w.a < w.b { (w.a, w.b) } else { (w.b, w.a) };
                    (wa, wb) == (lo, hi) && w.start_s <= now && now < w.end_s
                })
                .map(|w| w.factor)
                .fold(1.0f64, f64::max),
        }
    }

    /// Validates the dynamics description against a fleet of
    /// `num_nodes` workers (state factors ≥ 1, positive periods,
    /// well-ordered trace windows naming real nodes — an out-of-range
    /// trace endpoint would otherwise be silently inert).
    pub fn validate(&self, num_nodes: usize) -> Result<(), String> {
        match self {
            LinkDynamics::Static => Ok(()),
            LinkDynamics::PeriodicRedraw(cfg) => {
                if !(cfg.change_period_s.is_finite() && cfg.change_period_s > 0.0) {
                    return Err(format!(
                        "redraw period must be finite and positive, got {}",
                        cfg.change_period_s
                    ));
                }
                if !(cfg.min_factor >= 1.0 && cfg.max_factor >= cfg.min_factor) {
                    return Err(format!(
                        "slowdown factors must satisfy 1 ≤ min ≤ max, got {}..{}",
                        cfg.min_factor, cfg.max_factor
                    ));
                }
                Ok(())
            }
            LinkDynamics::MarkovModulated(cfg) => cfg.validate(),
            LinkDynamics::Trace(windows) => {
                for w in windows {
                    if w.a == w.b {
                        return Err("trace window needs two distinct endpoints".into());
                    }
                    if w.a >= num_nodes || w.b >= num_nodes {
                        return Err(format!(
                            "trace window names link {{{}, {}}} of a {num_nodes}-node fabric",
                            w.a, w.b
                        ));
                    }
                    if !(w.start_s >= 0.0 && w.end_s > w.start_s && w.end_s.is_finite()) {
                        return Err(format!(
                            "trace window must have 0 ≤ start < end, got {}..{}",
                            w.start_s, w.end_s
                        ));
                    }
                    if !(w.factor.is_finite() && w.factor >= 1.0) {
                        return Err(format!("trace factor must be finite and ≥ 1, got {}", w.factor));
                    }
                }
                Ok(())
            }
        }
    }
}

impl ToJson for LinkDynamics {
    fn to_json(&self) -> Json {
        match self {
            LinkDynamics::Static => Json::Str("static".into()),
            LinkDynamics::PeriodicRedraw(cfg) => Json::obj([("periodic_redraw", cfg.to_json())]),
            LinkDynamics::MarkovModulated(cfg) => Json::obj([("markov", cfg.to_json())]),
            LinkDynamics::Trace(ws) => Json::obj([("trace", ws.to_json())]),
        }
    }
}

impl FromJson for LinkDynamics {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) if s == "static" => Ok(LinkDynamics::Static),
            Json::Obj(_) => {
                if let Some(cfg) = v.get("periodic_redraw") {
                    Ok(LinkDynamics::PeriodicRedraw(SlowdownConfig::from_json(cfg)?))
                } else if let Some(cfg) = v.get("markov") {
                    Ok(LinkDynamics::MarkovModulated(MarkovConfig::from_json(cfg)?))
                } else if let Some(ws) = v.get("trace") {
                    Ok(LinkDynamics::Trace(Vec::from_json(ws)?))
                } else {
                    Err(JsonError::schema("unknown link dynamics variant".into()))
                }
            }
            other => {
                Err(JsonError::schema(format!("expected link dynamics, got {}", other.kind())))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_dynamics_never_slow_anything() {
        let d = LinkDynamics::Static;
        for t in [0.0, 17.5, 9999.0] {
            assert_eq!(d.factor(42, 8, 0, 5, t), 1.0);
        }
    }

    #[test]
    fn periodic_redraw_matches_slowed_pair_helper() {
        let cfg = SlowdownConfig::default();
        let d = LinkDynamics::PeriodicRedraw(cfg);
        let (a, b, f) = periodic_slowed_pair(&cfg, 7, 8, 0);
        assert_eq!(d.factor(7, 8, a, b, 0.0), f);
        assert_eq!(d.factor(7, 8, b, a, 0.0), f, "factor must be direction-agnostic");
        // Some other pair in the same window is unslowed.
        let (oa, ob) = if (a, b) == (0, 1) { (2, 3) } else { (0, 1) };
        assert_eq!(d.factor(7, 8, oa, ob, 0.0), 1.0);
    }

    #[test]
    fn markov_holds_state_within_a_window_and_visits_states() {
        let cfg = MarkovConfig { factors: vec![1.0, 8.0], dwell_s: 10.0, change_prob: 0.9 };
        let d = LinkDynamics::MarkovModulated(cfg.clone());
        // Constant inside one dwell window.
        let f0 = d.factor(3, 8, 0, 1, 0.0);
        assert_eq!(d.factor(3, 8, 0, 1, 9.999), f0);
        // Over many windows both states appear.
        let seen: std::collections::HashSet<u64> = (0..200)
            .map(|w| d.factor(3, 8, 0, 1, w as f64 * 10.0).to_bits())
            .collect();
        assert_eq!(seen.len(), 2, "chain should visit both states");
        // Factors always come from the configured state set.
        for w in 0..50 {
            let f = d.factor(3, 8, 2, 5, w as f64 * 10.0);
            assert!(cfg.factors.contains(&f), "{f} not a configured state");
        }
    }

    #[test]
    fn markov_links_are_independent() {
        let d = LinkDynamics::MarkovModulated(MarkovConfig::fast_drift());
        let a: Vec<u64> = (0..40).map(|w| d.factor(9, 8, 0, 1, w as f64 * 5.0).to_bits()).collect();
        let b: Vec<u64> = (0..40).map(|w| d.factor(9, 8, 2, 3, w as f64 * 5.0).to_bits()).collect();
        assert_ne!(a, b, "distinct links must walk distinct chains");
    }

    #[test]
    fn trace_applies_only_inside_its_window() {
        let d = LinkDynamics::Trace(vec![TraceWindow {
            a: 1,
            b: 4,
            start_s: 10.0,
            end_s: 20.0,
            factor: 6.0,
        }]);
        assert_eq!(d.factor(0, 8, 1, 4, 9.99), 1.0);
        assert_eq!(d.factor(0, 8, 1, 4, 10.0), 6.0);
        assert_eq!(d.factor(0, 8, 4, 1, 15.0), 6.0, "unordered match");
        assert_eq!(d.factor(0, 8, 1, 4, 20.0), 1.0, "end is exclusive");
        assert_eq!(d.factor(0, 8, 1, 5, 15.0), 1.0, "other links untouched");
    }

    #[test]
    fn overlapping_trace_windows_take_the_worst_factor() {
        let w = |f: f64| TraceWindow { a: 0, b: 1, start_s: 0.0, end_s: 10.0, factor: f };
        let d = LinkDynamics::Trace(vec![w(3.0), w(7.0)]);
        assert_eq!(d.factor(0, 4, 0, 1, 5.0), 7.0);
    }

    #[test]
    fn dynamics_json_round_trip() {
        for d in [
            LinkDynamics::Static,
            LinkDynamics::PeriodicRedraw(SlowdownConfig::default()),
            LinkDynamics::MarkovModulated(MarkovConfig::slow_drift()),
            LinkDynamics::Trace(vec![TraceWindow {
                a: 0,
                b: 3,
                start_s: 5.5,
                end_s: 60.25,
                factor: 12.5,
            }]),
        ] {
            let text = d.to_json().pretty();
            let back = LinkDynamics::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, d);
        }
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        assert!(LinkDynamics::MarkovModulated(MarkovConfig {
            factors: vec![],
            dwell_s: 1.0,
            change_prob: 0.5
        })
        .validate(8)
        .is_err());
        assert!(LinkDynamics::MarkovModulated(MarkovConfig {
            factors: vec![0.5],
            dwell_s: 1.0,
            change_prob: 0.5
        })
        .validate(8)
        .is_err());
        assert!(LinkDynamics::Trace(vec![TraceWindow {
            a: 0,
            b: 0,
            start_s: 0.0,
            end_s: 1.0,
            factor: 2.0
        }])
        .validate(8)
        .is_err());
        assert!(LinkDynamics::MarkovModulated(MarkovConfig::slow_drift()).validate(8).is_ok());
    }
}
