//! A deterministic event queue keyed by virtual time.
//!
//! The NetMax engine simulates asynchronous training by dispatching, at
//! every global step, the worker whose next completion time is smallest
//! (the paper's §IV global-step model). Ties are broken FIFO by insertion
//! sequence so runs are fully deterministic across platforms.
//!
//! ## Calendar-queue internals
//!
//! The queue is a classic **calendar queue** (Brown 1988): an array of
//! "day" buckets of width `w` seconds, cycled through like the pages of a
//! desk calendar, so an event at time `t` lives in bucket
//! `⌊t/w⌋ mod num_buckets`. Pops scan forward from the year of the last
//! popped time; with the width sized to the live event spacing
//! (re-estimated whenever the queue resizes) both `push` and `pop` are
//! amortized O(1) regardless of fleet size — the former global
//! `BinaryHeap`'s O(log n) comparisons per operation disappear at
//! n = 4096.
//!
//! Entries live in a slab recycled through an intrusive free list, and
//! each bucket is an intrusive sorted list threaded through slab indices,
//! so steady-state `push`/`pop` performs **zero heap allocations**: the
//! slab only grows when the pending-event high-water mark does, the same
//! profile the binary heap had (and the profile the engine's hot-path
//! allocation tests pin down).
//!
//! The observable contract is unchanged and property-tested against the
//! reference heap: the exact `(time, FIFO seq)` pop order, including
//! simultaneous events, crash-time purges, and checkpoint
//! snapshot/restore round-trips.

/// Sentinel index for "no slot" in the intrusive lists.
const NIL: usize = usize::MAX;

/// Smallest number of calendar buckets kept allocated.
const MIN_BUCKETS: usize = 4;

/// Bucket width used until the first resize provides a measured spacing,
/// and whenever every pending event shares one timestamp.
const DEFAULT_WIDTH: f64 = 1.0;

/// One slab cell: an event with its key, linked into either a bucket
/// list (occupied, `event` is `Some`) or the free list (`event` is
/// `None`).
#[derive(Debug)]
struct Slot<E> {
    time: f64,
    seq: u64,
    event: Option<E>,
    next: usize,
}

/// Min-queue of timestamped events with stable FIFO tie-breaking,
/// implemented as a calendar queue (see the module docs).
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Slab of event slots; freed slots are recycled via `free`.
    slots: Vec<Slot<E>>,
    /// Head of the free-slot list.
    free: usize,
    /// Calendar days: `heads[b]` starts an intrusive list sorted
    /// ascending by `(time, seq)`, so the head is the bucket minimum.
    heads: Vec<usize>,
    /// Seconds spanned by one bucket.
    width: f64,
    /// Total pending events.
    len: usize,
    /// Lower bound on every pending event's time: the last popped time,
    /// lowered whenever an earlier event is pushed.
    last_time: f64,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: NIL,
            heads: vec![NIL; MIN_BUCKETS],
            width: DEFAULT_WIDTH,
            len: 0,
            last_time: 0.0,
            next_seq: 0,
        }
    }

    /// Schedules `event` at virtual time `time`.
    ///
    /// # Panics
    /// Panics if `time` is NaN or negative.
    pub fn push(&mut self, time: f64, event: E) {
        assert!(time.is_finite() && time >= 0.0, "event time must be finite and non-negative");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(time, seq, event);
    }

    /// Removes and returns the earliest event as `(time, event)`.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let b = self.min_bucket()?;
        let s = self.heads[b];
        // Taking the event before unlinking keeps this total: a slot on
        // a head list is always occupied, but if that invariant ever
        // broke the queue would report empty instead of panicking.
        let event = self.slots[s].event.take()?;
        let time = self.slots[s].time;
        self.heads[b] = self.slots[s].next;
        self.slots[s].next = self.free;
        self.free = s;
        self.len -= 1;
        self.last_time = time;
        self.maybe_shrink();
        Some((time, event))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.min_bucket().map(|b| self.slots[self.heads[b]].time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The pending entries as `(time, seq, event)` triples in pop order —
    /// the queue's full state for checkpointing (together with
    /// [`EventQueue::next_seq`]).
    pub fn entries(&self) -> Vec<(f64, u64, &E)> {
        let mut out: Vec<(f64, u64, &E)> = self
            .slots
            .iter()
            .filter_map(|s| s.event.as_ref().map(|e| (s.time, s.seq, e)))
            .collect();
        out.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        out
    }

    /// The sequence number the next [`EventQueue::push`] will use. Part of
    /// the checkpointable state: FIFO tie-breaking depends on it.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Re-inserts an entry with an explicit sequence number (checkpoint
    /// restore). Keeps `next_seq` above every restored sequence.
    ///
    /// # Panics
    /// Panics if `time` is NaN or negative.
    pub fn restore_entry(&mut self, time: f64, seq: u64, event: E) {
        assert!(time.is_finite() && time >= 0.0, "event time must be finite and non-negative");
        self.next_seq = self.next_seq.max(seq + 1);
        self.insert(time, seq, event);
    }

    /// Overrides the next sequence number (checkpoint restore). Never
    /// lowers it below a value already implied by restored entries.
    pub fn set_next_seq(&mut self, seq: u64) {
        self.next_seq = self.next_seq.max(seq);
    }

    /// The calendar year an event time falls in: `⌊t/width⌋`, saturating
    /// for times astronomically beyond the bucket span. Computed the same
    /// way at insert and scan time so the two can never disagree.
    fn year_of(&self, time: f64) -> u64 {
        // `as` saturates on overflow, which keeps far-future events
        // consistently in one (wrong but stable) year.
        (time / self.width) as u64
    }

    /// Takes a slot from the free list, or grows the slab — the only
    /// allocation path, taken when the pending high-water mark rises.
    fn alloc_slot(&mut self, time: f64, seq: u64, event: E) -> usize {
        if self.free != NIL {
            let s = self.free;
            self.free = self.slots[s].next;
            let slot = &mut self.slots[s];
            slot.time = time;
            slot.seq = seq;
            slot.event = Some(event);
            slot.next = NIL;
            s
        } else {
            self.slots.push(Slot { time, seq, event: Some(event), next: NIL });
            self.slots.len() - 1
        }
    }

    fn insert(&mut self, time: f64, seq: u64, event: E) {
        if time < self.last_time {
            // An event scheduled before the current clock re-anchors the
            // scan start; pending events all sit at or after it.
            self.last_time = time;
        }
        let s = self.alloc_slot(time, seq, event);
        self.link(s);
        self.len += 1;
        self.maybe_grow();
    }

    /// Splices slot `s` into its bucket's ascending `(time, seq)` list.
    fn link(&mut self, s: usize) {
        let (time, seq) = (self.slots[s].time, self.slots[s].seq);
        let nb = self.heads.len() as u64;
        let b = (self.year_of(time) % nb) as usize;
        let mut prev = NIL;
        let mut cur = self.heads[b];
        while cur != NIL && (self.slots[cur].time, self.slots[cur].seq) < (time, seq) {
            prev = cur;
            cur = self.slots[cur].next;
        }
        self.slots[s].next = cur;
        if prev == NIL {
            self.heads[b] = s;
        } else {
            self.slots[prev].next = s;
        }
    }

    /// Index of the bucket whose head is the global minimum, or `None`
    /// when empty. Scans one calendar year per bucket starting from the
    /// year of `last_time`; if the minimum lies beyond a full lap (events
    /// much sparser than the bucket span), falls back to a direct scan of
    /// every bucket's head.
    fn min_bucket(&self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let nb = self.heads.len() as u64;
        let y0 = self.year_of(self.last_time);
        for k in 0..nb {
            let year = y0.saturating_add(k);
            let b = (year % nb) as usize;
            let h = self.heads[b];
            if h != NIL && self.year_of(self.slots[h].time) == year {
                return Some(b);
            }
        }
        // Direct search. Equal times always map to the same bucket, so
        // comparing head times alone is unambiguous; the in-bucket sort
        // already puts the smallest seq first.
        self.heads
            .iter()
            .enumerate()
            .filter(|&(_, &h)| h != NIL)
            .min_by(|&(_, &a), &(_, &b)| self.slots[a].time.total_cmp(&self.slots[b].time))
            .map(|(b, _)| b)
    }

    fn maybe_grow(&mut self) {
        if self.len > 2 * self.heads.len() {
            let nb = self.heads.len() * 2;
            self.rebuild(nb);
        }
    }

    fn maybe_shrink(&mut self) {
        if self.heads.len() > MIN_BUCKETS && self.len < self.heads.len() / 2 {
            let nb = (self.heads.len() / 2).max(MIN_BUCKETS);
            self.rebuild(nb);
        }
    }

    /// Re-threads every pending slot into `nb` buckets, re-estimating the
    /// bucket width from the live span so one bucket holds O(1) events of
    /// the current schedule. Deterministic: no sampling, no randomness.
    /// Runs only when `len` crosses a resize threshold, so its cost (and
    /// its single `heads` allocation) amortizes away; the slab and free
    /// list are untouched.
    fn rebuild(&mut self, nb: usize) {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for s in &self.slots {
            if s.event.is_some() {
                lo = lo.min(s.time);
                hi = hi.max(s.time);
            }
        }
        let span = hi - lo;
        self.width = if self.len == 0 || span <= 0.0 {
            DEFAULT_WIDTH
        } else {
            // Aim for ~one event per bucket-day across the live span; the
            // width floor keeps `t/width` finite and the year math sane.
            (span / self.len as f64).max(1e-9)
        };
        self.heads = vec![NIL; nb];
        // Re-link occupied slots in slab order — deterministic, and the
        // sorted splice makes the final lists independent of this order.
        for s in 0..self.slots.len() {
            if self.slots[s].event.is_some() {
                self.link(s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        q.push(1.0, 1);
        q.push(1.0, 2);
        q.push(1.0, 3);
        assert_eq!(q.pop(), Some((1.0, 1)));
        assert_eq!(q.pop(), Some((1.0, 2)));
        assert_eq!(q.pop(), Some((1.0, 3)));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(5.0, ());
        assert_eq!(q.peek_time(), Some(5.0));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn snapshot_and_restore_preserve_order() {
        let mut q = EventQueue::new();
        q.push(2.0, "b");
        q.push(1.0, "a1");
        q.push(1.0, "a2");
        let entries: Vec<(f64, u64, String)> =
            q.entries().into_iter().map(|(t, s, e)| (t, s, e.to_string())).collect();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0], (1.0, 1, "a1".to_string()));
        assert_eq!(entries[1], (1.0, 2, "a2".to_string()));
        let next = q.next_seq();

        let mut r: EventQueue<String> = EventQueue::new();
        for (t, s, e) in entries {
            r.restore_entry(t, s, e);
        }
        r.set_next_seq(next);
        assert_eq!(r.next_seq(), next);
        assert_eq!(r.pop().unwrap().1, "a1");
        assert_eq!(r.pop().unwrap().1, "a2");
        assert_eq!(r.pop().unwrap().1, "b");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_time() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ());
    }

    #[test]
    fn grows_shrinks_and_keeps_order_under_load() {
        // Enough churn to force several grow/shrink rebuilds, with a time
        // pattern mixing clusters and far-future outliers.
        let mut q = EventQueue::new();
        let mut expect: Vec<(f64, u64)> = Vec::new();
        for i in 0..200u64 {
            let t = match i % 5 {
                0 => 10.0,
                1 => (i as f64) * 0.25,
                2 => 1e6 + i as f64,
                3 => (i / 10) as f64,
                _ => 0.5,
            };
            q.push(t, i);
            expect.push((t, i));
        }
        expect.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        for &(t, i) in &expect {
            assert_eq!(q.pop(), Some((t, i)));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn push_earlier_than_last_pop_is_served_first() {
        let mut q = EventQueue::new();
        q.push(100.0, "late");
        q.push(50.0, "mid");
        assert_eq!(q.pop(), Some((50.0, "mid")));
        // The simulation clock is at 50; an event landing before it must
        // still pop before the later one.
        q.push(10.0, "early");
        assert_eq!(q.pop(), Some((10.0, "early")));
        assert_eq!(q.pop(), Some((100.0, "late")));
    }

    #[test]
    fn steady_state_push_pop_recycles_slots() {
        // A gossip-shaped workload: constant population with advancing
        // times. After warm-up the slab must stop growing — pops feed
        // pushes through the free list, never the allocator.
        let mut q = EventQueue::new();
        for i in 0..8u64 {
            q.push(i as f64 * 0.3, i);
        }
        let mut clock = 0.0;
        for i in 0..1000u64 {
            let (t, _) = q.pop().expect("non-empty");
            assert!(t >= clock);
            clock = t;
            q.push(t + 2.5, 100 + i);
        }
        assert_eq!(q.len(), 8);
        assert!(q.slots.len() <= 8, "slab grew past the population high-water mark");
    }
}
