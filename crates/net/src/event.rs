//! A deterministic event queue keyed by virtual time.
//!
//! The NetMax engine simulates asynchronous training by dispatching, at
//! every global step, the worker whose next completion time is smallest
//! (the paper's §IV global-step model). Ties are broken FIFO by insertion
//! sequence so runs are fully deterministic across platforms.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A timestamped event. Lower `time` pops first; equal times pop in
/// insertion order.
#[derive(Debug, Clone)]
struct Entry<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap; NaN times are rejected at push.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event time was NaN")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap of timestamped events with stable FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `event` at virtual time `time`.
    ///
    /// # Panics
    /// Panics if `time` is NaN or negative.
    pub fn push(&mut self, time: f64, event: E) {
        assert!(time.is_finite() && time >= 0.0, "event time must be finite and non-negative");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event as `(time, event)`.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The pending entries as `(time, seq, event)` triples in pop order —
    /// the queue's full state for checkpointing (together with
    /// [`EventQueue::next_seq`]).
    pub fn entries(&self) -> Vec<(f64, u64, &E)> {
        let mut out: Vec<(f64, u64, &E)> =
            self.heap.iter().map(|e| (e.time, e.seq, &e.event)).collect();
        out.sort_by(|a, b| {
            a.0.partial_cmp(&b.0).expect("event time was NaN").then(a.1.cmp(&b.1))
        });
        out
    }

    /// The sequence number the next [`EventQueue::push`] will use. Part of
    /// the checkpointable state: FIFO tie-breaking depends on it.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Re-inserts an entry with an explicit sequence number (checkpoint
    /// restore). Keeps `next_seq` above every restored sequence.
    ///
    /// # Panics
    /// Panics if `time` is NaN or negative.
    pub fn restore_entry(&mut self, time: f64, seq: u64, event: E) {
        assert!(time.is_finite() && time >= 0.0, "event time must be finite and non-negative");
        self.heap.push(Entry { time, seq, event });
        self.next_seq = self.next_seq.max(seq + 1);
    }

    /// Overrides the next sequence number (checkpoint restore). Never
    /// lowers it below a value already implied by restored entries.
    pub fn set_next_seq(&mut self, seq: u64) {
        self.next_seq = self.next_seq.max(seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        q.push(1.0, 1);
        q.push(1.0, 2);
        q.push(1.0, 3);
        assert_eq!(q.pop(), Some((1.0, 1)));
        assert_eq!(q.pop(), Some((1.0, 2)));
        assert_eq!(q.pop(), Some((1.0, 3)));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(5.0, ());
        assert_eq!(q.peek_time(), Some(5.0));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn snapshot_and_restore_preserve_order() {
        let mut q = EventQueue::new();
        q.push(2.0, "b");
        q.push(1.0, "a1");
        q.push(1.0, "a2");
        let entries: Vec<(f64, u64, String)> =
            q.entries().into_iter().map(|(t, s, e)| (t, s, e.to_string())).collect();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0], (1.0, 1, "a1".to_string()));
        assert_eq!(entries[1], (1.0, 2, "a2".to_string()));
        let next = q.next_seq();

        let mut r: EventQueue<String> = EventQueue::new();
        for (t, s, e) in entries {
            r.restore_entry(t, s, e);
        }
        r.set_next_seq(next);
        assert_eq!(r.next_seq(), next);
        assert_eq!(r.pop().unwrap().1, "a1");
        assert_eq!(r.pop().unwrap().1, "a2");
        assert_eq!(r.pop().unwrap().1, "b");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_time() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ());
    }
}
