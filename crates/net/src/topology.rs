//! Communication topologies.
//!
//! The paper models the worker fleet as an undirected graph `G = (V, E)`
//! with the connection indicator `d_{i,m}` (§II-A, Table I). This module
//! provides that indicator plus the concrete shapes used across the
//! evaluation: fully-connected gossip graphs, rings (the Allreduce-SGD and
//! Prague collectives), and the placement helper that maps worker nodes to
//! physical servers (intra- vs inter-machine links of Fig. 3).

use serde::{Deserialize, Serialize};

/// An undirected communication graph over `n` worker nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    n: usize,
    /// Row-major adjacency, `adj[i * n + m] == true` iff `d_{i,m} = 1`.
    adj: Vec<bool>,
    /// Per-node sorted neighbour lists, maintained by [`Topology::set_edge`]
    /// so [`Topology::neighbors`] is an allocation-free slice lookup on the
    /// peer-selection hot path.
    nbrs: Vec<Vec<usize>>,
}

impl Topology {
    /// Creates an edgeless topology over `n` nodes.
    pub fn empty(n: usize) -> Self {
        assert!(n > 0, "topology needs at least one node");
        Self { n, adj: vec![false; n * n], nbrs: vec![Vec::new(); n] }
    }

    /// Fully-connected graph (every distinct pair is an edge). This is the
    /// shape assumed by the paper's approximation-ratio analysis
    /// (Appendix B).
    pub fn fully_connected(n: usize) -> Self {
        let mut t = Self::empty(n);
        for i in 0..n {
            for m in 0..n {
                if i != m {
                    t.set_edge(i, m, true);
                }
            }
        }
        t
    }

    /// Ring graph `0 — 1 — … — (n-1) — 0`.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 2, "ring needs at least two nodes");
        let mut t = Self::empty(n);
        for i in 0..n {
            t.set_edge(i, (i + 1) % n, true);
        }
        t
    }

    /// Star graph with `center` connected to everyone else (the
    /// parameter-server communication shape).
    pub fn star(n: usize, center: usize) -> Self {
        assert!(center < n, "star center out of range");
        let mut t = Self::empty(n);
        for i in 0..n {
            if i != center {
                t.set_edge(i, center, true);
            }
        }
        t
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the topology has exactly one node (and hence no edges).
    #[inline]
    pub fn is_empty(&self) -> bool {
        // A topology always has ≥ 1 node; "empty" here means no possible edge.
        self.n == 1
    }

    /// The connection indicator `d_{i,m}` of the paper: 1.0 if `i` and `m`
    /// are neighbours, 0.0 otherwise (diagonal is always 0).
    #[inline]
    pub fn d(&self, i: usize, m: usize) -> f64 {
        if self.is_edge(i, m) {
            1.0
        } else {
            0.0
        }
    }

    /// `true` iff `{i, m}` is an edge.
    #[inline]
    pub fn is_edge(&self, i: usize, m: usize) -> bool {
        i != m && self.adj[i * self.n + m]
    }

    /// Adds or removes the undirected edge `{i, m}`.
    ///
    /// # Panics
    /// Panics on out-of-range nodes or a self-loop.
    pub fn set_edge(&mut self, i: usize, m: usize, present: bool) {
        assert!(i < self.n && m < self.n, "set_edge: node out of range");
        assert_ne!(i, m, "set_edge: self-loops are not part of G");
        if self.adj[i * self.n + m] == present {
            return;
        }
        self.adj[i * self.n + m] = present;
        self.adj[m * self.n + i] = present;
        for (a, b) in [(i, m), (m, i)] {
            match self.nbrs[a].binary_search(&b) {
                Ok(pos) if !present => {
                    self.nbrs[a].remove(pos);
                }
                Err(pos) if present => self.nbrs[a].insert(pos, b),
                _ => {}
            }
        }
    }

    /// Neighbours of node `i` in ascending order (a cached slice; no
    /// allocation).
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.nbrs[i]
    }

    /// Node degree.
    pub fn degree(&self, i: usize) -> usize {
        (0..self.n).filter(|&m| self.is_edge(i, m)).count()
    }

    /// `true` if the graph is connected (Assumption 1 of the paper).
    pub fn is_connected(&self) -> bool {
        let mut seen = vec![false; self.n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in self.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == self.n
    }

    /// Total number of undirected edges.
    pub fn num_edges(&self) -> usize {
        (0..self.n)
            .map(|i| (i + 1..self.n).filter(|&m| self.is_edge(i, m)).count())
            .sum()
    }

    /// 2-D torus over an `rows × cols` grid (`rows·cols` nodes): each node
    /// connects to its four grid neighbours with wrap-around. A standard
    /// sparse D-PSGD topology for larger fleets.
    ///
    /// # Panics
    /// Panics unless both dimensions are ≥ 2 (smaller wraps create
    /// self-loops or duplicate edges).
    pub fn torus(rows: usize, cols: usize) -> Self {
        assert!(rows >= 2 && cols >= 2, "torus needs both dimensions ≥ 2");
        let n = rows * cols;
        let mut t = Self::empty(n);
        let id = |r: usize, c: usize| r * cols + c;
        for r in 0..rows {
            for c in 0..cols {
                t.set_edge(id(r, c), id((r + 1) % rows, c), true);
                t.set_edge(id(r, c), id(r, (c + 1) % cols), true);
            }
        }
        t
    }

    /// Random connected graph: a random spanning tree (guaranteeing
    /// connectivity, Assumption 1) plus each remaining pair independently
    /// with probability `extra_p`. Deterministic in `seed`.
    ///
    /// # Panics
    /// Panics unless `n ≥ 2` and `0 ≤ extra_p ≤ 1`.
    pub fn random_connected(n: usize, extra_p: f64, seed: u64) -> Self {
        use rand::rngs::StdRng;
        use rand::seq::SliceRandom;
        use rand::{Rng, SeedableRng};
        assert!(n >= 2, "need at least two nodes");
        assert!((0.0..=1.0).contains(&extra_p), "probability out of range");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Self::empty(n);
        // Random spanning tree: shuffle nodes, attach each to a random
        // earlier node (uniform random recursive tree on a permutation).
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        for k in 1..n {
            let parent = order[rng.gen_range(0..k)];
            t.set_edge(order[k], parent, true);
        }
        for i in 0..n {
            for m in (i + 1)..n {
                if !t.is_edge(i, m) && rng.gen_bool(extra_p) {
                    t.set_edge(i, m, true);
                }
            }
        }
        debug_assert!(t.is_connected());
        t
    }
}

/// Maps worker nodes to physical servers, reproducing the paper's
/// deployments ("8 worker nodes instantiated in two GPU servers. Each
/// server hosts 4 worker nodes", §V-F).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// `server_of[i]` = index of the server hosting worker `i`.
    pub server_of: Vec<usize>,
}

impl Placement {
    /// Distributes `n` workers across `servers` machines as evenly as
    /// possible, filling lower-indexed servers first.
    pub fn spread(n: usize, servers: usize) -> Self {
        assert!(servers > 0, "need at least one server");
        let per = n.div_ceil(servers);
        Self { server_of: (0..n).map(|i| (i / per).min(servers - 1)).collect() }
    }

    /// Builds a placement from explicit per-server worker counts.
    pub fn from_counts(counts: &[usize]) -> Self {
        let mut server_of = Vec::new();
        for (s, &c) in counts.iter().enumerate() {
            server_of.extend(std::iter::repeat_n(s, c));
        }
        Self { server_of }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.server_of.len()
    }

    /// `true` when no workers are placed.
    pub fn is_empty(&self) -> bool {
        self.server_of.is_empty()
    }

    /// `true` iff workers `i` and `m` share a server (fast, intra-machine
    /// communication in Fig. 3).
    pub fn same_server(&self, i: usize, m: usize) -> bool {
        self.server_of[i] == self.server_of[m]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_connected_shape() {
        let t = Topology::fully_connected(4);
        assert_eq!(t.len(), 4);
        assert_eq!(t.num_edges(), 6);
        assert!(t.is_connected());
        for i in 0..4 {
            assert_eq!(t.degree(i), 3);
            assert!(!t.is_edge(i, i));
            assert_eq!(t.d(i, (i + 1) % 4), 1.0);
        }
    }

    #[test]
    fn ring_shape() {
        let t = Topology::ring(5);
        assert_eq!(t.num_edges(), 5);
        assert!(t.is_connected());
        assert_eq!(t.neighbors(0), vec![1, 4]);
        assert_eq!(t.degree(2), 2);
        assert_eq!(t.d(0, 2), 0.0);
    }

    #[test]
    fn star_shape() {
        let t = Topology::star(5, 0);
        assert_eq!(t.num_edges(), 4);
        assert_eq!(t.degree(0), 4);
        assert_eq!(t.degree(3), 1);
        assert!(t.is_connected());
    }

    #[test]
    fn connectivity_detection() {
        let mut t = Topology::empty(4);
        t.set_edge(0, 1, true);
        t.set_edge(2, 3, true);
        assert!(!t.is_connected());
        t.set_edge(1, 2, true);
        assert!(t.is_connected());
    }

    #[test]
    fn edge_removal() {
        let mut t = Topology::fully_connected(3);
        t.set_edge(0, 1, false);
        assert!(!t.is_edge(0, 1));
        assert!(!t.is_edge(1, 0));
        assert_eq!(t.num_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let mut t = Topology::empty(3);
        t.set_edge(1, 1, true);
    }

    #[test]
    fn torus_shape() {
        let t = Topology::torus(3, 4);
        assert_eq!(t.len(), 12);
        assert!(t.is_connected());
        // Every torus node has exactly 4 neighbours (distinct for ≥3×3...
        // here 3×4 with wrap: check a middle node).
        assert_eq!(t.degree(5), 4);
        // Wrap-around edges exist.
        assert!(t.is_edge(0, 8)); // (0,0) - (2,0) via row wrap
        assert!(t.is_edge(0, 3)); // (0,0) - (0,3) via col wrap
    }

    #[test]
    fn random_connected_is_connected_and_deterministic() {
        for seed in 0..5 {
            let t = Topology::random_connected(10, 0.2, seed);
            assert!(t.is_connected(), "seed {seed}");
            assert!(t.num_edges() >= 9, "at least a spanning tree");
        }
        let a = Topology::random_connected(10, 0.3, 7);
        let b = Topology::random_connected(10, 0.3, 7);
        assert_eq!(a, b);
        let c = Topology::random_connected(10, 0.3, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn random_connected_extra_edges_scale_with_p() {
        let sparse = Topology::random_connected(12, 0.0, 1);
        let dense = Topology::random_connected(12, 0.9, 1);
        assert_eq!(sparse.num_edges(), 11); // exactly the spanning tree
        assert!(dense.num_edges() > sparse.num_edges());
    }

    #[test]
    fn placement_spread_and_counts() {
        let p = Placement::spread(8, 2);
        assert!(p.same_server(0, 3));
        assert!(!p.same_server(3, 4));
        assert!(p.same_server(4, 7));

        let p = Placement::from_counts(&[3, 5]);
        assert_eq!(p.len(), 8);
        assert!(p.same_server(0, 2));
        assert!(!p.same_server(2, 3));

        // Paper §V-A runs 16 workers across 4 servers.
        let p = Placement::spread(16, 4);
        assert_eq!(p.len(), 16);
        assert!(p.same_server(0, 3));
        assert!(!p.same_server(3, 4));
        assert!(p.same_server(12, 15));
    }
}
