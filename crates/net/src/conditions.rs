//! Network conditions: base fabrics plus the composable
//! [`ElasticNetwork`] that layers [`LinkDynamics`] and a [`FaultPlan`]
//! over any of them.
//!
//! * [`HomogeneousNetwork`] — all pairs communicate at the same speed
//!   (the reserved server with a 10 Gbps virtual switch, §V-A).
//! * [`ElasticNetwork`] — a base fabric (uniform link, cluster placement
//!   with intra/inter links, or the WAN matrix) composed with per-link
//!   [`LinkDynamics`] and an optional [`FaultPlan`]. The paper's three
//!   regimes are special cases: the historical
//!   [`HeterogeneousDynamicNetwork`] is now the cluster fabric with
//!   [`LinkDynamics::PeriodicRedraw`] — bit-for-bit the same schedule.
//! * [`WanNetwork`] — a wide-area latency/bandwidth matrix reproducing the
//!   6-region EC2 deployment of Appendix G.
//!
//! All of them are **pure in virtual time**: the cost of a link at time
//! `t` is a deterministic function of `(seed, t)`, never of call order.
//! This keeps every simulation exactly reproducible and lets the engine
//! query link costs speculatively.

use crate::dynamics::LinkDynamics;
use crate::faults::FaultPlan;
use crate::link::LinkQuality;
use crate::topology::Placement;
use netmax_json::{FromJson, Json, JsonError, ToJson};
use serde::{Deserialize, Serialize};

/// A network: the ground-truth communication cost between worker nodes.
pub trait Network: Send + Sync {
    /// Number of worker nodes.
    fn num_nodes(&self) -> usize;

    /// Seconds to transfer `bytes` from node `from` to node `to`, starting
    /// at virtual time `now`.
    fn comm_time(&self, from: usize, to: usize, bytes: u64, now: f64) -> f64;

    /// The link quality between two nodes at time `now` (diagnostics and
    /// collectives that need bandwidth directly, e.g. ring allreduce).
    fn link(&self, from: usize, to: usize, now: f64) -> LinkQuality;
}

/// Which of the paper's network regimes to instantiate (used by the
/// scenario builder and the figure harnesses).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NetworkKind {
    /// §V-A homogeneous: single server, 10 Gbps virtual switch.
    Homogeneous,
    /// §V-A heterogeneous with the dynamic 2×–100× slow link.
    HeterogeneousDynamic,
    /// §V-A heterogeneous but with the slow link frozen at its first draw
    /// (the static assumption SAPS-PSGD makes; used in ablations).
    HeterogeneousStatic,
    /// Appendix G: six EC2 regions.
    Wan,
}

impl NetworkKind {
    /// Stable CLI/JSON identifier (`hetero`, `homo`, `static`, `wan`).
    pub fn name(self) -> &'static str {
        match self {
            NetworkKind::Homogeneous => "homo",
            NetworkKind::HeterogeneousDynamic => "hetero",
            NetworkKind::HeterogeneousStatic => "static",
            NetworkKind::Wan => "wan",
        }
    }

    /// Inverse of [`NetworkKind::name`].
    pub fn by_name(name: &str) -> Option<NetworkKind> {
        [
            NetworkKind::Homogeneous,
            NetworkKind::HeterogeneousDynamic,
            NetworkKind::HeterogeneousStatic,
            NetworkKind::Wan,
        ]
        .into_iter()
        .find(|k| k.name() == name)
    }
}

impl ToJson for NetworkKind {
    fn to_json(&self) -> Json {
        Json::Str(self.name().to_string())
    }
}

impl FromJson for NetworkKind {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let name = v.as_str()?;
        NetworkKind::by_name(name)
            .ok_or_else(|| JsonError::schema(format!("unknown network kind `{name}`")))
    }
}

/// Physical cluster description: how many workers per server and the two
/// link classes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Workers hosted by each server, e.g. `\[4, 4\]` for the paper's
    /// two-server, 8-worker deployments.
    pub workers_per_server: Vec<usize>,
    /// Link used between workers on the same server.
    pub intra: LinkQuality,
    /// Link used between workers on different servers.
    pub inter: LinkQuality,
}

impl ClusterSpec {
    /// The paper's default fabric: intra-machine GPU-class links and
    /// 1000 Mbps Ethernet between servers.
    pub fn paper_default(workers_per_server: Vec<usize>) -> Self {
        Self {
            workers_per_server,
            intra: LinkQuality::intra_machine(),
            inter: LinkQuality::gbit_ethernet(),
        }
    }

    /// Total workers.
    pub fn num_workers(&self) -> usize {
        self.workers_per_server.iter().sum()
    }

    /// The worker→server placement implied by the per-server counts.
    pub fn placement(&self) -> Placement {
        Placement::from_counts(&self.workers_per_server)
    }
}

/// Homogeneous network: every distinct pair communicates over the same link.
#[derive(Debug, Clone)]
pub struct HomogeneousNetwork {
    n: usize,
    link: LinkQuality,
}

impl HomogeneousNetwork {
    /// Creates a homogeneous network over `n` nodes with the given link.
    pub fn new(n: usize, link: LinkQuality) -> Self {
        assert!(n > 0);
        Self { n, link }
    }

    /// The paper's homogeneous setting: 10 Gbps virtual switch.
    pub fn paper_default(n: usize) -> Self {
        Self::new(n, LinkQuality::virtual_switch_10g())
    }
}

impl Network for HomogeneousNetwork {
    fn num_nodes(&self) -> usize {
        self.n
    }

    fn comm_time(&self, from: usize, to: usize, bytes: u64, _now: f64) -> f64 {
        if from == to {
            return 0.0;
        }
        self.link.transfer_time(bytes)
    }

    fn link(&self, _from: usize, _to: usize, _now: f64) -> LinkQuality {
        self.link
    }
}

/// Configuration of the paper's dynamic slow-link regime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlowdownConfig {
    /// Minimum slowdown factor (paper: 2).
    pub min_factor: f64,
    /// Maximum slowdown factor (paper: 100).
    pub max_factor: f64,
    /// How often the slowed link is re-drawn, in seconds of virtual time
    /// (paper: every 5 minutes).
    pub change_period_s: f64,
    /// When `false`, the link drawn in window 0 stays slowed forever
    /// (models the static-subgraph assumption of SAPS-PSGD).
    pub dynamic: bool,
}

impl Default for SlowdownConfig {
    fn default() -> Self {
        Self { min_factor: 2.0, max_factor: 100.0, change_period_s: 300.0, dynamic: true }
    }
}

impl ToJson for SlowdownConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("min_factor", self.min_factor.to_json()),
            ("max_factor", self.max_factor.to_json()),
            ("change_period_s", self.change_period_s.to_json()),
            ("dynamic", self.dynamic.to_json()),
        ])
    }
}

impl FromJson for SlowdownConfig {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            min_factor: f64::from_json(v.field("min_factor")?)?,
            max_factor: f64::from_json(v.field("max_factor")?)?,
            change_period_s: f64::from_json(v.field("change_period_s")?)?,
            dynamic: bool::from_json(v.field("dynamic")?)?,
        })
    }
}

/// The base fabric an [`ElasticNetwork`] modulates: who is placed where
/// and what the healthy link between each pair looks like.
#[derive(Debug, Clone)]
enum BaseFabric {
    /// Every distinct pair shares one link class.
    Uniform {
        /// Worker count.
        n: usize,
        /// The shared link.
        link: LinkQuality,
    },
    /// Workers placed on servers: intra-machine vs inter-machine links.
    Cluster {
        /// The cluster description.
        spec: ClusterSpec,
        /// Worker→server placement derived from it.
        placement: Placement,
    },
    /// The 6-region WAN matrix of Appendix G (boxed: the latency and
    /// bandwidth tables dwarf the other variants).
    Wan(Box<WanNetwork>),
}

impl BaseFabric {
    fn num_nodes(&self) -> usize {
        match self {
            BaseFabric::Uniform { n, .. } => *n,
            BaseFabric::Cluster { placement, .. } => placement.len(),
            BaseFabric::Wan(w) => w.num_nodes(),
        }
    }

    fn link(&self, from: usize, to: usize, now: f64) -> LinkQuality {
        match self {
            BaseFabric::Uniform { link, .. } => *link,
            BaseFabric::Cluster { spec, placement } => {
                if placement.same_server(from, to) {
                    spec.intra
                } else {
                    spec.inter
                }
            }
            BaseFabric::Wan(w) => w.link(from, to, now),
        }
    }
}

/// A composable network: a base fabric whose links are modulated by
/// [`LinkDynamics`] and degraded by the link faults of a [`FaultPlan`],
/// all pure functions of `(seed, link, t)`.
///
/// The paper's dynamic regime is the cluster fabric with
/// [`LinkDynamics::PeriodicRedraw`]; [`HeterogeneousDynamicNetwork`] is
/// now an alias constructing exactly that, with an identical slow-link
/// schedule.
#[derive(Debug, Clone)]
pub struct ElasticNetwork {
    base: BaseFabric,
    dynamics: LinkDynamics,
    faults: FaultPlan,
    seed: u64,
}

/// The paper's heterogeneous-dynamic regime, now expressed as an
/// [`ElasticNetwork`] (cluster fabric + periodic slow-link redraw).
pub type HeterogeneousDynamicNetwork = ElasticNetwork;

impl ElasticNetwork {
    /// Cluster fabric with the paper's periodic slow-link redraw —
    /// the historical `HeterogeneousDynamicNetwork::new`. `seed` drives
    /// the slow-link schedule.
    pub fn new(spec: ClusterSpec, slowdown: SlowdownConfig, seed: u64) -> Self {
        Self::cluster(spec, LinkDynamics::PeriodicRedraw(slowdown), seed)
    }

    /// Cluster fabric with explicit link dynamics.
    ///
    /// # Panics
    /// Panics on fewer than two workers or a dynamics description that
    /// fails validation (a bad config must fail at construction with a
    /// named error, not mid-simulation).
    pub fn cluster(spec: ClusterSpec, dynamics: LinkDynamics, seed: u64) -> Self {
        let placement = spec.placement();
        assert!(placement.len() >= 2, "need at least two workers");
        dynamics
            .validate(placement.len())
            .unwrap_or_else(|e| panic!("invalid link dynamics: {e}"));
        Self {
            base: BaseFabric::Cluster { spec, placement },
            dynamics,
            faults: FaultPlan::none(),
            seed,
        }
    }

    /// Uniform fabric (every pair shares `link`), statically healthy
    /// until dynamics or faults are layered on.
    pub fn uniform(n: usize, link: LinkQuality) -> Self {
        assert!(n > 0);
        Self {
            base: BaseFabric::Uniform { n, link },
            dynamics: LinkDynamics::Static,
            faults: FaultPlan::none(),
            seed: 0,
        }
    }

    /// WAN fabric over an explicit worker→region assignment.
    pub fn wan(region_of: Vec<usize>) -> Self {
        Self {
            base: BaseFabric::Wan(Box::new(WanNetwork::new(region_of))),
            dynamics: LinkDynamics::Static,
            faults: FaultPlan::none(),
            seed: 0,
        }
    }

    /// Paper defaults for `n` workers spread over `servers` machines.
    pub fn paper_default(n: usize, servers: usize, seed: u64) -> Self {
        let per = n.div_ceil(servers);
        let mut counts = vec![per; servers];
        let excess: usize = per * servers - n;
        for c in counts.iter_mut().take(excess) {
            *c -= 1;
        }
        counts.retain(|&c| c > 0);
        Self::new(ClusterSpec::paper_default(counts), SlowdownConfig::default(), seed)
    }

    /// Replaces the link dynamics.
    ///
    /// # Panics
    /// Panics if the dynamics description fails validation.
    pub fn with_dynamics(mut self, dynamics: LinkDynamics) -> Self {
        dynamics
            .validate(self.base.num_nodes())
            .unwrap_or_else(|e| panic!("invalid link dynamics: {e}"));
        self.dynamics = dynamics;
        self
    }

    /// Attaches a fault plan (its link faults degrade this network's
    /// links; node faults are interpreted by the engine).
    ///
    /// # Panics
    /// Panics if the plan fails validation against this fleet size.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        faults
            .validate(self.base.num_nodes())
            .unwrap_or_else(|e| panic!("invalid fault plan: {e}"));
        self.faults = faults;
        self
    }

    /// Replaces the dynamics seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The cluster spec, when this network is a cluster fabric.
    pub fn spec(&self) -> Option<&ClusterSpec> {
        match &self.base {
            BaseFabric::Cluster { spec, .. } => Some(spec),
            _ => None,
        }
    }

    /// The active link dynamics.
    pub fn dynamics(&self) -> &LinkDynamics {
        &self.dynamics
    }

    /// The attached fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }
}

impl Network for ElasticNetwork {
    fn num_nodes(&self) -> usize {
        self.base.num_nodes()
    }

    fn comm_time(&self, from: usize, to: usize, bytes: u64, now: f64) -> f64 {
        if from == to {
            return 0.0;
        }
        self.link(from, to, now).transfer_time(bytes)
    }

    fn link(&self, from: usize, to: usize, now: f64) -> LinkQuality {
        let base = self.base.link(from, to, now);
        let n = self.base.num_nodes();
        let factor = self.dynamics.factor(self.seed, n, from, to, now)
            * self.faults.link_factor(from, to, now);
        if factor > 1.0 {
            base.slowed(factor)
        } else {
            base
        }
    }
}

/// Six-region wide-area network (Appendix G deployment).
///
/// Region order: US-West, US-East, Ireland, Mumbai, Singapore, Tokyo —
/// matching Table VII.
#[derive(Debug, Clone)]
pub struct WanNetwork {
    n: usize,
    /// `region_of[i]` = region index of worker `i`.
    region_of: Vec<usize>,
    /// Upper-triangular one-way latency matrix in seconds, 6×6.
    latency: [[f64; 6]; 6],
    /// Inter-region bandwidth in bytes/s, 6×6 (diagonal = intra-region).
    bandwidth: [[f64; 6]; 6],
}

/// One-way latencies (seconds) between the six EC2 regions, derived from
/// published inter-region RTT measurements (half-RTT). The geographic
/// spread gives the up-to-~12× ratio the paper cites from \[5\].
const WAN_LATENCY_MS: [[f64; 6]; 6] = [
    // us-west us-east ireland mumbai singapore tokyo
    [0.5, 35.0, 65.0, 115.0, 85.0, 55.0],    // us-west
    [35.0, 0.5, 40.0, 95.0, 115.0, 80.0],    // us-east
    [65.0, 40.0, 0.5, 60.0, 90.0, 105.0],    // ireland
    [115.0, 95.0, 60.0, 0.5, 30.0, 60.0],    // mumbai
    [85.0, 115.0, 90.0, 30.0, 0.5, 35.0],    // singapore
    [55.0, 80.0, 105.0, 60.0, 35.0, 0.5],    // tokyo
];

impl WanNetwork {
    /// One worker per region, in Table VII order.
    pub fn paper_default() -> Self {
        Self::new((0..6).collect())
    }

    /// Creates a WAN with an explicit worker→region assignment.
    ///
    /// Bandwidth model: intra-region 1.25 GB/s; inter-region bandwidth
    /// decays with latency (long fat pipes are throughput-limited by
    /// congestion control), from ~150 MB/s for near regions down to
    /// ~30 MB/s for antipodal ones.
    pub fn new(region_of: Vec<usize>) -> Self {
        assert!(!region_of.is_empty());
        assert!(region_of.iter().all(|&r| r < 6), "region index out of range");
        let mut bandwidth = [[0.0; 6]; 6];
        for (r, row) in bandwidth.iter_mut().enumerate() {
            for (c, bw) in row.iter_mut().enumerate() {
                if r == c {
                    *bw = 1.25e9;
                } else {
                    let lat = WAN_LATENCY_MS[r][c];
                    // 150 MB/s at 30 ms down to ~30 MB/s at 115 ms.
                    *bw = (150e6 * 30.0 / lat).clamp(30e6, 150e6);
                }
            }
        }
        let mut latency = [[0.0; 6]; 6];
        for (r, row) in latency.iter_mut().enumerate() {
            for (c, l) in row.iter_mut().enumerate() {
                *l = WAN_LATENCY_MS[r][c] / 1e3;
            }
        }
        Self { n: region_of.len(), region_of, latency, bandwidth }
    }
}

impl Network for WanNetwork {
    fn num_nodes(&self) -> usize {
        self.n
    }

    fn comm_time(&self, from: usize, to: usize, bytes: u64, now: f64) -> f64 {
        if from == to {
            return 0.0;
        }
        self.link(from, to, now).transfer_time(bytes)
    }

    fn link(&self, from: usize, to: usize, _now: f64) -> LinkQuality {
        let (a, b) = (self.region_of[from], self.region_of[to]);
        LinkQuality::new(self.latency[a][b], self.bandwidth[a][b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1_000_000;

    #[test]
    fn homogeneous_is_uniform_and_symmetric() {
        let net = HomogeneousNetwork::paper_default(8);
        let t01 = net.comm_time(0, 1, 10 * MB, 0.0);
        let t67 = net.comm_time(6, 7, 10 * MB, 1234.5);
        assert!((t01 - t67).abs() < 1e-12);
        assert_eq!(net.comm_time(3, 3, 10 * MB, 0.0), 0.0);
    }

    #[test]
    fn hetero_intra_faster_than_inter() {
        let net = HeterogeneousDynamicNetwork::paper_default(8, 2, 7);
        // Workers 0..3 on server 0, 4..7 on server 1.
        let intra = net.comm_time(0, 1, 40 * MB, 0.0);
        let inter = net.comm_time(0, 4, 40 * MB, 0.0);
        // The slowed pair might be (0,1) or (0,4); check with a pair that is
        // not slowed in window 0.
        let (a, b, _) = crate::dynamics::periodic_slowed_pair(&SlowdownConfig::default(), 7, 8, 0);
        let (i1, i2) = if (a, b) == (0, 1) { (1, 2) } else { (0, 1) };
        let (j1, j2) = if (a, b) == (0, 4) { (1, 5) } else { (0, 4) };
        let intra_clean = net.comm_time(i1, i2, 40 * MB, 0.0);
        let inter_clean = net.comm_time(j1, j2, 40 * MB, 0.0);
        assert!(
            inter_clean > 3.0 * intra_clean,
            "inter {inter_clean} should dwarf intra {intra_clean} (raw {intra}/{inter})"
        );
    }

    #[test]
    fn slow_link_changes_between_windows() {
        let cfg = SlowdownConfig::default();
        let pairs: Vec<_> =
            (0..20).map(|w| crate::dynamics::periodic_slowed_pair(&cfg, 42, 8, w)).collect();
        // Factors in range.
        for &(_, _, f) in &pairs {
            assert!((2.0..=100.0).contains(&f), "factor {f} out of paper range");
        }
        // At least two distinct pairs over 20 windows (overwhelmingly likely).
        let distinct: std::collections::HashSet<(usize, usize)> =
            pairs.iter().map(|&(a, b, _)| (a, b)).collect();
        assert!(distinct.len() > 1, "slow link never moved");
    }

    #[test]
    fn static_mode_freezes_slow_link() {
        let sd = SlowdownConfig { dynamic: false, ..SlowdownConfig::default() };
        let p0 = crate::dynamics::periodic_slowed_pair(&sd, 42, 8, 0);
        for w in 1..10 {
            assert_eq!(crate::dynamics::periodic_slowed_pair(&sd, 42, 8, w), p0);
        }
        // And the network built from it serves identical links across
        // windows.
        let spec = ClusterSpec::paper_default(vec![4, 4]);
        let net = HeterogeneousDynamicNetwork::new(spec, sd, 42);
        let t0 = net.comm_time(0, 4, 40 * MB, 0.0);
        assert_eq!(net.comm_time(0, 4, 40 * MB, 10_000.0), t0);
    }

    #[test]
    fn elastic_cluster_with_periodic_redraw_matches_legacy_regime() {
        // The decomposed dynamics must reproduce the historical
        // HeterogeneousDynamicNetwork schedule bit-for-bit: same base
        // links, same slowed pair, same factor, at every time.
        let spec = ClusterSpec::paper_default(vec![3, 3, 2]);
        let sd = SlowdownConfig { change_period_s: 120.0, ..SlowdownConfig::default() };
        let legacy = HeterogeneousDynamicNetwork::new(spec.clone(), sd, 7);
        let composed =
            ElasticNetwork::cluster(spec, LinkDynamics::PeriodicRedraw(sd), 7);
        for t in [0.0, 55.5, 119.9, 120.0, 3600.0, 12345.6] {
            for i in 0..8 {
                for j in 0..8 {
                    assert_eq!(
                        legacy.comm_time(i, j, 40 * MB, t).to_bits(),
                        composed.comm_time(i, j, 40 * MB, t).to_bits(),
                        "({i},{j}) at t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn elastic_uniform_matches_homogeneous_network() {
        let link = LinkQuality::virtual_switch_10g();
        let plain = HomogeneousNetwork::new(6, link);
        let elastic = ElasticNetwork::uniform(6, link);
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(
                    plain.comm_time(i, j, 10 * MB, 3.0).to_bits(),
                    elastic.comm_time(i, j, 10 * MB, 3.0).to_bits()
                );
            }
        }
    }

    #[test]
    fn link_faults_degrade_only_their_window() {
        use crate::faults::{LinkFault, LinkFaultKind};
        let net = ElasticNetwork::uniform(4, LinkQuality::gbit_ethernet()).with_faults(FaultPlan {
            link_faults: vec![LinkFault {
                a: 0,
                b: 2,
                start_s: 100.0,
                end_s: 200.0,
                kind: LinkFaultKind::Degrade(10.0),
            }],
            ..FaultPlan::none()
        });
        let healthy = net.comm_time(0, 2, 10 * MB, 50.0);
        let faulty = net.comm_time(0, 2, 10 * MB, 150.0);
        assert!((faulty / healthy - 10.0).abs() < 1e-9, "{faulty} vs {healthy}");
        assert_eq!(net.comm_time(0, 2, 10 * MB, 200.0), healthy, "window end is exclusive");
        assert_eq!(net.comm_time(1, 3, 10 * MB, 150.0), healthy, "other links untouched");
    }

    #[test]
    fn outage_composes_with_dynamics() {
        use crate::faults::{LinkFault, LinkFaultKind, OUTAGE_FACTOR};
        let spec = ClusterSpec::paper_default(vec![2, 2]);
        let net = ElasticNetwork::cluster(spec, LinkDynamics::Static, 1).with_faults(FaultPlan {
            link_faults: vec![LinkFault {
                a: 0,
                b: 3,
                start_s: 0.0,
                end_s: 1e6,
                kind: LinkFaultKind::Outage,
            }],
            ..FaultPlan::none()
        });
        let clean = net.comm_time(1, 2, 40 * MB, 10.0); // same inter class
        let dead = net.comm_time(0, 3, 40 * MB, 10.0);
        assert!((dead / clean - OUTAGE_FACTOR).abs() / OUTAGE_FACTOR < 1e-9);
    }

    #[test]
    fn markov_dynamics_build_a_working_cluster_network() {
        let spec = ClusterSpec::paper_default(vec![4, 4]);
        let net = ElasticNetwork::cluster(
            spec,
            LinkDynamics::MarkovModulated(crate::dynamics::MarkovConfig::fast_drift()),
            3,
        );
        // Pure in time, positive, and bounded by the worst state.
        let base = LinkQuality::gbit_ethernet().transfer_time(40 * MB);
        for t in [0.0, 7.0, 500.0] {
            let a = net.comm_time(0, 5, 40 * MB, t);
            assert!(a > 0.0 && a <= base * 16.0 * 1.001);
            assert_eq!(a, net.comm_time(0, 5, 40 * MB, t));
        }
    }

    #[test]
    fn dynamics_are_pure_in_time() {
        let net = HeterogeneousDynamicNetwork::paper_default(8, 2, 3);
        let t1 = net.comm_time(0, 5, 40 * MB, 100.0);
        // Query other times in between; then re-query.
        let _ = net.comm_time(0, 5, 40 * MB, 900.0);
        let _ = net.comm_time(2, 6, 40 * MB, 1500.0);
        let t1_again = net.comm_time(0, 5, 40 * MB, 100.0);
        assert_eq!(t1, t1_again);
    }

    #[test]
    fn wan_heterogeneity_ratio() {
        let net = WanNetwork::paper_default();
        // Mumbai↔Singapore (close) vs US-West↔Mumbai (far).
        let near = net.comm_time(3, 4, 4 * MB, 0.0);
        let far = net.comm_time(0, 3, 4 * MB, 0.0);
        assert!(far > 2.0 * near, "far {far} vs near {near}");
        assert_eq!(net.num_nodes(), 6);
    }

    #[test]
    fn wan_latency_matrix_is_symmetric() {
        let net = WanNetwork::paper_default();
        for i in 0..6 {
            for j in 0..6 {
                let a = net.comm_time(i, j, MB, 0.0);
                let b = net.comm_time(j, i, MB, 0.0);
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cluster_spec_placement() {
        let spec = ClusterSpec::paper_default(vec![4, 4]);
        assert_eq!(spec.num_workers(), 8);
        let p = spec.placement();
        assert!(p.same_server(0, 3));
        assert!(!p.same_server(0, 4));
    }
}
