//! Link cost model.
//!
//! A link is characterised by a propagation latency and a bandwidth; the
//! time to move a message of `bytes` over it is `latency + bytes / bw`.
//! The paper's Network Monitor never measures links directly — it infers
//! them from iteration times (§III-A) — but the *simulator* needs ground
//! truth to generate those iteration times.

use serde::{Deserialize, Serialize};

/// Quality of a (directed) link: propagation latency plus bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkQuality {
    /// One-way propagation latency in seconds.
    pub latency_s: f64,
    /// Bandwidth in bytes per second.
    pub bandwidth_bps: f64,
}

impl LinkQuality {
    /// Creates a link quality.
    ///
    /// # Panics
    /// Panics unless latency ≥ 0 and bandwidth > 0.
    pub fn new(latency_s: f64, bandwidth_bps: f64) -> Self {
        assert!(latency_s >= 0.0 && latency_s.is_finite(), "latency must be ≥ 0");
        assert!(bandwidth_bps > 0.0 && bandwidth_bps.is_finite(), "bandwidth must be > 0");
        Self { latency_s, bandwidth_bps }
    }

    /// Intra-machine link (NVLink/PCIe-class: ~10 GB/s, negligible latency).
    pub fn intra_machine() -> Self {
        Self::new(50e-6, 10e9)
    }

    /// Inter-machine 1000 Mbps Ethernet link, the paper's cluster fabric.
    ///
    /// The *effective* bandwidth is set to 50 MB/s rather than the raw
    /// 125 MB/s line rate: the paper's cluster is multi-tenant ("network
    /// contention among distributed learning jobs can easily cause
    /// network congestion", §I) and its measured Fig. 3 shows inter-
    /// machine iterations up to 4× the intra-machine ones — which this
    /// calibration reproduces for the ResNet18 profile.
    pub fn gbit_ethernet() -> Self {
        Self::new(1e-3, 50e6)
    }

    /// 10 Gbps virtual-switch link (the paper's homogeneous setting uses a
    /// reserved server with a 10 Gbps virtual switch, §V-A).
    pub fn virtual_switch_10g() -> Self {
        Self::new(100e-6, 1.25e9)
    }

    /// Time in seconds to transfer `bytes` over this link.
    #[inline]
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bps
    }

    /// Returns this link slowed down by `factor` (both latency stretched
    /// and bandwidth divided) — the paper's 2×–100× artificial slowdown.
    pub fn slowed(&self, factor: f64) -> Self {
        assert!(factor >= 1.0, "slowdown factor must be ≥ 1");
        Self { latency_s: self.latency_s * factor, bandwidth_bps: self.bandwidth_bps / factor }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_bytes() {
        let l = LinkQuality::new(0.001, 1_000_000.0);
        assert!((l.transfer_time(0) - 0.001).abs() < 1e-12);
        assert!((l.transfer_time(1_000_000) - 1.001).abs() < 1e-12);
        assert!(l.transfer_time(2_000_000) > l.transfer_time(1_000_000));
    }

    #[test]
    fn slowdown_multiplies_cost() {
        let l = LinkQuality::gbit_ethernet();
        let s = l.slowed(10.0);
        let bytes = 50_000_000;
        let ratio = s.transfer_time(bytes) / l.transfer_time(bytes);
        assert!((ratio - 10.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn presets_are_ordered_by_speed() {
        let b = 46_800_000; // ResNet18 fp32 parameter bytes
        let intra = LinkQuality::intra_machine().transfer_time(b);
        let vs10 = LinkQuality::virtual_switch_10g().transfer_time(b);
        let eth = LinkQuality::gbit_ethernet().transfer_time(b);
        assert!(intra < vs10 && vs10 < eth);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn rejects_zero_bandwidth() {
        let _ = LinkQuality::new(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn rejects_speedup_as_slowdown() {
        let _ = LinkQuality::gbit_ethernet().slowed(0.5);
    }
}
