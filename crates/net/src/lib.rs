//! # netmax-net
//!
//! Discrete-event heterogeneous network substrate for the NetMax
//! reproduction.
//!
//! The paper evaluates NetMax on a multi-tenant GPU cluster whose links are
//! purposely slowed down ("we randomly slow down one of the communication
//! links among nodes by 2× to 100×  ... we further change the slow link
//! every 5 minutes", §V-A) and on a 6-region AWS deployment (Appendix G).
//! Neither testbed is reproducible directly, so this crate provides the
//! simulation equivalents:
//!
//! * [`Topology`] — the communication graph `G` of §II-A (who may gossip
//!   with whom), with the constructors used across the evaluation
//!   (fully-connected, ring, two-server cluster placement, star for the
//!   parameter-server baselines).
//! * [`LinkQuality`] — a `latency + bytes/bandwidth` cost model per
//!   directed pair.
//! * [`Network`] (trait) and its implementations in [`conditions`]:
//!   [`conditions::HomogeneousNetwork`] (reserved virtual-switch setup of
//!   §V-A), [`conditions::ElasticNetwork`] (any base fabric composed with
//!   per-link [`dynamics::LinkDynamics`] and a [`faults::FaultPlan`] —
//!   the slowed-link regime above is its
//!   [`dynamics::LinkDynamics::PeriodicRedraw`] special case), and
//!   [`conditions::WanNetwork`] (the 6-region EC2 matrix of Appendix G).
//! * [`dynamics`] — composable per-link dynamics: static, the paper's
//!   periodic redraw, Markov-modulated bandwidth, and trace replay.
//! * [`faults`] — declarative fault injection: link degradation/outage
//!   windows, node crash/rejoin schedules, straggler compute multipliers.
//! * [`EventQueue`] — a calendar queue of timestamped events with stable
//!   FIFO tie-breaking (amortized O(1) push/pop, property-tested to pop
//!   the exact (time, seq) order of a binary min-heap), used by the
//!   simulation engine in `netmax-core`.
//!
//! All dynamics are **pure functions of virtual time and the seed**: asking
//! the network for a link cost at time `t` never mutates it, so simulation
//! runs are exactly reproducible and events may be replayed.

#![forbid(unsafe_code)]

pub mod conditions;
pub mod dynamics;
pub mod event;
pub mod faults;
pub mod link;
pub mod topology;

pub use conditions::{
    ClusterSpec, ElasticNetwork, HeterogeneousDynamicNetwork, HomogeneousNetwork, Network,
    NetworkKind, SlowdownConfig, WanNetwork,
};
pub use dynamics::{LinkDynamics, MarkovConfig, TraceWindow};
pub use event::EventQueue;
pub use faults::{
    FaultPlan, LinkFault, LinkFaultKind, MembershipEvent, NodeFault, Straggler, OUTAGE_FACTOR,
};
pub use link::LinkQuality;
pub use topology::Topology;
