//! Declarative fault injection: link degradation/outage windows, node
//! crash/rejoin times, and per-node straggler compute multipliers.
//!
//! A [`FaultPlan`] is pure data — it round-trips through JSON exactly and
//! every query is a pure function of virtual time — so fault scenarios
//! are storable in experiment specs and replayable byte-for-byte. The
//! plan is interpreted in two places:
//!
//! * **link faults** by [`ElasticNetwork`](crate::conditions::ElasticNetwork),
//!   which multiplies the affected link's cost during the fault window
//!   (an [`LinkFaultKind::Outage`] is an effectively unusable link at
//!   [`OUTAGE_FACTOR`]× cost: traffic already committed to it crawls, and
//!   adaptive policies must route around it);
//! * **node faults and stragglers** by the engine's `Environment`/
//!   `Session` in `netmax-core`, which drive the active-membership set on
//!   the virtual clock and scale per-node gradient-compute times.

use netmax_json::{FromJson, Json, JsonError, ToJson};
use serde::{Deserialize, Serialize};

/// The cost multiplier standing in for a link that is *down*: large
/// enough that any traffic committed to the link dominates the sender's
/// clock, finite so the discrete-event engine's timeline stays valid.
pub const OUTAGE_FACTOR: f64 = 1.0e3;

/// What happens to a link during a fault window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LinkFaultKind {
    /// The link is slowed by the given factor (≥ 1).
    Degrade(f64),
    /// The link is down; modelled as an [`OUTAGE_FACTOR`]× degradation.
    Outage,
}

impl LinkFaultKind {
    /// The multiplicative cost factor this fault applies while active.
    pub fn factor(self) -> f64 {
        match self {
            LinkFaultKind::Degrade(f) => f,
            LinkFaultKind::Outage => OUTAGE_FACTOR,
        }
    }
}

impl ToJson for LinkFaultKind {
    fn to_json(&self) -> Json {
        match self {
            LinkFaultKind::Degrade(f) => Json::obj([("degrade", f.to_json())]),
            LinkFaultKind::Outage => Json::Str("outage".into()),
        }
    }
}

impl FromJson for LinkFaultKind {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) if s == "outage" => Ok(LinkFaultKind::Outage),
            Json::Obj(_) => Ok(LinkFaultKind::Degrade(f64::from_json(v.field("degrade")?)?)),
            other => Err(JsonError::schema(format!("expected link fault, got {}", other.kind()))),
        }
    }
}

/// One link fault: the unordered link `{a, b}` suffers `kind` during
/// `[start_s, end_s)` of virtual time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkFault {
    /// One endpoint of the affected link.
    pub a: usize,
    /// The other endpoint.
    pub b: usize,
    /// Fault window start (inclusive), virtual seconds.
    pub start_s: f64,
    /// Fault window end (exclusive), virtual seconds.
    pub end_s: f64,
    /// Degradation or outage.
    pub kind: LinkFaultKind,
}

impl ToJson for LinkFault {
    fn to_json(&self) -> Json {
        Json::obj([
            ("a", self.a.to_json()),
            ("b", self.b.to_json()),
            ("start_s", self.start_s.to_json()),
            ("end_s", self.end_s.to_json()),
            ("kind", self.kind.to_json()),
        ])
    }
}

impl FromJson for LinkFault {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            a: usize::from_json(v.field("a")?)?,
            b: usize::from_json(v.field("b")?)?,
            start_s: f64::from_json(v.field("start_s")?)?,
            end_s: f64::from_json(v.field("end_s")?)?,
            kind: LinkFaultKind::from_json(v.field("kind")?)?,
        })
    }
}

/// One node fault: the node crashes at `crash_s` and, if `rejoin_s` is
/// set, rejoins at that time (warm-starting from a live peer's replica).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeFault {
    /// The crashing worker.
    pub node: usize,
    /// Crash time, virtual seconds.
    pub crash_s: f64,
    /// Optional rejoin time (must be after the crash).
    pub rejoin_s: Option<f64>,
}

impl ToJson for NodeFault {
    fn to_json(&self) -> Json {
        Json::obj([
            ("node", self.node.to_json()),
            ("crash_s", self.crash_s.to_json()),
            ("rejoin_s", self.rejoin_s.to_json()),
        ])
    }
}

impl FromJson for NodeFault {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            node: usize::from_json(v.field("node")?)?,
            crash_s: f64::from_json(v.field("crash_s")?)?,
            rejoin_s: Option::from_json(v.field("rejoin_s")?)?,
        })
    }
}

/// A permanent per-node compute slowdown (straggler hardware, noisy
/// co-tenant): the node's gradient-compute times are multiplied by
/// `factor` for the whole run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Straggler {
    /// The slowed worker.
    pub node: usize,
    /// Compute-time multiplier (≥ 1).
    pub factor: f64,
}

impl ToJson for Straggler {
    fn to_json(&self) -> Json {
        Json::obj([("node", self.node.to_json()), ("factor", self.factor.to_json())])
    }
}

impl FromJson for Straggler {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            node: usize::from_json(v.field("node")?)?,
            factor: f64::from_json(v.field("factor")?)?,
        })
    }
}

/// A membership transition derived from a [`FaultPlan`]: node `node`
/// goes down (`up == false`) or comes back (`up == true`) at `time_s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MembershipEvent {
    /// Virtual time of the transition.
    pub time_s: f64,
    /// The affected worker.
    pub node: usize,
    /// `true` for a rejoin, `false` for a crash.
    pub up: bool,
}

/// The full declarative fault schedule of one scenario. Empty by default;
/// see the module docs for who interprets which part.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Link degradation/outage windows.
    pub link_faults: Vec<LinkFault>,
    /// Node crash (and optional rejoin) times.
    pub node_faults: Vec<NodeFault>,
    /// Permanent per-node compute multipliers.
    pub stragglers: Vec<Straggler>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.link_faults.is_empty() && self.node_faults.is_empty() && self.stragglers.is_empty()
    }

    /// Validates the plan against a fleet of `num_nodes` workers.
    pub fn validate(&self, num_nodes: usize) -> Result<(), String> {
        for f in &self.link_faults {
            if f.a >= num_nodes || f.b >= num_nodes || f.a == f.b {
                return Err(format!("link fault names bad link {{{}, {}}}", f.a, f.b));
            }
            if !(f.start_s >= 0.0 && f.end_s > f.start_s && f.end_s.is_finite()) {
                return Err(format!(
                    "link fault window must have 0 ≤ start < end, got {}..{}",
                    f.start_s, f.end_s
                ));
            }
            if let LinkFaultKind::Degrade(factor) = f.kind {
                if !(factor.is_finite() && factor >= 1.0) {
                    return Err(format!("link degradation factor must be ≥ 1, got {factor}"));
                }
            }
        }
        for (k, nf) in self.node_faults.iter().enumerate() {
            if nf.node >= num_nodes {
                return Err(format!("node fault names node {} of {num_nodes}", nf.node));
            }
            // One fault per node: overlapping schedules would let a
            // later rejoin resurrect a node an earlier fault declared
            // down forever, and `active_at` would disagree with the
            // event walk.
            if self.node_faults[..k].iter().any(|other| other.node == nf.node) {
                return Err(format!(
                    "node {} has multiple fault entries; one crash/rejoin schedule per node",
                    nf.node
                ));
            }
            if !(nf.crash_s.is_finite() && nf.crash_s >= 0.0) {
                return Err(format!("crash time must be finite and ≥ 0, got {}", nf.crash_s));
            }
            if let Some(r) = nf.rejoin_s {
                if !(r.is_finite() && r > nf.crash_s) {
                    return Err(format!(
                        "rejoin time must follow the crash, got crash {} rejoin {r}",
                        nf.crash_s
                    ));
                }
            }
        }
        for s in &self.stragglers {
            if s.node >= num_nodes {
                return Err(format!("straggler names node {} of {num_nodes}", s.node));
            }
            if !(s.factor.is_finite() && s.factor >= 1.0) {
                return Err(format!("straggler factor must be ≥ 1, got {}", s.factor));
            }
        }
        Ok(())
    }

    /// The multiplicative cost factor (≥ 1) every active fault imposes on
    /// the unordered link `{from, to}` at time `now` (factors compose
    /// multiplicatively when windows overlap). Pure in `(link, now)`.
    pub fn link_factor(&self, from: usize, to: usize, now: f64) -> f64 {
        let (lo, hi) = if from < to { (from, to) } else { (to, from) };
        let mut factor = 1.0;
        for f in &self.link_faults {
            let (fa, fb) = if f.a < f.b { (f.a, f.b) } else { (f.b, f.a) };
            if (fa, fb) == (lo, hi) && f.start_s <= now && now < f.end_s {
                factor *= f.kind.factor();
            }
        }
        factor
    }

    /// The permanent compute-time multiplier of `node` (1.0 when not a
    /// straggler; overlapping entries compose multiplicatively).
    pub fn compute_factor(&self, node: usize) -> f64 {
        self.stragglers
            .iter()
            .filter(|s| s.node == node)
            .map(|s| s.factor)
            .product()
    }

    /// Whether `node` is alive at time `now` per the crash/rejoin
    /// schedule.
    pub fn active_at(&self, node: usize, now: f64) -> bool {
        for nf in &self.node_faults {
            if nf.node == node && now >= nf.crash_s {
                match nf.rejoin_s {
                    Some(r) if now >= r => continue,
                    _ => return false,
                }
            }
        }
        true
    }

    /// Every membership transition the plan implies, sorted by time
    /// (crashes before rejoins on ties, then by node index) — the
    /// schedule the engine's session walks on the virtual clock.
    pub fn membership_events(&self) -> Vec<MembershipEvent> {
        let mut events = Vec::new();
        for nf in &self.node_faults {
            events.push(MembershipEvent { time_s: nf.crash_s, node: nf.node, up: false });
            if let Some(r) = nf.rejoin_s {
                events.push(MembershipEvent { time_s: r, node: nf.node, up: true });
            }
        }
        events.sort_by(|x, y| {
            x.time_s.total_cmp(&y.time_s).then(x.up.cmp(&y.up)).then(x.node.cmp(&y.node))
        });
        events
    }
}

impl ToJson for FaultPlan {
    fn to_json(&self) -> Json {
        Json::obj([
            ("link_faults", self.link_faults.to_json()),
            ("node_faults", self.node_faults.to_json()),
            ("stragglers", self.stragglers.to_json()),
        ])
    }
}

impl FromJson for FaultPlan {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            link_faults: Vec::from_json(v.field("link_faults")?)?,
            node_faults: Vec::from_json(v.field("node_faults")?)?,
            stragglers: Vec::from_json(v.field("stragglers")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan {
            link_faults: vec![
                LinkFault { a: 0, b: 4, start_s: 10.0, end_s: 20.0, kind: LinkFaultKind::Degrade(5.0) },
                LinkFault { a: 1, b: 2, start_s: 15.0, end_s: 25.0, kind: LinkFaultKind::Outage },
            ],
            node_faults: vec![
                NodeFault { node: 3, crash_s: 30.0, rejoin_s: Some(50.0) },
                NodeFault { node: 5, crash_s: 40.0, rejoin_s: None },
            ],
            stragglers: vec![Straggler { node: 2, factor: 4.0 }],
        }
    }

    #[test]
    fn link_factor_respects_windows_and_kinds() {
        let p = plan();
        assert_eq!(p.link_factor(0, 4, 9.99), 1.0);
        assert_eq!(p.link_factor(0, 4, 10.0), 5.0);
        assert_eq!(p.link_factor(4, 0, 15.0), 5.0, "unordered match");
        assert_eq!(p.link_factor(0, 4, 20.0), 1.0, "end is exclusive");
        assert_eq!(p.link_factor(1, 2, 20.0), OUTAGE_FACTOR);
        assert_eq!(p.link_factor(0, 1, 15.0), 1.0, "unlisted links untouched");
    }

    #[test]
    fn overlapping_link_faults_compose() {
        let mut p = plan();
        p.link_faults.push(LinkFault {
            a: 4,
            b: 0,
            start_s: 0.0,
            end_s: 100.0,
            kind: LinkFaultKind::Degrade(2.0),
        });
        assert_eq!(p.link_factor(0, 4, 15.0), 10.0);
    }

    #[test]
    fn membership_schedule_is_sorted_and_complete() {
        let p = plan();
        let events = p.membership_events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0], MembershipEvent { time_s: 30.0, node: 3, up: false });
        assert_eq!(events[1], MembershipEvent { time_s: 40.0, node: 5, up: false });
        assert_eq!(events[2], MembershipEvent { time_s: 50.0, node: 3, up: true });
        // active_at agrees with the schedule.
        assert!(p.active_at(3, 29.9));
        assert!(!p.active_at(3, 30.0));
        assert!(p.active_at(3, 50.0), "rejoined");
        assert!(!p.active_at(5, 1e6), "no rejoin ⇒ down forever");
        assert!(p.active_at(0, 1e6));
    }

    #[test]
    fn straggler_factors_compose() {
        let mut p = plan();
        assert_eq!(p.compute_factor(2), 4.0);
        assert_eq!(p.compute_factor(0), 1.0);
        p.stragglers.push(Straggler { node: 2, factor: 2.0 });
        assert_eq!(p.compute_factor(2), 8.0);
    }

    #[test]
    fn json_round_trips_exactly() {
        let p = plan();
        let text = p.to_json().pretty();
        let back = FaultPlan::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, p);
        // Empty plans round-trip too (the default in every old scenario).
        let empty = FaultPlan::none();
        assert!(empty.is_empty());
        let back = FaultPlan::from_json(&Json::parse(&empty.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, empty);
    }

    #[test]
    fn validation_names_the_problem() {
        let ok = plan();
        assert!(ok.validate(8).is_ok());
        assert!(ok.validate(4).is_err(), "node 5 out of a 4-node fleet");
        let mut bad = FaultPlan::none();
        bad.node_faults.push(NodeFault { node: 0, crash_s: 10.0, rejoin_s: Some(5.0) });
        assert!(bad.validate(4).unwrap_err().contains("rejoin"));
        // Overlapping schedules for one node would let a later rejoin
        // resurrect a node an earlier fault declared down forever.
        let mut bad = FaultPlan::none();
        bad.node_faults.push(NodeFault { node: 2, crash_s: 10.0, rejoin_s: None });
        bad.node_faults.push(NodeFault { node: 2, crash_s: 20.0, rejoin_s: Some(30.0) });
        assert!(bad.validate(4).unwrap_err().contains("multiple fault entries"));
        let mut bad = FaultPlan::none();
        bad.stragglers.push(Straggler { node: 0, factor: 0.5 });
        assert!(bad.validate(4).unwrap_err().contains("straggler"));
        let mut bad = FaultPlan::none();
        bad.link_faults.push(LinkFault {
            a: 0,
            b: 0,
            start_s: 0.0,
            end_s: 1.0,
            kind: LinkFaultKind::Outage,
        });
        assert!(bad.validate(4).unwrap_err().contains("link"));
    }
}
