//! Drain-order property suite: the calendar [`EventQueue`] must pop the
//! exact `(time, FIFO-seq)` sequence a binary min-heap would, over
//! randomized schedules including simultaneous events, crash-time purges
//! (the `purge_events` rebuild pattern in `netmax-core`), and
//! suspend/resume checkpoint round-trips.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use netmax_net::EventQueue;
use proptest::prelude::*;

/// Reference implementation: the binary heap the engine used before the
/// calendar queue, kept here as the ordering oracle.
#[derive(Debug)]
struct RefEntry {
    time: f64,
    seq: u64,
    event: u32,
}

impl PartialEq for RefEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for RefEntry {}

impl Ord for RefEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the min on top.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event time was NaN")
            .then(other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for RefEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Default)]
struct RefQueue {
    heap: BinaryHeap<RefEntry>,
    next_seq: u64,
}

impl RefQueue {
    fn push(&mut self, time: f64, event: u32) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(RefEntry { time, seq, event });
    }

    fn pop(&mut self) -> Option<(f64, u32)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }
}

/// Drains both queues fully and asserts identical (time, event) streams.
fn assert_same_drain(q: &mut EventQueue<u32>, r: &mut RefQueue) {
    let mut step = 0usize;
    loop {
        let a = q.pop();
        let b = r.pop();
        assert_eq!(a, b, "drain diverged at step {step}");
        if a.is_none() {
            break;
        }
        step += 1;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interleaved pushes and pops over a randomized schedule drain in the
    /// reference heap's exact order. Times come from a coarse grid so
    /// simultaneous events (FIFO ties) occur constantly.
    #[test]
    fn interleaved_ops_match_reference(
        ops in proptest::collection::vec((0u8..4, 0u32..60), 1..400),
    ) {
        let mut q = EventQueue::new();
        let mut r = RefQueue::default();
        let mut payload = 0u32;
        for &(op, t) in &ops {
            if op == 3 {
                assert_eq!(q.pop(), r.pop());
                assert_eq!(q.peek_time(), r.heap.peek().map(|e| e.time));
            } else {
                // Coarse grid: many collisions; op skews the scale so
                // schedules mix sub-second and far-future times.
                let time = f64::from(t) * if op == 2 { 1e4 } else { 0.25 };
                q.push(time, payload);
                r.push(time, payload);
                payload += 1;
            }
            assert_eq!(q.len(), r.heap.len());
            assert_eq!(q.is_empty(), r.heap.is_empty());
        }
        assert_same_drain(&mut q, &mut r);
    }

    /// All-simultaneous schedules: every event at one of two timestamps,
    /// so ordering is almost entirely FIFO-sequence tie-breaking.
    #[test]
    fn simultaneous_events_pop_fifo(
        picks in proptest::collection::vec(0u8..2, 1..200),
    ) {
        let mut q = EventQueue::new();
        let mut r = RefQueue::default();
        for (i, &p) in picks.iter().enumerate() {
            let time = f64::from(p);
            q.push(time, i as u32);
            r.push(time, i as u32);
        }
        assert_same_drain(&mut q, &mut r);
    }

    /// The crash-time `purge_events` pattern: snapshot via `entries()`,
    /// rebuild keeping only a predicate's survivors, continue scheduling.
    /// Order and sequence numbering must match a reference heap given the
    /// same treatment.
    #[test]
    fn purge_rebuild_matches_reference(
        times in proptest::collection::vec(0u32..40, 1..150),
        later in proptest::collection::vec(0u32..40, 0..60),
        keep_parity in 0u32..2,
    ) {
        let mut q = EventQueue::new();
        let mut r = RefQueue::default();
        for (i, &t) in times.iter().enumerate() {
            q.push(f64::from(t) * 0.5, i as u32);
            r.push(f64::from(t) * 0.5, i as u32);
        }
        // Advance both clocks a little before the "crash".
        for _ in 0..times.len() / 3 {
            assert_eq!(q.pop(), r.pop());
        }

        // Purge: drop events whose payload parity matches `keep_parity`'s
        // complement — mirrors purge_events dropping a crashed node's
        // completions while preserving (time, seq) for the survivors.
        let snapshot: Vec<(f64, u64, u32)> =
            q.entries().into_iter().map(|(t, s, e)| (t, s, *e)).collect();
        let next = q.next_seq();
        let mut q2: EventQueue<u32> = EventQueue::new();
        for &(t, s, e) in &snapshot {
            if e % 2 == keep_parity {
                q2.restore_entry(t, s, e);
            }
        }
        q2.set_next_seq(next);

        let mut r2 = RefQueue::default();
        let mut survivors: Vec<RefEntry> = r.heap.into_vec();
        survivors.retain(|e| e.event % 2 == keep_parity);
        r2.heap = survivors.into();
        r2.next_seq = r.next_seq;

        // Post-purge schedules must still interleave identically.
        for (i, &t) in later.iter().enumerate() {
            q2.push(f64::from(t) * 0.5, 10_000 + i as u32);
            r2.push(f64::from(t) * 0.5, 10_000 + i as u32);
        }
        assert_same_drain(&mut q2, &mut r2);
    }

    /// Suspend/resume: a mid-run checkpoint (`entries` + `next_seq`)
    /// restored into a fresh queue continues with identical behavior to
    /// the uninterrupted original.
    #[test]
    fn checkpoint_roundtrip_is_transparent(
        times in proptest::collection::vec(0u32..50, 1..150),
        after in proptest::collection::vec(0u32..50, 0..60),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(f64::from(t) * 0.125, i as u32);
        }
        for _ in 0..times.len() / 4 {
            q.pop();
        }

        // Checkpoint and restore — the gossip engine's suspend path.
        let snapshot: Vec<(f64, u64, u32)> =
            q.entries().into_iter().map(|(t, s, e)| (t, s, *e)).collect();
        let next = q.next_seq();
        let mut restored: EventQueue<u32> = EventQueue::new();
        for &(t, s, e) in &snapshot {
            restored.restore_entry(t, s, e);
        }
        restored.set_next_seq(next);
        assert_eq!(restored.next_seq(), next);
        assert_eq!(restored.len(), q.len());

        // Both sides keep running: pops and fresh pushes must agree.
        for (i, &t) in after.iter().enumerate() {
            let time = f64::from(t) * 0.125;
            q.push(time, 50_000 + i as u32);
            restored.push(time, 50_000 + i as u32);
        }
        let mut step = 0usize;
        loop {
            let a = q.pop();
            let b = restored.pop();
            assert_eq!(a, b, "resumed run diverged at step {step}");
            if a.is_none() {
                break;
            }
            step += 1;
        }
    }
}

/// Events pushed before the current clock (a restored checkpoint can
/// re-anchor time backwards) still pop strictly by (time, seq).
#[test]
fn backward_time_pushes_keep_global_order() {
    let mut q = EventQueue::new();
    let mut r = RefQueue::default();
    let schedule = [500.0, 2.0, 300.0, 1.0, 250.0, 0.0, 275.0];
    for (i, &t) in schedule.iter().enumerate() {
        // Pop between pushes so `last_time` advances past later pushes.
        q.push(t, i as u32);
        r.push(t, i as u32);
        if i % 2 == 1 {
            assert_eq!(q.pop(), r.pop());
        }
    }
    assert_same_drain(&mut q, &mut r);
}
