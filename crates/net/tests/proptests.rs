//! Property-based tests for the network substrate: timing positivity and
//! monotonicity, purity of the dynamic regime, topology invariants, and
//! event-queue ordering.

use netmax_net::{
    EventQueue, HeterogeneousDynamicNetwork, HomogeneousNetwork, LinkQuality, Network, Topology,
    WanNetwork,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Transfer time is positive and increases with message size.
    #[test]
    fn transfer_time_monotone_in_bytes(
        lat in 0.0f64..0.1,
        bw in 1e6f64..1e10,
        a in 1u64..1_000_000,
        b in 1u64..1_000_000,
    ) {
        let l = LinkQuality::new(lat, bw);
        prop_assert!(l.transfer_time(a) > 0.0);
        if a < b {
            prop_assert!(l.transfer_time(a) <= l.transfer_time(b));
        }
    }

    /// Slowdown by factor f multiplies the transfer time by exactly f.
    #[test]
    fn slowdown_scales_linearly(f in 1.0f64..100.0, bytes in 1u64..100_000_000) {
        let l = LinkQuality::gbit_ethernet();
        let ratio = l.slowed(f).transfer_time(bytes) / l.transfer_time(bytes);
        prop_assert!((ratio - f).abs() < 1e-9 * f);
    }

    /// The dynamic heterogeneous network is a pure function of time: the
    /// same query at the same instant always returns the same cost, in
    /// any interleaving.
    #[test]
    fn dynamic_network_is_pure(
        seed in 0u64..1000,
        queries in proptest::collection::vec((0usize..8, 0usize..8, 0.0f64..5000.0), 1..20),
    ) {
        let net = HeterogeneousDynamicNetwork::paper_default(8, 3, seed);
        let bytes = 10_000_000;
        let first: Vec<f64> = queries
            .iter()
            .map(|&(i, j, t)| net.comm_time(i, j, bytes, t))
            .collect();
        // Re-query in reverse order — results must be identical.
        let second: Vec<f64> = queries
            .iter()
            .rev()
            .map(|&(i, j, t)| net.comm_time(i, j, bytes, t))
            .collect();
        for (a, b) in first.iter().zip(second.iter().rev()) {
            prop_assert_eq!(a, b);
        }
    }

    /// Slowdown factors stay inside the configured \[2, 100\] band at all
    /// times and for all links.
    #[test]
    fn slowdown_factors_bounded(seed in 0u64..500, t in 0.0f64..100_000.0) {
        let net = HeterogeneousDynamicNetwork::paper_default(8, 2, seed);
        let bytes = 46_800_000; // resnet18
        let base_inter = LinkQuality::gbit_ethernet().transfer_time(bytes);
        for i in 0..8usize {
            for j in 0..8usize {
                if i == j { continue; }
                let t_ij = net.comm_time(i, j, bytes, t);
                // Never faster than intra-machine, never slower than
                // 100× the inter-machine base.
                prop_assert!(t_ij > 0.0);
                prop_assert!(t_ij <= base_inter * 100.0 * 1.001, "({i},{j}) {t_ij}");
            }
        }
    }

    /// Homogeneous network: all distinct pairs cost the same at any time.
    #[test]
    fn homogeneous_is_symmetric_and_uniform(t in 0.0f64..10_000.0, bytes in 1u64..1_000_000_000) {
        let net = HomogeneousNetwork::paper_default(6);
        let base = net.comm_time(0, 1, bytes, t);
        for i in 0..6usize {
            for j in 0..6usize {
                if i != j {
                    prop_assert_eq!(net.comm_time(i, j, bytes, t), base);
                }
            }
        }
    }

    /// WAN: costs are symmetric and self-communication is free.
    #[test]
    fn wan_symmetric(bytes in 1u64..100_000_000) {
        let net = WanNetwork::paper_default();
        for i in 0..6usize {
            prop_assert_eq!(net.comm_time(i, i, bytes, 0.0), 0.0);
            for j in 0..6usize {
                let a = net.comm_time(i, j, bytes, 0.0);
                let b = net.comm_time(j, i, bytes, 0.0);
                prop_assert!((a - b).abs() < 1e-12);
            }
        }
    }

    /// Fully-connected topologies are connected with degree M−1; removing
    /// one edge keeps them connected for M ≥ 3.
    #[test]
    fn fully_connected_robust_to_edge_removal(m in 3usize..12, e1 in 0usize..12, e2 in 0usize..12) {
        let mut t = Topology::fully_connected(m);
        prop_assert!(t.is_connected());
        prop_assert_eq!(t.num_edges(), m * (m - 1) / 2);
        let (a, b) = (e1 % m, e2 % m);
        if a != b {
            t.set_edge(a, b, false);
            prop_assert!(t.is_connected(), "removing one edge from K_{m} must keep it connected");
        }
    }

    /// Event queue pops in non-decreasing time order with FIFO ties.
    #[test]
    fn event_queue_ordering(times in proptest::collection::vec(0.0f64..100.0, 1..50)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let mut last_t = f64::NEG_INFINITY;
        let mut popped = 0;
        let mut last_seq_at_time: Option<(f64, usize)> = None;
        while let Some((t, idx)) = q.pop() {
            prop_assert!(t >= last_t);
            if let Some((lt, lidx)) = last_seq_at_time {
                if lt == t {
                    // FIFO among equal timestamps: insertion index grows.
                    prop_assert!(idx > lidx);
                }
            }
            last_seq_at_time = Some((t, idx));
            last_t = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }
}
