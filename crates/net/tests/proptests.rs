//! Property-based tests for the network substrate: timing positivity and
//! monotonicity, purity of every network implementation in virtual time
//! (old regimes and the new composable dynamics alike), exact fault-plan
//! JSON round-trips, topology invariants, and event-queue ordering.

use netmax_net::{
    ClusterSpec, ElasticNetwork, EventQueue, FaultPlan, HeterogeneousDynamicNetwork,
    HomogeneousNetwork, LinkDynamics, LinkFault, LinkFaultKind, LinkQuality, MarkovConfig,
    Network, NodeFault, SlowdownConfig, Straggler, Topology, TraceWindow, WanNetwork,
};
use netmax_json::{FromJson, Json, ToJson};
use proptest::prelude::*;

/// Builds one of every `Network` implementation family for an 8-worker
/// fleet: the legacy regimes plus each composable dynamics variant, with
/// an optional fault plan layered on.
fn all_networks(seed: u64, faults: FaultPlan) -> Vec<(&'static str, Box<dyn Network>)> {
    let spec = || ClusterSpec::paper_default(vec![3, 3, 2]);
    let with = |net: ElasticNetwork| net.with_faults(faults.clone());
    vec![
        ("homogeneous", Box::new(HomogeneousNetwork::paper_default(8)) as Box<dyn Network>),
        ("wan", Box::new(WanNetwork::new((0..8).map(|i| i % 6).collect()))),
        (
            "periodic-redraw",
            Box::new(with(HeterogeneousDynamicNetwork::new(
                spec(),
                SlowdownConfig::default(),
                seed,
            ))),
        ),
        (
            "static-cluster",
            Box::new(with(ElasticNetwork::cluster(spec(), LinkDynamics::Static, seed))),
        ),
        (
            "markov",
            Box::new(with(ElasticNetwork::cluster(
                spec(),
                LinkDynamics::MarkovModulated(MarkovConfig::fast_drift()),
                seed,
            ))),
        ),
        (
            "trace",
            Box::new(with(ElasticNetwork::cluster(
                spec(),
                LinkDynamics::Trace(vec![
                    TraceWindow { a: 0, b: 4, start_s: 100.0, end_s: 900.0, factor: 7.0 },
                    TraceWindow { a: 2, b: 6, start_s: 0.0, end_s: 2500.0, factor: 3.5 },
                ]),
                seed,
            ))),
        ),
        (
            "elastic-uniform",
            Box::new(with(
                ElasticNetwork::uniform(8, LinkQuality::virtual_switch_10g()).with_seed(seed),
            )),
        ),
    ]
}

/// An arbitrary (valid) fault plan over an 8-worker fleet. Distinct link
/// endpoints come from an offset draw; the optional rejoin from a coin
/// tuple (the offline proptest shim has no `option::of`/`filter_map`).
fn fault_plan_strategy() -> impl Strategy<Value = FaultPlan> {
    let link = ((0usize..8, 1usize..8), (0.0f64..2000.0, 1.0f64..1000.0), (1.0f64..50.0, 0u8..2))
        .prop_map(|((a, delta), (start, len), (factor, outage))| LinkFault {
            a,
            b: (a + delta) % 8,
            start_s: start,
            end_s: start + len,
            kind: if outage == 1 {
                LinkFaultKind::Outage
            } else {
                LinkFaultKind::Degrade(factor)
            },
        });
    let node = (0usize..8, 0.0f64..2000.0, 0u8..2, 1.0f64..1000.0).prop_map(
        |(node, crash_s, rejoin, rejoin_after)| NodeFault {
            node,
            crash_s,
            rejoin_s: (rejoin == 1).then_some(crash_s + rejoin_after),
        },
    );
    let straggler =
        (0usize..8, 1.0f64..32.0).prop_map(|(node, factor)| Straggler { node, factor });
    (
        proptest::collection::vec(link, 0..4),
        proptest::collection::vec(node, 0..3),
        proptest::collection::vec(straggler, 0..3),
    )
        .prop_map(|(link_faults, mut node_faults, stragglers)| {
            // One crash/rejoin schedule per node (the plan's validation
            // rejects overlapping entries).
            let mut seen = [false; 8];
            node_faults.retain(|nf: &NodeFault| !std::mem::replace(&mut seen[nf.node], true));
            FaultPlan { link_faults, node_faults, stragglers }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Transfer time is positive and increases with message size.
    #[test]
    fn transfer_time_monotone_in_bytes(
        lat in 0.0f64..0.1,
        bw in 1e6f64..1e10,
        a in 1u64..1_000_000,
        b in 1u64..1_000_000,
    ) {
        let l = LinkQuality::new(lat, bw);
        prop_assert!(l.transfer_time(a) > 0.0);
        if a < b {
            prop_assert!(l.transfer_time(a) <= l.transfer_time(b));
        }
    }

    /// Slowdown by factor f multiplies the transfer time by exactly f.
    #[test]
    fn slowdown_scales_linearly(f in 1.0f64..100.0, bytes in 1u64..100_000_000) {
        let l = LinkQuality::gbit_ethernet();
        let ratio = l.slowed(f).transfer_time(bytes) / l.transfer_time(bytes);
        prop_assert!((ratio - f).abs() < 1e-9 * f);
    }

    /// The dynamic heterogeneous network is a pure function of time: the
    /// same query at the same instant always returns the same cost, in
    /// any interleaving.
    #[test]
    fn dynamic_network_is_pure(
        seed in 0u64..1000,
        queries in proptest::collection::vec((0usize..8, 0usize..8, 0.0f64..5000.0), 1..20),
    ) {
        let net = HeterogeneousDynamicNetwork::paper_default(8, 3, seed);
        let bytes = 10_000_000;
        let first: Vec<f64> = queries
            .iter()
            .map(|&(i, j, t)| net.comm_time(i, j, bytes, t))
            .collect();
        // Re-query in reverse order — results must be identical.
        let second: Vec<f64> = queries
            .iter()
            .rev()
            .map(|&(i, j, t)| net.comm_time(i, j, bytes, t))
            .collect();
        for (a, b) in first.iter().zip(second.iter().rev()) {
            prop_assert_eq!(a, b);
        }
    }

    /// Slowdown factors stay inside the configured \[2, 100\] band at all
    /// times and for all links.
    #[test]
    fn slowdown_factors_bounded(seed in 0u64..500, t in 0.0f64..100_000.0) {
        let net = HeterogeneousDynamicNetwork::paper_default(8, 2, seed);
        let bytes = 46_800_000; // resnet18
        let base_inter = LinkQuality::gbit_ethernet().transfer_time(bytes);
        for i in 0..8usize {
            for j in 0..8usize {
                if i == j { continue; }
                let t_ij = net.comm_time(i, j, bytes, t);
                // Never faster than intra-machine, never slower than
                // 100× the inter-machine base.
                prop_assert!(t_ij > 0.0);
                prop_assert!(t_ij <= base_inter * 100.0 * 1.001, "({i},{j}) {t_ij}");
            }
        }
    }

    /// Homogeneous network: all distinct pairs cost the same at any time.
    #[test]
    fn homogeneous_is_symmetric_and_uniform(t in 0.0f64..10_000.0, bytes in 1u64..1_000_000_000) {
        let net = HomogeneousNetwork::paper_default(6);
        let base = net.comm_time(0, 1, bytes, t);
        for i in 0..6usize {
            for j in 0..6usize {
                if i != j {
                    prop_assert_eq!(net.comm_time(i, j, bytes, t), base);
                }
            }
        }
    }

    /// WAN: costs are symmetric and self-communication is free.
    #[test]
    fn wan_symmetric(bytes in 1u64..100_000_000) {
        let net = WanNetwork::paper_default();
        for i in 0..6usize {
            prop_assert_eq!(net.comm_time(i, i, bytes, 0.0), 0.0);
            for j in 0..6usize {
                let a = net.comm_time(i, j, bytes, 0.0);
                let b = net.comm_time(j, i, bytes, 0.0);
                prop_assert!((a - b).abs() < 1e-12);
            }
        }
    }

    /// Fully-connected topologies are connected with degree M−1; removing
    /// one edge keeps them connected for M ≥ 3.
    #[test]
    fn fully_connected_robust_to_edge_removal(m in 3usize..12, e1 in 0usize..12, e2 in 0usize..12) {
        let mut t = Topology::fully_connected(m);
        prop_assert!(t.is_connected());
        prop_assert_eq!(t.num_edges(), m * (m - 1) / 2);
        let (a, b) = (e1 % m, e2 % m);
        if a != b {
            t.set_edge(a, b, false);
            prop_assert!(t.is_connected(), "removing one edge from K_{m} must keep it connected");
        }
    }

    /// Every `Network` implementation — the legacy regimes and every
    /// composable dynamics variant, with and without a fault plan — is
    /// pure in virtual time: identical `comm_time` and `link` answers
    /// regardless of query order or history.
    #[test]
    fn every_network_impl_is_pure_in_virtual_time(
        seed in 0u64..500,
        faulted in 0u8..2,
        queries in proptest::collection::vec((0usize..8, 0usize..8, 0.0f64..5000.0), 1..16),
    ) {
        let faults = if faulted == 1 {
            FaultPlan {
                link_faults: vec![LinkFault {
                    a: 1, b: 5, start_s: 200.0, end_s: 1500.0,
                    kind: LinkFaultKind::Degrade(9.0),
                }],
                ..FaultPlan::none()
            }
        } else {
            FaultPlan::none()
        };
        let bytes = 10_000_000;
        for (name, net) in all_networks(seed, faults) {
            // First pass in given order; second pass reversed, with extra
            // interleaved probes as "history".
            let first: Vec<(u64, u64, u64)> = queries
                .iter()
                .map(|&(i, j, t)| {
                    let l = net.link(i, j, t);
                    (
                        net.comm_time(i, j, bytes, t).to_bits(),
                        l.latency_s.to_bits(),
                        l.bandwidth_bps.to_bits(),
                    )
                })
                .collect();
            let second: Vec<(u64, u64, u64)> = queries
                .iter()
                .rev()
                .map(|&(i, j, t)| {
                    let _ = net.comm_time(j, i, bytes / 2, t + 17.0);
                    let l = net.link(i, j, t);
                    (
                        net.comm_time(i, j, bytes, t).to_bits(),
                        l.latency_s.to_bits(),
                        l.bandwidth_bps.to_bits(),
                    )
                })
                .collect();
            for (a, b) in first.iter().zip(second.iter().rev()) {
                prop_assert_eq!(a, b, "{} answered differently on re-query", name);
            }
        }
    }

    /// Fault plans round-trip through JSON *exactly* (bit-for-bit on
    /// every f64 — the writer emits shortest-round-trip forms).
    #[test]
    fn fault_plan_json_round_trips_exactly(plan in fault_plan_strategy()) {
        let text = plan.to_json().pretty();
        let back = FaultPlan::from_json(&Json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(&back, &plan);
        // And through the compact form too.
        let compact = plan.to_json().to_string();
        let back = FaultPlan::from_json(&Json::parse(&compact).unwrap()).unwrap();
        prop_assert_eq!(&back, &plan);
    }

    /// The composed factor pipeline never speeds a link up: with any
    /// dynamics and fault plan, the elastic link is at least as slow as
    /// its base class at every time.
    #[test]
    fn dynamics_and_faults_only_slow_links_down(
        seed in 0u64..200,
        plan in fault_plan_strategy(),
        t in 0.0f64..3000.0,
    ) {
        let spec = ClusterSpec::paper_default(vec![4, 4]);
        let base = ElasticNetwork::cluster(spec.clone(), LinkDynamics::Static, seed);
        let net = ElasticNetwork::cluster(
            spec,
            LinkDynamics::MarkovModulated(MarkovConfig::slow_drift()),
            seed,
        )
        .with_faults(plan);
        let bytes = 1_000_000;
        for i in 0..8usize {
            for j in 0..8usize {
                if i == j { continue; }
                prop_assert!(net.comm_time(i, j, bytes, t) >= base.comm_time(i, j, bytes, t));
            }
        }
    }

    /// Event queue pops in non-decreasing time order with FIFO ties.
    #[test]
    fn event_queue_ordering(times in proptest::collection::vec(0.0f64..100.0, 1..50)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let mut last_t = f64::NEG_INFINITY;
        let mut popped = 0;
        let mut last_seq_at_time: Option<(f64, usize)> = None;
        while let Some((t, idx)) = q.pop() {
            prop_assert!(t >= last_t);
            if let Some((lt, lidx)) = last_seq_at_time {
                if lt == t {
                    // FIFO among equal timestamps: insertion index grows.
                    prop_assert!(idx > lidx);
                }
            }
            last_seq_at_time = Some((t, idx));
            last_t = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }
}
