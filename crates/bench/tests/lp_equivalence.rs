//! Satellite suite: the edge-set LP must be *indistinguishable* from the
//! dense LP of Eq. (14) on every topology the benchmark registry can
//! produce — including the mid-churn masked subgraphs the fault plans of
//! the faults experiments create.
//!
//! The row-wise solver (`solve_policy_lp_rowwise`) exploits the LP's
//! block structure, so under the deterministic Bland's-rule simplex the
//! per-row solutions must be **bit-for-bit** the dense joint solution —
//! not merely close. Same for the candidate-sweep bound helpers: the
//! edge-list folds visit the same values in the same order as the dense
//! row scans (absent entries contribute exact zeros), so ρ and t̄ grids
//! are float-identical. These tests pin both claims across the whole
//! registry so `scale/*` fleets select exactly the policies the dense
//! oracle would.

use netmax_bench::{registry, Mode};
use netmax_core::policy::{rho_upper_bound, solve_policy_lp, t_bar_bounds};
use netmax_core::sparse_policy::{rho_upper_bound_sparse, t_bar_bounds_sparse};
use netmax_core::{solve_policy_lp_rowwise, EdgeTimes};
use netmax_linalg::Matrix;
use netmax_net::Topology;

/// Deterministic heterogeneous iteration times over the topology's edges:
/// strictly positive, direction-dependent, and varied enough to give the
/// LP non-trivial vertices.
fn synthetic_times(topo: &Topology) -> Matrix {
    let n = topo.len();
    let mut t = Matrix::zeros(n, n);
    for i in 0..n {
        for &j in topo.neighbors(i) {
            t[(i, j)] = 0.25 + 0.05 * ((i * 31 + j * 17) % 9) as f64;
        }
    }
    t
}

/// Asserts dense and row-wise LP agree (feasibility *and* bytes) over a
/// small candidate grid derived from the shared sweep-bound helpers, and
/// that the sparse bound helpers are float-identical to the dense ones.
/// Returns the number of feasible candidates exercised.
fn assert_lp_equivalent(topo: &Topology, label: &str) -> usize {
    let times = synthetic_times(topo);
    let edge_times = EdgeTimes::from_dense(&times, topo);
    let mut feasible = 0usize;
    for &alpha in &[0.05, 0.1] {
        let u_rho = rho_upper_bound(alpha, &times, topo);
        assert_eq!(
            u_rho,
            rho_upper_bound_sparse(alpha, &edge_times, topo),
            "{label}: ρ upper bound diverged (α = {alpha})"
        );
        let Some(u_rho) = u_rho else { continue };
        for k in 1..=3usize {
            let rho = u_rho * k as f64 / 3.0;
            let bounds = t_bar_bounds(alpha, rho, &times, topo);
            assert_eq!(
                bounds,
                t_bar_bounds_sparse(alpha, rho, &edge_times, topo),
                "{label}: t̄ bounds diverged (α = {alpha}, ρ = {rho})"
            );
            let Some((lower, upper)) = bounds else { continue };
            for r in 1..=3usize {
                let t_bar = lower + (upper - lower) * r as f64 / 4.0;
                let dense = solve_policy_lp(alpha, rho, t_bar, &times, topo);
                let rowwise = solve_policy_lp_rowwise(alpha, rho, t_bar, &edge_times, topo);
                match (&dense, &rowwise) {
                    (Some(d), Some(s)) => {
                        assert_eq!(
                            s.to_dense().as_slice(),
                            d.as_slice(),
                            "{label}: policies diverged at (α = {alpha}, ρ = {rho}, t̄ = {t_bar})"
                        );
                        feasible += 1;
                    }
                    (None, None) => {}
                    _ => panic!(
                        "{label}: feasibility diverged at (α = {alpha}, ρ = {rho}, t̄ = {t_bar}): \
                         dense = {}, rowwise = {}",
                        dense.is_some(),
                        rowwise.is_some()
                    ),
                }
            }
        }
    }
    feasible
}

/// Stable fingerprint so the registry sweep solves each distinct graph
/// once rather than once per experiment.
fn signature(topo: &Topology) -> Vec<usize> {
    let mut sig = vec![topo.len()];
    for i in 0..topo.len() {
        sig.push(usize::MAX); // row separator
        sig.extend(topo.neighbors(i).iter().copied());
    }
    sig
}

/// The live-node subgraph under a mask, compacted to contiguous indices.
/// `None` if fewer than two nodes survive or the survivors disconnect
/// (the monitor skips those rounds; there is no LP to compare).
fn masked_subgraph(topo: &Topology, active: &[bool]) -> Option<Topology> {
    let idx: Vec<usize> = (0..topo.len()).filter(|&i| active[i]).collect();
    if idx.len() < 2 {
        return None;
    }
    let mut pos = vec![usize::MAX; topo.len()];
    for (a, &i) in idx.iter().enumerate() {
        pos[i] = a;
    }
    let mut sub = Topology::empty(idx.len());
    for (a, &i) in idx.iter().enumerate() {
        for &j in topo.neighbors(i) {
            if j > i && active[j] {
                sub.set_edge(a, pos[j], true);
            }
        }
    }
    if sub.is_connected() {
        Some(sub)
    } else {
        None
    }
}

#[test]
fn rowwise_lp_matches_dense_on_every_registry_topology() {
    let mut seen: Vec<Vec<usize>> = Vec::new();
    let mut checked = 0usize;
    let mut feasible = 0usize;
    for spec in registry(Mode::Tiny) {
        let topo = spec.scenario.build_env().topology;
        let sig = signature(&topo);
        if seen.contains(&sig) {
            continue;
        }
        seen.push(sig);
        feasible += assert_lp_equivalent(&topo, &spec.name);
        checked += 1;
    }
    assert!(checked >= 3, "registry produced only {checked} distinct topologies");
    assert!(feasible > 0, "no feasible candidate was ever exercised");
}

#[test]
fn rowwise_lp_matches_dense_on_mid_churn_masked_subgraphs() {
    // Replay every fault plan in the registry: sample the fleet's active
    // mask just after each membership transition and compare the LPs on
    // the compacted live subgraph — exactly what a monitor round sees
    // mid-churn.
    let mut masked_cases = 0usize;
    let mut feasible = 0usize;
    for spec in registry(Mode::Tiny) {
        let plan = spec.scenario.fault_plan().clone();
        let events = plan.membership_events();
        if events.is_empty() {
            continue;
        }
        let topo = spec.scenario.build_env().topology;
        let n = topo.len();
        for ev in &events {
            let now = ev.time_s + 1e-6;
            let active: Vec<bool> = (0..n).map(|i| plan.active_at(i, now)).collect();
            if active.iter().all(|&a| a) {
                continue;
            }
            let Some(sub) = masked_subgraph(&topo, &active) else { continue };
            feasible +=
                assert_lp_equivalent(&sub, &format!("{} @ t = {:.1}s", spec.name, ev.time_s));
            masked_cases += 1;
        }
    }
    assert!(masked_cases > 0, "no fault plan produced a masked subgraph to test");
    assert!(feasible > 0, "no feasible masked candidate was ever exercised");
}

#[test]
fn rowwise_lp_matches_dense_on_synthetic_crash_masks() {
    // Independent of what the registry's fault plans happen to schedule:
    // canonical graph shapes under hand-picked crash masks, covering the
    // structural corners (leaf loss, hub survival, ring splits avoided).
    let shapes: Vec<(&str, Topology)> = vec![
        ("ring-8", Topology::ring(8)),
        ("star-8", Topology::star(8, 0)),
        ("full-8", Topology::fully_connected(8)),
        ("torus-4x4", Topology::torus(4, 4)),
    ];
    let mut feasible = 0usize;
    for (name, topo) in &shapes {
        let n = topo.len();
        let masks: Vec<Vec<bool>> = vec![
            { let mut m = vec![true; n]; m[0] = false; m },
            { let mut m = vec![true; n]; m[n - 1] = false; m },
            { let mut m = vec![true; n]; m[1] = false; m[2] = false; m },
        ];
        for (k, mask) in masks.iter().enumerate() {
            let Some(sub) = masked_subgraph(topo, mask) else { continue };
            feasible += assert_lp_equivalent(&sub, &format!("{name} mask {k}"));
        }
    }
    assert!(feasible > 0, "no synthetic masked candidate was feasible");
}
