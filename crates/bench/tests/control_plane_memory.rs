// A global allocator shim is inherently `unsafe`; it is what lets this
// test measure live heap bytes instead of trusting asymptotic claims.
#![allow(unsafe_code)]

//! Satellite suite: the sparse control plane's *memory* must scale with
//! the edge set, not n². A byte-tracking global allocator measures the
//! live-heap footprint of the edge-map tracker and the peak transient of
//! a full sparse monitor round (LP search + λ₂) on a 256-node torus;
//! both must stay far below the 8·n² bytes a single dense `f64` matrix
//! of the historical control plane would occupy.
//!
//! Everything is measured inside one `#[test]` so the parallel test
//! harness cannot interleave foreign allocations into the window.

use netmax_core::monitor::EmaTimeTracker;
use netmax_core::{MonitorConfig, NetworkMonitor, PolicySearchConfig};
use netmax_net::Topology;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicIsize, Ordering};

struct ByteTrackingAlloc;

static LIVE: AtomicIsize = AtomicIsize::new(0);
static PEAK: AtomicIsize = AtomicIsize::new(0);

fn bump(delta: isize) {
    let now = LIVE.fetch_add(delta, Ordering::Relaxed) + delta;
    PEAK.fetch_max(now, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for ByteTrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump(layout.size() as isize);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump(layout.size() as isize);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump(new_size as isize - layout.size() as isize);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        bump(-(layout.size() as isize));
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static TRACKER: ByteTrackingAlloc = ByteTrackingAlloc;

fn live_bytes() -> isize {
    LIVE.load(Ordering::Relaxed)
}

/// Resets the peak watermark to the current live count and returns the
/// baseline, so a subsequent [`peak_above`] reads the window's transient.
fn start_window() -> isize {
    let now = live_bytes();
    PEAK.store(now, Ordering::Relaxed);
    now
}

fn peak_above(baseline: isize) -> isize {
    PEAK.load(Ordering::Relaxed) - baseline
}

#[test]
fn sparse_control_plane_memory_is_edge_bounded_at_n_256() {
    let n = 256usize;
    let topo = Topology::torus(16, 16);
    let dense_matrix_bytes = (8 * n * n) as isize; // one n×n f64 matrix

    // --- Steady-state tracker footprint: O(observed pairs). -------------
    let before_tracker = live_bytes();
    let mut tracker = EmaTimeTracker::for_fleet(n, 0.5);
    for i in 0..n {
        for &m in topo.neighbors(i) {
            tracker.record(i, m, 0.25 + 0.05 * ((i * 31 + m * 17) % 9) as f64);
        }
    }
    let tracker_bytes = live_bytes() - before_tracker;
    assert!(
        tracker_bytes > 0,
        "tracker footprint measured as {tracker_bytes} bytes — allocator shim broken?"
    );
    assert!(
        tracker_bytes < dense_matrix_bytes / 4,
        "edge-map tracker holds {tracker_bytes} bytes live; a dense control plane's time \
         matrix alone would be {dense_matrix_bytes}"
    );
    assert_eq!(tracker.coverage(&topo), 1.0, "every directed pair recorded");

    // --- Peak transient of one full sparse monitor round. ---------------
    // Small search resolution keeps the test fast; peak memory per
    // candidate is what is bounded, and it does not grow with K·R.
    let search = PolicySearchConfig { outer_k: 4, inner_r: 4, ..PolicySearchConfig::new(0.05) };
    let mut monitor = NetworkMonitor::new(MonitorConfig { period_s: 1.0, beta: 0.5, search });
    let active = vec![true; n];
    let baseline = start_window();
    let result = monitor.round_sparse(&tracker, &topo, 0.05, &active);
    let round_peak = peak_above(baseline);
    let result = result.expect("full coverage on a connected torus must produce a policy");
    assert_eq!(result.policy.len(), n);
    assert!(
        round_peak > 0,
        "round peak measured as {round_peak} bytes — allocator shim broken?"
    );
    assert!(
        round_peak < dense_matrix_bytes / 2,
        "sparse monitor round peaked at {round_peak} transient bytes; the dense round \
         allocates multiple {dense_matrix_bytes}-byte matrices"
    );
}
