//! Satellite suite: every `scale/*` registry entry must actually build
//! its Environment at the declared fleet size — topology, network,
//! partition, and models materialised, not just a spec that parses. The
//! full sweep sizes (up to 4 096 workers) are exercised here so a
//! mis-factored torus or an empty shard fails in tests, not mid-sweep.

use netmax_bench::experiments::scale;
use netmax_bench::{registry, Mode};

#[test]
fn every_full_sweep_entry_builds_its_environment_at_declared_n() {
    let p = scale::Params::full();
    assert_eq!(p.node_counts, vec![32, 128, 512, 1024, 4096]);
    for (spec, &n) in scale::specs(&p).iter().zip(&p.node_counts) {
        let env = spec.scenario.build_env();
        assert_eq!(env.num_nodes(), n, "{}", spec.name);
        assert!(env.topology.is_connected(), "{}", spec.name);
        // A balanced torus is 4-regular with exactly 2n undirected edges.
        assert_eq!(env.topology.num_edges(), 2 * n, "{}", spec.name);
        for i in 0..n {
            assert_eq!(env.topology.degree(i), 4, "{}: node {i}", spec.name);
            assert!(!env.partition.node(i).is_empty(), "{}: empty shard", spec.name);
        }
    }
}

#[test]
fn registry_exposes_the_scale_group_at_every_mode() {
    // Tiny is the CI smoke scale: the 256-node fleet must be registered
    // there (it is what `netmax-bench run scale --tiny` executes), while
    // the full registry carries the 1 024- and 4 096-node fleets.
    let tiny: Vec<String> = registry(Mode::Tiny)
        .into_iter()
        .filter(|s| s.group == "scale")
        .map(|s| s.name)
        .collect();
    assert_eq!(tiny, vec!["scale/ridge/n32", "scale/ridge/n256"]);
    let full: Vec<String> = registry(Mode::Full)
        .into_iter()
        .filter(|s| s.group == "scale")
        .map(|s| s.name)
        .collect();
    assert!(full.contains(&"scale/ridge/n1024".to_string()));
    assert!(full.contains(&"scale/ridge/n4096".to_string()));
}

#[test]
fn scale_arms_override_the_monitor_period() {
    // The default 30 s Ts would never fire inside a step-budgeted scale
    // run; every registered scale arm must carry the compressed per-n
    // period.
    for spec in registry(Mode::Tiny).into_iter().filter(|s| s.group == "scale") {
        for arm in &spec.arms {
            let period = arm.monitor_period_s.expect("scale arms must override Ts");
            assert!(period > 0.0 && period < 30.0, "{}: Ts = {period}", spec.name);
        }
    }
}
