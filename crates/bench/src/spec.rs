//! The declarative experiment API: [`ExperimentSpec`] and [`Arm`].
//!
//! An experiment is a *grid*: one serializable [`Scenario`] run under
//! every `(arm, seed)` combination, where an arm is an algorithm (plus
//! optional NetMax-internal overrides for the ablation sweeps) and each
//! seed re-derives the scenario's RNG streams. Every figure/table of the
//! paper's evaluation is declared once as one or more specs in
//! [`mod@crate::registry`]; the executor in [`crate::runner`] turns a spec
//! into reports, and the whole structure round-trips through JSON so run
//! artifacts embed the exact spec that produced them.

use crate::common::MONITOR_PERIOD_S;
use netmax_baselines::{algorithm_for, AdPsgd};
use netmax_core::engine::{Algorithm, AlgorithmKind, Scenario};
use netmax_core::monitor::MonitorConfig;
use netmax_core::netmax::{MergeWeighting, NetMax, NetMaxConfig};
use netmax_json::{FromJson, Json, JsonError, ToJson};

/// One algorithm column of an experiment grid.
///
/// For the standard comparisons an arm is just an [`AlgorithmKind`]; the
/// ablation experiments additionally override NetMax's internals (merge
/// weighting, monitor period, EMA β). `monitor_period_s` and `ema_beta`
/// configure the Network Monitor and so apply to the whole monitor-bearing
/// family (NetMax, NetMax-uniform, and
/// [`AlgorithmKind::AdPsgdMonitored`]); `merge_weight` applies to the
/// NetMax variants only. All overrides are ignored by the remaining
/// algorithms.
#[derive(Debug, Clone, PartialEq)]
pub struct Arm {
    /// Which algorithm runs this column.
    pub algorithm: AlgorithmKind,
    /// Display-label override (defaults to the algorithm's paper label).
    pub label: Option<String>,
    /// Network-Monitor period override (NetMax family; defaults to the
    /// harness-tuned [`MONITOR_PERIOD_S`]).
    pub monitor_period_s: Option<f64>,
    /// EMA smoothing β override (NetMax family).
    pub ema_beta: Option<f64>,
    /// Fixed merge weight override (NetMax; `None` keeps the paper's
    /// inverse-probability weighting).
    pub merge_weight: Option<f64>,
}

impl Arm {
    /// A standard arm: the algorithm with harness-tuned defaults.
    pub fn new(algorithm: AlgorithmKind) -> Self {
        Self { algorithm, label: None, monitor_period_s: None, ema_beta: None, merge_weight: None }
    }

    /// Sets the display label.
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Overrides the Network-Monitor period.
    pub fn monitor_period(mut self, period_s: f64) -> Self {
        self.monitor_period_s = Some(period_s);
        self
    }

    /// Overrides the EMA smoothing factor β.
    pub fn beta(mut self, beta: f64) -> Self {
        self.ema_beta = Some(beta);
        self
    }

    /// Replaces inverse-probability merging with a fixed weight.
    pub fn fixed_weight(mut self, w: f64) -> Self {
        self.merge_weight = Some(w);
        self
    }

    /// The label shown in tables and artifacts.
    pub fn label(&self) -> String {
        self.label.clone().unwrap_or_else(|| self.algorithm.label().to_string())
    }

    /// Instantiates the algorithm with the harness-tuned monitor period
    /// and this arm's overrides applied. `alpha` seeds the policy search
    /// of the monitor-bearing algorithms.
    pub fn instantiate(&self, alpha: f64) -> Box<dyn Algorithm> {
        let monitor = MonitorConfig {
            period_s: self.monitor_period_s.unwrap_or(MONITOR_PERIOD_S),
            beta: self.ema_beta.unwrap_or(MonitorConfig::paper_default(alpha).beta),
            ..MonitorConfig::paper_default(alpha)
        };
        let netmax_cfg = |base: NetMaxConfig| {
            let weighting = match self.merge_weight {
                Some(w) => MergeWeighting::Fixed(w),
                None => base.weighting,
            };
            NetMaxConfig { monitor: monitor.clone(), weighting, ..base }
        };
        match self.algorithm {
            AlgorithmKind::NetMax => {
                Box::new(NetMax::new(netmax_cfg(NetMaxConfig::paper_default(alpha))))
            }
            AlgorithmKind::NetMaxUniform => {
                Box::new(NetMax::new(netmax_cfg(NetMaxConfig::uniform(alpha))))
            }
            AlgorithmKind::AdPsgdMonitored => Box::new(AdPsgd::monitored_with(monitor)),
            other => algorithm_for(other, alpha),
        }
    }
}

impl From<AlgorithmKind> for Arm {
    fn from(kind: AlgorithmKind) -> Self {
        Arm::new(kind)
    }
}

impl ToJson for Arm {
    fn to_json(&self) -> Json {
        Json::obj([
            ("algorithm", self.algorithm.to_json()),
            ("label", self.label.to_json()),
            ("monitor_period_s", self.monitor_period_s.to_json()),
            ("ema_beta", self.ema_beta.to_json()),
            ("merge_weight", self.merge_weight.to_json()),
        ])
    }
}

impl FromJson for Arm {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            algorithm: AlgorithmKind::from_json(v.field("algorithm")?)?,
            label: Option::from_json(v.field("label")?)?,
            monitor_period_s: Option::from_json(v.field("monitor_period_s")?)?,
            ema_beta: Option::from_json(v.field("ema_beta")?)?,
            merge_weight: Option::from_json(v.field("merge_weight")?)?,
        })
    }
}

/// Which summary metrics an experiment's artifact reports (the full loss
/// curves are always recorded inside each cell's `RunReport`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Simulated seconds to the common loss target (Fig. 8/9-style).
    TimeToTarget,
    /// Per-epoch computation/communication cost split (Fig. 5/6-style).
    EpochCost,
    /// Final test accuracy (Table II/III/V-style).
    Accuracy,
    /// Seconds to a common test-accuracy target (Fig. 19-style).
    TimeToAccuracy,
    /// Straggler view: the slowest node's seconds-per-epoch (ablation 4).
    Straggler,
    /// Intra- vs inter-machine iteration-time identity (Fig. 3; computed
    /// from the model profiles, no training cells needed).
    IterationTime,
}

impl MetricKind {
    /// Stable JSON identifier.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::TimeToTarget => "time_to_target",
            MetricKind::EpochCost => "epoch_cost",
            MetricKind::Accuracy => "accuracy",
            MetricKind::TimeToAccuracy => "time_to_accuracy",
            MetricKind::Straggler => "straggler",
            MetricKind::IterationTime => "iteration_time",
        }
    }

    /// Inverse of [`MetricKind::name`].
    pub fn by_name(name: &str) -> Option<MetricKind> {
        [
            MetricKind::TimeToTarget,
            MetricKind::EpochCost,
            MetricKind::Accuracy,
            MetricKind::TimeToAccuracy,
            MetricKind::Straggler,
            MetricKind::IterationTime,
        ]
        .into_iter()
        .find(|m| m.name() == name)
    }
}

impl ToJson for MetricKind {
    fn to_json(&self) -> Json {
        Json::Str(self.name().to_string())
    }
}

impl FromJson for MetricKind {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let name = v.as_str()?;
        MetricKind::by_name(name)
            .ok_or_else(|| JsonError::schema(format!("unknown metric `{name}`")))
    }
}

/// One declared experiment: a scenario run under every `(arm, seed)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Unique name (`fig08/resnet18-cifar10`, `abl/ts-period`, …).
    pub name: String,
    /// Group shared by the specs of one figure/table (`fig08`); `run
    /// <group>` executes them together.
    pub group: String,
    /// Human-readable description (paper reference).
    pub title: String,
    /// The scenario every cell runs.
    pub scenario: Scenario,
    /// Algorithm columns.
    pub arms: Vec<Arm>,
    /// Training seeds; each cell overrides the scenario's master seed with
    /// one of these. Empty means "use the scenario's own seed".
    pub seeds: Vec<u64>,
    /// Which summary metrics the artifact reports.
    pub metrics: Vec<MetricKind>,
}

impl ExperimentSpec {
    /// The effective seed list (the scenario's own seed when none given).
    pub fn effective_seeds(&self) -> Vec<u64> {
        if self.seeds.is_empty() {
            vec![self.scenario.cfg().seed]
        } else {
            self.seeds.clone()
        }
    }

    /// Number of `(arm, seed)` cells the executor will run.
    pub fn num_cells(&self) -> usize {
        self.arms.len() * self.effective_seeds().len()
    }
}

impl ToJson for ExperimentSpec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("group", self.group.to_json()),
            ("title", self.title.to_json()),
            ("scenario", self.scenario.to_json()),
            ("arms", self.arms.to_json()),
            ("seeds", self.seeds.to_json()),
            ("metrics", self.metrics.to_json()),
        ])
    }
}

impl FromJson for ExperimentSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            name: String::from_json(v.field("name")?)?,
            group: String::from_json(v.field("group")?)?,
            title: String::from_json(v.field("title")?)?,
            scenario: Scenario::from_json(v.field("scenario")?)?,
            arms: Vec::from_json(v.field("arms")?)?,
            seeds: Vec::from_json(v.field("seeds")?)?,
            metrics: Vec::from_json(v.field("metrics")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmax_ml::workload::WorkloadSpec;

    fn spec() -> ExperimentSpec {
        ExperimentSpec {
            name: "test/one".into(),
            group: "test".into(),
            title: "round-trip fixture".into(),
            scenario: Scenario::builder()
                .workers(4)
                .workload(WorkloadSpec::convex_ridge(1))
                .max_epochs(1.0)
                .seed(5)
                .build(),
            arms: vec![
                Arm::new(AlgorithmKind::NetMax),
                Arm::new(AlgorithmKind::NetMax).labeled("Ts=10s").monitor_period(10.0),
                Arm::new(AlgorithmKind::AdPsgd),
            ],
            seeds: vec![5, 6],
            metrics: vec![MetricKind::TimeToTarget, MetricKind::Accuracy],
        }
    }

    #[test]
    fn spec_json_round_trips() {
        let s = spec();
        let text = s.to_json().pretty();
        let back = ExperimentSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
        // Round-tripped specs build equivalent environments.
        let (a, b) = (s.scenario.build_env(), back.scenario.build_env());
        assert_eq!(a.num_nodes(), b.num_nodes());
        for i in 0..a.num_nodes() {
            assert_eq!(a.nodes[i].model.params(), b.nodes[i].model.params());
        }
    }

    #[test]
    fn arm_overrides_change_the_algorithm() {
        let plain = Arm::new(AlgorithmKind::NetMax);
        assert_eq!(plain.instantiate(0.1).name(), "netmax");
        let tweaked = Arm::new(AlgorithmKind::NetMax).fixed_weight(0.5).beta(0.3);
        assert_eq!(tweaked.instantiate(0.1).name(), "netmax");
        assert_eq!(tweaked.label(), "NetMax");
        assert_eq!(tweaked.clone().labeled("fixed 0.5").label(), "fixed 0.5");
    }

    #[test]
    fn cell_count_and_seed_defaults() {
        let mut s = spec();
        assert_eq!(s.num_cells(), 6);
        s.seeds.clear();
        assert_eq!(s.effective_seeds(), vec![5], "falls back to the scenario seed");
        assert_eq!(s.num_cells(), 3);
    }
}
