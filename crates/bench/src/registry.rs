//! The central experiment registry: every figure/table of the paper's
//! evaluation declared once as [`ExperimentSpec`]s.
//!
//! Each experiment module contributes its specs through a `specs(..)`
//! function; this module collects them at a given execution [`Mode`] and
//! is the single source the `netmax-bench` CLI, the smoke tests, and the
//! docs enumerate. Names are `group/detail` (`fig08/resnet18-cifar10`);
//! `netmax-bench run fig08` runs a whole group, `run all` runs everything.

use crate::common::{ExpCtx, Mode};
use crate::experiments::{
    ablations, accuracy, epoch_time, equivalence, faults, fig03, fig07, fig14, fig15, fig19,
    loss_curves, nonuniform, scale, scalability, tab05,
};
use crate::spec::{Arm, ExperimentSpec, MetricKind};
use netmax_core::engine::{AlgorithmKind, Scenario, TrainConfig};
use netmax_ml::workload::WorkloadSpec;
use netmax_net::{NetworkKind, SlowdownConfig};

/// The `sanity` suite: the PR-1 performance-baseline scenario (also the
/// suite `BENCH_parallel.json` times the threaded executor on).
pub fn sanity_spec(mode: Mode) -> ExperimentSpec {
    ExperimentSpec {
        name: "sanity/resnet18-cifar10".into(),
        group: "sanity".into(),
        title: "Sanity — headline-four shape check on the heterogeneous dynamic network".into(),
        scenario: Scenario::builder()
            .workers(8)
            .network(NetworkKind::HeterogeneousDynamic)
            .workload(WorkloadSpec::resnet18_cifar10(42))
            .slowdown(SlowdownConfig { change_period_s: 120.0, ..SlowdownConfig::default() })
            .train_config(TrainConfig {
                max_epochs: mode.epochs(48.0),
                record_every_steps: 40,
                seed: 7,
                ..TrainConfig::default()
            })
            .build(),
        arms: AlgorithmKind::headline_four().map(Arm::new).to_vec(),
        seeds: vec![7],
        metrics: vec![MetricKind::TimeToTarget, MetricKind::EpochCost, MetricKind::Accuracy],
    }
}

/// Builds the full registry at the given execution mode. Every entry's
/// name is unique; entries of one figure/table share a `group`.
pub fn registry(mode: Mode) -> Vec<ExperimentSpec> {
    let ctx = ExpCtx::with_mode(mode);
    let mut specs = Vec::new();
    specs.extend(fig03::specs());
    specs.extend(epoch_time::specs(&epoch_time::Params::for_mode(&ctx, true)));
    specs.extend(epoch_time::specs(&epoch_time::Params::for_mode(&ctx, false)));
    specs.extend(fig07::specs(&fig07::Params::for_mode(&ctx)));
    specs.extend(loss_curves::specs(&loss_curves::Params::for_mode(&ctx, true)));
    specs.extend(loss_curves::specs(&loss_curves::Params::for_mode(&ctx, false)));
    specs.extend(scalability::specs(&scalability::Params::for_mode(&ctx, true)));
    specs.extend(scalability::specs(&scalability::Params::for_mode(&ctx, false)));
    specs.extend(accuracy::specs(&accuracy::Params::for_mode(&ctx, true)));
    specs.extend(accuracy::specs(&accuracy::Params::for_mode(&ctx, false)));
    for case in [
        nonuniform::Case::Cifar100,
        nonuniform::Case::ImageNet,
        nonuniform::Case::Cifar10,
        nonuniform::Case::TinyImageNet,
        nonuniform::Case::MnistNonIid,
    ] {
        specs.extend(nonuniform::specs(&nonuniform::Params::for_mode(&ctx, case)));
    }
    specs.extend(tab05::specs(&tab05::Params::for_mode(&ctx)));
    specs.extend(fig14::specs(&fig14::Params::for_mode(&ctx)));
    specs.extend(fig15::specs(&fig15::Params::for_mode(&ctx)));
    specs.extend(fig19::specs(&fig19::Params::for_mode(&ctx)));
    specs.extend(ablations::specs(&ablations::Params::for_mode(&ctx)));
    specs.extend(faults::specs(&faults::Params::for_mode(&ctx)));
    specs.extend(scale::specs(&scale::Params::for_mode(&ctx)));
    specs.extend(equivalence::specs(&equivalence::Params::for_mode(&ctx)));
    specs.push(sanity_spec(mode));
    specs
}

/// Schema tag of the machine-readable registry listing
/// (`netmax-bench list --json`).
pub const REGISTRY_SCHEMA: &str = "netmax-bench/registry/v1";

/// The registry as a machine-readable document: one entry per experiment
/// with its name, group, title, scenario shape, arm kinds, and seed count.
pub fn registry_json(specs: &[ExperimentSpec]) -> netmax_json::Json {
    use netmax_json::{Json, ToJson};
    Json::obj([
        ("schema", Json::Str(REGISTRY_SCHEMA.into())),
        (
            "experiments",
            Json::Arr(
                specs
                    .iter()
                    .map(|s| {
                        Json::obj([
                            ("name", s.name.to_json()),
                            ("group", s.group.to_json()),
                            ("title", s.title.to_json()),
                            ("workers", s.scenario.workers().to_json()),
                            ("workload", s.scenario.workload_spec().kind.name().to_json()),
                            ("network", s.scenario.network_kind().name().to_json()),
                            ("max_epochs", s.scenario.cfg().max_epochs.to_json()),
                            (
                                "arms",
                                Json::Arr(
                                    s.arms
                                        .iter()
                                        .map(|a| a.algorithm.name().to_json())
                                        .collect(),
                                ),
                            ),
                            ("seed_count", s.effective_seeds().len().to_json()),
                            ("cells", s.num_cells().to_json()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Looks experiments up by exact name or by group.
pub fn find(specs: &[ExperimentSpec], query: &str) -> Vec<ExperimentSpec> {
    if query == "all" {
        return specs.to_vec();
    }
    let exact: Vec<_> = specs.iter().filter(|s| s.name == query).cloned().collect();
    if !exact.is_empty() {
        return exact;
    }
    specs.iter().filter(|s| s.group == query).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn names_are_unique_and_grouped() {
        let specs = registry(Mode::Tiny);
        let names: BTreeSet<_> = specs.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names.len(), specs.len(), "duplicate experiment names");
        for s in &specs {
            assert!(
                s.name == s.group || s.name.starts_with(&format!("{}/", s.group)),
                "{}: name must extend its group `{}`",
                s.name,
                s.group
            );
        }
        // Every figure/table of the paper's evaluation is declared.
        let groups: BTreeSet<_> = specs.iter().map(|s| s.group.as_str()).collect();
        for g in [
            "fig03", "fig05", "fig06", "fig07", "fig08", "fig09", "fig10", "fig11", "fig12",
            "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "tab02", "tab03",
            "tab05", "abl", "sanity", "scale", "equivalence",
        ] {
            assert!(groups.contains(g), "missing group {g}");
        }
    }

    #[test]
    fn every_entry_builds_its_environment() {
        // Tiny mode keeps the datasets smallest; build_env materialises
        // topology, network, partition, and models for every entry.
        for spec in registry(Mode::Tiny) {
            let env = spec.scenario.build_env();
            assert_eq!(env.num_nodes(), spec.scenario.workers(), "{}", spec.name);
            assert!(env.topology.is_connected(), "{}", spec.name);
            for i in 0..env.num_nodes() {
                assert!(!env.partition.node(i).is_empty(), "{}: empty shard", spec.name);
            }
        }
    }

    #[test]
    fn registry_json_lists_every_experiment() {
        use netmax_json::{FromJson, Json};
        let specs = registry(Mode::Tiny);
        let doc = registry_json(&specs);
        let reparsed = Json::parse(&doc.pretty()).unwrap();
        assert_eq!(reparsed.field("schema").unwrap().as_str().unwrap(), REGISTRY_SCHEMA);
        let entries = reparsed.field("experiments").unwrap().as_arr().unwrap();
        assert_eq!(entries.len(), specs.len());
        for (entry, spec) in entries.iter().zip(&specs) {
            assert_eq!(String::from_json(entry.field("name").unwrap()).unwrap(), spec.name);
            let arms = entry.field("arms").unwrap().as_arr().unwrap();
            assert_eq!(arms.len(), spec.arms.len());
            assert_eq!(
                usize::from_json(entry.field("seed_count").unwrap()).unwrap(),
                spec.effective_seeds().len()
            );
        }
    }

    #[test]
    fn per_server_counts_hold_for_registered_worker_counts() {
        use netmax_core::engine::scenario::per_server_counts;
        let counts: BTreeSet<usize> =
            registry(Mode::Full).iter().map(|s| s.scenario.workers()).collect();
        for &n in &counts {
            for servers in 1..=4 {
                let per = per_server_counts(n, servers);
                assert_eq!(per.iter().sum::<usize>(), n, "n={n} servers={servers}");
                assert!(per.iter().all(|&c| c > 0), "n={n} servers={servers}: empty server");
                let (lo, hi) = (per.iter().min().unwrap(), per.iter().max().unwrap());
                assert!(hi - lo <= 1, "n={n} servers={servers}: unbalanced {per:?}");
            }
        }
    }

    #[test]
    fn find_matches_names_groups_and_all() {
        let specs = registry(Mode::Tiny);
        assert_eq!(find(&specs, "all").len(), specs.len());
        let fig08 = find(&specs, "fig08");
        assert_eq!(fig08.len(), 2, "fig08 has two workload panels");
        let one = find(&specs, "fig08/resnet18-cifar10");
        assert_eq!(one.len(), 1);
        assert!(find(&specs, "nope").is_empty());
    }

    #[test]
    fn registry_specs_round_trip_through_json() {
        use netmax_json::{FromJson, Json, ToJson};
        for spec in registry(Mode::Tiny) {
            let text = spec.to_json().to_string();
            let back = ExperimentSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, spec, "{} must round-trip", spec.name);
        }
    }
}
