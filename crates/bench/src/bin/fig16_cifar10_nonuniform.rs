//! Reproduces the paper's non-uniform-partitioning experiment for the
//! `Cifar10` case (see `netmax_bench::experiments::nonuniform`).

use netmax_bench::experiments::nonuniform::{self, Case};

fn main() {
    let ctx = netmax_bench::ExpCtx::from_env();
    let p = nonuniform::Params::for_mode(&ctx, Case::Cifar10);
    let out = nonuniform::run(&p);
    nonuniform::print(&ctx, &p, &out);
}
