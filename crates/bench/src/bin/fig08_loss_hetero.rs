//! Reproduces Fig. 8 — training loss vs time, heterogeneous network.

use netmax_bench::experiments::loss_curves;

fn main() {
    let ctx = netmax_bench::ExpCtx::from_env();
    let p = loss_curves::Params::for_mode(&ctx, true);
    let panels = loss_curves::run(&p);
    loss_curves::print(&ctx, &p, &panels);
}
