//! Reproduces Fig. 10 — speedup vs worker count, heterogeneous network.

use netmax_bench::experiments::scalability;

fn main() {
    let ctx = netmax_bench::ExpCtx::from_env();
    let p = scalability::Params::for_mode(&ctx, true);
    let rows = scalability::run(&p);
    scalability::print(&ctx, &p, &rows);
}
