//! Dataset-difficulty calibration helper (not a paper figure).
//!
//! Trains a centralized model on each synthetic dataset and prints the
//! test-accuracy plateau, so the mixture noise levels can be tuned to the
//! paper's accuracy bands (CIFAR10 ≈ 90%, CIFAR100 ≈ 72%/63%, MNIST ≈ 99%,
//! Tiny-ImageNet ≈ 57%, ImageNet ≈ 73%).

use netmax_ml::datasets;
use netmax_ml::metrics::accuracy;
use netmax_ml::model::ModelKind;
use netmax_ml::optim::{SgdConfig, SgdState};

fn train_eval(
    name: &str,
    train: &netmax_ml::Dataset,
    test: &netmax_ml::Dataset,
    kind: ModelKind,
    epochs: usize,
    batch: usize,
    lr: f64,
) {
    let mut model = kind.build(train.dim(), train.num_classes(), 1);
    let cfg = SgdConfig { lr, momentum: 0.9, weight_decay: 1e-4, lr_milestones: vec![], lr_decay: 1.0 };
    let mut st = SgdState::new(model.num_params());
    let mut grad = vec![0.0f32; model.num_params()];
    let n = train.len();
    let mut order: Vec<usize> = (0..n).collect();
    for e in 0..epochs {
        // Simple deterministic rotation instead of shuffling — enough for calibration.
        order.rotate_left(batch % n.max(1));
        for chunk in order.chunks(batch) {
            let _ = model.loss_grad(train, chunk, &mut grad);
            st.step(&cfg, cfg.lr * 0.5f64.powi((4 * e / epochs.max(1)) as i32), model.params_mut(), &grad);
        }
    }
    println!(
        "{:<22} {:?}  train_acc={:.3} test_acc={:.3}",
        name,
        kind,
        accuracy(model.as_ref(), train),
        accuracy(model.as_ref(), test)
    );
}

fn main() {
    let (tr, te) = datasets::mnist_like(1);
    train_eval("mnist_like", &tr, &te, ModelKind::Softmax, 30, 32, 0.05);

    let (tr, te) = datasets::cifar10_like(1);
    train_eval("cifar10_like", &tr, &te, ModelKind::Softmax, 30, 128, 0.1);

    let (tr, te) = datasets::cifar100_like(1);
    train_eval("cifar100_like/mlp", &tr, &te, ModelKind::Mlp { hidden: 64 }, 40, 64, 0.1);
    train_eval("cifar100_like/softmax", &tr, &te, ModelKind::Softmax, 40, 64, 0.1);

    let (tr, te) = datasets::tiny_imagenet_like(1);
    train_eval("tiny_imagenet/softmax", &tr, &te, ModelKind::Softmax, 40, 64, 0.1);

    let (tr, te) = datasets::imagenet_like(1);
    train_eval("imagenet/softmax", &tr, &te, ModelKind::Softmax, 30, 64, 0.1);
}
