//! Reproduces Table V — accuracy with non-uniform data partitioning.

use netmax_bench::experiments::tab05;

fn main() {
    let ctx = netmax_bench::ExpCtx::from_env();
    let p = tab05::Params::for_mode(&ctx);
    let rows = tab05::run(&p);
    tab05::print(&ctx, &rows);
}
