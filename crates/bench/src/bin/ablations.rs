//! Runs the design-choice ablations from DESIGN.md §6: merge weighting,
//! Monitor period Ts, and EMA smoothing β.

use netmax_bench::experiments::ablations;

fn main() {
    let ctx = netmax_bench::ExpCtx::from_env();
    let p = ablations::Params::for_mode(&ctx);

    let rows = ablations::weighting(&p);
    ablations::print(
        &ctx,
        "Ablation 1 — second-step merge weighting (non-IID MNIST, Table IV)",
        "abl_weighting",
        &rows,
    );
    println!();
    let rows = ablations::ts_period(&p);
    ablations::print(
        &ctx,
        "Ablation 2 — Network Monitor period Ts (link change every 120 s)",
        "abl_ts_period",
        &rows,
    );
    println!();
    let rows = ablations::ema_beta(&p);
    ablations::print(&ctx, "Ablation 3 — EMA smoothing factor β", "abl_ema_beta", &rows);
    println!();
    let rows = ablations::static_vs_adaptive(&p);
    ablations::print(
        &ctx,
        "Ablation 4 — static subgraph (SAPS-PSGD) vs adaptive NetMax (Fig. 2 narrative; \
column is STRAGGLER epoch seconds, mean of 3 network seeds)",
        "abl_static_vs_adaptive",
        &rows,
    );
}
