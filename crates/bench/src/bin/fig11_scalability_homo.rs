//! Reproduces Fig. 11 — speedup vs worker count, homogeneous network.

use netmax_bench::experiments::scalability;

fn main() {
    let ctx = netmax_bench::ExpCtx::from_env();
    let p = scalability::Params::for_mode(&ctx, false);
    let rows = scalability::run(&p);
    scalability::print(&ctx, &p, &rows);
}
