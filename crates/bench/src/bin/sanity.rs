//! Quick end-to-end sanity check of the headline result shape (not one of
//! the paper figures): on a heterogeneous dynamic network, NetMax should
//! reach the loss target in less simulated wall-clock time than AD-PSGD,
//! Allreduce-SGD, and Prague.
//!
//! The scenario is the registry's `sanity` entry (`netmax-bench run
//! sanity` executes the same cells); this binary additionally measures
//! *real* runtime per arm — each arm runs alone on one thread, timed —
//! and writes `BENCH_sanity.json`, the performance baseline later PRs
//! compare against.

use netmax_bench::registry::sanity_spec;
use netmax_bench::Mode;
use netmax_ml::workload::WorkloadKind;
use netmax_net::NetworkKind;
use std::time::Instant;

fn main() {
    let spec = sanity_spec(Mode::Full);
    // The JSON header below names the scenario with fixed strings; these
    // asserts tie them to the spec so the baseline can never silently
    // drift from what actually ran.
    assert_eq!(spec.scenario.workload_spec().kind, WorkloadKind::Resnet18Cifar10);
    assert_eq!(spec.scenario.network_kind(), NetworkKind::HeterogeneousDynamic);
    // Datasets instantiated once, outside the timing brackets — the
    // recorded real_time_s measures training only, as in the PR 1
    // baseline.
    let workload = spec.scenario.workload();
    let alpha = workload.optim.lr;

    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8} {:>10}",
        "algorithm", "wall(s)", "epoch_t", "comp/ep", "comm/ep", "loss", "acc", "t@0.40"
    );
    let mut json_rows = Vec::new();
    for arm in &spec.arms {
        // The real-time clock brackets exactly one training run.
        let mut algo = arm.instantiate(alpha);
        let t0 = Instant::now();
        let mut env = spec.scenario.build_env_with(workload.clone());
        let r = &algo.run(&mut env);
        let real_s = t0.elapsed().as_secs_f64();
        println!(
            "{:<16} {:>10.1} {:>10.2} {:>10.2} {:>10.2} {:>8.4} {:>8.3} {:>10.1?}",
            arm.label(),
            r.wall_clock_s,
            r.epoch_time_avg_s(),
            r.comp_cost_per_epoch_s(),
            r.comm_cost_per_epoch_s(),
            r.final_train_loss,
            r.final_test_accuracy,
            r.time_to_loss(0.40)
        );
        json_rows.push(format!(
            concat!(
                "    {{\n",
                "      \"algorithm\": \"{}\",\n",
                "      \"simulated_wall_clock_s\": {:.3},\n",
                "      \"epoch_time_avg_s\": {:.4},\n",
                "      \"comp_cost_per_epoch_s\": {:.4},\n",
                "      \"comm_cost_per_epoch_s\": {:.4},\n",
                "      \"final_train_loss\": {:.6},\n",
                "      \"final_test_accuracy\": {:.4},\n",
                "      \"time_to_loss_0_40_s\": {},\n",
                "      \"global_steps\": {},\n",
                "      \"real_time_s\": {:.3},\n",
                "      \"steps_per_real_second\": {:.0}\n",
                "    }}"
            ),
            arm.label(),
            r.wall_clock_s,
            r.epoch_time_avg_s(),
            r.comp_cost_per_epoch_s(),
            r.comm_cost_per_epoch_s(),
            r.final_train_loss,
            r.final_test_accuracy,
            r.time_to_loss(0.40).map_or("null".to_string(), |t| format!("{t:.2}")),
            r.global_steps,
            real_s,
            r.global_steps as f64 / real_s.max(1e-9),
        ));
    }
    let cfg = spec.scenario.cfg();
    let json = format!(
        "{{\n  \"benchmark\": \"sanity\",\n  \"scenario\": {{\n    \"workers\": {},\n    \"network\": \"heterogeneous_dynamic\",\n    \"workload\": \"resnet18/cifar10\",\n    \"max_epochs\": {:.1},\n    \"seed\": {}\n  }},\n  \"results\": [\n{}\n  ]\n}}\n",
        spec.scenario.workers(),
        cfg.max_epochs,
        cfg.seed,
        json_rows.join(",\n")
    );
    let path = "BENCH_sanity.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}
