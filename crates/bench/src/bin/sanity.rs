//! Quick end-to-end sanity check of the headline result shape (not one of
//! the paper figures): on a heterogeneous dynamic network, NetMax should
//! reach the loss target in less simulated wall-clock time than AD-PSGD,
//! Allreduce-SGD, and Prague.
//!
//! Besides the human-readable table, writes `BENCH_sanity.json` into the
//! current directory: per-algorithm simulated metrics plus *real* runtime
//! and steps/second, the baseline later PRs compare performance against.

use netmax_baselines::algorithm_for;
use netmax_core::engine::{AlgorithmKind, Scenario, TrainConfig};
use netmax_core::monitor::MonitorConfig;
use netmax_core::netmax::{NetMax, NetMaxConfig};
use netmax_ml::workload::Workload;
use netmax_net::{NetworkKind, SlowdownConfig};
use std::time::Instant;

/// Scenario constants, shared between the builder and the JSON header so
/// the recorded baseline can never drift from what actually ran.
const WORKERS: usize = 8;
const MAX_EPOCHS: f64 = 48.0;
const SEED: u64 = 7;
const WORKLOAD_NAME: &str = "resnet18/cifar10";

fn main() {
    let workload = Workload::resnet18_cifar10(42);
    assert_eq!(workload.name, WORKLOAD_NAME);
    let alpha = workload.optim.lr;
    let sc = Scenario::builder()
        .workers(WORKERS)
        .network(NetworkKind::HeterogeneousDynamic)
        .workload(workload)
        .slowdown(SlowdownConfig { change_period_s: 120.0, ..SlowdownConfig::default() })
        .train_config(TrainConfig {
            max_epochs: MAX_EPOCHS,
            record_every_steps: 40,
            seed: SEED,
            ..TrainConfig::default()
        })
        .build();

    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8} {:>10}",
        "algorithm", "wall(s)", "epoch_t", "comp/ep", "comm/ep", "loss", "acc", "t@0.40"
    );
    let mut json_rows = Vec::new();
    for kind in AlgorithmKind::headline_four() {
        let mut algo = if kind == AlgorithmKind::NetMax {
            // Monitor period scaled to the compressed epoch time scale.
            let mut cfg = NetMaxConfig::paper_default(alpha);
            cfg.monitor = MonitorConfig { period_s: 30.0, ..cfg.monitor };
            Box::new(NetMax::new(cfg))
        } else {
            algorithm_for(kind, alpha)
        };
        let t0 = Instant::now();
        let r = sc.run_with(algo.as_mut());
        let real_s = t0.elapsed().as_secs_f64();
        println!(
            "{:<16} {:>10.1} {:>10.2} {:>10.2} {:>10.2} {:>8.4} {:>8.3} {:>10.1?}",
            kind.label(),
            r.wall_clock_s,
            r.epoch_time_avg_s(),
            r.comp_cost_per_epoch_s(),
            r.comm_cost_per_epoch_s(),
            r.final_train_loss,
            r.final_test_accuracy,
            r.time_to_loss(0.40)
        );
        json_rows.push(format!(
            concat!(
                "    {{\n",
                "      \"algorithm\": \"{}\",\n",
                "      \"simulated_wall_clock_s\": {:.3},\n",
                "      \"epoch_time_avg_s\": {:.4},\n",
                "      \"comp_cost_per_epoch_s\": {:.4},\n",
                "      \"comm_cost_per_epoch_s\": {:.4},\n",
                "      \"final_train_loss\": {:.6},\n",
                "      \"final_test_accuracy\": {:.4},\n",
                "      \"time_to_loss_0_40_s\": {},\n",
                "      \"global_steps\": {},\n",
                "      \"real_time_s\": {:.3},\n",
                "      \"steps_per_real_second\": {:.0}\n",
                "    }}"
            ),
            kind.label(),
            r.wall_clock_s,
            r.epoch_time_avg_s(),
            r.comp_cost_per_epoch_s(),
            r.comm_cost_per_epoch_s(),
            r.final_train_loss,
            r.final_test_accuracy,
            r.time_to_loss(0.40).map_or("null".to_string(), |t| format!("{t:.2}")),
            r.global_steps,
            real_s,
            r.global_steps as f64 / real_s.max(1e-9),
        ));
    }
    // Hand-rolled JSON: the build environment has no serde_json (see
    // shims/README.md); all values here are numeric or fixed labels.
    let json = format!(
        "{{\n  \"benchmark\": \"sanity\",\n  \"scenario\": {{\n    \"workers\": {WORKERS},\n    \"network\": \"heterogeneous_dynamic\",\n    \"workload\": \"{WORKLOAD_NAME}\",\n    \"max_epochs\": {MAX_EPOCHS:.1},\n    \"seed\": {SEED}\n  }},\n  \"results\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let path = "BENCH_sanity.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}
