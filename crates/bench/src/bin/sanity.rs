//! Quick end-to-end sanity check of the headline result shape (not one of
//! the paper figures): on a heterogeneous dynamic network, NetMax should
//! reach the loss target in less simulated wall-clock time than AD-PSGD,
//! Allreduce-SGD, and Prague.

use netmax_baselines::algorithm_for;
use netmax_core::engine::{AlgorithmKind, Scenario, TrainConfig};
use netmax_core::monitor::MonitorConfig;
use netmax_core::netmax::{NetMax, NetMaxConfig};
use netmax_ml::workload::Workload;
use netmax_net::{NetworkKind, SlowdownConfig};

fn main() {
    let workload = Workload::resnet18_cifar10(42);
    let alpha = workload.optim.lr;
    let sc = Scenario::builder()
        .workers(8)
        .network(NetworkKind::HeterogeneousDynamic)
        .workload(workload)
        .slowdown(SlowdownConfig { change_period_s: 120.0, ..SlowdownConfig::default() })
        .train_config(TrainConfig {
            max_epochs: 48.0,
            record_every_steps: 40,
            seed: 7,
            ..TrainConfig::default()
        })
        .build();

    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8} {:>10}",
        "algorithm", "wall(s)", "epoch_t", "comp/ep", "comm/ep", "loss", "acc", "t@0.40"
    );
    for kind in AlgorithmKind::headline_four() {
        let mut algo = if kind == AlgorithmKind::NetMax {
            // Monitor period scaled to the compressed epoch time scale.
            let mut cfg = NetMaxConfig::paper_default(alpha);
            cfg.monitor = MonitorConfig { period_s: 30.0, ..cfg.monitor };
            Box::new(NetMax::new(cfg))
        } else {
            algorithm_for(kind, alpha)
        };
        let r = sc.run_with(algo.as_mut());
        println!(
            "{:<16} {:>10.1} {:>10.2} {:>10.2} {:>10.2} {:>8.4} {:>8.3} {:>10.1?}",
            kind.label(),
            r.wall_clock_s,
            r.epoch_time_avg_s(),
            r.comp_cost_per_epoch_s(),
            r.comm_cost_per_epoch_s(),
            r.final_train_loss,
            r.final_test_accuracy,
            r.time_to_loss(0.40)
        );
    }
}
