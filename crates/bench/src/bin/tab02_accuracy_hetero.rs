//! Reproduces Table II — accuracy over a heterogeneous network.

use netmax_bench::experiments::accuracy;

fn main() {
    let ctx = netmax_bench::ExpCtx::from_env();
    let p = accuracy::Params::for_mode(&ctx, true);
    let rows = accuracy::run(&p);
    accuracy::print(&ctx, &p, &rows);
}
