//! Reproduces Fig. 3 — intra- vs inter-machine iteration time.

fn main() {
    let ctx = netmax_bench::ExpCtx::from_env();
    let rows = netmax_bench::experiments::fig03::run();
    netmax_bench::experiments::fig03::print(&ctx, &rows);
}
