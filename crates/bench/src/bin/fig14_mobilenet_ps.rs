//! Reproduces Fig. 14 + Table VI — MobileNet/CIFAR100 with PS baselines.

use netmax_bench::experiments::fig14;

fn main() {
    let ctx = netmax_bench::ExpCtx::from_env();
    let p = fig14::Params::for_mode(&ctx);
    let results = fig14::run(&p);
    fig14::print(&ctx, &results);
}
