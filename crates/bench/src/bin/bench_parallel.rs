//! Records `BENCH_parallel.json`: wall-clock of the sequential vs
//! threaded executor on the sanity suite, plus a byte-identity check of
//! the two result sets.
//!
//! The executor parallelises over `(arm, seed)` cells, so the expected
//! speedup is ≈ min(threads, cells) on an otherwise idle machine; the
//! artifact records the machine's core count so a ~1× result on a 1-core
//! container reads as what it is. Respects `--quick`/`--tiny` and
//! `NETMAX_MODE`.

use netmax_bench::registry::sanity_spec;
use netmax_bench::{runner, Mode};
use std::time::Instant;

fn main() {
    let mode = Mode::from_env();
    let mut spec = sanity_spec(mode);
    // Several seeds so the grid has enough cells to occupy a pool.
    spec.seeds = vec![7, 8, 9];
    // At least two workers so the scoped-pool path genuinely runs even on
    // a single-core container (the speedup there is honestly ~1×).
    let threads = runner::default_threads().max(2);
    let cells = spec.num_cells();

    eprintln!("sequential pass ({cells} cells)...");
    let t0 = Instant::now();
    let sequential = runner::execute_with_threads(&spec, 1);
    let sequential_s = t0.elapsed().as_secs_f64();

    eprintln!("threaded pass ({threads} threads)...");
    let t0 = Instant::now();
    let parallel = runner::execute_with_threads(&spec, threads);
    let parallel_s = t0.elapsed().as_secs_f64();

    let seq_doc = runner::artifact(std::slice::from_ref(&sequential));
    let par_doc = runner::artifact(std::slice::from_ref(&parallel));
    let identical = seq_doc.to_string() == par_doc.to_string();

    let json = format!(
        "{{\n  \"benchmark\": \"parallel-executor\",\n  \"suite\": \"{name}\",\n  \"mode\": \"{mode:?}\",\n  \"cells\": {cells},\n  \"available_cores\": {cores},\n  \"threads\": {threads},\n  \"sequential_wall_s\": {sequential_s:.3},\n  \"parallel_wall_s\": {parallel_s:.3},\n  \"speedup\": {speedup:.3},\n  \"results_byte_identical\": {identical}\n}}\n",
        name = spec.name,
        cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        speedup = sequential_s / parallel_s.max(1e-9),
    );
    print!("{json}");
    assert!(identical, "parallel execution must be byte-identical to sequential");
    let path = "BENCH_parallel.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}
