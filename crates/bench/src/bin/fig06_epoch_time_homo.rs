//! Reproduces Fig. 6 — epoch-time breakdown on the homogeneous network.

use netmax_bench::experiments::epoch_time;

fn main() {
    let ctx = netmax_bench::ExpCtx::from_env();
    let p = epoch_time::Params::for_mode(&ctx, false);
    let rows = epoch_time::run(&p);
    epoch_time::print(&ctx, &p, &rows);
}
