//! Reproduces Fig. 15 — AD-PSGD extended with the Network Monitor.

use netmax_bench::experiments::fig15;

fn main() {
    let ctx = netmax_bench::ExpCtx::from_env();
    let p = fig15::Params::for_mode(&ctx);
    let results = fig15::run(&p);
    fig15::print(&ctx, &results);
}
