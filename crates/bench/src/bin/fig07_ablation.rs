//! Reproduces Fig. 7 — serial/parallel × uniform/adaptive ablation.

use netmax_bench::experiments::fig07;

fn main() {
    let ctx = netmax_bench::ExpCtx::from_env();
    let p = fig07::Params::for_mode(&ctx);
    let rows = fig07::run(&p);
    fig07::print(&ctx, &rows);
}
