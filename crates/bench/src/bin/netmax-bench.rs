//! `netmax-bench` — the one runner CLI for every registered experiment.
//!
//! ```text
//! netmax-bench list [--quick|--tiny]
//! netmax-bench run <name|group|all> [--quick|--tiny] [--seeds N|a,b,c]
//!                  [--json out.json] [--threads N] [--sequential]
//! netmax-bench show <artifact.json>
//! ```
//!
//! `run` executes every `(arm, seed)` cell of the matching experiments on
//! a scoped thread pool (runs are deterministic per cell, so parallelism
//! cannot change results), prints one summary table per experiment, and
//! with `--json` writes the versioned `netmax-bench/run-report/v1`
//! artifact. `show` parses such an artifact back and re-prints its
//! summaries — it doubles as a schema check in CI.

use netmax_bench::registry::{find, registry};
use netmax_bench::{common, runner, Mode};
use netmax_core::engine::AlgorithmKind;
use netmax_json::Json;
use std::process::ExitCode;
use std::time::Instant;

/// Flags that consume the following argument as their value.
const VALUE_FLAGS: [&str; 3] = ["--seeds", "--json", "--threads"];

/// Boolean flags.
const BOOL_FLAGS: [&str; 3] = ["--sequential", "--quick", "--tiny"];

/// Splits argv into positional arguments, skipping flags *and* the value
/// each value-taking flag consumes (so `run --seeds 2 sanity` parses the
/// target as `sanity`, not `2`). Unknown or `--flag=value`-form options
/// are an error rather than silently ignored — a typo must not drop a
/// requested artifact or determinism setting.
fn positionals(args: &[String]) -> Result<Vec<&str>, String> {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if VALUE_FLAGS.contains(&a.as_str()) {
            if it.next().is_none() {
                return Err(format!("{a} needs a value"));
            }
        } else if a.starts_with('-') {
            if !BOOL_FLAGS.contains(&a.as_str()) {
                return Err(format!(
                    "unknown option `{a}` (note: `--flag=value` is not supported, use `--flag value`)"
                ));
            }
        } else {
            out.push(a.as_str());
        }
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return ExitCode::SUCCESS;
    }
    let positional = match positionals(&args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            usage();
            return ExitCode::from(2);
        }
    };
    let Some(cmd) = positional.first() else {
        usage();
        return ExitCode::from(2);
    };
    match *cmd {
        "list" => list(),
        "run" => run(&args, positional.get(1).copied()),
        "show" => show(positional.get(1).copied()),
        "help" => {
            usage();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command: {other}");
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "netmax-bench — declarative experiment runner (NetMax, ICDE 2021)

commands:
  list                      all registered experiments (name, scenario, arms)
  run <name|group|all>      execute matching experiments over (arm, seed) cells
  show <artifact.json>      parse a run artifact and re-print its summaries

options:
  --quick / --tiny          compressed experiment scale (default: full; also
                            honoured via NETMAX_MODE=quick|tiny)
  --seeds <N | a,b,c>       N derived seeds, or an explicit seed list
  --json <path>             write the versioned JSON run artifact
  --threads <N>             worker threads (default: all cores)
  --sequential              force one thread (same results, longer wall-clock)"
    );
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(|s| s.as_str())
}

fn list() -> ExitCode {
    let mode = Mode::from_env();
    let specs = registry(mode);
    let seeds_heading = "seeds";
    println!(
        "{:<32} {:<8} {:>3}  {:<24} {:<7} {:>6} {:>5}x{seeds_heading}",
        "name", "group", "n", "workload", "network", "epochs", "arms"
    );
    for s in &specs {
        println!(
            "{:<32} {:<8} {:>3}  {:<24} {:<7} {:>6.1} {:>5}x{}",
            s.name,
            s.group,
            s.scenario.workers(),
            s.scenario.workload_spec().kind.name(),
            s.scenario.network_kind().name(),
            s.scenario.cfg().max_epochs,
            s.arms.len(),
            s.effective_seeds().len(),
        );
    }
    println!("\n{} experiments; run one with `netmax-bench run <name|group>`", specs.len());
    ExitCode::SUCCESS
}

fn parse_seeds(text: &str, base: &[u64]) -> Option<Vec<u64>> {
    if let Ok(n) = text.parse::<usize>() {
        // `--seeds N`: the first registered seed plus N-1 successors.
        let first = base.first().copied().unwrap_or(0);
        return Some((0..n as u64).map(|i| first + i).collect());
    }
    text.split(',').map(|t| t.trim().parse::<u64>().ok()).collect()
}

fn run(args: &[String], query: Option<&str>) -> ExitCode {
    let Some(query) = query else {
        eprintln!("run needs an experiment name or group (see `netmax-bench list`)");
        return ExitCode::from(2);
    };
    let mode = Mode::from_env();
    let mut specs = find(&registry(mode), query);
    if specs.is_empty() {
        eprintln!("no experiment matches `{query}` (see `netmax-bench list`)");
        return ExitCode::from(2);
    }
    if let Some(text) = flag_value(args, "--seeds") {
        for spec in &mut specs {
            let Some(seeds) = parse_seeds(text, &spec.effective_seeds()) else {
                eprintln!("bad --seeds value `{text}` (want N or a,b,c)");
                return ExitCode::from(2);
            };
            spec.seeds = seeds;
        }
    }
    let threads = if args.iter().any(|a| a == "--sequential") {
        1
    } else {
        flag_value(args, "--threads")
            .and_then(|t| t.parse().ok())
            .unwrap_or_else(runner::default_threads)
    };

    let mut results = Vec::new();
    for spec in &specs {
        let cells = spec.num_cells();
        eprintln!(
            "running {} ({} cells on {} thread{})...",
            spec.name,
            cells,
            threads.min(cells.max(1)),
            if threads == 1 { "" } else { "s" }
        );
        let t0 = Instant::now();
        let result = runner::execute_with_threads(spec, threads);
        eprintln!("  done in {:.1}s real time", t0.elapsed().as_secs_f64());
        print_result(&result);
        results.push(result);
    }

    if let Some(path) = flag_value(args, "--json") {
        let doc = runner::artifact(&results);
        match std::fs::write(path, doc.pretty()) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn print_result(result: &runner::ExperimentResult) {
    println!("\n[{}] {}", result.spec.name, result.spec.title);
    if result.cells.is_empty() {
        println!("{}", result.summary().pretty());
        return;
    }
    let target = common::common_loss_target_of(result.cells.iter().map(|c| &c.report));
    println!(
        "{:<28} {:>12} {:>10} {:>12} {:>12} {:>10} {:>8}",
        "arm", "seed", "epochs", "wall(s)", "t@target(s)", "loss", "acc"
    );
    for c in &result.cells {
        let r = &c.report;
        let t = r
            .time_to_loss(target)
            .map_or_else(|| "-".to_string(), |t| format!("{t:.1}"));
        println!(
            "{:<28} {:>12} {:>10.1} {:>12.1} {:>12} {:>10.4} {:>7.2}%",
            c.label,
            c.seed,
            r.epochs_completed,
            r.wall_clock_s,
            t,
            r.final_train_loss,
            100.0 * r.final_test_accuracy
        );
    }
    // The paper's headline ordering, when the headline pair is present.
    let wall = |kind: AlgorithmKind| {
        result.cells.iter().find(|c| c.algorithm == kind).map(|c| c.report.wall_clock_s)
    };
    if let (Some(nm), Some(ad)) = (wall(AlgorithmKind::NetMax), wall(AlgorithmKind::AdPsgd)) {
        println!("NetMax vs AD-PSGD wall-clock: {:.1}s vs {:.1}s", nm, ad);
    }
}

fn show(path: Option<&str>) -> ExitCode {
    let Some(path) = path else {
        eprintln!("show needs an artifact path");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("could not read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match runner::parse_artifact(&doc) {
        Ok(results) => {
            println!(
                "{path}: valid {} artifact, {} experiment(s)",
                runner::ARTIFACT_SCHEMA,
                results.len()
            );
            for r in &results {
                print_result(r);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: {e}");
            ExitCode::FAILURE
        }
    }
}
