//! `netmax-bench` — the one runner CLI for every registered experiment.
//!
//! ```text
//! netmax-bench list [--json] [--quick|--tiny]
//! netmax-bench run <name|group|all> [--quick|--tiny] [--seeds N|a,b,c]
//!                  [--json out.json] [--threads N] [--sequential]
//!                  [--progress] [--deadline-s S]
//!                  [--checkpoint-dir DIR [--suspend-steps K] [--format F]]
//!                  [--resume DIR] [--tier strict|fast]
//! netmax-bench throughput [--quick] [--steps N] [--repeats R] [--out path]
//!                  [--tier strict|fast]
//! netmax-bench scale [--quick|--tiny] [--repeats R] [--out path]
//! netmax-bench checkpoint [--quick] [--out path]
//! netmax-bench show <artifact.json|checkpoint.bin>
//! ```
//!
//! `run` drives every `(arm, seed)` cell of the matching experiments
//! through step-wise sessions on a scoped thread pool (runs are
//! deterministic per cell, so parallelism cannot change results), prints
//! one summary table per experiment, and with `--json` writes the
//! versioned `netmax-bench/run-report/v1` artifact. With
//! `--checkpoint-dir` each cell is *suspended* after `--suspend-steps`
//! global steps and the experiment is written as a versioned
//! `netmax-bench/checkpoint/v1` document instead — as pretty JSON by
//! default, or as the binary container (same schema tag, sniffed by
//! magic) with `--format binary`; `--resume` picks either kind up and
//! finishes them — byte-identical to an uninterrupted run. `show` parses
//! a run artifact back and re-prints its summaries, or summarizes a
//! checkpoint document (JSON or binary) per cell (algorithm, seed, global
//! step, tier; the embedded session schema may be v1, v2, or binary v3);
//! any other schema is a typed "unknown schema" error — it doubles as a
//! schema check in CI. `checkpoint` benchmarks the encode/decode paths
//! (JSON vs binary vs delta) and writes `BENCH_checkpoint.json`.

use netmax_bench::registry::{find, registry, registry_json};
use netmax_bench::runner::{CellProgress, RunOptions};
use netmax_bench::{common, runner, Mode};
use netmax_core::engine::{AlgorithmKind, CheckpointFormat};
use netmax_json::{codec, Json};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// One command's flag vocabulary: flags that consume a value, and boolean
/// flags. Anything else starting with `-` is an error — a typo must not
/// silently drop a requested artifact or determinism setting.
struct FlagSpec {
    value: &'static [&'static str],
    boolean: &'static [&'static str],
}

const LIST_FLAGS: FlagSpec = FlagSpec { value: &[], boolean: &["--json", "--quick", "--tiny"] };
const RUN_FLAGS: FlagSpec = FlagSpec {
    value: &[
        "--seeds",
        "--json",
        "--threads",
        "--deadline-s",
        "--checkpoint-dir",
        "--suspend-steps",
        "--resume",
        "--tier",
        "--format",
    ],
    boolean: &["--sequential", "--quick", "--tiny", "--progress"],
};
const SHOW_FLAGS: FlagSpec = FlagSpec { value: &[], boolean: &[] };
const CHECKPOINT_FLAGS: FlagSpec = FlagSpec { value: &["--out"], boolean: &["--quick"] };
const THROUGHPUT_FLAGS: FlagSpec =
    FlagSpec { value: &["--steps", "--repeats", "--out", "--tier"], boolean: &["--quick"] };
const SCALE_FLAGS: FlagSpec =
    FlagSpec { value: &["--repeats", "--out"], boolean: &["--quick", "--tiny"] };

/// Splits argv into positional arguments under a command's flag spec,
/// skipping the value each value-taking flag consumes (so `run --seeds 2
/// sanity` parses the target as `sanity`, not `2`). Unknown or
/// `--flag=value`-form options are an error.
fn positionals<'a>(args: &'a [String], spec: &FlagSpec) -> Result<Vec<&'a str>, String> {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if spec.value.contains(&a.as_str()) {
            if it.next().is_none() {
                return Err(format!("{a} needs a value"));
            }
        } else if a.starts_with('-') {
            if !spec.boolean.contains(&a.as_str()) {
                return Err(format!(
                    "unknown option `{a}` (note: `--flag=value` is not supported, use `--flag value`)"
                ));
            }
        } else {
            out.push(a.as_str());
        }
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return ExitCode::SUCCESS;
    }
    // The command may appear anywhere among the flags (`--tiny list`
    // works): it is the first argument matching a known command name that
    // is not the value of a flag. Flags that take a value in *every*
    // command that accepts them shield their value from command
    // detection (`throughput --out list` writes to a file named `list`);
    // `--json` is the one ambiguous flag (boolean for `list`, value for
    // `run`), so an artifact path literally named after a command must be
    // placed after the command word.
    let known = ["list", "run", "show", "throughput", "scale", "checkpoint", "help"];
    let always_value = [
        "--seeds",
        "--threads",
        "--deadline-s",
        "--checkpoint-dir",
        "--suspend-steps",
        "--resume",
        "--steps",
        "--repeats",
        "--out",
        "--tier",
        "--format",
    ];
    let cmd = args.iter().enumerate().find_map(|(i, a)| {
        let shielded = i > 0 && always_value.contains(&args[i - 1].as_str());
        (!shielded && known.contains(&a.as_str())).then_some(a)
    });
    let Some(cmd) = cmd else {
        if let Some(other) = args.iter().find(|a| !a.starts_with('-')) {
            eprintln!("unknown command: {other}");
        }
        usage();
        return ExitCode::from(2);
    };
    let spec = match cmd.as_str() {
        "list" => &LIST_FLAGS,
        "run" => &RUN_FLAGS,
        "show" => &SHOW_FLAGS,
        "throughput" => &THROUGHPUT_FLAGS,
        "scale" => &SCALE_FLAGS,
        "checkpoint" => &CHECKPOINT_FLAGS,
        "help" => {
            usage();
            return ExitCode::SUCCESS;
        }
        _ => unreachable!("filtered to known commands"),
    };
    let mut positional = match positionals(&args, spec) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            usage();
            return ExitCode::from(2);
        }
    };
    // Drop the command token itself; what remains is the operand list.
    let idx = positional
        .iter()
        .position(|p| p == cmd)
        .expect("command is a positional");
    positional.remove(idx);
    match cmd.as_str() {
        "list" => list(&args),
        "run" => run(&args, positional.first().copied()),
        "show" => show(positional.first().copied()),
        "throughput" => throughput(&args),
        "scale" => scale(&args),
        "checkpoint" => checkpoint_cmd(&args),
        _ => unreachable!("filtered to known commands"),
    }
}

fn usage() {
    eprintln!(
        "netmax-bench — declarative experiment runner (NetMax, ICDE 2021)

commands:
  list                      all registered experiments (name, scenario, arms)
  run <name|group|all>      execute matching experiments over (arm, seed) cells
  show <artifact.json>      parse a run artifact (re-printing its summaries)
                            or a checkpoint document (per-cell algorithm,
                            seed, global step); unknown schemas fail
  throughput                measure real global-steps/sec and samples/sec per
                            algorithm on the sanity workload (pipeline and
                            engine modes) and write BENCH_throughput.json
  scale                     sweep the headline four over torus fleets (full:
                            32-4096 workers; tiny: 32/256) measuring
                            convergence, steps/sec, and peak RSS, and write
                            BENCH_scale.json
  checkpoint                benchmark checkpoint encode/decode (JSON vs binary
                            vs incremental delta) over fleet sizes and write
                            BENCH_checkpoint.json

options:
  --quick / --tiny          compressed experiment scale (default: full; also
                            honoured via NETMAX_MODE=quick|tiny)
  --json                    list: emit the registry as JSON on stdout
  --seeds <N | a,b,c>       N derived seeds, or an explicit seed list
  --json <path>             run: write the versioned JSON run artifact
  --threads <N>             worker threads (default: all cores)
  --sequential              force one thread (same results, longer wall-clock)
  --progress                stream per-sample progress lines to stderr
  --deadline-s <S>          real-time budget per cell; expiry finishes the
                            cell early (partial report; non-deterministic)
  --checkpoint-dir <DIR>    suspend each cell mid-run and write one
                            netmax-bench/checkpoint/v1 document per experiment
  --suspend-steps <K>       global steps before suspension (default 100)
  --format <json|binary>    checkpoint file format for --checkpoint-dir
                            (default json; --resume sniffs the format)
  --resume <DIR>            resume checkpoint documents written by
                            --checkpoint-dir and run them to completion
  --tier <strict|fast>      run: numerics tier for every matching experiment;
                            throughput: restrict the grid to one tier
                            (default: strict for run, both for throughput)
  --steps <N>               throughput: global steps per repetition
  --repeats <R>             throughput/scale: repetitions per cell (best kept)
  --out <path>              throughput/scale/checkpoint: output path
                            (BENCH_throughput.json / BENCH_scale.json /
                            BENCH_checkpoint.json)"
    );
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(|s| s.as_str())
}

/// Parses `--tier`, turning an unknown tier name into a typed usage
/// error (exit 2) instead of silently running the default tier.
fn parse_tier(args: &[String]) -> Result<Option<netmax_ml::NumericsTier>, ExitCode> {
    match flag_value(args, "--tier") {
        None => Ok(None),
        Some(name) => match netmax_ml::NumericsTier::from_name(name) {
            Some(t) => Ok(Some(t)),
            None => {
                eprintln!("unknown numerics tier `{name}` (want `strict` or `fast`)");
                Err(ExitCode::from(2))
            }
        },
    }
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn list(args: &[String]) -> ExitCode {
    let mode = Mode::from_env();
    let specs = registry(mode);
    if has_flag(args, "--json") {
        println!("{}", registry_json(&specs).pretty());
        return ExitCode::SUCCESS;
    }
    let seeds_heading = "seeds";
    println!(
        "{:<32} {:<8} {:>3}  {:<24} {:<7} {:>6} {:>5}x{seeds_heading}",
        "name", "group", "n", "workload", "network", "epochs", "arms"
    );
    for s in &specs {
        println!(
            "{:<32} {:<8} {:>3}  {:<24} {:<7} {:>6.1} {:>5}x{}",
            s.name,
            s.group,
            s.scenario.workers(),
            s.scenario.workload_spec().kind.name(),
            s.scenario.network_kind().name(),
            s.scenario.cfg().max_epochs,
            s.arms.len(),
            s.effective_seeds().len(),
        );
    }
    println!("\n{} experiments; run one with `netmax-bench run <name|group>`", specs.len());
    ExitCode::SUCCESS
}

fn parse_seeds(text: &str, base: &[u64]) -> Option<Vec<u64>> {
    if let Ok(n) = text.parse::<usize>() {
        // `--seeds N`: the first registered seed plus N-1 successors.
        let first = base.first().copied().unwrap_or(0);
        return Some((0..n as u64).map(|i| first + i).collect());
    }
    text.split(',').map(|t| t.trim().parse::<u64>().ok()).collect()
}

/// One experiment's checkpoint path inside a checkpoint directory; the
/// extension names the on-disk format.
fn checkpoint_path(dir: &Path, experiment: &str, format: CheckpointFormat) -> PathBuf {
    let ext = match format {
        CheckpointFormat::Json => "json",
        CheckpointFormat::Binary => "bin",
    };
    dir.join(format!("{}.checkpoint.{ext}", experiment.replace('/', "__")))
}

fn run(args: &[String], query: Option<&str>) -> ExitCode {
    let Some(query) = query else {
        eprintln!("run needs an experiment name or group (see `netmax-bench list`)");
        return ExitCode::from(2);
    };
    let checkpoint_dir = flag_value(args, "--checkpoint-dir").map(PathBuf::from);
    let resume_dir = flag_value(args, "--resume").map(PathBuf::from);
    if checkpoint_dir.is_some() && resume_dir.is_some() {
        eprintln!("--checkpoint-dir and --resume are mutually exclusive");
        return ExitCode::from(2);
    }
    if flag_value(args, "--suspend-steps").is_some() && checkpoint_dir.is_none() {
        eprintln!("--suspend-steps only makes sense with --checkpoint-dir");
        return ExitCode::from(2);
    }
    if resume_dir.is_some() && flag_value(args, "--seeds").is_some() {
        eprintln!("--seeds cannot be combined with --resume (seeds come from the checkpoint)");
        return ExitCode::from(2);
    }
    let format = match flag_value(args, "--format") {
        None => CheckpointFormat::Json,
        Some(name) => {
            if checkpoint_dir.is_none() {
                eprintln!(
                    "--format only makes sense with --checkpoint-dir \
                     (--resume sniffs the format from the file)"
                );
                return ExitCode::from(2);
            }
            match CheckpointFormat::from_name(name) {
                Some(f) => f,
                None => {
                    eprintln!("unknown checkpoint format `{name}` (want `json` or `binary`)");
                    return ExitCode::from(2);
                }
            }
        }
    };
    let tier = match parse_tier(args) {
        Ok(t) => t,
        Err(code) => return code,
    };
    if resume_dir.is_some() && tier.is_some() {
        eprintln!(
            "--tier cannot be combined with --resume (the tier is recorded in the \
             checkpoint; resuming under a different tier is rejected)"
        );
        return ExitCode::from(2);
    }
    if checkpoint_dir.is_some() && flag_value(args, "--json").is_some() {
        eprintln!("--json cannot be combined with --checkpoint-dir (no reports are produced)");
        return ExitCode::from(2);
    }
    if checkpoint_dir.is_some()
        && (has_flag(args, "--progress") || flag_value(args, "--deadline-s").is_some())
    {
        eprintln!(
            "--progress/--deadline-s cannot be combined with --checkpoint-dir \
             (suspension is step-bounded, not sample- or time-driven)"
        );
        return ExitCode::from(2);
    }

    let mode = Mode::from_env();
    let mut specs = find(&registry(mode), query);
    if specs.is_empty() {
        eprintln!("no experiment matches `{query}` (see `netmax-bench list`)");
        return ExitCode::from(2);
    }
    if let Some(text) = flag_value(args, "--seeds") {
        for spec in &mut specs {
            let Some(seeds) = parse_seeds(text, &spec.effective_seeds()) else {
                eprintln!("bad --seeds value `{text}` (want N or a,b,c)");
                return ExitCode::from(2);
            };
            spec.seeds = seeds;
        }
    }
    if let Some(t) = tier {
        for spec in &mut specs {
            spec.scenario.cfg_mut().tier = t;
        }
    }
    let threads = if has_flag(args, "--sequential") {
        1
    } else {
        match flag_value(args, "--threads") {
            Some(t) => match t.parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => {
                    eprintln!("bad --threads value `{t}` (want a positive integer)");
                    return ExitCode::from(2);
                }
            },
            None => runner::default_threads(),
        }
    };
    let deadline = match flag_value(args, "--deadline-s") {
        Some(t) => match t.parse::<f64>() {
            Ok(s) if s > 0.0 => Some(Duration::from_secs_f64(s)),
            _ => {
                eprintln!("bad --deadline-s value `{t}` (want positive seconds)");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let progress_fn = |p: CellProgress<'_>| {
        eprintln!(
            "  [{} {} seed={}] step {} epoch {:.2} t={:.1}s loss {:.4}",
            p.experiment, p.label, p.seed, p.global_step, p.epoch, p.sim_time_s, p.train_loss
        );
    };
    let opts = RunOptions {
        threads,
        progress: has_flag(args, "--progress").then_some(&progress_fn),
        cell_deadline: deadline,
    };

    if let Some(dir) = checkpoint_dir {
        let suspend_steps = match flag_value(args, "--suspend-steps") {
            Some(t) => match t.parse::<u64>() {
                Ok(k) if k > 0 => k,
                _ => {
                    eprintln!("bad --suspend-steps value `{t}` (want a positive integer)");
                    return ExitCode::from(2);
                }
            },
            None => 100,
        };
        return suspend(&specs, &dir, threads, suspend_steps, format);
    }

    let results = if let Some(dir) = resume_dir {
        match resume_from(&specs, &dir, &opts) {
            Ok(r) => r,
            Err(code) => return code,
        }
    } else {
        let mut results = Vec::new();
        for spec in &specs {
            let cells = spec.num_cells();
            eprintln!(
                "running {} ({} cells on {} thread{})...",
                spec.name,
                cells,
                threads.min(cells.max(1)),
                if threads == 1 { "" } else { "s" }
            );
            let t0 = Instant::now();
            let result = match runner::try_execute(spec, &opts) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{}: {e}", spec.name);
                    return ExitCode::from(2);
                }
            };
            eprintln!("  done in {:.1}s real time", t0.elapsed().as_secs_f64());
            print_result(&result);
            results.push(result);
        }
        results
    };

    if let Some(path) = flag_value(args, "--json") {
        let doc = runner::artifact(&results);
        match std::fs::write(path, doc.pretty()) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// `run --checkpoint-dir`: suspend every matching experiment mid-run and
/// write one checkpoint document per experiment, as pretty JSON or the
/// binary container depending on `--format`.
fn suspend(
    specs: &[netmax_bench::ExperimentSpec],
    dir: &Path,
    threads: usize,
    suspend_steps: u64,
    format: CheckpointFormat,
) -> ExitCode {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("could not create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    for spec in specs {
        eprintln!(
            "suspending {} after {} global steps per cell...",
            spec.name, suspend_steps
        );
        let suspended = match runner::execute_suspended(spec, threads, suspend_steps) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{}: {e}", spec.name);
                return ExitCode::from(2);
            }
        };
        let bytes = match format {
            CheckpointFormat::Json => runner::checkpoint_doc(&suspended).pretty().into_bytes(),
            CheckpointFormat::Binary => match runner::checkpoint_bytes(&suspended) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("{}: {e}", spec.name);
                    return ExitCode::from(2);
                }
            },
        };
        let path = checkpoint_path(dir, &spec.name, format);
        match std::fs::write(&path, bytes) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("could not write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!("resume with `netmax-bench run <name> --resume {}`", dir.display());
    ExitCode::SUCCESS
}

/// `run --resume`: load each matching experiment's checkpoint document —
/// trying the `.json` then the `.bin` filename, sniffing the actual
/// format from the bytes — and run it to completion.
fn resume_from(
    specs: &[netmax_bench::ExperimentSpec],
    dir: &Path,
    opts: &RunOptions<'_>,
) -> Result<Vec<runner::ExperimentResult>, ExitCode> {
    let mut results = Vec::new();
    for spec in specs {
        let candidates = [
            checkpoint_path(dir, &spec.name, CheckpointFormat::Json),
            checkpoint_path(dir, &spec.name, CheckpointFormat::Binary),
        ];
        let (path, bytes) = match candidates.iter().find_map(|p| {
            std::fs::read(p).ok().map(|b| (p, b))
        }) {
            Some(found) => found,
            None => {
                eprintln!(
                    "no checkpoint for {} in {} (looked for {} and {})",
                    spec.name,
                    dir.display(),
                    candidates[0].display(),
                    candidates[1].display()
                );
                return Err(ExitCode::FAILURE);
            }
        };
        // The checkpoint embeds the exact spec that produced it; resuming
        // uses that spec, not the registry's (they normally agree, but the
        // checkpoint is the ground truth for determinism).
        let suspended = match parse_checkpoint_auto(&bytes) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{}: {e}", path.display());
                return Err(ExitCode::FAILURE);
            }
        };
        eprintln!("resuming {} ({} cells)...", suspended.spec.name, suspended.cells.len());
        let t0 = Instant::now();
        let result = match runner::resume(&suspended, opts) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: {e}", suspended.spec.name);
                return Err(ExitCode::from(2));
            }
        };
        eprintln!("  done in {:.1}s real time", t0.elapsed().as_secs_f64());
        print_result(&result);
        results.push(result);
    }
    Ok(results)
}

/// Parses checkpoint bytes in whichever format they turn out to be:
/// binary containers by magic, anything else as UTF-8 JSON.
fn parse_checkpoint_auto(bytes: &[u8]) -> Result<runner::SuspendedExperiment, String> {
    if codec::is_binary(bytes) {
        return runner::parse_checkpoint_bytes(bytes).map_err(|e| e.to_string());
    }
    let text =
        std::str::from_utf8(bytes).map_err(|_| "checkpoint is not UTF-8 JSON".to_string())?;
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    runner::parse_checkpoint(&doc).map_err(|e| e.to_string())
}

fn print_result(result: &runner::ExperimentResult) {
    println!("\n[{}] {}", result.spec.name, result.spec.title);
    if result.cells.is_empty() {
        println!("{}", result.summary().pretty());
        return;
    }
    let target = common::common_loss_target_of(result.cells.iter().map(|c| &c.report));
    println!(
        "{:<28} {:>12} {:>10} {:>12} {:>12} {:>10} {:>8}",
        "arm", "seed", "epochs", "wall(s)", "t@target(s)", "loss", "acc"
    );
    for c in &result.cells {
        let r = &c.report;
        let t = r
            .time_to_loss(target)
            .map_or_else(|| "-".to_string(), |t| format!("{t:.1}"));
        println!(
            "{:<28} {:>12} {:>10.1} {:>12.1} {:>12} {:>10.4} {:>7.2}%",
            c.label,
            c.seed,
            r.epochs_completed,
            r.wall_clock_s,
            t,
            r.final_train_loss,
            100.0 * r.final_test_accuracy
        );
    }
    // The paper's headline ordering, when the headline pair is present.
    let wall = |kind: AlgorithmKind| {
        result.cells.iter().find(|c| c.algorithm == kind).map(|c| c.report.wall_clock_s)
    };
    if let (Some(nm), Some(ad)) = (wall(AlgorithmKind::NetMax), wall(AlgorithmKind::AdPsgd)) {
        println!("NetMax vs AD-PSGD wall-clock: {:.1}s vs {:.1}s", nm, ad);
    }
}

fn show(path: Option<&str>) -> ExitCode {
    let Some(path) = path else {
        eprintln!("show needs an artifact path");
        return ExitCode::from(2);
    };
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("could not read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let kind = if codec::is_binary(&bytes) { "binary" } else { "JSON" };
    match runner::summarize_bytes(&bytes) {
        Ok(runner::ShownDoc::RunReport(results)) => {
            println!(
                "{path}: valid {} artifact, {} experiment(s)",
                runner::ARTIFACT_SCHEMA,
                results.len()
            );
            for r in &results {
                print_result(r);
            }
            ExitCode::SUCCESS
        }
        Ok(runner::ShownDoc::Checkpoint(summary)) => {
            println!(
                "{path}: valid {} document ({kind}) — suspended experiment [{}], {} cell(s)",
                runner::CHECKPOINT_SCHEMA,
                summary.experiment,
                summary.cells.len()
            );
            let schema_heading = "session schema";
            println!(
                "{:<28} {:>18} {:>12} {:>12} {:>7}  {schema_heading}",
                "arm", "algorithm", "seed", "step", "tier"
            );
            for c in &summary.cells {
                println!(
                    "{:<28} {:>18} {:>12} {:>12} {:>7}  {}",
                    c.label,
                    c.algorithm.name(),
                    c.seed,
                    c.global_step,
                    c.tier,
                    c.session_schema
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn scale(args: &[String]) -> ExitCode {
    use netmax_bench::experiments::scale;
    let ctx = common::ExpCtx::with_mode(Mode::from_env());
    let mut p = scale::Params::for_mode(&ctx);
    if let Some(repeats) = flag_value(args, "--repeats") {
        match repeats.parse::<usize>() {
            Ok(n) if n > 0 => p.repeats = n,
            _ => {
                eprintln!("--repeats needs a positive integer, got `{repeats}`");
                return ExitCode::from(2);
            }
        }
    }
    let out = flag_value(args, "--out").unwrap_or("BENCH_scale.json");
    eprintln!(
        "scale sweep: {} steps/node x {} repeats over n = {:?}...",
        p.steps_per_node, p.repeats, p.node_counts
    );
    let rows = scale::run(&p);
    scale::print(&ctx, &p, &rows);
    let doc = scale::scale_doc(&p, &rows);
    match std::fs::write(out, doc.pretty() + "\n") {
        Ok(()) => {
            eprintln!("wrote {out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("could not write {out}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn checkpoint_cmd(args: &[String]) -> ExitCode {
    use netmax_bench::checkpoint_bench;
    let p = if has_flag(args, "--quick") {
        checkpoint_bench::Params::quick()
    } else {
        checkpoint_bench::Params::full()
    };
    let out = flag_value(args, "--out").unwrap_or("BENCH_checkpoint.json");
    eprintln!(
        "checkpoint I/O benchmark: n = {:?}, {} repeat(s) per point...",
        p.node_counts, p.repeats
    );
    let rows = checkpoint_bench::run(&p);
    print!("{}", checkpoint_bench::render_table(&rows));
    let doc = checkpoint_bench::checkpoint_bench_doc(&p, &rows);
    match std::fs::write(out, doc.pretty() + "\n") {
        Ok(()) => {
            eprintln!("wrote {out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("could not write {out}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn throughput(args: &[String]) -> ExitCode {
    let mut opts = if has_flag(args, "--quick") {
        netmax_bench::throughput::ThroughputOptions::quick()
    } else {
        netmax_bench::throughput::ThroughputOptions::full()
    };
    opts.tier = match parse_tier(args) {
        Ok(t) => t,
        Err(code) => return code,
    };
    if let Some(steps) = flag_value(args, "--steps") {
        match steps.parse::<u64>() {
            Ok(n) if n > 0 => opts.steps = n,
            _ => {
                eprintln!("--steps needs a positive integer, got `{steps}`");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(repeats) = flag_value(args, "--repeats") {
        match repeats.parse::<usize>() {
            Ok(n) if n > 0 => opts.repeats = n,
            _ => {
                eprintln!("--repeats needs a positive integer, got `{repeats}`");
                return ExitCode::from(2);
            }
        }
    }
    let out = flag_value(args, "--out").unwrap_or("BENCH_throughput.json");
    eprintln!(
        "measuring sanity-workload throughput: {} steps x {} repeats per (arm, tier, mode)...",
        opts.steps, opts.repeats
    );
    let rows = netmax_bench::throughput::measure(&opts);
    print!("{}", netmax_bench::throughput::render_table(&rows));
    let doc = netmax_bench::throughput::throughput_doc(&opts, &rows);
    match std::fs::write(out, doc.pretty() + "\n") {
        Ok(()) => {
            eprintln!("wrote {out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("could not write {out}: {e}");
            ExitCode::FAILURE
        }
    }
}
