//! Reproduces Fig. 19 — cross-cloud training over six EC2 regions.

use netmax_bench::experiments::fig19;

fn main() {
    let ctx = netmax_bench::ExpCtx::from_env();
    let p = fig19::Params::for_mode(&ctx);
    let panels = fig19::run(&p);
    fig19::print(&ctx, &panels);
}
