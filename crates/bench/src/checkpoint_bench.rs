//! `checkpoint` — the checkpoint I/O benchmark behind
//! `BENCH_checkpoint.json`.
//!
//! Measures, per fleet size, the cost of suspending a live session three
//! ways: the pretty-JSON `session-checkpoint/v2` document (encode =
//! build + render, decode = parse), the binary `session-checkpoint/v3`
//! fast path (encode = [`Session::checkpoint_binary`] on a warm scratch,
//! decode = [`decode_session_v3`]), and a node-granular incremental
//! delta taken a few training steps after the previous full snapshot —
//! on a gossip arm only the nodes that actually stepped re-serialize.
//! Timings are best-of-`repeats`; sizes come from the best-timed
//! repetition. The fixture mirrors the `scale/*` group: AD-PSGD on a
//! torus over the heterogeneous dynamic network, ridge workload.

use crate::common;
use crate::experiments::scale;
use crate::spec::Arm;
use netmax_core::engine::{
    decode_session_v3, AlgorithmKind, CheckpointScratch, Scenario, Session, StopCondition,
    TopologyKind,
};
use netmax_json::{codec, Json, ToJson};
use netmax_ml::workload::WorkloadSpec;
use netmax_net::NetworkKind;
use std::time::Instant;

/// Schema tag of `BENCH_checkpoint.json`; bump on breaking changes.
pub const CHECKPOINT_BENCH_SCHEMA: &str = "netmax-bench/checkpoint-bench/v1";

/// Benchmark parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Fleet sizes to measure (each needs a balanced torus shape).
    pub node_counts: Vec<usize>,
    /// Timing repetitions per point (best, i.e. minimum, kept).
    pub repeats: usize,
    /// Training steps between a full snapshot and its delta — the number
    /// of nodes that can have changed.
    pub delta_steps: u64,
    /// Master seed.
    pub seed: u64,
}

impl Params {
    /// The committed `BENCH_checkpoint.json` baseline.
    pub fn full() -> Self {
        Self { node_counts: vec![8, 256, 1024], repeats: 3, delta_steps: 4, seed: 11 }
    }

    /// CI smoke scale.
    pub fn quick() -> Self {
        Self { node_counts: vec![8, 256], repeats: 1, ..Self::full() }
    }
}

/// One measured fleet size.
#[derive(Debug, Clone)]
pub struct Row {
    /// Fleet size.
    pub nodes: usize,
    /// Pretty-JSON document size in bytes.
    pub json_bytes: usize,
    /// Binary full-snapshot size in bytes.
    pub binary_bytes: usize,
    /// Incremental delta size in bytes.
    pub delta_bytes: usize,
    /// Nodes whose state changed within the delta window.
    pub changed_nodes: usize,
    /// JSON encode (build + render) milliseconds, best repetition.
    pub json_encode_ms: f64,
    /// JSON parse milliseconds, best repetition.
    pub json_decode_ms: f64,
    /// Binary full encode milliseconds, best repetition.
    pub binary_encode_ms: f64,
    /// Binary full decode milliseconds, best repetition.
    pub binary_decode_ms: f64,
    /// Delta encode milliseconds, best repetition.
    pub delta_encode_ms: f64,
}

impl Row {
    /// JSON bytes per binary byte.
    pub fn size_ratio(&self) -> f64 {
        self.json_bytes as f64 / self.binary_bytes as f64
    }

    /// JSON encode+decode time per binary encode+decode time.
    pub fn speed_ratio(&self) -> f64 {
        (self.json_encode_ms + self.json_decode_ms)
            / (self.binary_encode_ms + self.binary_decode_ms)
    }
}

fn ms(t0: Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e3
}

/// Changed-node count of a delta document (the leading `u32` of its
/// `nodes` section).
fn delta_changed_count(delta: &[u8]) -> usize {
    codec::read_document(delta)
        .ok()
        .and_then(|doc| doc.section("nodes")?.get(..4).map(|b| b.try_into().ok()))
        .flatten()
        .map_or(0, |b| u32::from_le_bytes(b) as usize)
}

/// The benchmark scenario at fleet size `n`: AD-PSGD (pure gossip, no
/// monitor rounds to dodge) on the scale group's torus fabric.
fn scenario(p: &Params, n: usize) -> Scenario {
    let (rows, cols) = scale::torus_dims(n);
    let mut cfg = common::train_config(1e6, p.seed);
    cfg.stop = Some(StopCondition::MaxGlobalSteps(10_000_000));
    cfg.record_every_steps = u64::MAX / 2;
    Scenario::builder()
        .workers(n)
        .topology(TopologyKind::Torus { rows, cols })
        .network(NetworkKind::HeterogeneousDynamic)
        .workload(WorkloadSpec::convex_ridge(p.seed).lr_scaled(scale::SCALE_LR_SCALE))
        .slowdown(common::slowdown())
        .train_config(cfg)
        .build()
}

fn measure_point(p: &Params, n: usize) -> Row {
    let sc = scenario(p, n);
    let workload = sc.workload();
    let alpha = workload.optim.lr;
    let mut algo = Arm::new(AlgorithmKind::AdPsgd).instantiate(alpha);
    let mut env = sc.build_env_with(workload);
    let mut session = Session::new(&mut env, algo.driver()).expect("valid session");
    // Warm-up: roughly one step per node, so every sampler, clock, and
    // parameter vector carries live state.
    while session.env().global_step < n as u64 {
        session.step();
    }

    let mut row = Row {
        nodes: n,
        json_bytes: 0,
        binary_bytes: 0,
        delta_bytes: 0,
        changed_nodes: 0,
        json_encode_ms: f64::INFINITY,
        json_decode_ms: f64::INFINITY,
        binary_encode_ms: f64::INFINITY,
        binary_decode_ms: f64::INFINITY,
        delta_encode_ms: f64::INFINITY,
    };
    let mut scratch = CheckpointScratch::new();
    let mut bin = Vec::new();
    let mut delta = Vec::new();
    for _ in 0..p.repeats {
        let t0 = Instant::now();
        let doc = session.checkpoint();
        let text = doc.pretty();
        let json_encode = ms(t0);
        let t0 = Instant::now();
        let parsed = Json::parse(&text).expect("checkpoint JSON parses");
        let json_decode = ms(t0);
        drop(parsed);
        if json_encode + json_decode < row.json_encode_ms + row.json_decode_ms {
            row.json_encode_ms = json_encode;
            row.json_decode_ms = json_decode;
            row.json_bytes = text.len();
        }

        let t0 = Instant::now();
        session.checkpoint_binary(&mut scratch, &mut bin).expect("binary encode");
        let binary_encode = ms(t0);
        let t0 = Instant::now();
        let decoded = decode_session_v3(&bin).expect("binary decode");
        let binary_decode = ms(t0);
        drop(decoded);
        if binary_encode + binary_decode < row.binary_encode_ms + row.binary_decode_ms {
            row.binary_encode_ms = binary_encode;
            row.binary_decode_ms = binary_decode;
            row.binary_bytes = bin.len();
        }

        // The delta window: a handful of gossip steps, each mutating one
        // puller's node state — the snapshot re-serializes only those.
        let resume_at = session.env().global_step + p.delta_steps;
        while session.env().global_step < resume_at {
            session.step();
        }
        let t0 = Instant::now();
        session.checkpoint_delta(&mut scratch, &mut delta).expect("delta encode");
        let delta_encode = ms(t0);
        if delta_encode < row.delta_encode_ms {
            row.delta_encode_ms = delta_encode;
            row.delta_bytes = delta.len();
            row.changed_nodes = delta_changed_count(&delta);
        }
    }
    eprintln!(
        "  n={n}: json {} B, binary {} B ({:.1}x smaller), delta {} B ({} node(s) changed), \
         encode+decode {:.2}ms vs {:.2}ms ({:.1}x faster)",
        row.json_bytes,
        row.binary_bytes,
        row.size_ratio(),
        row.delta_bytes,
        row.changed_nodes,
        row.json_encode_ms + row.json_decode_ms,
        row.binary_encode_ms + row.binary_decode_ms,
        row.speed_ratio(),
    );
    row
}

/// Runs the benchmark point by point (sequentially: timings are real).
pub fn run(p: &Params) -> Vec<Row> {
    assert!(p.repeats > 0, "need at least one repetition");
    p.node_counts.iter().map(|&n| measure_point(p, n)).collect()
}

/// Assembles the versioned `netmax-bench/checkpoint-bench/v1` document.
pub fn checkpoint_bench_doc(p: &Params, rows: &[Row]) -> Json {
    Json::obj([
        ("schema", Json::Str(CHECKPOINT_BENCH_SCHEMA.into())),
        (
            "bench",
            Json::obj([
                ("algorithm", Json::Str("ad-psgd".into())),
                ("workload", Json::Str("ridge".into())),
                ("topology", Json::Str("torus".into())),
                ("node_counts", p.node_counts.to_json()),
                ("repeats", p.repeats.to_json()),
                ("delta_steps", p.delta_steps.to_json()),
                ("seed", p.seed.to_json()),
            ]),
        ),
        (
            "results",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("nodes", r.nodes.to_json()),
                            ("json_bytes", r.json_bytes.to_json()),
                            ("binary_bytes", r.binary_bytes.to_json()),
                            ("delta_bytes", r.delta_bytes.to_json()),
                            ("changed_nodes", r.changed_nodes.to_json()),
                            ("json_encode_ms", r.json_encode_ms.to_json()),
                            ("json_decode_ms", r.json_decode_ms.to_json()),
                            ("binary_encode_ms", r.binary_encode_ms.to_json()),
                            ("binary_decode_ms", r.binary_decode_ms.to_json()),
                            ("delta_encode_ms", r.delta_encode_ms.to_json()),
                            ("size_ratio", r.size_ratio().to_json()),
                            ("speed_ratio", r.speed_ratio().to_json()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Plain-text table for the CLI.
pub fn render_table(rows: &[Row]) -> String {
    let mut out = format!(
        "{:>6} {:>12} {:>12} {:>10} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>7} {:>7}\n",
        "n", "json(B)", "binary(B)", "delta(B)", "changed", "json-e(ms)", "json-d(ms)",
        "bin-e(ms)", "bin-d(ms)", "dlt-e(ms)", "size-x", "speed-x"
    );
    for r in rows {
        out.push_str(&format!(
            "{:>6} {:>12} {:>12} {:>10} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>7.1} {:>7.1}\n",
            r.nodes,
            r.json_bytes,
            r.binary_bytes,
            r.delta_bytes,
            r.changed_nodes,
            r.json_encode_ms,
            r.json_decode_ms,
            r.binary_encode_ms,
            r.binary_decode_ms,
            r.delta_encode_ms,
            r.size_ratio(),
            r.speed_ratio(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner;
    use crate::runner::RunOptions;

    #[test]
    fn small_point_orders_the_three_formats() {
        let p = Params { node_counts: vec![8], repeats: 1, delta_steps: 4, seed: 11 };
        let rows = run(&p);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.binary_bytes < r.json_bytes, "{} !< {}", r.binary_bytes, r.json_bytes);
        assert!(r.delta_bytes < r.binary_bytes, "{} !< {}", r.delta_bytes, r.binary_bytes);
        assert!(r.changed_nodes >= 1 && r.changed_nodes <= p.delta_steps as usize);
        let doc = checkpoint_bench_doc(&p, &rows);
        let parsed = Json::parse(&doc.pretty()).unwrap();
        assert_eq!(
            parsed.field("schema").unwrap().as_str().unwrap(),
            CHECKPOINT_BENCH_SCHEMA
        );
        assert_eq!(parsed.field("results").unwrap().as_arr().unwrap().len(), 1);
        assert!(render_table(&rows).contains("speed-x"));
    }

    /// The acceptance scale point: binary suspend → resume at n = 1024 is
    /// byte-identical to the uninterrupted run, through the same
    /// `scale/*` spec the sweep uses (budget shortened, gossip arm only).
    #[test]
    fn scale_point_binary_suspend_resume_is_byte_identical_at_n_1024() {
        let p = scale::Params {
            node_counts: vec![1024],
            steps_per_node: 2,
            repeats: 1,
            seed: 11,
        };
        let mut spec = scale::specs(&p).remove(0);
        spec.arms.retain(|a| a.algorithm == AlgorithmKind::AdPsgd);
        assert_eq!(spec.arms.len(), 1);

        let direct = runner::execute_with_threads(&spec, 2);
        let suspended = runner::execute_suspended(&spec, 2, 512).unwrap();
        let bytes = runner::checkpoint_bytes(&suspended).unwrap();
        let parsed = runner::parse_checkpoint_bytes(&bytes).unwrap();
        let resumed =
            runner::resume(&parsed, &RunOptions { threads: 2, ..Default::default() }).unwrap();

        let (a, b) = (runner::artifact(&[direct]), runner::artifact(&[resumed]));
        assert_eq!(
            a.to_string(),
            b.to_string(),
            "n=1024 binary suspend + resume must reproduce the uninterrupted artifact"
        );
    }
}
