//! The experiment executor: one `(arm, seed)` cell per task, optionally
//! fanned out over a scoped thread pool.
//!
//! Every cell is fully independent — it builds its own [`Environment`]
//! from the (pure-data) scenario and runs its own algorithm instance —
//! and every run is deterministic via the engine's per-node RNG streams,
//! so the parallel executor produces *byte-identical* reports to the
//! sequential one; only wall-clock changes. The datasets are instantiated
//! once per experiment and shared across cells through the workload's
//! internal `Arc`s.
//!
//! [`Environment`]: netmax_core::engine::Environment

use crate::spec::{ExperimentSpec, MetricKind};
use netmax_core::engine::{AlgorithmKind, ExecutionMode, RunReport};
use netmax_json::{FromJson, Json, JsonError, ToJson};
use netmax_ml::profile::ModelProfile;
use netmax_net::LinkQuality;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Schema tag written into every artifact; bump on breaking changes.
pub const ARTIFACT_SCHEMA: &str = "netmax-bench/run-report/v1";

/// One `(arm, seed)` cell's outcome.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Index into the spec's arm list.
    pub arm: usize,
    /// The arm's display label.
    pub label: String,
    /// The arm's algorithm.
    pub algorithm: AlgorithmKind,
    /// The training seed this cell ran with.
    pub seed: u64,
    /// The full recorded run.
    pub report: RunReport,
}

impl ToJson for CellResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("arm", self.arm.to_json()),
            ("label", self.label.to_json()),
            ("algorithm", self.algorithm.to_json()),
            ("seed", self.seed.to_json()),
            ("report", self.report.to_json()),
        ])
    }
}

impl FromJson for CellResult {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            arm: usize::from_json(v.field("arm")?)?,
            label: String::from_json(v.field("label")?)?,
            algorithm: AlgorithmKind::from_json(v.field("algorithm")?)?,
            seed: u64::from_json(v.field("seed")?)?,
            report: RunReport::from_json(v.field("report")?)?,
        })
    }
}

/// All cells of one executed experiment, in `(arm, seed)` grid order.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The spec that produced these cells.
    pub spec: ExperimentSpec,
    /// One result per cell, arms outermost, seeds innermost.
    pub cells: Vec<CellResult>,
}

impl ExperimentResult {
    /// The cells of one arm (by index), across seeds.
    pub fn arm_cells(&self, arm: usize) -> impl Iterator<Item = &CellResult> {
        self.cells.iter().filter(move |c| c.arm == arm)
    }

    /// The first cell matching an algorithm (convenience for adapters).
    pub fn cell(&self, kind: AlgorithmKind) -> Option<&CellResult> {
        self.cells.iter().find(|c| c.algorithm == kind)
    }

    /// Per-experiment record for the JSON artifact: spec, summary (per
    /// the spec's metric list), and every cell's full report.
    pub fn to_record(&self) -> Json {
        Json::obj([
            ("spec", self.spec.to_json()),
            ("summary", self.summary()),
            ("cells", self.cells.to_json()),
        ])
    }

    /// Summary metrics as JSON (one entry per requested [`MetricKind`]).
    pub fn summary(&self) -> Json {
        let mut entries: Vec<(String, Json)> = Vec::new();
        for metric in &self.spec.metrics {
            let value = match metric {
                MetricKind::TimeToTarget => {
                    let target = crate::common::common_loss_target_of(
                        self.cells.iter().map(|c| &c.report),
                    );
                    Json::obj([
                        ("loss_target", target.to_json()),
                        (
                            "seconds",
                            Json::Arr(
                                self.cells
                                    .iter()
                                    .map(|c| {
                                        cell_entry(c, c.report.time_to_loss(target).to_json())
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                }
                MetricKind::EpochCost => Json::Arr(
                    self.cells
                        .iter()
                        .map(|c| {
                            cell_entry(
                                c,
                                Json::obj([
                                    ("comp_s", c.report.comp_cost_per_epoch_s().to_json()),
                                    ("comm_s", c.report.comm_cost_per_epoch_s().to_json()),
                                    ("epoch_s", c.report.epoch_time_avg_s().to_json()),
                                ]),
                            )
                        })
                        .collect(),
                ),
                MetricKind::Accuracy => Json::Arr(
                    self.cells
                        .iter()
                        .map(|c| cell_entry(c, c.report.final_test_accuracy.to_json()))
                        .collect(),
                ),
                MetricKind::TimeToAccuracy => {
                    let target = self
                        .cells
                        .iter()
                        .map(|c| c.report.final_test_accuracy)
                        .fold(f64::INFINITY, f64::min)
                        * 0.98;
                    Json::obj([
                        ("accuracy_target", target.to_json()),
                        (
                            "seconds",
                            Json::Arr(
                                self.cells
                                    .iter()
                                    .map(|c| {
                                        cell_entry(c, time_to_accuracy(&c.report, target).to_json())
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                }
                MetricKind::Straggler => Json::Arr(
                    self.cells
                        .iter()
                        .map(|c| {
                            let straggler = c
                                .report
                                .per_node
                                .iter()
                                .map(|x| if x.epochs > 0.0 { x.clock_s / x.epochs } else { 0.0 })
                                .fold(0.0f64, f64::max);
                            cell_entry(c, straggler.to_json())
                        })
                        .collect(),
                ),
                MetricKind::IterationTime => iteration_time_summary(),
            };
            entries.push((metric.name().to_string(), value));
        }
        Json::Obj(entries)
    }
}

fn cell_entry(c: &CellResult, value: Json) -> Json {
    Json::obj([
        ("arm", Json::Str(c.label.clone())),
        ("seed", c.seed.to_json()),
        ("value", value),
    ])
}

/// Seconds for the averaged model to first reach `target` test accuracy.
pub fn time_to_accuracy(report: &RunReport, target: f64) -> Option<f64> {
    report
        .samples
        .iter()
        .find(|s| s.test_accuracy.is_some_and(|a| a >= target))
        .map(|s| s.time_s)
}

/// The Fig. 3 timing identity: intra- vs inter-machine iteration time per
/// model profile, computed from the calibrated link presets (no training).
pub fn iteration_time_summary() -> Json {
    let intra = LinkQuality::intra_machine();
    let inter = LinkQuality::gbit_ethernet();
    Json::Arr(
        [ModelProfile::resnet18(), ModelProfile::vgg19()]
            .into_iter()
            .map(|p| {
                let c = p.compute_time(128);
                let bytes = p.param_bytes();
                let intra_s = ExecutionMode::Parallel.iteration_time(c, intra.transfer_time(bytes));
                let inter_s = ExecutionMode::Parallel.iteration_time(c, inter.transfer_time(bytes));
                Json::obj([
                    ("model", p.name.to_json()),
                    ("intra_s", intra_s.to_json()),
                    ("inter_s", inter_s.to_json()),
                    ("ratio", (inter_s / intra_s).to_json()),
                ])
            })
            .collect(),
    )
}

/// Default worker-thread count: the machine's parallelism, capped by the
/// cell count (a cell is one full training run — there is nothing smaller
/// to parallelise).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs every `(arm, seed)` cell of the spec on one thread, in grid order.
pub fn execute(spec: &ExperimentSpec) -> ExperimentResult {
    execute_with_threads(spec, 1)
}

/// Runs the spec's cells over `threads` scoped worker threads.
///
/// Determinism: each cell builds a fresh environment from the pure-data
/// scenario and owns its algorithm instance, so the result is independent
/// of scheduling; `threads = 1` and `threads = N` produce byte-identical
/// reports, in the same grid order.
pub fn execute_with_threads(spec: &ExperimentSpec, threads: usize) -> ExperimentResult {
    let seeds = spec.effective_seeds();
    let cells: Vec<(usize, u64)> = spec
        .arms
        .iter()
        .enumerate()
        .flat_map(|(a, _)| seeds.iter().map(move |&s| (a, s)))
        .collect();
    if cells.is_empty() {
        return ExperimentResult { spec: spec.clone(), cells: Vec::new() };
    }
    // Materialise the datasets once; cells share them via internal Arcs.
    let workload = spec.scenario.workload();
    let alpha = workload.optim.lr;

    let run_cell = |&(arm_idx, seed): &(usize, u64)| -> CellResult {
        let arm = &spec.arms[arm_idx];
        let mut scenario = spec.scenario.clone();
        scenario.cfg_mut().seed = seed;
        let mut algo = arm.instantiate(alpha);
        let mut env = scenario.build_env_with(workload.clone());
        let report = algo.run(&mut env);
        CellResult { arm: arm_idx, label: arm.label(), algorithm: arm.algorithm, seed, report }
    };

    let threads = threads.clamp(1, cells.len());
    let results: Vec<CellResult> = if threads == 1 {
        cells.iter().map(run_cell).collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<CellResult>>> = Mutex::new(vec![None; cells.len()]);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= cells.len() {
                        break;
                    }
                    let result = run_cell(&cells[i]);
                    slots.lock().expect("result mutex")[i] = Some(result);
                });
            }
        });
        slots
            .into_inner()
            .expect("result mutex")
            .into_iter()
            .map(|slot| slot.expect("every cell ran"))
            .collect()
    };
    ExperimentResult { spec: spec.clone(), cells: results }
}

/// Assembles the versioned artifact document for a set of executed
/// experiments.
pub fn artifact(results: &[ExperimentResult]) -> Json {
    Json::obj([
        ("schema", Json::Str(ARTIFACT_SCHEMA.into())),
        ("experiments", Json::Arr(results.iter().map(ExperimentResult::to_record).collect())),
    ])
}

/// Parses an artifact document back into `(spec, cells)` pairs, verifying
/// the schema tag. The derived `summary` block is not re-validated — it is
/// recomputable from the cells.
pub fn parse_artifact(doc: &Json) -> Result<Vec<ExperimentResult>, JsonError> {
    let schema = doc.field("schema")?.as_str()?;
    if schema != ARTIFACT_SCHEMA {
        return Err(JsonError::schema(format!(
            "unsupported artifact schema `{schema}` (expected `{ARTIFACT_SCHEMA}`)"
        )));
    }
    doc.field("experiments")?
        .as_arr()?
        .iter()
        .map(|record| {
            Ok(ExperimentResult {
                spec: ExperimentSpec::from_json(record.field("spec")?)?,
                cells: Vec::from_json(record.field("cells")?)?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Arm;
    use netmax_core::engine::Scenario;
    use netmax_ml::workload::WorkloadSpec;

    fn small_spec() -> ExperimentSpec {
        ExperimentSpec {
            name: "test/parallel".into(),
            group: "test".into(),
            title: "executor determinism fixture".into(),
            scenario: Scenario::builder()
                .workers(4)
                .workload(WorkloadSpec::convex_ridge(3))
                .max_epochs(1.0)
                .seed(9)
                .build(),
            arms: vec![
                Arm::new(AlgorithmKind::NetMax),
                Arm::new(AlgorithmKind::AdPsgd),
                Arm::new(AlgorithmKind::AllreduceSgd),
            ],
            seeds: vec![9, 10],
            metrics: vec![MetricKind::TimeToTarget, MetricKind::Accuracy],
        }
    }

    #[test]
    fn parallel_execution_is_byte_identical_to_sequential() {
        let spec = small_spec();
        let sequential = execute_with_threads(&spec, 1);
        let parallel = execute_with_threads(&spec, 4);
        assert_eq!(sequential.cells.len(), 6);
        let (a, b) = (artifact(&[sequential]), artifact(&[parallel]));
        assert_eq!(a.to_string(), b.to_string(), "thread count must not change results");
    }

    #[test]
    fn artifact_round_trips_through_json() {
        let spec = small_spec();
        let result = execute_with_threads(&spec, 2);
        let doc = artifact(std::slice::from_ref(&result));
        let text = doc.pretty();
        let back = parse_artifact(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].spec, result.spec);
        assert_eq!(back[0].cells.len(), result.cells.len());
        for (x, y) in back[0].cells.iter().zip(&result.cells) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.report.global_steps, y.report.global_steps);
            assert_eq!(x.report.samples.len(), y.report.samples.len());
        }
    }

    #[test]
    fn artifact_schema_is_enforced() {
        let doc = Json::parse(r#"{"schema":"other/v9","experiments":[]}"#).unwrap();
        assert!(parse_artifact(&doc).is_err());
    }

    #[test]
    fn seeds_produce_distinct_runs() {
        let spec = small_spec();
        let result = execute(&spec);
        let netmax: Vec<_> = result.arm_cells(0).collect();
        assert_eq!(netmax.len(), 2);
        assert_ne!(
            netmax[0].report.final_train_loss, netmax[1].report.final_train_loss,
            "different seeds must not produce identical trajectories"
        );
    }
}
