//! The experiment executor: one `(arm, seed)` cell per task, optionally
//! fanned out over a scoped thread pool.
//!
//! Every cell is fully independent — it builds its own [`Environment`]
//! from the (pure-data) scenario and drives its own algorithm instance
//! through a step-wise [`Session`] — and every run is deterministic via
//! the engine's per-node RNG streams, so the parallel executor produces
//! *byte-identical* reports to the sequential one; only wall-clock
//! changes. The datasets are instantiated once per experiment and shared
//! across cells through the workload's internal `Arc`s.
//!
//! Executing through sessions buys the runner three capabilities the old
//! blocking calls could not offer:
//!
//! * **progress callbacks** — [`RunOptions::progress`] fires on every
//!   recorded sample of every cell, from whichever worker thread runs it;
//! * **real-time deadlines** — [`RunOptions::cell_deadline`] finishes a
//!   cell early (with a truthful partial report) when its real wall-clock
//!   budget expires;
//! * **suspend/resume** — [`execute_suspended`] checkpoints every cell
//!   mid-run into a versioned `netmax-bench/checkpoint/v1` document and
//!   [`resume`] continues it, byte-identical to an uninterrupted run.
//!
//! [`Environment`]: netmax_core::engine::Environment

use crate::spec::{ExperimentSpec, MetricKind};
use netmax_core::engine::{
    decode_session_v3, encode_session_v3, AlgorithmKind, ExecutionMode, RunReport, Session,
    SessionError, StepEvent,
};
use netmax_json::{codec, CodecError, FromJson, Json, JsonError, ToJson};
use netmax_ml::profile::ModelProfile;
use netmax_net::LinkQuality;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Schema tag written into every artifact; bump on breaking changes.
pub const ARTIFACT_SCHEMA: &str = "netmax-bench/run-report/v1";

/// Schema tag of suspended-experiment checkpoint documents.
pub const CHECKPOINT_SCHEMA: &str = "netmax-bench/checkpoint/v1";

/// One `(arm, seed)` cell's outcome.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Index into the spec's arm list.
    pub arm: usize,
    /// The arm's display label.
    pub label: String,
    /// The arm's algorithm.
    pub algorithm: AlgorithmKind,
    /// The training seed this cell ran with.
    pub seed: u64,
    /// The full recorded run.
    pub report: RunReport,
}

impl ToJson for CellResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("arm", self.arm.to_json()),
            ("label", self.label.to_json()),
            ("algorithm", self.algorithm.to_json()),
            ("seed", self.seed.to_json()),
            ("report", self.report.to_json()),
        ])
    }
}

impl FromJson for CellResult {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            arm: usize::from_json(v.field("arm")?)?,
            label: String::from_json(v.field("label")?)?,
            algorithm: AlgorithmKind::from_json(v.field("algorithm")?)?,
            seed: u64::from_json(v.field("seed")?)?,
            report: RunReport::from_json(v.field("report")?)?,
        })
    }
}

/// All cells of one executed experiment, in `(arm, seed)` grid order.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The spec that produced these cells.
    pub spec: ExperimentSpec,
    /// One result per cell, arms outermost, seeds innermost.
    pub cells: Vec<CellResult>,
}

impl ExperimentResult {
    /// The cells of one arm (by index), across seeds.
    pub fn arm_cells(&self, arm: usize) -> impl Iterator<Item = &CellResult> {
        self.cells.iter().filter(move |c| c.arm == arm)
    }

    /// The first cell matching an algorithm (convenience for adapters).
    pub fn cell(&self, kind: AlgorithmKind) -> Option<&CellResult> {
        self.cells.iter().find(|c| c.algorithm == kind)
    }

    /// Per-experiment record for the JSON artifact: spec, numerics tier
    /// (hoisted from the spec's scenario for quick artifact filtering),
    /// summary (per the spec's metric list), and every cell's full report.
    pub fn to_record(&self) -> Json {
        Json::obj([
            ("spec", self.spec.to_json()),
            ("tier", self.spec.scenario.cfg().tier.to_json()),
            ("summary", self.summary()),
            ("cells", self.cells.to_json()),
        ])
    }

    /// Summary metrics as JSON (one entry per requested [`MetricKind`]).
    pub fn summary(&self) -> Json {
        let mut entries: Vec<(String, Json)> = Vec::new();
        for metric in &self.spec.metrics {
            let value = match metric {
                MetricKind::TimeToTarget => {
                    let target = crate::common::common_loss_target_of(
                        self.cells.iter().map(|c| &c.report),
                    );
                    Json::obj([
                        ("loss_target", target.to_json()),
                        (
                            "seconds",
                            Json::Arr(
                                self.cells
                                    .iter()
                                    .map(|c| {
                                        cell_entry(c, c.report.time_to_loss(target).to_json())
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                }
                MetricKind::EpochCost => Json::Arr(
                    self.cells
                        .iter()
                        .map(|c| {
                            cell_entry(
                                c,
                                Json::obj([
                                    ("comp_s", c.report.comp_cost_per_epoch_s().to_json()),
                                    ("comm_s", c.report.comm_cost_per_epoch_s().to_json()),
                                    ("epoch_s", c.report.epoch_time_avg_s().to_json()),
                                ]),
                            )
                        })
                        .collect(),
                ),
                MetricKind::Accuracy => Json::Arr(
                    self.cells
                        .iter()
                        .map(|c| cell_entry(c, c.report.final_test_accuracy.to_json()))
                        .collect(),
                ),
                MetricKind::TimeToAccuracy => {
                    let target = self
                        .cells
                        .iter()
                        .map(|c| c.report.final_test_accuracy)
                        .fold(f64::INFINITY, f64::min)
                        * 0.98;
                    Json::obj([
                        ("accuracy_target", target.to_json()),
                        (
                            "seconds",
                            Json::Arr(
                                self.cells
                                    .iter()
                                    .map(|c| {
                                        cell_entry(c, time_to_accuracy(&c.report, target).to_json())
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                }
                MetricKind::Straggler => Json::Arr(
                    self.cells
                        .iter()
                        .map(|c| {
                            let straggler = c
                                .report
                                .per_node
                                .iter()
                                .map(|x| if x.epochs > 0.0 { x.clock_s / x.epochs } else { 0.0 })
                                .fold(0.0f64, f64::max);
                            cell_entry(c, straggler.to_json())
                        })
                        .collect(),
                ),
                MetricKind::IterationTime => iteration_time_summary(),
            };
            entries.push((metric.name().to_string(), value));
        }
        Json::Obj(entries)
    }
}

fn cell_entry(c: &CellResult, value: Json) -> Json {
    Json::obj([
        ("arm", Json::Str(c.label.clone())),
        ("seed", c.seed.to_json()),
        ("value", value),
    ])
}

/// Seconds for the averaged model to first reach `target` test accuracy.
pub fn time_to_accuracy(report: &RunReport, target: f64) -> Option<f64> {
    report
        .samples
        .iter()
        .find(|s| s.test_accuracy.is_some_and(|a| a >= target))
        .map(|s| s.time_s)
}

/// The Fig. 3 timing identity: intra- vs inter-machine iteration time per
/// model profile, computed from the calibrated link presets (no training).
pub fn iteration_time_summary() -> Json {
    let intra = LinkQuality::intra_machine();
    let inter = LinkQuality::gbit_ethernet();
    Json::Arr(
        [ModelProfile::resnet18(), ModelProfile::vgg19()]
            .into_iter()
            .map(|p| {
                let c = p.compute_time(128);
                let bytes = p.param_bytes();
                let intra_s = ExecutionMode::Parallel.iteration_time(c, intra.transfer_time(bytes));
                let inter_s = ExecutionMode::Parallel.iteration_time(c, inter.transfer_time(bytes));
                Json::obj([
                    ("model", p.name.to_json()),
                    ("intra_s", intra_s.to_json()),
                    ("inter_s", inter_s.to_json()),
                    ("ratio", (inter_s / intra_s).to_json()),
                ])
            })
            .collect(),
    )
}

/// Default worker-thread count: the machine's parallelism, capped by the
/// cell count (a cell is one full training run — there is nothing smaller
/// to parallelise).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Live progress of one cell, handed to [`RunOptions::progress`] at every
/// recorded sample.
#[derive(Debug, Clone, Copy)]
pub struct CellProgress<'a> {
    /// The experiment name.
    pub experiment: &'a str,
    /// The cell's arm label.
    pub label: &'a str,
    /// The cell's training seed.
    pub seed: u64,
    /// Global steps completed so far.
    pub global_step: u64,
    /// Mean fractional epoch so far.
    pub epoch: f64,
    /// Simulated wall-clock so far (seconds).
    pub sim_time_s: f64,
    /// The sample's training loss.
    pub train_loss: f64,
}

/// A progress callback; called from worker threads, so it must be `Sync`.
pub type ProgressFn<'a> = dyn Fn(CellProgress<'_>) + Sync + 'a;

/// Execution options for [`try_execute`] / [`resume`].
#[derive(Default, Clone, Copy)]
pub struct RunOptions<'p> {
    /// Worker threads (0 ⇒ [`default_threads`]).
    pub threads: usize,
    /// Called after every recorded sample of every cell.
    pub progress: Option<&'p ProgressFn<'p>>,
    /// Real wall-clock budget per cell: when it expires the cell's session
    /// finishes immediately and reports the partial run. **Breaks
    /// cross-run determinism** (the cut point depends on machine speed) —
    /// off by default, meant for smoke runs under CI time limits.
    pub cell_deadline: Option<Duration>,
}

/// Runs every `(arm, seed)` cell of the spec on one thread, in grid order.
///
/// # Panics
/// Panics if the spec fails session validation; [`try_execute`] surfaces
/// the typed error instead.
pub fn execute(spec: &ExperimentSpec) -> ExperimentResult {
    execute_with_threads(spec, 1)
}

/// Runs the spec's cells over `threads` scoped worker threads.
///
/// Determinism: each cell builds a fresh environment from the pure-data
/// scenario and owns its algorithm instance, so the result is independent
/// of scheduling; `threads = 1` and `threads = N` produce byte-identical
/// reports, in the same grid order.
///
/// # Panics
/// Panics if the spec fails session validation; [`try_execute`] surfaces
/// the typed error instead.
pub fn execute_with_threads(spec: &ExperimentSpec, threads: usize) -> ExperimentResult {
    try_execute(spec, &RunOptions { threads, ..RunOptions::default() })
        .unwrap_or_else(|e| panic!("experiment `{}` failed validation: {e}", spec.name))
}

/// The `(arm, seed)` grid of a spec, arms outermost.
fn grid(spec: &ExperimentSpec) -> Vec<(usize, u64)> {
    let seeds = spec.effective_seeds();
    spec.arms
        .iter()
        .enumerate()
        .flat_map(|(a, _)| seeds.iter().map(move |&s| (a, s)))
        .collect()
}

/// Fans `tasks` out over `threads` scoped workers, preserving task order
/// in the result vector. `run` must be deterministic per task for the
/// executor's byte-identity guarantee to hold.
fn fan_out<T: Sync, R: Send>(tasks: &[T], threads: usize, run: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let threads = threads.clamp(1, tasks.len().max(1));
    if threads == 1 {
        return tasks.iter().map(run).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..tasks.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= tasks.len() {
                    break;
                }
                let result = run(&tasks[i]);
                // Poisoning can only mean another worker panicked; the
                // slot writes are independent, so recover the guard and
                // keep filling — `scope` re-raises the panic afterwards.
                let mut guard =
                    slots.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                guard[i] = Some(result);
            });
        }
    });
    let out: Vec<R> = slots
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .into_iter()
        .flatten()
        .collect();
    // Every index < tasks.len() is claimed exactly once and a panicking
    // worker propagates through `scope`, so all slots are filled; the
    // assert keeps a silent result/task misalignment impossible.
    assert_eq!(out.len(), tasks.len(), "fan_out lost a task result");
    out
}

/// Drives one session to completion, streaming every recorded sample —
/// including the forced final one — to `progress` and honouring the
/// optional real-time deadline.
fn drive_session(
    session: &mut Session<'_>,
    experiment: &str,
    label: &str,
    seed: u64,
    opts: &RunOptions<'_>,
) -> RunReport {
    let stream = |sample: &netmax_core::engine::Sample| {
        if let Some(progress) = opts.progress {
            progress(CellProgress {
                experiment,
                label,
                seed,
                global_step: sample.global_step,
                epoch: sample.epoch,
                sim_time_s: sample.time_s,
                train_loss: sample.train_loss,
            });
        }
    };
    // The deadline is enforced *inside* the session's step loop, before
    // every driver advance — a round-granular driver can overshoot by at
    // most the one event in flight when the budget expires, never by
    // further rounds.
    if let Some(d) = opts.cell_deadline {
        session.set_deadline(Instant::now() + d);
    }
    let report = loop {
        match session.step() {
            StepEvent::Sampled { sample } => stream(&sample),
            StepEvent::Finished { report } => break report,
            _ => {}
        }
    };
    // The finishing sample is taken inside `finish` (it carries the final
    // test evaluation) and is not delivered as a `Sampled` event.
    if let Some(last) = report.samples.last() {
        stream(last);
    }
    report
}

/// Runs the spec's cells through step-wise sessions with the given
/// options, surfacing configuration problems as typed errors before any
/// cell starts.
pub fn try_execute(
    spec: &ExperimentSpec,
    opts: &RunOptions<'_>,
) -> Result<ExperimentResult, SessionError> {
    let cells = grid(spec);
    if cells.is_empty() {
        return Ok(ExperimentResult { spec: spec.clone(), cells: Vec::new() });
    }
    // Materialise the datasets once; cells share them via internal Arcs.
    let workload = spec.scenario.workload();
    let alpha = workload.optim.lr;
    validate_cells(spec, &cells, &workload, alpha)?;

    let threads = if opts.threads == 0 { default_threads() } else { opts.threads };
    // Construction was validated up front, but the error stays typed all
    // the way through rather than being unwrapped on a worker thread.
    let results = fan_out(&cells, threads, |&(arm_idx, seed)| -> Result<CellResult, SessionError> {
        let arm = &spec.arms[arm_idx];
        let mut scenario = spec.scenario.clone();
        scenario.cfg_mut().seed = seed;
        let mut algo = arm.instantiate(alpha);
        let mut env = scenario.build_env_with(workload.clone());
        let mut session = Session::new(&mut env, algo.driver())?;
        let label = arm.label();
        let report = drive_session(&mut session, &spec.name, &label, seed, opts);
        Ok(CellResult { arm: arm_idx, label, algorithm: arm.algorithm, seed, report })
    });
    let cells = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(ExperimentResult { spec: spec.clone(), cells })
}

/// Validates every cell's session construction up front — one cheap env
/// build, every arm instantiated once — so a bad spec fails before any
/// training work.
fn validate_cells(
    spec: &ExperimentSpec,
    cells: &[(usize, u64)],
    workload: &netmax_ml::workload::Workload,
    alpha: f64,
) -> Result<(), SessionError> {
    let Some(&(_, first_seed)) = cells.first() else {
        return Ok(());
    };
    let mut scenario = spec.scenario.clone();
    scenario.cfg_mut().seed = first_seed;
    let env = scenario.build_env_with(workload.clone());
    env.cfg.validate()?;
    env.cfg.effective_stop().validate()?;
    for arm in &spec.arms {
        let mut algo = arm.instantiate(alpha);
        algo.driver().validate(&env)?;
    }
    Ok(())
}

/// One cell of a suspended experiment: its grid coordinates plus the full
/// session checkpoint.
#[derive(Debug, Clone)]
pub struct SuspendedCell {
    /// Index into the spec's arm list.
    pub arm: usize,
    /// The arm's display label.
    pub label: String,
    /// The arm's algorithm.
    pub algorithm: AlgorithmKind,
    /// The training seed this cell ran with.
    pub seed: u64,
    /// The `netmax-core/session-checkpoint/v1` document.
    pub session: Json,
}

/// An experiment checkpointed mid-run: the exact spec plus one suspended
/// session per cell.
#[derive(Debug, Clone)]
pub struct SuspendedExperiment {
    /// The spec that produced these cells.
    pub spec: ExperimentSpec,
    /// One suspended session per cell, in `(arm, seed)` grid order.
    pub cells: Vec<SuspendedCell>,
}

/// Runs every cell until it has taken at least `suspend_after_steps`
/// global steps (or finished first), then checkpoints it. The returned
/// document, resumed with [`resume`], yields reports byte-identical to an
/// uninterrupted [`execute_with_threads`] run.
pub fn execute_suspended(
    spec: &ExperimentSpec,
    threads: usize,
    suspend_after_steps: u64,
) -> Result<SuspendedExperiment, SessionError> {
    let cells = grid(spec);
    let workload = spec.scenario.workload();
    let alpha = workload.optim.lr;
    validate_cells(spec, &cells, &workload, alpha)?;

    let threads = if threads == 0 { default_threads() } else { threads };
    let suspended =
        fan_out(&cells, threads, |&(arm_idx, seed)| -> Result<SuspendedCell, SessionError> {
            let arm = &spec.arms[arm_idx];
            let mut scenario = spec.scenario.clone();
            scenario.cfg_mut().seed = seed;
            let mut algo = arm.instantiate(alpha);
            let mut env = scenario.build_env_with(workload.clone());
            let mut session = Session::new(&mut env, algo.driver())?;
            while session.env().global_step < suspend_after_steps && !session.is_finished() {
                session.step();
            }
            Ok(SuspendedCell {
                arm: arm_idx,
                label: arm.label(),
                algorithm: arm.algorithm,
                seed,
                session: session.checkpoint(),
            })
        });
    let cells = suspended.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(SuspendedExperiment { spec: spec.clone(), cells })
}

/// Resumes a suspended experiment to completion.
pub fn resume(
    suspended: &SuspendedExperiment,
    opts: &RunOptions<'_>,
) -> Result<ExperimentResult, SessionError> {
    let spec = &suspended.spec;
    let workload = spec.scenario.workload();
    let alpha = workload.optim.lr;

    let threads = if opts.threads == 0 { default_threads() } else { opts.threads };
    // Each cell restores its own session (driver-state shapes differ per
    // arm), so defects are surfaced per cell as typed errors — never as a
    // worker-thread panic.
    let results = fan_out(
        &suspended.cells,
        threads,
        |cell| -> Result<CellResult, SessionError> {
            let arm = spec.arms.get(cell.arm).ok_or_else(|| {
                SessionError::BadCheckpoint(format!(
                    "cell references arm {} not in spec",
                    cell.arm
                ))
            })?;
            let mut scenario = spec.scenario.clone();
            scenario.cfg_mut().seed = cell.seed;
            let mut algo = arm.instantiate(alpha);
            let mut env = scenario.build_env_with(workload.clone());
            let mut session = Session::restore(&mut env, algo.driver(), &cell.session)?;
            let report = drive_session(&mut session, &spec.name, &cell.label, cell.seed, opts);
            Ok(CellResult {
                arm: cell.arm,
                label: cell.label.clone(),
                algorithm: cell.algorithm,
                seed: cell.seed,
                report,
            })
        },
    );
    let cells = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(ExperimentResult { spec: spec.clone(), cells })
}

/// Assembles the versioned `netmax-bench/checkpoint/v1` document for one
/// suspended experiment.
pub fn checkpoint_doc(suspended: &SuspendedExperiment) -> Json {
    Json::obj([
        ("schema", Json::Str(CHECKPOINT_SCHEMA.into())),
        ("spec", suspended.spec.to_json()),
        (
            "cells",
            Json::Arr(
                suspended
                    .cells
                    .iter()
                    .map(|c| {
                        Json::obj([
                            ("arm", c.arm.to_json()),
                            ("label", c.label.to_json()),
                            ("algorithm", c.algorithm.to_json()),
                            ("seed", c.seed.to_json()),
                            ("session", c.session.clone()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Parses a `netmax-bench/checkpoint/v1` document, verifying the schema
/// tag.
pub fn parse_checkpoint(doc: &Json) -> Result<SuspendedExperiment, JsonError> {
    let schema = doc.field("schema")?.as_str()?;
    if schema != CHECKPOINT_SCHEMA {
        return Err(JsonError::schema(format!(
            "unsupported checkpoint schema `{schema}` (expected `{CHECKPOINT_SCHEMA}`)"
        )));
    }
    Ok(SuspendedExperiment {
        spec: ExperimentSpec::from_json(doc.field("spec")?)?,
        cells: doc
            .field("cells")?
            .as_arr()?
            .iter()
            .map(|c| {
                Ok(SuspendedCell {
                    arm: usize::from_json(c.field("arm")?)?,
                    label: String::from_json(c.field("label")?)?,
                    algorithm: AlgorithmKind::from_json(c.field("algorithm")?)?,
                    seed: u64::from_json(c.field("seed")?)?,
                    session: c.field("session")?.clone(),
                })
            })
            .collect::<Result<_, JsonError>>()?,
    })
}

/// Renders a binary-codec failure as the schema-error type the rest of
/// the checkpoint plumbing speaks.
fn codec_err(e: CodecError) -> JsonError {
    JsonError::schema(format!("binary container: {e}"))
}

/// The numerics tier recorded in an embedded session document
/// (pre-tier documents were all strict).
fn session_tier(session: &Json) -> String {
    match session.get("tier") {
        None | Some(Json::Null) => "strict".to_string(),
        Some(Json::Str(s)) => s.clone(),
        Some(other) => other.to_string(),
    }
}

/// Builds one cell's summary row for the binary container's `meta`
/// section (everything `show` reports, so summarizing never has to
/// decode the node payloads).
fn cell_meta(c: &SuspendedCell) -> Result<Json, JsonError> {
    Ok(Json::obj([
        ("arm", c.arm.to_json()),
        ("label", c.label.to_json()),
        ("algorithm", c.algorithm.to_json()),
        ("seed", c.seed.to_json()),
        ("global_step", c.session.field("env")?.field("global_step")?.clone()),
        ("tier", Json::Str(session_tier(&c.session))),
        ("session_schema", Json::Str(c.session.field("schema")?.as_str()?.to_string())),
    ]))
}

/// Serializes a suspended experiment as a binary container: the
/// `netmax-bench/checkpoint/v1` schema tag, a `meta` section carrying the
/// spec plus per-cell summary rows, and one `session.N` section per cell
/// holding the cell's session as `session-checkpoint/v3` bytes. The same
/// logical document as [`checkpoint_doc`] — [`parse_checkpoint_bytes`]
/// reconstructs an identical [`SuspendedExperiment`].
pub fn checkpoint_bytes(suspended: &SuspendedExperiment) -> Result<Vec<u8>, JsonError> {
    let meta = Json::obj([
        ("schema", Json::Str(CHECKPOINT_SCHEMA.into())),
        ("spec", suspended.spec.to_json()),
        (
            "cells",
            Json::Arr(
                suspended.cells.iter().map(cell_meta).collect::<Result<Vec<_>, JsonError>>()?,
            ),
        ),
    ]);
    let mut meta_bytes = Vec::new();
    codec::encode_value(&mut meta_bytes, &meta).map_err(codec_err)?;
    let sessions = suspended
        .cells
        .iter()
        .map(|c| encode_session_v3(&c.session).map_err(codec_err))
        .collect::<Result<Vec<_>, JsonError>>()?;
    let names: Vec<String> = (0..sessions.len()).map(|i| format!("session.{i}")).collect();
    let mut sections: Vec<(&str, &[u8])> = vec![("meta", &meta_bytes)];
    sections
        .extend(names.iter().map(String::as_str).zip(sessions.iter().map(Vec::as_slice)));
    let mut out = Vec::new();
    codec::write_document(&mut out, CHECKPOINT_SCHEMA, &sections).map_err(codec_err)?;
    Ok(out)
}

/// Parses a binary checkpoint container written by [`checkpoint_bytes`],
/// verifying the schema tag; every cell's session decodes back to its v2
/// logical document.
pub fn parse_checkpoint_bytes(bytes: &[u8]) -> Result<SuspendedExperiment, JsonError> {
    let doc = codec::read_document(bytes).map_err(codec_err)?;
    if doc.schema != CHECKPOINT_SCHEMA {
        return Err(JsonError::schema(format!(
            "unsupported checkpoint schema `{}` (expected `{CHECKPOINT_SCHEMA}`)",
            doc.schema
        )));
    }
    let meta = codec::decode_value(doc.require("meta").map_err(codec_err)?).map_err(codec_err)?;
    let cells = meta
        .field("cells")?
        .as_arr()?
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let payload = doc.require(&format!("session.{i}")).map_err(codec_err)?;
            Ok(SuspendedCell {
                arm: usize::from_json(c.field("arm")?)?,
                label: String::from_json(c.field("label")?)?,
                algorithm: AlgorithmKind::from_json(c.field("algorithm")?)?,
                seed: u64::from_json(c.field("seed")?)?,
                session: decode_session_v3(payload).map_err(codec_err)?,
            })
        })
        .collect::<Result<_, JsonError>>()?;
    Ok(SuspendedExperiment { spec: ExperimentSpec::from_json(meta.field("spec")?)?, cells })
}

/// Typed outcome of `netmax-bench show` document dispatch: either a run
/// artifact or a suspended-experiment checkpoint.
#[derive(Debug, Clone)]
pub enum ShownDoc {
    /// A `netmax-bench/run-report/v1` artifact.
    RunReport(Vec<ExperimentResult>),
    /// A `netmax-bench/checkpoint/v1` document, summarized per cell.
    Checkpoint(CheckpointSummary),
}

/// Summary of one suspended experiment's checkpoint document.
#[derive(Debug, Clone)]
pub struct CheckpointSummary {
    /// The suspended experiment's name.
    pub experiment: String,
    /// One row per suspended cell.
    pub cells: Vec<CheckpointCellSummary>,
}

/// One suspended cell: who was training, how far it got, and which
/// session-checkpoint schema its state is stored under (v1 documents
/// from pre-fault runs remain loadable alongside v2).
#[derive(Debug, Clone)]
pub struct CheckpointCellSummary {
    /// The arm's display label.
    pub label: String,
    /// The cell's algorithm.
    pub algorithm: AlgorithmKind,
    /// The cell's training seed.
    pub seed: u64,
    /// Global steps completed at suspension.
    pub global_step: u64,
    /// The numerics tier the cell was running under.
    pub tier: String,
    /// The embedded session document's schema tag.
    pub session_schema: String,
}

/// Typed errors from [`summarize_doc`]: a document whose schema tag is
/// not one this tool understands is distinguished from one that is
/// structurally broken.
#[derive(Debug, Clone)]
pub enum ShowError {
    /// The document carries a schema tag `show` does not understand.
    UnknownSchema(String),
    /// The document is malformed under its declared schema.
    Malformed(JsonError),
}

impl std::fmt::Display for ShowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShowError::UnknownSchema(s) => write!(
                f,
                "unknown schema `{s}` (expected `{ARTIFACT_SCHEMA}` or `{CHECKPOINT_SCHEMA}`)"
            ),
            ShowError::Malformed(e) => write!(f, "malformed document: {e}"),
        }
    }
}

impl std::error::Error for ShowError {}

impl From<JsonError> for ShowError {
    fn from(e: JsonError) -> Self {
        ShowError::Malformed(e)
    }
}

/// Dispatches a JSON document by its `schema` tag: run artifacts parse
/// fully, checkpoint documents are summarized per cell (algorithm, seed,
/// global step), anything else is a typed
/// [`ShowError::UnknownSchema`].
pub fn summarize_doc(doc: &Json) -> Result<ShownDoc, ShowError> {
    let schema = doc.field("schema")?.as_str()?;
    match schema {
        ARTIFACT_SCHEMA => Ok(ShownDoc::RunReport(parse_artifact(doc)?)),
        CHECKPOINT_SCHEMA => {
            let suspended = parse_checkpoint(doc)?;
            let cells = suspended
                .cells
                .iter()
                .map(|c| {
                    Ok(CheckpointCellSummary {
                        label: c.label.clone(),
                        algorithm: c.algorithm,
                        seed: c.seed,
                        global_step: u64::from_json(
                            c.session.field("env")?.field("global_step")?,
                        )?,
                        tier: session_tier(&c.session),
                        session_schema: c.session.field("schema")?.as_str()?.to_string(),
                    })
                })
                .collect::<Result<_, JsonError>>()?;
            Ok(ShownDoc::Checkpoint(CheckpointSummary {
                experiment: suspended.spec.name.clone(),
                cells,
            }))
        }
        other => Err(ShowError::UnknownSchema(other.to_string())),
    }
}

/// Dispatches raw on-disk bytes for `netmax-bench show`: binary
/// containers (sniffed by magic) are summarized from their `meta`
/// section alone — the per-cell session payloads stay undecoded — and
/// anything else is treated as UTF-8 JSON and routed through
/// [`summarize_doc`]. A binary document under an unrecognized schema tag
/// is a typed [`ShowError::UnknownSchema`], exactly like its JSON twin.
pub fn summarize_bytes(bytes: &[u8]) -> Result<ShownDoc, ShowError> {
    if !codec::is_binary(bytes) {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| ShowError::Malformed(JsonError::schema("not UTF-8 JSON".to_string())))?;
        return summarize_doc(&Json::parse(text)?);
    }
    let doc = codec::read_document(bytes).map_err(|e| ShowError::Malformed(codec_err(e)))?;
    if doc.schema != CHECKPOINT_SCHEMA {
        return Err(ShowError::UnknownSchema(doc.schema.to_string()));
    }
    let meta = codec::decode_value(doc.require("meta").map_err(|e| ShowError::Malformed(codec_err(e)))?)
        .map_err(|e| ShowError::Malformed(codec_err(e)))?;
    let cells = meta
        .field("cells")?
        .as_arr()?
        .iter()
        .map(|c| {
            Ok(CheckpointCellSummary {
                label: String::from_json(c.field("label")?)?,
                algorithm: AlgorithmKind::from_json(c.field("algorithm")?)?,
                seed: u64::from_json(c.field("seed")?)?,
                global_step: u64::from_json(c.field("global_step")?)?,
                tier: String::from_json(c.field("tier")?)?,
                session_schema: String::from_json(c.field("session_schema")?)?,
            })
        })
        .collect::<Result<_, JsonError>>()?;
    Ok(ShownDoc::Checkpoint(CheckpointSummary {
        experiment: String::from_json(meta.field("spec")?.field("name")?)?,
        cells,
    }))
}

/// Assembles the versioned artifact document for a set of executed
/// experiments.
pub fn artifact(results: &[ExperimentResult]) -> Json {
    Json::obj([
        ("schema", Json::Str(ARTIFACT_SCHEMA.into())),
        ("experiments", Json::Arr(results.iter().map(ExperimentResult::to_record).collect())),
    ])
}

/// Parses an artifact document back into `(spec, cells)` pairs, verifying
/// the schema tag. The derived `summary` block is not re-validated — it is
/// recomputable from the cells.
pub fn parse_artifact(doc: &Json) -> Result<Vec<ExperimentResult>, JsonError> {
    let schema = doc.field("schema")?.as_str()?;
    if schema != ARTIFACT_SCHEMA {
        return Err(JsonError::schema(format!(
            "unsupported artifact schema `{schema}` (expected `{ARTIFACT_SCHEMA}`)"
        )));
    }
    doc.field("experiments")?
        .as_arr()?
        .iter()
        .map(|record| {
            Ok(ExperimentResult {
                spec: ExperimentSpec::from_json(record.field("spec")?)?,
                cells: Vec::from_json(record.field("cells")?)?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Arm;
    use netmax_core::engine::Scenario;
    use netmax_ml::workload::WorkloadSpec;

    fn small_spec() -> ExperimentSpec {
        ExperimentSpec {
            name: "test/parallel".into(),
            group: "test".into(),
            title: "executor determinism fixture".into(),
            scenario: Scenario::builder()
                .workers(4)
                .workload(WorkloadSpec::convex_ridge(3))
                .max_epochs(1.0)
                .seed(9)
                .build(),
            arms: vec![
                Arm::new(AlgorithmKind::NetMax),
                Arm::new(AlgorithmKind::AdPsgd),
                Arm::new(AlgorithmKind::AllreduceSgd),
            ],
            seeds: vec![9, 10],
            metrics: vec![MetricKind::TimeToTarget, MetricKind::Accuracy],
        }
    }

    #[test]
    fn parallel_execution_is_byte_identical_to_sequential() {
        let spec = small_spec();
        let sequential = execute_with_threads(&spec, 1);
        let parallel = execute_with_threads(&spec, 4);
        assert_eq!(sequential.cells.len(), 6);
        let (a, b) = (artifact(&[sequential]), artifact(&[parallel]));
        assert_eq!(a.to_string(), b.to_string(), "thread count must not change results");
    }

    #[test]
    fn artifact_round_trips_through_json() {
        let spec = small_spec();
        let result = execute_with_threads(&spec, 2);
        let doc = artifact(std::slice::from_ref(&result));
        let text = doc.pretty();
        let back = parse_artifact(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].spec, result.spec);
        assert_eq!(back[0].cells.len(), result.cells.len());
        for (x, y) in back[0].cells.iter().zip(&result.cells) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.report.global_steps, y.report.global_steps);
            assert_eq!(x.report.samples.len(), y.report.samples.len());
        }
    }

    #[test]
    fn artifact_schema_is_enforced() {
        let doc = Json::parse(r#"{"schema":"other/v9","experiments":[]}"#).unwrap();
        assert!(parse_artifact(&doc).is_err());
    }

    #[test]
    fn seeds_produce_distinct_runs() {
        let spec = small_spec();
        let result = execute(&spec);
        let netmax: Vec<_> = result.arm_cells(0).collect();
        assert_eq!(netmax.len(), 2);
        assert_ne!(
            netmax[0].report.final_train_loss, netmax[1].report.final_train_loss,
            "different seeds must not produce identical trajectories"
        );
    }

    #[test]
    fn progress_callback_streams_samples() {
        use std::sync::atomic::AtomicU64;
        let mut spec = small_spec();
        spec.arms.truncate(1);
        spec.seeds.truncate(1);
        let samples = AtomicU64::new(0);
        let progress = |p: CellProgress<'_>| {
            assert_eq!(p.experiment, "test/parallel");
            assert!(p.global_step > 0);
            samples.fetch_add(1, Ordering::Relaxed);
        };
        let result = try_execute(
            &spec,
            &RunOptions { threads: 1, progress: Some(&progress), cell_deadline: None },
        )
        .unwrap();
        let recorded = result.cells[0].report.samples.len() as u64;
        // Every recorded sample, the forced final one included, streams
        // through the callback.
        assert_eq!(samples.load(Ordering::Relaxed), recorded);
    }

    #[test]
    fn suspend_resume_is_byte_identical_through_the_checkpoint_file() {
        let spec = small_spec();
        let direct = execute_with_threads(&spec, 2);

        let suspended = execute_suspended(&spec, 2, 40).unwrap();
        let doc = checkpoint_doc(&suspended);
        let text = doc.pretty();
        let parsed = parse_checkpoint(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed.spec, spec);
        assert_eq!(parsed.cells.len(), 6);
        let resumed = resume(&parsed, &RunOptions { threads: 2, ..Default::default() }).unwrap();

        let (a, b) = (artifact(&[direct]), artifact(&[resumed]));
        assert_eq!(
            a.to_string(),
            b.to_string(),
            "suspend + resume must reproduce the uninterrupted artifact byte-for-byte"
        );
    }

    #[test]
    fn binary_suspend_resume_is_byte_identical_across_driver_families() {
        // All four driver families in one suspended experiment:
        // monitor-bearing (NetMax), gossip (AD-PSGD), round-structured
        // (Allreduce), and parameter-server (PS-async).
        let mut spec = small_spec();
        spec.arms.push(Arm::new(AlgorithmKind::PsAsync));
        spec.seeds.truncate(1);
        let direct = execute_with_threads(&spec, 2);

        let suspended = execute_suspended(&spec, 2, 40).unwrap();
        let bytes = checkpoint_bytes(&suspended).unwrap();
        let parsed = parse_checkpoint_bytes(&bytes).unwrap();
        assert_eq!(parsed.spec, spec);
        assert_eq!(parsed.cells.len(), 4);
        // The binary container carries the same logical document as the
        // JSON file: decoding reproduces it field-for-field.
        assert_eq!(
            checkpoint_doc(&parsed).to_string(),
            checkpoint_doc(&suspended).to_string(),
            "binary round trip must preserve the logical checkpoint document"
        );
        let resumed = resume(&parsed, &RunOptions { threads: 2, ..Default::default() }).unwrap();

        let (a, b) = (artifact(&[direct]), artifact(&[resumed]));
        assert_eq!(
            a.to_string(),
            b.to_string(),
            "binary suspend + resume must reproduce the uninterrupted artifact byte-for-byte"
        );
    }

    #[test]
    fn show_dispatch_handles_binary_containers() {
        let mut spec = small_spec();
        spec.arms.truncate(1);
        spec.seeds.truncate(1);
        let suspended = execute_suspended(&spec, 1, 30).unwrap();
        let bytes = checkpoint_bytes(&suspended).unwrap();

        match summarize_bytes(&bytes).unwrap() {
            ShownDoc::Checkpoint(summary) => {
                assert_eq!(summary.experiment, spec.name);
                assert_eq!(summary.cells.len(), 1);
                let cell = &summary.cells[0];
                assert_eq!(cell.algorithm, AlgorithmKind::NetMax);
                assert_eq!(cell.seed, 9);
                assert!(cell.global_step >= 30, "{}", cell.global_step);
                assert_eq!(cell.tier, "strict");
                assert_eq!(cell.session_schema, netmax_core::engine::SESSION_CHECKPOINT_SCHEMA);
            }
            other => panic!("expected a checkpoint summary, got {other:?}"),
        }

        // JSON bytes route through the text path unchanged.
        let text = checkpoint_doc(&suspended).pretty();
        assert!(matches!(
            summarize_bytes(text.as_bytes()).unwrap(),
            ShownDoc::Checkpoint(_)
        ));

        // A binary document under a foreign schema tag is the same typed
        // error as its JSON twin; truncated bytes are Malformed.
        let mut alien = Vec::new();
        codec::write_document(&mut alien, "netmax-bench/mystery/v9", &[]).unwrap();
        match summarize_bytes(&alien) {
            Err(ShowError::UnknownSchema(s)) => assert_eq!(s, "netmax-bench/mystery/v9"),
            other => panic!("expected UnknownSchema, got {other:?}"),
        }
        assert!(matches!(
            summarize_bytes(&bytes[..bytes.len() - 3]),
            Err(ShowError::Malformed(_))
        ));
    }

    #[test]
    fn checkpoint_schema_is_enforced() {
        let doc = Json::parse(r#"{"schema":"netmax-bench/run-report/v1","cells":[]}"#).unwrap();
        assert!(parse_checkpoint(&doc).is_err());
    }

    #[test]
    fn show_dispatch_summarizes_artifacts_and_checkpoints() {
        let mut spec = small_spec();
        spec.arms.truncate(2);
        spec.seeds.truncate(1);

        // A run artifact dispatches to RunReport.
        let result = execute(&spec);
        let doc = artifact(std::slice::from_ref(&result));
        match summarize_doc(&Json::parse(&doc.pretty()).unwrap()).unwrap() {
            ShownDoc::RunReport(results) => assert_eq!(results.len(), 1),
            other => panic!("expected a run report, got {other:?}"),
        }

        // A checkpoint document dispatches to a per-cell summary carrying
        // algorithm, seed, global step, and the session schema tag.
        let suspended = execute_suspended(&spec, 1, 30).unwrap();
        let doc = checkpoint_doc(&suspended);
        match summarize_doc(&Json::parse(&doc.pretty()).unwrap()).unwrap() {
            ShownDoc::Checkpoint(summary) => {
                assert_eq!(summary.experiment, spec.name);
                assert_eq!(summary.cells.len(), 2);
                for cell in &summary.cells {
                    assert!(cell.global_step >= 30, "{}: {}", cell.label, cell.global_step);
                    assert_eq!(cell.tier, "strict");
                    assert_eq!(
                        cell.session_schema,
                        netmax_core::engine::SESSION_CHECKPOINT_SCHEMA
                    );
                }
                assert_eq!(summary.cells[0].algorithm, AlgorithmKind::NetMax);
                assert_eq!(summary.cells[0].seed, 9);
            }
            other => panic!("expected a checkpoint summary, got {other:?}"),
        }
    }

    #[test]
    fn show_dispatch_rejects_unknown_schemas_with_a_typed_error() {
        let doc = Json::parse(r#"{"schema":"netmax-bench/mystery/v7","cells":[]}"#).unwrap();
        match summarize_doc(&doc) {
            Err(ShowError::UnknownSchema(s)) => assert_eq!(s, "netmax-bench/mystery/v7"),
            other => panic!("expected UnknownSchema, got {other:?}"),
        }
        // Structurally broken documents are a different typed error.
        let doc = Json::parse(r#"{"no_schema_at_all": 1}"#).unwrap();
        assert!(matches!(summarize_doc(&doc), Err(ShowError::Malformed(_))));
    }

    #[test]
    fn invalid_spec_fails_before_any_work() {
        let mut spec = small_spec();
        spec.scenario.cfg_mut().record_every_steps = 0;
        let err = try_execute(&spec, &RunOptions::default()).unwrap_err();
        assert!(err.to_string().contains("record_every_steps"), "{err}");
    }

    #[test]
    fn expired_cell_deadline_bounds_overshoot_to_zero_driver_advances() {
        // A zero budget expires before the first driver advance: the
        // deadline check inside the session step loop must finish every
        // cell immediately with a truthful empty partial report — no
        // round-granular driver gets to run "one more round".
        let mut spec = small_spec();
        spec.seeds.truncate(1);
        let result = try_execute(
            &spec,
            &RunOptions {
                threads: 1,
                progress: None,
                cell_deadline: Some(Duration::ZERO),
            },
        )
        .unwrap();
        assert_eq!(result.cells.len(), 3);
        for cell in &result.cells {
            assert_eq!(
                cell.report.global_steps, 0,
                "{}: deadline expired before any step, but {} steps ran",
                cell.label, cell.report.global_steps
            );
            // The forced final sample still makes the report truthful.
            assert_eq!(cell.report.samples.len(), 1);
        }
    }

    #[test]
    fn max_sim_seconds_safety_net_stops_the_run() {
        let mut spec = small_spec();
        spec.arms.truncate(1);
        spec.seeds.truncate(1);
        // A simulated-time budget far below what the epoch target needs.
        spec.scenario.cfg_mut().max_wall_clock_s = 2.0;
        let result = execute(&spec);
        let report = &result.cells[0].report;
        assert!(
            report.wall_clock_s >= 2.0,
            "run must reach the budget before stopping, got {}",
            report.wall_clock_s
        );
        assert!(
            report.epochs_completed < spec.scenario.cfg().max_epochs,
            "the time budget, not the epoch target, must have stopped the run"
        );
        // And the safety net composes with explicit stop conditions too.
        spec.scenario.cfg_mut().stop =
            Some(netmax_core::engine::StopCondition::LossBelow(-1.0));
        let report = &execute(&spec).cells[0].report;
        assert!(report.wall_clock_s >= 2.0, "unreachable loss target must hit the net");
    }

    fn accuracy_fixture(points: &[(f64, Option<f64>)]) -> RunReport {
        RunReport {
            algorithm: "x".into(),
            workload: "w".into(),
            num_nodes: 1,
            samples: points
                .iter()
                .map(|&(t, acc)| netmax_core::engine::Sample {
                    time_s: t,
                    global_step: (t * 10.0) as u64,
                    epoch: t,
                    train_loss: 1.0,
                    consensus_diameter: 0.0,
                    test_accuracy: acc,
                })
                .collect(),
            wall_clock_s: points.last().map(|&(t, _)| t).unwrap_or(0.0),
            epochs_completed: 1.0,
            global_steps: 10,
            final_train_loss: 1.0,
            final_test_accuracy: 0.0,
            per_node: vec![],
        }
    }

    #[test]
    fn time_to_accuracy_never_reached_is_none() {
        let r = accuracy_fixture(&[(1.0, Some(0.2)), (2.0, None), (3.0, Some(0.5))]);
        assert_eq!(time_to_accuracy(&r, 0.9), None);
        // Samples without accuracy evaluation never satisfy the target.
        assert_eq!(time_to_accuracy(&r, 0.4), Some(3.0));
    }

    #[test]
    fn time_to_accuracy_met_at_step_zero() {
        // Target already met by the very first evaluated sample.
        let r = accuracy_fixture(&[(0.0, Some(0.95)), (1.0, Some(0.96))]);
        assert_eq!(time_to_accuracy(&r, 0.9), Some(0.0));
        // An exactly-met target counts (>=, not >).
        assert_eq!(time_to_accuracy(&r, 0.95), Some(0.0));
        // Empty sample list: trivially never reached.
        let empty = accuracy_fixture(&[]);
        assert_eq!(time_to_accuracy(&empty, 0.0), None);
    }
}
