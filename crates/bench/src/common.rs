//! Shared machinery for the figure/table harnesses.

use netmax_core::engine::{Algorithm, AlgorithmKind, RunReport, TrainConfig};
use netmax_net::SlowdownConfig;
use std::fs;
use std::path::PathBuf;

/// Compressed Network-Monitor period `Ts` (paper: 120 s — see the crate
/// docs for the timescale-compression rationale).
pub const MONITOR_PERIOD_S: f64 = 30.0;

/// Compressed slow-link re-draw period (paper: 300 s).
pub const LINK_CHANGE_PERIOD_S: f64 = 120.0;

/// Execution scale of an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Full reproduction (tens of simulated minutes per run).
    Full,
    /// ~4× shorter runs; shapes survive, absolute values noisier.
    Quick,
    /// Minimal runs for criterion benches and smoke tests.
    Tiny,
}

impl Mode {
    /// Reads the mode from `--quick` / `--tiny` CLI flags or the
    /// `NETMAX_MODE` environment variable (default: full).
    pub fn from_env() -> Mode {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--tiny") {
            return Mode::Tiny;
        }
        if args.iter().any(|a| a == "--quick") {
            return Mode::Quick;
        }
        match std::env::var("NETMAX_MODE").as_deref() {
            Ok("tiny") => Mode::Tiny,
            Ok("quick") => Mode::Quick,
            _ => Mode::Full,
        }
    }

    /// Scales an epoch budget to the mode.
    pub fn epochs(self, full: f64) -> f64 {
        match self {
            Mode::Full => full,
            Mode::Quick => (full * 0.25).max(3.0),
            Mode::Tiny => 2.0,
        }
    }

    /// Scales a worker-count list to the mode (tiny drops the largest).
    pub fn nodes<'a>(self, full: &'a [usize], tiny: &'a [usize]) -> &'a [usize] {
        match self {
            Mode::Tiny => tiny,
            _ => full,
        }
    }
}

/// Experiment context: mode + output directory for CSV artefacts.
pub struct ExpCtx {
    /// Execution scale.
    pub mode: Mode,
    out_dir: PathBuf,
}

impl Default for ExpCtx {
    fn default() -> Self {
        Self::from_env()
    }
}

impl ExpCtx {
    /// Builds the context from CLI/env; CSVs go to `results/`.
    pub fn from_env() -> Self {
        Self { mode: Mode::from_env(), out_dir: PathBuf::from("results") }
    }

    /// Builds a context with an explicit mode (used by benches/tests).
    pub fn with_mode(mode: Mode) -> Self {
        Self { mode, out_dir: PathBuf::from("results") }
    }

    /// Writes a CSV artefact; errors are reported but non-fatal (the
    /// printed rows are the primary output).
    pub fn write_csv(&self, name: &str, header: &str, rows: &[String]) {
        let path = self.out_dir.join(format!("{name}.csv"));
        let body = std::iter::once(header.to_string())
            .chain(rows.iter().cloned())
            .collect::<Vec<_>>()
            .join("\n");
        if let Err(e) = fs::create_dir_all(&self.out_dir)
            .and_then(|()| fs::write(&path, body + "\n"))
        {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("wrote {}", path.display());
        }
    }
}

/// Instantiates an algorithm with the harness-tuned monitor period
/// ([`MONITOR_PERIOD_S`]); non-monitor algorithms are unaffected. Thin
/// wrapper over [`crate::spec::Arm`] — the one place tuning lives — kept
/// for harness code that starts from a bare [`AlgorithmKind`].
pub fn tuned_algorithm(kind: AlgorithmKind, alpha: f64) -> Box<dyn Algorithm> {
    crate::spec::Arm::new(kind).instantiate(alpha)
}

/// The harness-standard slowdown regime (paper factors 2–100×, compressed
/// change period).
pub fn slowdown() -> SlowdownConfig {
    SlowdownConfig { change_period_s: LINK_CHANGE_PERIOD_S, ..SlowdownConfig::default() }
}

/// The harness-standard training config for curve experiments.
pub fn train_config(epochs: f64, seed: u64) -> TrainConfig {
    TrainConfig {
        max_epochs: epochs,
        record_every_steps: 50,
        loss_sample_size: 384,
        test_eval_every_records: 4,
        seed,
        ..TrainConfig::default()
    }
}

/// A loss target every run in the set has reached, placed in the *descent*
/// region of the curves rather than at the plateau.
///
/// The synthetic workloads converge to their plateau within a few epochs,
/// after which the recorded losses fluctuate with sampling noise; a target
/// put right at the worst plateau loss would measure when each curve's
/// *noise* first dips below it, not convergence speed. Instead the target
/// sits 10% of the way up from the worst final loss towards the initial
/// loss — low enough that reaching it requires essentially full
/// convergence, high enough to sit clear of plateau noise. (The paper
/// reads its Fig. 8 speedups off the curves at a common loss level the
/// same way.)
pub fn common_loss_target(results: &[(AlgorithmKind, RunReport)]) -> f64 {
    common_loss_target_of(results.iter().map(|(_, r)| r))
}

/// [`common_loss_target`] over any collection of reports.
pub fn common_loss_target_of<'a>(results: impl Iterator<Item = &'a RunReport>) -> f64 {
    let (mut worst_final, mut initial) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for r in results {
        worst_final = worst_final.max(r.final_train_loss);
        if let Some(first) = r.samples.first() {
            initial = initial.max(first.train_loss);
        }
    }
    let floor = worst_final * 1.02 + 1e-4;
    if initial > worst_final {
        floor.max(worst_final + 0.10 * (initial - worst_final))
    } else {
        floor
    }
}

/// Prints and returns `(algo, time_to_target, speedup-vs-slowest)` rows.
pub fn speedup_rows(results: &[(AlgorithmKind, RunReport)]) -> Vec<(String, f64, f64)> {
    let target = common_loss_target(results);
    let times: Vec<(String, f64)> = results
        .iter()
        .map(|(k, r)| {
            let t = r.time_to_loss(target).unwrap_or(r.wall_clock_s);
            (k.label().to_string(), t)
        })
        .collect();
    let netmax_time = times
        .iter()
        .find(|(n, _)| n == "NetMax")
        .map(|(_, t)| *t)
        .unwrap_or_else(|| times.iter().map(|(_, t)| *t).fold(f64::INFINITY, f64::min));
    times
        .into_iter()
        .map(|(n, t)| (n, t, t / netmax_time))
        .collect()
}

/// Writes the full loss/accuracy curves of a comparison to one CSV.
pub fn write_curves(ctx: &ExpCtx, name: &str, results: &[(AlgorithmKind, RunReport)]) {
    let mut rows = Vec::new();
    for (kind, report) in results {
        for s in &report.samples {
            rows.push(format!(
                "{},{:.3},{},{:.4},{:.6},{:.6},{}",
                kind.label(),
                s.time_s,
                s.global_step,
                s.epoch,
                s.train_loss,
                s.consensus_diameter,
                s.test_accuracy.map_or(String::new(), |a| format!("{a:.4}")),
            ));
        }
    }
    ctx.write_csv(
        name,
        "algorithm,time_s,global_step,epoch,train_loss,consensus_diameter,test_accuracy",
        &rows,
    );
}

/// Formats a fixed-width table row.
pub fn fmt_row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_epoch_scaling() {
        assert_eq!(Mode::Full.epochs(24.0), 24.0);
        assert_eq!(Mode::Quick.epochs(24.0), 6.0);
        assert_eq!(Mode::Tiny.epochs(24.0), 2.0);
        // Quick never goes below 3 epochs.
        assert_eq!(Mode::Quick.epochs(4.0), 3.0);
    }

    #[test]
    fn tuned_algorithms_have_expected_names() {
        assert_eq!(tuned_algorithm(AlgorithmKind::NetMax, 0.1).name(), "netmax");
        assert_eq!(tuned_algorithm(AlgorithmKind::AdPsgd, 0.1).name(), "ad-psgd");
        assert_eq!(
            tuned_algorithm(AlgorithmKind::AdPsgdMonitored, 0.1).name(),
            "ad-psgd+monitor"
        );
    }

    #[test]
    fn loss_target_covers_all_runs() {
        let mk = |loss: f64| RunReport {
            algorithm: "x".into(),
            workload: "w".into(),
            num_nodes: 2,
            samples: vec![],
            wall_clock_s: 1.0,
            epochs_completed: 1.0,
            global_steps: 1,
            final_train_loss: loss,
            final_test_accuracy: 0.5,
            per_node: vec![],
        };
        let results = vec![
            (AlgorithmKind::NetMax, mk(0.30)),
            (AlgorithmKind::AdPsgd, mk(0.35)),
        ];
        let t = common_loss_target(&results);
        assert!(t > 0.35);
    }
}
