//! Engine-throughput measurement: real global-steps/sec and samples/sec
//! per algorithm on the sanity workload.
//!
//! Two modes are measured per arm:
//!
//! * **pipeline** — the sanity scenario exactly as benchmarked in
//!   `BENCH_sanity.json` (metric recording at its configured cadence);
//!   comparable to the `steps_per_real_second` column the sanity binary
//!   has recorded since PR 1.
//! * **engine** — the same training run with the recording cadence pushed
//!   beyond the step budget, isolating the simulation step loop itself.
//!
//! Runs are repeated and the best repetition is kept (standard practice
//! for wall-clock microbenchmarks on shared machines — the minimum is the
//! least-noise estimate). Simulated results are unaffected by any of
//! this: the measurement drives the same deterministic sessions the
//! experiment runner uses.

use crate::registry::sanity_spec;
use crate::Mode;
use netmax_core::engine::StopCondition;
use netmax_json::{Json, ToJson};
use netmax_ml::NumericsTier;
use std::time::Instant;

/// Schema tag of `BENCH_throughput.json`; bump on breaking changes.
/// v2 added the numerics-tier dimension (one row per
/// `(algorithm, tier, mode)` cell).
pub const THROUGHPUT_SCHEMA: &str = "netmax-bench/throughput/v2";

/// One measured `(algorithm, tier, mode)` cell.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Arm label (`NetMax`, `AD-PSGD`, …).
    pub algorithm: String,
    /// Numerics tier the cell's gradient hot path ran under.
    pub tier: NumericsTier,
    /// `"pipeline"` (recording on) or `"engine"` (recording off).
    pub mode: &'static str,
    /// Global steps executed per repetition.
    pub global_steps: u64,
    /// Best (minimum) real seconds across repetitions.
    pub best_real_s: f64,
    /// Global steps per real second (best repetition).
    pub steps_per_sec: f64,
    /// Training examples consumed per real second (best repetition).
    pub samples_per_sec: f64,
}

/// Measurement options.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputOptions {
    /// Global steps per repetition.
    pub steps: u64,
    /// Repetitions per cell (best one is reported).
    pub repeats: usize,
    /// Restrict the grid to one numerics tier (`None` measures both).
    pub tier: Option<NumericsTier>,
}

impl ThroughputOptions {
    /// Full measurement (the committed `BENCH_throughput.json` baseline).
    pub fn full() -> Self {
        Self { steps: 20_000, repeats: 3, tier: None }
    }

    /// CI smoke scale.
    pub fn quick() -> Self {
        Self { steps: 2_000, repeats: 2, tier: None }
    }

    /// The tiers this measurement covers, in grid order.
    pub fn tiers(&self) -> Vec<NumericsTier> {
        match self.tier {
            Some(t) => vec![t],
            None => vec![NumericsTier::Strict, NumericsTier::Fast],
        }
    }
}

/// Runs the measurement grid: every sanity arm × numerics tier ×
/// {pipeline, engine}.
pub fn measure(opts: &ThroughputOptions) -> Vec<ThroughputRow> {
    assert!(opts.steps > 0 && opts.repeats > 0, "empty measurement grid");
    let spec = sanity_spec(Mode::Full);
    let workload = spec.scenario.workload();
    let alpha = workload.optim.lr;
    let mut rows = Vec::new();
    for arm in &spec.arms {
        for tier in opts.tiers() {
            for mode in ["pipeline", "engine"] {
                let mut best: Option<(f64, u64, f64)> = None;
                for _ in 0..opts.repeats {
                    let mut scenario = spec.scenario.clone();
                    scenario.cfg_mut().stop = Some(StopCondition::MaxGlobalSteps(opts.steps));
                    scenario.cfg_mut().tier = tier;
                    if mode == "engine" {
                        // Push the recording cadence beyond the step budget so
                        // only the step loop is timed.
                        scenario.cfg_mut().record_every_steps = u64::MAX / 2;
                    }
                    let mut algo = arm.instantiate(alpha);
                    let mut env = scenario.build_env_with(workload.clone());
                    let t0 = Instant::now();
                    let report = algo.run(&mut env);
                    let dt = t0.elapsed().as_secs_f64().max(1e-9);
                    let samples: f64 = env
                        .nodes
                        .iter()
                        .map(|n| n.epochs() * n.sampler.shard_len() as f64)
                        .sum();
                    if best.is_none_or(|(b, _, _)| dt < b) {
                        best = Some((dt, report.global_steps, samples));
                    }
                }
                let (dt, steps, samples) = best.expect("at least one repetition");
                rows.push(ThroughputRow {
                    algorithm: arm.label(),
                    tier,
                    mode,
                    global_steps: steps,
                    best_real_s: dt,
                    steps_per_sec: steps as f64 / dt,
                    samples_per_sec: samples / dt,
                });
            }
        }
    }
    rows
}

/// Assembles the versioned `netmax-bench/throughput/v2` document.
pub fn throughput_doc(opts: &ThroughputOptions, rows: &[ThroughputRow]) -> Json {
    Json::obj([
        ("schema", Json::Str(THROUGHPUT_SCHEMA.into())),
        (
            "scenario",
            Json::obj([
                ("benchmark", Json::Str("sanity/resnet18-cifar10".into())),
                ("steps_per_run", opts.steps.to_json()),
                ("repeats", opts.repeats.to_json()),
                (
                    "tiers",
                    Json::Arr(opts.tiers().iter().map(|t| t.to_json()).collect()),
                ),
            ]),
        ),
        (
            "results",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("algorithm", r.algorithm.to_json()),
                            ("tier", r.tier.to_json()),
                            ("mode", Json::Str(r.mode.into())),
                            ("global_steps", r.global_steps.to_json()),
                            ("best_real_s", r.best_real_s.to_json()),
                            ("steps_per_sec", r.steps_per_sec.to_json()),
                            ("samples_per_sec", r.samples_per_sec.to_json()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Plain-text table for the CLI.
pub fn render_table(rows: &[ThroughputRow]) -> String {
    let mut out = format!(
        "{:<16} {:<7} {:<9} {:>10} {:>10} {:>14} {:>16}\n",
        "algorithm", "tier", "mode", "steps", "best(s)", "steps/sec", "samples/sec"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:<7} {:<9} {:>10} {:>10.3} {:>14.0} {:>16.0}\n",
            r.algorithm,
            r.tier.tier_name(),
            r.mode,
            r.global_steps,
            r.best_real_s,
            r.steps_per_sec,
            r.samples_per_sec
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_measurement_produces_consistent_rows() {
        let opts = ThroughputOptions { steps: 50, repeats: 1, tier: None };
        let rows = measure(&opts);
        // Four arms × two tiers × two modes.
        assert_eq!(rows.len(), 16);
        for r in &rows {
            // Round-granular drivers overshoot the step budget by at most
            // one round.
            assert!(
                r.global_steps >= 50 && r.global_steps < 50 + 16,
                "{}: {} steps",
                r.algorithm,
                r.global_steps
            );
            assert!(r.steps_per_sec > 0.0);
            assert!(r.samples_per_sec > 0.0);
            assert!(["pipeline", "engine"].contains(&r.mode));
        }
        // Both tiers appear, and both run the same step budget.
        for tier in [NumericsTier::Strict, NumericsTier::Fast] {
            assert_eq!(rows.iter().filter(|r| r.tier == tier).count(), 8);
        }
        let doc = throughput_doc(&opts, &rows);
        let text = doc.pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(
            parsed.field("schema").unwrap().as_str().unwrap(),
            THROUGHPUT_SCHEMA
        );
        let results = parsed.field("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 16);
        for row in results {
            assert!(["strict", "fast"]
                .contains(&row.field("tier").unwrap().as_str().unwrap()));
        }
        let table = render_table(&rows);
        assert!(table.contains("steps/sec") && table.contains("strict") && table.contains("fast"));
    }

    #[test]
    fn tier_restriction_halves_the_grid() {
        let opts =
            ThroughputOptions { steps: 50, repeats: 1, tier: Some(NumericsTier::Fast) };
        let rows = measure(&opts);
        assert_eq!(rows.len(), 8);
        assert!(rows.iter().all(|r| r.tier == NumericsTier::Fast));
        let doc = throughput_doc(&opts, &rows);
        let tiers = doc
            .field("scenario")
            .unwrap()
            .field("tiers")
            .unwrap()
            .as_arr()
            .unwrap()
            .len();
        assert_eq!(tiers, 1);
    }
}
