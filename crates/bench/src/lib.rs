//! # netmax-bench
//!
//! The reproduction harness: one module per table/figure of the paper's
//! evaluation (§V and Appendices F–G), plus the ablations DESIGN.md calls
//! out. Each experiment exposes
//!
//! * `Params` with `full()` / `quick()` / `tiny()` presets,
//! * `run(&Params) -> …` returning structured results, and
//! * a `print` helper producing the same rows/series the paper reports.
//!
//! Binaries in `src/bin/` (one per figure/table) call `run` with the mode
//! selected by `NETMAX_MODE` (`full` default, `quick`, `tiny`) or the
//! `--quick` / `--tiny` flags, print the rows, and write CSV under
//! `results/`. Criterion benches in `benches/` execute the `tiny` presets.
//!
//! ## Timescale compression
//!
//! The synthetic workloads complete an epoch in a few simulated seconds
//! versus the paper's ~1–2 minutes, so the two time constants of the
//! dynamic regime are compressed by the same factor while preserving
//! their ratio and ordering: the slow link is re-drawn every 120 s
//! (paper: 300 s) and the Network Monitor runs every 30 s (paper: 120 s).
//! `Ts < change period` still holds, so the monitor can track the network
//! exactly as in §III-A.

#![forbid(unsafe_code)]

pub mod checkpoint_bench;
pub mod common;
pub mod experiments;
pub mod registry;
pub mod runner;
pub mod spec;
pub mod throughput;

pub use common::{ExpCtx, Mode, LINK_CHANGE_PERIOD_S, MONITOR_PERIOD_S};
pub use registry::{registry, registry_json};
pub use runner::{
    checkpoint_doc, execute, execute_suspended, execute_with_threads, parse_checkpoint, resume,
    try_execute, CellProgress, CellResult, ExperimentResult, RunOptions, SuspendedCell,
    SuspendedExperiment,
};
pub use spec::{Arm, ExperimentSpec, MetricKind};
