//! `scale/*` — fleet-scale sweep: the headline four on sparse torus
//! fabrics from 32 to 4 096 workers.
//!
//! This group exists to demonstrate (and regression-guard) that every
//! per-step and per-monitor-round cost scales with the topology's edge
//! set, not n²: beyond
//! [`DENSE_CONTROL_THRESHOLD`](netmax_core::DENSE_CONTROL_THRESHOLD)
//! nodes NetMax runs the sparse control plane (edge-map trackers,
//! per-row Eq. 14 LPs, power-iteration λ₂), and the engine's calendar
//! event queue keeps dispatch O(1) per step.
//!
//! Unlike the figure reproductions, the sweep is **step-budgeted**: each
//! run executes a fixed number of global steps *per node* instead of a
//! fixed epoch count, so the simulated work per worker — and therefore
//! the monitor-round count — stays comparable while n grows and per-node
//! shards shrink. The report records convergence (final training loss),
//! real throughput (global steps per real second), and a peak-RSS proxy
//! per `(n, algorithm)` cell.

use crate::common::{self, ExpCtx, Mode};
use crate::spec::{Arm, ExperimentSpec, MetricKind};
use netmax_core::engine::{AlgorithmKind, Scenario, StopCondition, TopologyKind};
use netmax_json::{Json, ToJson};
use netmax_ml::profile::ModelProfile;
use netmax_ml::workload::WorkloadSpec;
use netmax_net::NetworkKind;
use std::time::Instant;

/// Schema tag of `BENCH_scale.json`; bump on breaking changes.
pub const SCALE_SCHEMA: &str = "netmax-bench/scale-report/v1";

/// The ridge workload's training-set size (`mnist_like`), used to derive
/// per-node shard and batch sizes without instantiating datasets.
const RIDGE_TRAIN_EXAMPLES: usize = 20_000;

/// The ridge workload's configured mini-batch size.
const RIDGE_BATCH: usize = 32;

/// Monitor rounds targeted per run (the paper runs many rounds per
/// training job; ~10 keeps that shape at every fleet size).
const TARGET_MONITOR_ROUNDS: f64 = 10.0;

/// Learning-rate scale applied to every arm of every sweep cell
/// (0.05 → 0.01). The ridge rate is tuned for 8-node shards of ~2 500
/// examples; at n = 4 096 a shard holds ~5, every batch re-samples those
/// few points, and 0.05 sits at the edge of the stability region of the
/// worst single-shard Hessian — weakly-mixed nodes (a concentrated
/// NetMax policy, unlucky gossip draws) can then diverge and poison the
/// fleet. At 0.01 each SGD step is contractive for every realizable
/// batch at every swept n, so convergence columns compare optimization
/// quality, not stability luck. All four arms share the scaled rate.
pub const SCALE_LR_SCALE: f64 = 0.2;

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Worker counts to sweep (each must have a balanced torus shape).
    pub node_counts: Vec<usize>,
    /// Global steps executed per node (total budget = `n ×` this).
    pub steps_per_node: u64,
    /// Timing repetitions per cell (best, i.e. minimum, real time kept).
    pub repeats: usize,
    /// Master seed.
    pub seed: u64,
}

impl Params {
    /// Full sweep — the committed `BENCH_scale.json` baseline.
    pub fn full() -> Self {
        Self { node_counts: vec![32, 128, 512, 1024, 4096], steps_per_node: 96, repeats: 1, seed: 11 }
    }

    /// Mode-scaled parameters (tiny is the CI smoke scale: n ≤ 256).
    pub fn for_mode(ctx: &ExpCtx) -> Self {
        let mut p = Self::full();
        match ctx.mode {
            Mode::Full => {}
            Mode::Quick => p.steps_per_node = 48,
            Mode::Tiny => {
                p.steps_per_node = 24;
                p.node_counts = vec![32, 256];
            }
        }
        p
    }
}

/// The near-square torus factorization of `n`: rows is the largest
/// divisor ≤ √n. Panics when no balanced shape exists (`rows < 2`, e.g.
/// a prime worker count) — the sweep only accepts fleets that form a
/// genuine 2-D fabric.
pub fn torus_dims(n: usize) -> (usize, usize) {
    let mut rows = 1;
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            rows = d;
        }
        d += 1;
    }
    assert!(rows >= 2, "fleet size {n} has no balanced torus factorization (rows ≥ 2)");
    (rows, n / rows)
}

/// Compressed monitor period `Ts` for an `n`-node step-budgeted run.
///
/// The harness-standard 30 s period assumes multi-minute simulated runs;
/// a scale run lasts roughly `steps_per_node × (compute + exchange)`
/// simulated seconds, which *shrinks* as n grows (shards, and with them
/// batches, get smaller). `Ts` is therefore derived from the workload
/// profile's nominal iteration estimate so ~10 rounds fire at every
/// fleet size — the same timescale compression the crate docs describe,
/// applied per n.
pub fn monitor_period_for(n: usize, steps_per_node: u64) -> f64 {
    let shard = (RIDGE_TRAIN_EXAMPLES / n.max(1)).max(1);
    let batch = shard.min(RIDGE_BATCH);
    let profile = ModelProfile::mobilenet();
    // Nominal iteration: local compute on the shard-clamped batch plus a
    // mostly intra-machine parameter exchange (10 GB/s class) with a
    // small latency allowance. Real runs are slower (inter-machine and
    // slowed links), which only yields *more* rounds, never zero.
    let exchange_s = profile.param_bytes() as f64 / 10e9 + 3e-3;
    let iter_s = profile.compute_time(batch) + exchange_s;
    (steps_per_node as f64 * iter_s / TARGET_MONITOR_ROUNDS).max(0.05)
}

/// The registry entries: one spec per worker count, named
/// `scale/ridge/n{N}`.
pub fn specs(p: &Params) -> Vec<ExperimentSpec> {
    let mut out = Vec::new();
    for &n in &p.node_counts {
        let (rows, cols) = torus_dims(n);
        let workload = WorkloadSpec::convex_ridge(p.seed).lr_scaled(SCALE_LR_SCALE);
        let name = format!("scale/{}/n{n}", workload.kind.name());
        let total_steps = p.steps_per_node * n as u64;
        // Step-budgeted: the stop condition governs; the epoch cap is an
        // unreachable sentinel. Recording cadence is scaled so every run
        // keeps ~100 samples regardless of its step budget.
        let mut cfg = common::train_config(1e6, p.seed);
        cfg.stop = Some(StopCondition::MaxGlobalSteps(total_steps));
        cfg.record_every_steps = (total_steps / 100).max(50);
        let scenario = Scenario::builder()
            .workers(n)
            .topology(TopologyKind::Torus { rows, cols })
            .network(NetworkKind::HeterogeneousDynamic)
            .workload(workload)
            .slowdown(common::slowdown())
            .train_config(cfg)
            .build();
        out.push(ExperimentSpec {
            name,
            group: "scale".into(),
            title: format!(
                "Scale — {rows}×{cols} torus, {} steps/node, headline four on the sparse control plane",
                p.steps_per_node
            ),
            scenario,
            arms: AlgorithmKind::headline_four()
                .map(|k| Arm::new(k).monitor_period(monitor_period_for(n, p.steps_per_node)))
                .to_vec(),
            seeds: vec![p.seed],
            metrics: vec![MetricKind::TimeToTarget],
        });
    }
    out
}

/// One measured `(n, algorithm)` cell.
#[derive(Debug, Clone)]
pub struct Row {
    /// Arm label (`NetMax`, `AD-PSGD`, …).
    pub algorithm: String,
    /// Fleet size.
    pub nodes: usize,
    /// Undirected edge count of the torus fabric.
    pub edges: usize,
    /// Global steps executed.
    pub global_steps: u64,
    /// Simulated wall-clock seconds of the run.
    pub sim_wall_s: f64,
    /// Final training loss (the convergence column).
    pub final_train_loss: f64,
    /// Best (minimum) real seconds across repetitions.
    pub best_real_s: f64,
    /// Global steps per real second (best repetition).
    pub steps_per_sec: f64,
    /// `VmHWM` from `/proc/self/status` after the cell, in KiB (0 when
    /// unavailable). Process-wide high-water mark: monotone within the
    /// ascending sweep, so each value reflects the largest fleet so far.
    pub peak_rss_kb: u64,
}

/// Peak resident set of this process (`VmHWM`), in KiB.
fn peak_rss_kb() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = text.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Runs the sweep cell by cell (sequentially, so per-cell real-time and
/// RSS measurements are not polluted by sibling runs).
pub fn run(p: &Params) -> Vec<Row> {
    assert!(p.repeats > 0, "need at least one repetition");
    let mut rows = Vec::new();
    for spec in specs(p) {
        let n = spec.scenario.workers();
        let workload = spec.scenario.workload();
        let alpha = workload.optim.lr;
        for arm in &spec.arms {
            let mut edges = 0;
            let mut best: Option<(f64, netmax_core::engine::RunReport)> = None;
            for _ in 0..p.repeats {
                let mut algo = arm.instantiate(alpha);
                let mut env = spec.scenario.build_env_with(workload.clone());
                edges = env.topology.num_edges();
                let t0 = Instant::now();
                let report = algo.run(&mut env);
                let dt = t0.elapsed().as_secs_f64().max(1e-9);
                if best.as_ref().is_none_or(|(b, _)| dt < *b) {
                    best = Some((dt, report));
                }
            }
            let (dt, report) = best.expect("at least one repetition");
            let row = Row {
                algorithm: arm.label(),
                nodes: n,
                edges,
                global_steps: report.global_steps,
                sim_wall_s: report.wall_clock_s,
                final_train_loss: report.final_train_loss,
                best_real_s: dt,
                steps_per_sec: report.global_steps as f64 / dt,
                peak_rss_kb: peak_rss_kb().unwrap_or(0),
            };
            eprintln!(
                "  {} n={} [{}]: {} steps in {:.2}s real ({:.0} steps/s), loss {:.4}",
                spec.name, n, row.algorithm, row.global_steps, dt, row.steps_per_sec,
                row.final_train_loss
            );
            rows.push(row);
        }
    }
    rows
}

/// Assembles the versioned `netmax-bench/scale-report/v1` document.
pub fn scale_doc(p: &Params, rows: &[Row]) -> Json {
    Json::obj([
        ("schema", Json::Str(SCALE_SCHEMA.into())),
        (
            "sweep",
            Json::obj([
                ("workload", Json::Str("ridge".into())),
                ("topology", Json::Str("torus".into())),
                ("node_counts", p.node_counts.to_json()),
                ("steps_per_node", p.steps_per_node.to_json()),
                ("lr_scale", SCALE_LR_SCALE.to_json()),
                ("repeats", p.repeats.to_json()),
                ("seed", p.seed.to_json()),
            ]),
        ),
        (
            "peak_rss_note",
            Json::Str(
                "peak_rss_kb is the process VmHWM high-water mark: monotone across the \
                 ascending sweep, so each cell reflects the largest fleet run so far."
                    .into(),
            ),
        ),
        (
            "results",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("algorithm", r.algorithm.to_json()),
                            ("nodes", r.nodes.to_json()),
                            ("edges", r.edges.to_json()),
                            ("global_steps", r.global_steps.to_json()),
                            ("sim_wall_s", r.sim_wall_s.to_json()),
                            ("final_train_loss", r.final_train_loss.to_json()),
                            ("best_real_s", r.best_real_s.to_json()),
                            ("steps_per_sec", r.steps_per_sec.to_json()),
                            ("peak_rss_kb", r.peak_rss_kb.to_json()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Plain-text table for the CLI.
pub fn render_table(rows: &[Row]) -> String {
    let mut out = format!(
        "{:<16} {:>6} {:>7} {:>9} {:>9} {:>10} {:>9} {:>11} {:>9}\n",
        "algorithm", "n", "edges", "steps", "sim(s)", "loss", "real(s)", "steps/sec", "rss(MB)"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>6} {:>7} {:>9} {:>9.2} {:>10.4} {:>9.2} {:>11.0} {:>9.1}\n",
            r.algorithm,
            r.nodes,
            r.edges,
            r.global_steps,
            r.sim_wall_s,
            r.final_train_loss,
            r.best_real_s,
            r.steps_per_sec,
            r.peak_rss_kb as f64 / 1024.0
        ));
    }
    out
}

/// Prints the rows and writes the CSV artefact.
pub fn print(ctx: &ExpCtx, p: &Params, rows: &[Row]) {
    println!(
        "Scale sweep — ridge on torus fabrics, {} steps/node, n ∈ {:?}",
        p.steps_per_node, p.node_counts
    );
    print!("{}", render_table(rows));
    let csv: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{},{},{},{},{:.4},{:.6},{:.4},{:.1},{}",
                r.algorithm,
                r.nodes,
                r.edges,
                r.global_steps,
                r.sim_wall_s,
                r.final_train_loss,
                r.best_real_s,
                r.steps_per_sec,
                r.peak_rss_kb
            )
        })
        .collect();
    ctx.write_csv(
        "scale_sweep",
        "algorithm,nodes,edges,global_steps,sim_wall_s,final_train_loss,best_real_s,steps_per_sec,peak_rss_kb",
        &csv,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torus_dims_balance_the_declared_sweep() {
        assert_eq!(torus_dims(32), (4, 8));
        assert_eq!(torus_dims(128), (8, 16));
        assert_eq!(torus_dims(256), (16, 16));
        assert_eq!(torus_dims(512), (16, 32));
        assert_eq!(torus_dims(1024), (32, 32));
        assert_eq!(torus_dims(4096), (64, 64));
    }

    #[test]
    #[should_panic(expected = "balanced torus")]
    fn torus_dims_reject_prime_fleets() {
        let _ = torus_dims(13);
    }

    #[test]
    fn monitor_period_shrinks_with_fleet_size() {
        // Bigger fleets mean smaller shards and shorter runs; Ts must
        // compress with them so rounds keep firing.
        let p = Params::full();
        let periods: Vec<f64> =
            p.node_counts.iter().map(|&n| monitor_period_for(n, p.steps_per_node)).collect();
        for w in periods.windows(2) {
            assert!(w[1] <= w[0], "period grew with n: {periods:?}");
        }
        assert!(periods.iter().all(|&t| t >= 0.05));
    }

    #[test]
    fn specs_declare_the_scale_group() {
        let p = Params::full();
        let specs = specs(&p);
        assert_eq!(specs.len(), p.node_counts.len());
        for (spec, &n) in specs.iter().zip(&p.node_counts) {
            assert_eq!(spec.name, format!("scale/ridge/n{n}"));
            assert_eq!(spec.group, "scale");
            assert_eq!(spec.scenario.workers(), n);
            assert_eq!(spec.scenario.workload_spec().lr_scale, SCALE_LR_SCALE);
            assert_eq!(spec.arms.len(), 4);
            for arm in &spec.arms {
                assert_eq!(arm.monitor_period_s, Some(monitor_period_for(n, p.steps_per_node)));
            }
            assert_eq!(
                spec.scenario.cfg().stop,
                Some(StopCondition::MaxGlobalSteps(p.steps_per_node * n as u64))
            );
        }
    }

    #[test]
    fn tiny_sweep_produces_consistent_rows_and_doc() {
        let p = Params { node_counts: vec![16], steps_per_node: 24, repeats: 1, seed: 11 };
        let rows = run(&p);
        assert_eq!(rows.len(), 4, "one row per headline arm");
        for r in &rows {
            assert_eq!(r.nodes, 16);
            assert_eq!(r.edges, 32, "4×4 torus has 2n edges");
            // Round-granular drivers may overshoot the budget slightly.
            assert!(r.global_steps >= 24 * 16, "{}: {} steps", r.algorithm, r.global_steps);
            assert!(r.sim_wall_s > 0.0 && r.best_real_s > 0.0);
            assert!(r.final_train_loss.is_finite());
            assert!(r.steps_per_sec > 0.0);
        }
        let doc = scale_doc(&p, &rows);
        let parsed = Json::parse(&doc.pretty()).unwrap();
        assert_eq!(parsed.field("schema").unwrap().as_str().unwrap(), SCALE_SCHEMA);
        assert_eq!(parsed.field("results").unwrap().as_arr().unwrap().len(), 4);
        assert!(render_table(&rows).contains("steps/sec"));
    }
}
