//! Ablations beyond the paper's figures, validating the design choices
//! DESIGN.md calls out:
//!
//! 1. **Inverse-probability merge weighting** (Algorithm 2 line 13) vs a
//!    fixed 1/2 weight, under non-IID data — isolates the §V-H effect.
//! 2. **Monitor period Ts** sensitivity around the link-change period.
//! 3. **EMA smoothing β** sensitivity under fast network dynamics.
//! 4. **Static vs adaptive link selection** — the §I Fig. 2 narrative:
//!    SAPS-PSGD's initially-fast subgraph against NetMax's re-measured
//!    policy, on static and dynamic networks.

use crate::common::{self, ExpCtx};
use netmax_core::engine::{PartitionKind, RunReport, Scenario};
use netmax_core::monitor::MonitorConfig;
use netmax_core::netmax::{MergeWeighting, NetMax, NetMaxConfig};
use netmax_ml::workload::Workload;
use netmax_net::NetworkKind;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Epoch budget per run.
    pub epochs: f64,
    /// Master seed.
    pub seed: u64,
}

impl Params {
    /// Full reproduction scale.
    pub fn full() -> Self {
        Self { epochs: 16.0, seed: 29 }
    }

    /// Mode-scaled parameters.
    pub fn for_mode(ctx: &ExpCtx) -> Self {
        let mut p = Self::full();
        p.epochs = ctx.mode.epochs(p.epochs);
        p
    }
}

fn netmax_with(alpha: f64, f: impl FnOnce(&mut NetMaxConfig)) -> NetMax {
    let mut cfg = NetMaxConfig::paper_default(alpha);
    cfg.monitor = MonitorConfig {
        period_s: common::MONITOR_PERIOD_S,
        ..MonitorConfig::paper_default(alpha)
    };
    f(&mut cfg);
    NetMax::new(cfg)
}

/// Non-IID scenario used by the weighting ablation (Table IV labels).
fn noniid_scenario(p: &Params) -> Scenario {
    Scenario::builder()
        .workers(8)
        .servers(2)
        .network(NetworkKind::HeterogeneousDynamic)
        .workload(Workload::mobilenet_mnist(p.seed))
        .partition(PartitionKind::PaperTable4)
        .slowdown(common::slowdown())
        .train_config(common::train_config(p.epochs, p.seed))
        .build()
}

/// Heterogeneous uniform-data scenario used by the Ts and β sweeps.
fn hetero_scenario(p: &Params) -> Scenario {
    Scenario::builder()
        .workers(8)
        .network(NetworkKind::HeterogeneousDynamic)
        .workload(Workload::resnet18_cifar10(p.seed))
        .slowdown(common::slowdown())
        .train_config(common::train_config(p.epochs, p.seed))
        .build()
}

/// Result row shared by the three ablations.
#[derive(Debug, Clone)]
pub struct Row {
    /// Variant label.
    pub variant: String,
    /// Wall-clock to the epoch budget (s).
    pub wall_s: f64,
    /// Final training loss.
    pub loss: f64,
    /// Final test accuracy.
    pub accuracy: f64,
}

fn row(variant: String, r: &RunReport) -> Row {
    Row {
        variant,
        wall_s: r.wall_clock_s,
        loss: r.final_train_loss,
        accuracy: r.final_test_accuracy,
    }
}

/// Ablation 1: inverse-probability vs fixed-weight merging, non-IID data.
pub fn weighting(p: &Params) -> Vec<Row> {
    let sc = noniid_scenario(p);
    let alpha = sc.workload().optim.lr;
    [
        ("inverse-probability (paper)", MergeWeighting::InverseProbability),
        ("fixed 0.5 (AD-PSGD style)", MergeWeighting::Fixed(0.5)),
        ("fixed 0.25", MergeWeighting::Fixed(0.25)),
    ]
    .into_iter()
    .map(|(label, w)| {
        let mut algo = netmax_with(alpha, |c| c.weighting = w);
        row(label.to_string(), &sc.run_with(&mut algo))
    })
    .collect()
}

/// Ablation 2: Network Monitor period Ts vs the 120 s link-change period.
pub fn ts_period(p: &Params) -> Vec<Row> {
    let sc = hetero_scenario(p);
    let alpha = sc.workload().optim.lr;
    [10.0, 30.0, 60.0, 120.0, 300.0]
        .into_iter()
        .map(|ts| {
            let mut algo = netmax_with(alpha, |c| c.monitor.period_s = ts);
            row(format!("Ts={ts}s"), &sc.run_with(&mut algo))
        })
        .collect()
}

/// Ablation 3: EMA smoothing factor β under dynamic links.
pub fn ema_beta(p: &Params) -> Vec<Row> {
    let sc = hetero_scenario(p);
    let alpha = sc.workload().optim.lr;
    [0.1, 0.3, 0.5, 0.7, 0.9]
        .into_iter()
        .map(|beta| {
            let mut algo = netmax_with(alpha, |c| c.monitor.beta = beta);
            row(format!("beta={beta}"), &sc.run_with(&mut algo))
        })
        .collect()
}

/// Ablation 4: SAPS-PSGD (fixed initially-fast subgraph) vs NetMax on a
/// static and a dynamic network — the Fig. 2 story quantified. On the
/// static network the frozen subgraph is competitive (often faster: it
/// ignores slow links entirely and pays no Eq. 11 floors); under dynamics
/// the slow link eventually lands *inside* the frozen subgraph, which
/// cannot route around it, while NetMax re-measures and re-optimises.
///
/// The run is deliberately long (≥ 48 epochs ⇒ ≥ 10 slow-link windows)
/// and averaged over several network seeds, because whether any single
/// window hits the sparse subgraph is a coin flip.
pub fn static_vs_adaptive(p: &Params) -> Vec<Row> {
    use netmax_core::engine::AlgorithmKind;
    let epochs = p.epochs.max(48.0);
    let seeds = [p.seed, p.seed + 1, p.seed + 2];
    // Faster re-draws than the harness default so each run sees many
    // windows; whether any one window lands on the sparse subgraph is a
    // coin flip, and the straggler metric below surfaces the hits.
    let slowdown = netmax_net::SlowdownConfig {
        change_period_s: 60.0,
        ..netmax_net::SlowdownConfig::default()
    };
    let mut rows = Vec::new();
    for (net_label, kind) in [
        ("static", NetworkKind::HeterogeneousStatic),
        ("dynamic", NetworkKind::HeterogeneousDynamic),
    ] {
        for algo_kind in [AlgorithmKind::SapsPsgd, AlgorithmKind::NetMax] {
            let mut acc = Row {
                variant: format!("{}/{}", algo_kind.label(), net_label),
                wall_s: 0.0,
                loss: 0.0,
                accuracy: 0.0,
            };
            for &seed in &seeds {
                let sc = Scenario::builder()
                    .workers(8)
                    .network(kind)
                    .workload(Workload::resnet18_cifar10(p.seed))
                    .slowdown(slowdown)
                    .train_config(common::train_config(epochs, seed))
                    .build();
                let alpha = sc.workload().optim.lr;
                let mut algo = common::tuned_algorithm(algo_kind, alpha);
                let r = sc.run_with(algo.as_mut());
                // Straggler view: the slowest node's time per epoch. A
                // SAPS worker whose (frozen) subgraph edge gets slowed
                // cannot route around it; NetMax re-routes within Ts.
                let straggler = r
                    .per_node
                    .iter()
                    .map(|x| if x.epochs > 0.0 { x.clock_s / x.epochs } else { 0.0 })
                    .fold(0.0f64, f64::max);
                acc.wall_s += straggler / seeds.len() as f64;
                acc.loss += r.final_train_loss / seeds.len() as f64;
                acc.accuracy += r.final_test_accuracy / seeds.len() as f64;
            }
            rows.push(acc);
        }
    }
    rows
}

/// Prints one ablation's rows and writes its CSV.
pub fn print(ctx: &ExpCtx, title: &str, csv_name: &str, rows: &[Row]) {
    println!("{title}");
    println!("{:<30} {:>12} {:>10} {:>8}", "variant", "wall(s)", "loss", "acc");
    let mut csv = Vec::new();
    for r in rows {
        println!(
            "{:<30} {:>12.1} {:>10.4} {:>7.2}%",
            r.variant,
            r.wall_s,
            r.loss,
            100.0 * r.accuracy
        );
        csv.push(format!("{},{:.2},{:.5},{:.4}", r.variant, r.wall_s, r.loss, r.accuracy));
    }
    ctx.write_csv(csv_name, "variant,wall_s,loss,accuracy", &csv);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighting_variants_all_train() {
        let p = Params { epochs: 3.0, seed: 29 };
        let rows = weighting(&p);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.loss.is_finite() && r.loss < 2.5, "{}: loss {}", r.variant, r.loss);
        }
    }

    #[test]
    fn ts_sweep_produces_monotone_labels() {
        let p = Params { epochs: 2.0, seed: 29 };
        let rows = ts_period(&p);
        assert_eq!(rows.len(), 5);
        assert!(rows[0].variant.contains("10"));
        assert!(rows[4].variant.contains("300"));
    }
}
