//! Ablations beyond the paper's figures, validating the design choices
//! DESIGN.md calls out:
//!
//! 1. **Inverse-probability merge weighting** (Algorithm 2 line 13) vs a
//!    fixed 1/2 weight, under non-IID data — isolates the §V-H effect.
//! 2. **Monitor period Ts** sensitivity around the link-change period.
//! 3. **EMA smoothing β** sensitivity under fast network dynamics.
//! 4. **Static vs adaptive link selection** — the §I Fig. 2 narrative:
//!    SAPS-PSGD's initially-fast subgraph against NetMax's re-measured
//!    policy, on static and dynamic networks.

use crate::common::{self, ExpCtx};
use crate::runner;
use crate::spec::{Arm, ExperimentSpec, MetricKind};
use netmax_core::engine::{AlgorithmKind, PartitionKind, RunReport, Scenario};
use netmax_ml::workload::WorkloadSpec;
use netmax_net::NetworkKind;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Epoch budget per run.
    pub epochs: f64,
    /// Master seed.
    pub seed: u64,
}

impl Params {
    /// Full reproduction scale.
    pub fn full() -> Self {
        Self { epochs: 16.0, seed: 29 }
    }

    /// Mode-scaled parameters.
    pub fn for_mode(ctx: &ExpCtx) -> Self {
        let mut p = Self::full();
        p.epochs = ctx.mode.epochs(p.epochs);
        p
    }
}

/// Non-IID scenario used by the weighting ablation (Table IV labels).
fn noniid_scenario(p: &Params) -> Scenario {
    Scenario::builder()
        .workers(8)
        .servers(2)
        .network(NetworkKind::HeterogeneousDynamic)
        .workload(WorkloadSpec::mobilenet_mnist(p.seed))
        .partition(PartitionKind::PaperTable4)
        .slowdown(common::slowdown())
        .train_config(common::train_config(p.epochs, p.seed))
        .build()
}

/// Heterogeneous uniform-data scenario used by the Ts and β sweeps.
fn hetero_scenario(p: &Params) -> Scenario {
    Scenario::builder()
        .workers(8)
        .network(NetworkKind::HeterogeneousDynamic)
        .workload(WorkloadSpec::resnet18_cifar10(p.seed))
        .slowdown(common::slowdown())
        .train_config(common::train_config(p.epochs, p.seed))
        .build()
}

fn abl_spec(
    name: &str,
    title: &str,
    scenario: Scenario,
    arms: Vec<Arm>,
    seeds: Vec<u64>,
    metrics: Vec<MetricKind>,
) -> ExperimentSpec {
    ExperimentSpec {
        name: format!("abl/{name}"),
        group: "abl".into(),
        title: title.into(),
        scenario,
        arms,
        seeds,
        metrics,
    }
}

/// The registry entries for all four design-choice ablations.
pub fn specs(p: &Params) -> Vec<ExperimentSpec> {
    let mut out = vec![
        abl_spec(
            "weighting",
            "Ablation 1 — second-step merge weighting (non-IID MNIST, Table IV)",
            noniid_scenario(p),
            vec![
                Arm::new(AlgorithmKind::NetMax).labeled("inverse-probability (paper)"),
                Arm::new(AlgorithmKind::NetMax).fixed_weight(0.5).labeled("fixed 0.5 (AD-PSGD style)"),
                Arm::new(AlgorithmKind::NetMax).fixed_weight(0.25).labeled("fixed 0.25"),
            ],
            vec![p.seed],
            vec![MetricKind::Accuracy],
        ),
        abl_spec(
            "ts-period",
            "Ablation 2 — Network Monitor period Ts (link change every 120 s)",
            hetero_scenario(p),
            [10.0, 30.0, 60.0, 120.0, 300.0]
                .into_iter()
                .map(|ts| {
                    Arm::new(AlgorithmKind::NetMax).monitor_period(ts).labeled(format!("Ts={ts}s"))
                })
                .collect(),
            vec![p.seed],
            vec![MetricKind::Accuracy],
        ),
        abl_spec(
            "ema-beta",
            "Ablation 3 — EMA smoothing factor β",
            hetero_scenario(p),
            [0.1, 0.3, 0.5, 0.7, 0.9]
                .into_iter()
                .map(|b| Arm::new(AlgorithmKind::NetMax).beta(b).labeled(format!("beta={b}")))
                .collect(),
            vec![p.seed],
            vec![MetricKind::Accuracy],
        ),
    ];
    out.extend(static_vs_adaptive_specs(p));
    out
}

/// The two static/dynamic specs of ablation 4.
fn static_vs_adaptive_specs(p: &Params) -> Vec<ExperimentSpec> {
    let epochs = p.epochs.max(48.0);
    // Faster re-draws than the harness default so each run sees many
    // windows; whether any one window lands on the sparse subgraph is a
    // coin flip, and the straggler metric surfaces the hits.
    let slowdown = netmax_net::SlowdownConfig {
        change_period_s: 60.0,
        ..netmax_net::SlowdownConfig::default()
    };
    [
        ("static", NetworkKind::HeterogeneousStatic),
        ("dynamic", NetworkKind::HeterogeneousDynamic),
    ]
    .into_iter()
    .map(|(net_label, kind)| {
        let scenario = Scenario::builder()
            .workers(8)
            .network(kind)
            .workload(WorkloadSpec::resnet18_cifar10(p.seed))
            .slowdown(slowdown)
            .train_config(common::train_config(epochs, p.seed))
            .build();
        abl_spec(
            &format!("static-vs-adaptive/{net_label}"),
            "Ablation 4 — static subgraph (SAPS-PSGD) vs adaptive NetMax (Fig. 2 narrative)",
            scenario,
            vec![Arm::new(AlgorithmKind::SapsPsgd), Arm::new(AlgorithmKind::NetMax)],
            vec![p.seed, p.seed + 1, p.seed + 2],
            vec![MetricKind::Straggler, MetricKind::Accuracy],
        )
    })
    .collect()
}

/// Result row shared by the three ablations.
#[derive(Debug, Clone)]
pub struct Row {
    /// Variant label.
    pub variant: String,
    /// Wall-clock to the epoch budget (s).
    pub wall_s: f64,
    /// Final training loss.
    pub loss: f64,
    /// Final test accuracy.
    pub accuracy: f64,
}

fn row(variant: String, r: &RunReport) -> Row {
    Row {
        variant,
        wall_s: r.wall_clock_s,
        loss: r.final_train_loss,
        accuracy: r.final_test_accuracy,
    }
}

fn run_abl(spec: &ExperimentSpec) -> Vec<Row> {
    runner::execute_with_threads(spec, runner::default_threads())
        .cells
        .into_iter()
        .map(|c| row(c.label, &c.report))
        .collect()
}

/// Ablation 1: inverse-probability vs fixed-weight merging, non-IID data.
pub fn weighting(p: &Params) -> Vec<Row> {
    run_abl(&specs(p)[0])
}

/// Ablation 2: Network Monitor period Ts vs the 120 s link-change period.
pub fn ts_period(p: &Params) -> Vec<Row> {
    run_abl(&specs(p)[1])
}

/// Ablation 3: EMA smoothing factor β under dynamic links.
pub fn ema_beta(p: &Params) -> Vec<Row> {
    run_abl(&specs(p)[2])
}

/// Ablation 4: SAPS-PSGD (fixed initially-fast subgraph) vs NetMax on a
/// static and a dynamic network — the Fig. 2 story quantified. On the
/// static network the frozen subgraph is competitive (often faster: it
/// ignores slow links entirely and pays no Eq. 11 floors); under dynamics
/// the slow link eventually lands *inside* the frozen subgraph, which
/// cannot route around it, while NetMax re-measures and re-optimises.
///
/// The run is deliberately long (≥ 48 epochs ⇒ ≥ 10 slow-link windows)
/// and averaged over several network seeds, because whether any single
/// window hits the sparse subgraph is a coin flip.
pub fn static_vs_adaptive(p: &Params) -> Vec<Row> {
    let mut rows = Vec::new();
    for spec in static_vs_adaptive_specs(p) {
        let net_label =
            spec.name.rsplit('/').next().expect("ablation 4 spec names end in the net label");
        let result = runner::execute_with_threads(&spec, runner::default_threads());
        let n_seeds = spec.effective_seeds().len() as f64;
        for (arm_idx, arm) in spec.arms.iter().enumerate() {
            let mut acc = Row {
                variant: format!("{}/{}", arm.label(), net_label),
                wall_s: 0.0,
                loss: 0.0,
                accuracy: 0.0,
            };
            for c in result.arm_cells(arm_idx) {
                // Straggler view: the slowest node's time per epoch. A
                // SAPS worker whose (frozen) subgraph edge gets slowed
                // cannot route around it; NetMax re-routes within Ts.
                let straggler = c
                    .report
                    .per_node
                    .iter()
                    .map(|x| if x.epochs > 0.0 { x.clock_s / x.epochs } else { 0.0 })
                    .fold(0.0f64, f64::max);
                acc.wall_s += straggler / n_seeds;
                acc.loss += c.report.final_train_loss / n_seeds;
                acc.accuracy += c.report.final_test_accuracy / n_seeds;
            }
            rows.push(acc);
        }
    }
    rows
}

/// Prints one ablation's rows and writes its CSV.
pub fn print(ctx: &ExpCtx, title: &str, csv_name: &str, rows: &[Row]) {
    println!("{title}");
    println!("{:<30} {:>12} {:>10} {:>8}", "variant", "wall(s)", "loss", "acc");
    let mut csv = Vec::new();
    for r in rows {
        println!(
            "{:<30} {:>12.1} {:>10.4} {:>7.2}%",
            r.variant,
            r.wall_s,
            r.loss,
            100.0 * r.accuracy
        );
        csv.push(format!("{},{:.2},{:.5},{:.4}", r.variant, r.wall_s, r.loss, r.accuracy));
    }
    ctx.write_csv(csv_name, "variant,wall_s,loss,accuracy", &csv);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighting_variants_all_train() {
        let p = Params { epochs: 3.0, seed: 29 };
        let rows = weighting(&p);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.loss.is_finite() && r.loss < 2.5, "{}: loss {}", r.variant, r.loss);
        }
    }

    #[test]
    fn ts_sweep_produces_monotone_labels() {
        let p = Params { epochs: 2.0, seed: 29 };
        let rows = ts_period(&p);
        assert_eq!(rows.len(), 5);
        assert!(rows[0].variant.contains("10"));
        assert!(rows[4].variant.contains("300"));
    }
}
