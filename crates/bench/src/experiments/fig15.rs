//! Fig. 15 — extending AD-PSGD with the NetMax Network Monitor (§III-D,
//! §V-H).
//!
//! Three curves: plain AD-PSGD, AD-PSGD+Monitor, NetMax. The paper's
//! findings: the monitor cuts AD-PSGD's wall-clock; its per-epoch
//! convergence dips slightly below plain AD-PSGD *and* below NetMax —
//! because AD-PSGD keeps the fixed 1/2 averaging weight while NetMax
//! up-weights rarely-pulled (slow) neighbours.

use crate::common::{self, ExpCtx};
use crate::runner;
use crate::spec::{Arm, ExperimentSpec, MetricKind};
use netmax_core::engine::{AlgorithmKind, PartitionKind, RunReport, Scenario};
use netmax_ml::workload::WorkloadSpec;
use netmax_net::NetworkKind;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Epoch budget per run.
    pub epochs: f64,
    /// Master seed.
    pub seed: u64,
}

impl Params {
    /// Full reproduction scale (the §V-F CIFAR100 setting).
    pub fn full() -> Self {
        Self { epochs: 30.0, seed: 19 }
    }

    /// Mode-scaled parameters.
    pub fn for_mode(ctx: &ExpCtx) -> Self {
        let mut p = Self::full();
        p.epochs = ctx.mode.epochs(p.epochs);
        p
    }
}

/// The registry entry.
pub fn specs(p: &Params) -> Vec<ExperimentSpec> {
    let scenario = Scenario::builder()
        .workers(8)
        .servers(2)
        .network(NetworkKind::HeterogeneousDynamic)
        .workload(WorkloadSpec::resnet18_cifar100(p.seed).time_scaled(0.25))
        .partition(PartitionKind::Paper8Segments)
        .slowdown(common::slowdown())
        .train_config(common::train_config(p.epochs, p.seed))
        .build();
    vec![ExperimentSpec {
        name: "fig15/resnet18-cifar100".into(),
        group: "fig15".into(),
        title: "Fig. 15 — AD-PSGD extended with the Network Monitor (§III-D, §V-H)".into(),
        scenario,
        arms: vec![
            Arm::new(AlgorithmKind::AdPsgd),
            Arm::new(AlgorithmKind::AdPsgdMonitored),
            Arm::new(AlgorithmKind::NetMax),
        ],
        seeds: vec![p.seed],
        metrics: vec![MetricKind::TimeToTarget],
    }]
}

/// Runs the three-way comparison on ResNet18/CIFAR100 (§V-F setting).
pub fn run(p: &Params) -> Vec<(AlgorithmKind, RunReport)> {
    let spec = &specs(p)[0];
    runner::execute_with_threads(spec, runner::default_threads())
        .cells
        .into_iter()
        .map(|c| (c.algorithm, c.report))
        .collect()
}

/// Prints the summary and writes the curves CSV.
pub fn print(ctx: &ExpCtx, results: &[(AlgorithmKind, RunReport)]) {
    println!("Fig. 15 — AD-PSGD extended with the Network Monitor (ResNet18/CIFAR100)");
    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>10}",
        "algorithm", "epochs", "wall(s)", "t@target(s)", "loss"
    );
    for ((label, t, _), (_, r)) in common::speedup_rows(results).iter().zip(results) {
        println!(
            "{:<18} {:>10.1} {:>12.1} {:>12.1} {:>10.4}",
            label, r.epochs_completed, r.wall_clock_s, t, r.final_train_loss
        );
    }
    common::write_curves(ctx, "fig15_adpsgd_monitor", results);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitor_cuts_adpsgd_wall_clock() {
        let p = Params { epochs: 6.0, seed: 19 };
        let results = run(&p);
        let wall = |kind: AlgorithmKind| {
            results.iter().find(|(k, _)| *k == kind).unwrap().1.wall_clock_s
        };
        // The §V-H finding: the monitored variant trains faster on the
        // wall clock than plain AD-PSGD.
        assert!(
            wall(AlgorithmKind::AdPsgdMonitored) < wall(AlgorithmKind::AdPsgd) * 1.02,
            "monitored {m} vs plain {p}",
            m = wall(AlgorithmKind::AdPsgdMonitored),
            p = wall(AlgorithmKind::AdPsgd)
        );
    }
}
