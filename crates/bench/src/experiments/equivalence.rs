//! `equivalence/*` — statistical-equivalence gates between the numerics
//! tiers.
//!
//! The fast tier reassociates floating-point reductions and replaces
//! `exp`/`ln` with bounded-error polynomials, so its trajectories are not
//! bit-identical to the strict tier's. What the tier seam *does* promise
//! is that every paper-level claim survives the switch: the headline four
//! converge to the same plateau, the adaptive-selection ordering holds,
//! and the simulated schedule (which numerics must never influence) is
//! byte-identical. This group runs the sanity workload once per tier so
//! those promises are checked as registry experiments, not just unit
//! tests; the claim tests below are the gate CI runs at tiny scale.

use crate::common::ExpCtx;
use crate::spec::{Arm, ExperimentSpec, MetricKind};
use netmax_core::engine::{AlgorithmKind, Scenario, TrainConfig};
use netmax_ml::workload::WorkloadSpec;
use netmax_ml::NumericsTier;
use netmax_net::{NetworkKind, SlowdownConfig};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Epoch budget per run.
    pub epochs: f64,
    /// Master seed.
    pub seed: u64,
}

impl Params {
    /// Full reproduction scale.
    pub fn full() -> Self {
        Self { epochs: 12.0, seed: 7 }
    }

    /// Mode-scaled parameters.
    pub fn for_mode(ctx: &ExpCtx) -> Self {
        let mut p = Self::full();
        p.epochs = ctx.mode.epochs(p.epochs);
        p
    }
}

/// The sanity scenario pinned to one numerics tier. Everything except the
/// tier matches `sanity/resnet18-cifar10`, so the strict cell doubles as
/// a scaled-down sanity rerun.
fn scenario(p: &Params, tier: NumericsTier) -> Scenario {
    Scenario::builder()
        .workers(8)
        .network(NetworkKind::HeterogeneousDynamic)
        .workload(WorkloadSpec::resnet18_cifar10(42))
        .slowdown(SlowdownConfig { change_period_s: 120.0, ..SlowdownConfig::default() })
        .train_config(TrainConfig {
            max_epochs: p.epochs,
            record_every_steps: 40,
            seed: p.seed,
            tier,
            ..TrainConfig::default()
        })
        .build()
}

fn spec(p: &Params, tier: NumericsTier) -> ExperimentSpec {
    ExperimentSpec {
        name: format!("equivalence/{}", tier.tier_name()),
        group: "equivalence".into(),
        title: format!(
            "Equivalence — headline four on the sanity workload, {} numerics tier",
            tier.tier_name()
        ),
        scenario: scenario(p, tier),
        arms: AlgorithmKind::headline_four().map(Arm::new).to_vec(),
        seeds: vec![p.seed],
        metrics: vec![MetricKind::TimeToTarget, MetricKind::EpochCost, MetricKind::Accuracy],
    }
}

/// The registry entries: one sanity-shaped run per numerics tier.
pub fn specs(p: &Params) -> Vec<ExperimentSpec> {
    vec![spec(p, NumericsTier::Strict), spec(p, NumericsTier::Fast)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner;

    fn tiny() -> Params {
        Params { epochs: 2.0, seed: 7 }
    }

    fn run_tier(tier: NumericsTier) -> runner::ExperimentResult {
        let p = tiny();
        let spec = specs(&p)
            .into_iter()
            .find(|s| s.name.ends_with(tier.tier_name()))
            .expect("registered experiment");
        runner::execute_with_threads(&spec, runner::default_threads())
    }

    /// The simulated schedule must be *independent* of numerics: peer
    /// selection, round timing, and recording cadence are driven by the
    /// network model, never by loss values. Both tiers therefore take
    /// exactly the same steps at exactly the same simulated times.
    #[test]
    fn tiers_share_the_simulated_schedule_exactly() {
        let strict = run_tier(NumericsTier::Strict);
        let fast = run_tier(NumericsTier::Fast);
        assert_eq!(strict.cells.len(), 4);
        assert_eq!(fast.cells.len(), 4);
        for (s, f) in strict.cells.iter().zip(&fast.cells) {
            assert_eq!(s.label, f.label);
            assert_eq!(s.report.global_steps, f.report.global_steps, "{}", s.label);
            assert_eq!(s.report.wall_clock_s, f.report.wall_clock_s, "{}", s.label);
            assert_eq!(s.report.samples.len(), f.report.samples.len(), "{}", s.label);
            for (a, b) in s.report.samples.iter().zip(&f.report.samples) {
                assert_eq!(a.time_s, b.time_s, "{}", s.label);
                assert_eq!(a.global_step, b.global_step, "{}", s.label);
            }
        }
    }

    /// Statistical closeness: the fast tier's loss curve tracks the
    /// strict tier's sample for sample within a small sup-norm, and the
    /// plateaus agree.
    #[test]
    fn fast_tier_loss_curves_track_strict_within_tolerance() {
        let strict = run_tier(NumericsTier::Strict);
        let fast = run_tier(NumericsTier::Fast);
        for (s, f) in strict.cells.iter().zip(&fast.cells) {
            let mut sup = 0.0f64;
            for (a, b) in s.report.samples.iter().zip(&f.report.samples) {
                sup = sup.max((a.train_loss - b.train_loss).abs());
            }
            assert!(
                sup <= 0.02 * (1.0 + s.report.final_train_loss.abs()),
                "{}: loss sup-norm {sup} across tiers",
                s.label
            );
            let df = (s.report.final_train_loss - f.report.final_train_loss).abs();
            assert!(
                df <= 0.01 * (1.0 + s.report.final_train_loss.abs()),
                "{}: final losses diverged by {df}",
                s.label
            );
            let da = (s.report.final_test_accuracy - f.report.final_test_accuracy).abs();
            assert!(da <= 0.02, "{}: final accuracies diverged by {da}", s.label);
        }
    }

    /// The paper-claim shape survives the tier switch: adaptive selection
    /// beats the synchronous collective by simulated wall-clock in *both*
    /// tiers (the claim outcome is identical, not merely similar).
    #[test]
    fn paper_claims_hold_in_both_tiers() {
        for tier in [NumericsTier::Strict, NumericsTier::Fast] {
            let result = run_tier(tier);
            let wall = |kind: AlgorithmKind| {
                result.cell(kind).expect("arm present").report.wall_clock_s
            };
            assert!(
                wall(AlgorithmKind::NetMax) < wall(AlgorithmKind::AllreduceSgd),
                "{}: NetMax must finish before the synchronous collective",
                tier.tier_name()
            );
            for cell in &result.cells {
                assert!(cell.report.global_steps > 0, "{}: no progress", cell.label);
                assert!(
                    cell.report.final_train_loss.is_finite(),
                    "{}: loss diverged",
                    cell.label
                );
            }
        }
    }

    #[test]
    fn equivalence_specs_round_trip_through_json() {
        use netmax_json::{FromJson, Json, ToJson};
        for s in specs(&tiny()) {
            let text = s.to_json().pretty();
            let back = ExperimentSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, s, "{}", s.name);
            assert_eq!(back.scenario.cfg().tier.tier_name(), {
                let (_, t) = s.name.split_once('/').unwrap();
                t
            });
        }
    }
}
