//! Fig. 19 — distributed training across six cloud regions (Appendix G):
//! test accuracy versus time for MobileNet and GoogLeNet on MNIST with
//! the Table VII per-region label skew.
//!
//! Paper finding: NetMax converges 1.9× / 1.9× / 2.1× faster than
//! AD-PSGD / PS-async / PS-sync over the WAN.

use crate::common::{self, ExpCtx};
use crate::runner;
use crate::spec::{Arm, ExperimentSpec, MetricKind};
use netmax_core::engine::{AlgorithmKind, PartitionKind, RunReport, Scenario};
use netmax_ml::workload::WorkloadSpec;
use netmax_net::NetworkKind;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Epoch budget per run.
    pub epochs: f64,
    /// Master seed.
    pub seed: u64,
}

impl Params {
    /// Full reproduction scale.
    pub fn full() -> Self {
        Self { epochs: 20.0, seed: 23 }
    }

    /// Mode-scaled parameters.
    pub fn for_mode(ctx: &ExpCtx) -> Self {
        let mut p = Self::full();
        p.epochs = ctx.mode.epochs(p.epochs);
        p
    }
}

/// One panel (model) of the figure.
pub struct Panel {
    /// Workload name.
    pub model: String,
    /// Per-algorithm reports (accuracy curves inside).
    pub results: Vec<(AlgorithmKind, RunReport)>,
}

/// The registry entries: one spec per model panel.
pub fn specs(p: &Params) -> Vec<ExperimentSpec> {
    [WorkloadSpec::mobilenet_mnist(p.seed), WorkloadSpec::googlenet_mnist(p.seed)]
        .into_iter()
        .map(|workload| {
            let mut cfg = common::train_config(p.epochs, p.seed);
            // Accuracy-vs-time curves need dense test evaluation.
            cfg.test_eval_every_records = 1;
            let name = format!("fig19/{}", workload.kind.name());
            let scenario = Scenario::builder()
                .workers(6)
                .network(NetworkKind::Wan)
                .workload(workload)
                .partition(PartitionKind::PaperTable7)
                .train_config(cfg)
                .build();
            ExperimentSpec {
                name,
                group: "fig19".into(),
                title: "Fig. 19 — cross-cloud training over six EC2 regions (Table VII skew)"
                    .into(),
                scenario,
                arms: vec![
                    Arm::new(AlgorithmKind::NetMax),
                    Arm::new(AlgorithmKind::AdPsgd),
                    Arm::new(AlgorithmKind::PsAsync),
                    Arm::new(AlgorithmKind::PsSync),
                ],
                seeds: vec![p.seed],
                metrics: vec![MetricKind::TimeToAccuracy, MetricKind::Accuracy],
            }
        })
        .collect()
}

/// Runs both panels over the 6-region WAN.
pub fn run(p: &Params) -> Vec<Panel> {
    specs(p)
        .iter()
        .map(|spec| {
            let result = runner::execute_with_threads(spec, runner::default_threads());
            Panel {
                model: result.cells[0].report.workload.clone(),
                results: result.cells.into_iter().map(|c| (c.algorithm, c.report)).collect(),
            }
        })
        .collect()
}

/// Seconds for the averaged model to first reach `target` test accuracy.
pub fn time_to_accuracy(report: &RunReport, target: f64) -> Option<f64> {
    runner::time_to_accuracy(report, target)
}

/// Prints per-panel summaries and writes the curve CSVs.
pub fn print(ctx: &ExpCtx, panels: &[Panel]) {
    println!("Fig. 19 — cross-cloud training over six EC2 regions (Table VII skew)");
    for panel in panels {
        // A target every algorithm reached.
        let target = panel
            .results
            .iter()
            .map(|(_, r)| r.final_test_accuracy)
            .fold(f64::INFINITY, f64::min)
            * 0.98;
        println!("\n[{}]  (time to {:.1}% accuracy)", panel.model, 100.0 * target);
        println!("{:<12} {:>12} {:>12} {:>8}", "algorithm", "t@acc(s)", "wall(s)", "acc");
        for (kind, r) in &panel.results {
            let t = time_to_accuracy(r, target)
                .map_or_else(|| "-".to_string(), |t| format!("{t:.1}"));
            println!(
                "{:<12} {:>12} {:>12.1} {:>7.2}%",
                kind.label(),
                t,
                r.wall_clock_s,
                100.0 * r.final_test_accuracy
            );
        }
        let stem = format!("fig19_cross_cloud_{}", panel.model.replace('/', "_"));
        common::write_curves(ctx, &stem, &panel.results);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netmax_reaches_accuracy_before_ps_sync() {
        let p = Params { epochs: 5.0, seed: 23 };
        let panels = run(&p);
        let panel = &panels[0];
        let target = panel
            .results
            .iter()
            .map(|(_, r)| r.final_test_accuracy)
            .fold(f64::INFINITY, f64::min)
            * 0.98;
        let t = |kind: AlgorithmKind| {
            let r = &panel.results.iter().find(|(k, _)| *k == kind).unwrap().1;
            time_to_accuracy(r, target).unwrap_or(r.wall_clock_s)
        };
        assert!(
            t(AlgorithmKind::NetMax) < t(AlgorithmKind::PsSync),
            "NetMax {n} vs PS-sync {p}",
            n = t(AlgorithmKind::NetMax),
            p = t(AlgorithmKind::PsSync)
        );
    }

    #[test]
    fn wan_panels_cover_both_models() {
        let p = Params { epochs: 2.0, seed: 23 };
        let panels = run(&p);
        assert_eq!(panels.len(), 2);
        assert!(panels[0].model.contains("mobilenet"));
        assert!(panels[1].model.contains("googlenet"));
    }
}
