//! Fig. 10 / Fig. 11 — speedup versus number of worker nodes.
//!
//! The paper's baseline is "the training time after finishing a specified
//! epoch in Allreduce-SGD with 4 worker nodes"; every other run's speedup
//! is that time divided by its own time to the same per-node epoch count
//! (§V-E). Heterogeneous sweeps 4–16 nodes, homogeneous 4–8.

use crate::common::{self, ExpCtx};
use netmax_core::engine::{AlgorithmKind, Scenario};
use netmax_ml::workload::Workload;
use netmax_net::NetworkKind;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Heterogeneous (Fig. 10) or homogeneous (Fig. 11).
    pub heterogeneous: bool,
    /// Worker counts to sweep.
    pub node_counts: Vec<usize>,
    /// Epoch budget per run.
    pub epochs: f64,
    /// Master seed.
    pub seed: u64,
}

impl Params {
    /// Full reproduction scale (paper's node counts).
    pub fn full(heterogeneous: bool) -> Self {
        Self {
            heterogeneous,
            node_counts: if heterogeneous { vec![4, 8, 12, 16] } else { vec![4, 6, 8] },
            epochs: 16.0,
            seed: 3,
        }
    }

    /// Mode-scaled parameters.
    pub fn for_mode(ctx: &ExpCtx, heterogeneous: bool) -> Self {
        let mut p = Self::full(heterogeneous);
        p.epochs = ctx.mode.epochs(p.epochs);
        if ctx.mode == crate::common::Mode::Tiny {
            p.node_counts.truncate(2);
        }
        p
    }
}

/// One point of the figure.
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload name.
    pub model: String,
    /// Algorithm label.
    pub algorithm: String,
    /// Worker count.
    pub nodes: usize,
    /// Wall-clock seconds to the epoch target.
    pub time_s: f64,
    /// Speedup over Allreduce-SGD with 4 workers.
    pub speedup: f64,
}

/// Runs the sweep for both workloads.
pub fn run(p: &Params) -> Vec<Row> {
    let mut rows = Vec::new();
    for make in [Workload::resnet18_cifar10 as fn(u64) -> Workload, Workload::vgg19_cifar10] {
        let workload = make(p.seed);
        let alpha = workload.optim.lr;
        let model = workload.name.clone();

        let run_one = |nodes: usize, kind: AlgorithmKind| -> f64 {
            let sc = Scenario::builder()
                .workers(nodes)
                .network(if p.heterogeneous {
                    NetworkKind::HeterogeneousDynamic
                } else {
                    NetworkKind::Homogeneous
                })
                .workload(make(p.seed))
                .slowdown(common::slowdown())
                .train_config(common::train_config(p.epochs, p.seed))
                .build();
            let mut algo = common::tuned_algorithm(kind, alpha);
            sc.run_with(algo.as_mut()).wall_clock_s
        };

        let baseline = run_one(4, AlgorithmKind::AllreduceSgd);
        for &nodes in &p.node_counts {
            for kind in AlgorithmKind::headline_four() {
                let time_s = if nodes == 4 && kind == AlgorithmKind::AllreduceSgd {
                    baseline
                } else {
                    run_one(nodes, kind)
                };
                rows.push(Row {
                    model: model.clone(),
                    algorithm: kind.label().to_string(),
                    nodes,
                    time_s,
                    speedup: baseline / time_s,
                });
            }
        }
    }
    rows
}

/// Prints the rows and writes the CSV.
pub fn print(ctx: &ExpCtx, p: &Params, rows: &[Row]) {
    let fig = if p.heterogeneous { "Fig. 10" } else { "Fig. 11" };
    println!(
        "{fig} — speedup vs worker count ({}; baseline: Allreduce@4)",
        if p.heterogeneous { "heterogeneous" } else { "homogeneous" }
    );
    println!(
        "{:<20} {:<12} {:>6} {:>12} {:>9}",
        "workload", "algorithm", "nodes", "time(s)", "speedup"
    );
    let mut csv = Vec::new();
    for r in rows {
        println!(
            "{:<20} {:<12} {:>6} {:>12.1} {:>9.2}",
            r.model, r.algorithm, r.nodes, r.time_s, r.speedup
        );
        csv.push(format!(
            "{},{},{},{:.2},{:.4}",
            r.model, r.algorithm, r.nodes, r.time_s, r.speedup
        ));
    }
    let name = if p.heterogeneous { "fig10_scalability_hetero" } else { "fig11_scalability_homo" };
    ctx.write_csv(name, "workload,algorithm,nodes,time_s,speedup", &csv);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netmax_speedup_dominates_at_every_node_count() {
        let p = Params {
            heterogeneous: true,
            node_counts: vec![4, 8],
            epochs: 5.0,
            seed: 3,
        };
        let rows = run(&p);
        for &nodes in &p.node_counts {
            {
                let model = "resnet18/cifar10";
                let get = |algo: &str| {
                    rows.iter()
                        .find(|r| r.model == model && r.nodes == nodes && r.algorithm == algo)
                        .unwrap()
                        .speedup
                };
                let netmax = get("NetMax");
                assert!(netmax >= get("Prague"), "nodes={nodes}");
                assert!(netmax >= get("Allreduce"), "nodes={nodes}");
            }
        }
    }

    #[test]
    fn allreduce4_speedup_is_exactly_one() {
        let p = Params { heterogeneous: false, node_counts: vec![4], epochs: 3.0, seed: 3 };
        let rows = run(&p);
        let base = rows
            .iter()
            .find(|r| r.nodes == 4 && r.algorithm == "Allreduce" && r.model == "resnet18/cifar10")
            .unwrap();
        assert!((base.speedup - 1.0).abs() < 1e-9);
    }
}
