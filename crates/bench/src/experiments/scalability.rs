//! Fig. 10 / Fig. 11 — speedup versus number of worker nodes.
//!
//! The paper's baseline is "the training time after finishing a specified
//! epoch in Allreduce-SGD with 4 worker nodes"; every other run's speedup
//! is that time divided by its own time to the same per-node epoch count
//! (§V-E). Heterogeneous sweeps 4–16 nodes, homogeneous 4–8.

use crate::common::{self, ExpCtx};
use crate::runner;
use crate::spec::{Arm, ExperimentSpec, MetricKind};
use netmax_core::engine::{AlgorithmKind, Scenario};
use netmax_ml::workload::WorkloadSpec;
use netmax_net::NetworkKind;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Heterogeneous (Fig. 10) or homogeneous (Fig. 11).
    pub heterogeneous: bool,
    /// Worker counts to sweep.
    pub node_counts: Vec<usize>,
    /// Epoch budget per run.
    pub epochs: f64,
    /// Master seed.
    pub seed: u64,
}

impl Params {
    /// Full reproduction scale (paper's node counts).
    pub fn full(heterogeneous: bool) -> Self {
        Self {
            heterogeneous,
            node_counts: if heterogeneous { vec![4, 8, 12, 16] } else { vec![4, 6, 8] },
            epochs: 16.0,
            seed: 3,
        }
    }

    /// Mode-scaled parameters.
    pub fn for_mode(ctx: &ExpCtx, heterogeneous: bool) -> Self {
        let mut p = Self::full(heterogeneous);
        p.epochs = ctx.mode.epochs(p.epochs);
        if ctx.mode == crate::common::Mode::Tiny {
            p.node_counts.truncate(2);
        }
        p
    }
}

/// One point of the figure.
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload name.
    pub model: String,
    /// Algorithm label.
    pub algorithm: String,
    /// Worker count.
    pub nodes: usize,
    /// Wall-clock seconds to the epoch target.
    pub time_s: f64,
    /// Speedup over Allreduce-SGD with 4 workers.
    pub speedup: f64,
}

/// The registry entries: one spec per (workload, node count).
pub fn specs(p: &Params) -> Vec<ExperimentSpec> {
    let group = if p.heterogeneous { "fig10" } else { "fig11" };
    let mut out = Vec::new();
    for make in [WorkloadSpec::resnet18_cifar10 as fn(u64) -> WorkloadSpec, WorkloadSpec::vgg19_cifar10] {
        for &nodes in &p.node_counts {
            let workload = make(p.seed);
            let name = format!("{group}/{}/n{nodes}", workload.kind.name());
            let scenario = Scenario::builder()
                .workers(nodes)
                .network(if p.heterogeneous {
                    NetworkKind::HeterogeneousDynamic
                } else {
                    NetworkKind::Homogeneous
                })
                .workload(workload)
                .slowdown(common::slowdown())
                .train_config(common::train_config(p.epochs, p.seed))
                .build();
            out.push(ExperimentSpec {
                name,
                group: group.into(),
                title: format!(
                    "{} — speedup vs worker count ({}; baseline: Allreduce@4)",
                    if p.heterogeneous { "Fig. 10" } else { "Fig. 11" },
                    if p.heterogeneous { "heterogeneous" } else { "homogeneous" }
                ),
                scenario,
                arms: AlgorithmKind::headline_four().map(Arm::new).to_vec(),
                seeds: vec![p.seed],
                metrics: vec![MetricKind::TimeToTarget],
            });
        }
    }
    out
}

/// Runs the sweep for both workloads. The speedup baseline is the
/// Allreduce-SGD run at 4 workers (§V-E); when 4 is not among the
/// requested node counts an extra baseline spec is executed unregistered.
pub fn run(p: &Params) -> Vec<Row> {
    let mut rows = Vec::new();
    for make in [WorkloadSpec::resnet18_cifar10 as fn(u64) -> WorkloadSpec, WorkloadSpec::vgg19_cifar10] {
        let workload_name = make(p.seed).kind.name().to_string();
        let results: Vec<_> = specs(p)
            .into_iter()
            .filter(|s| s.name.contains(&workload_name))
            .map(|s| runner::execute_with_threads(&s, runner::default_threads()))
            .collect();
        let baseline = results
            .iter()
            .find(|r| r.spec.scenario.workers() == 4)
            .and_then(|r| r.cell(AlgorithmKind::AllreduceSgd))
            .map(|c| c.report.wall_clock_s)
            .unwrap_or_else(|| {
                let mut bp = p.clone();
                bp.node_counts = vec![4];
                let spec = specs(&bp)
                    .into_iter()
                    .find(|s| s.name.contains(&workload_name))
                    .expect("baseline spec");
                let r = runner::execute_with_threads(&spec, runner::default_threads());
                r.cell(AlgorithmKind::AllreduceSgd).expect("allreduce arm").report.wall_clock_s
            });
        for result in results {
            for c in result.cells {
                rows.push(Row {
                    model: c.report.workload.clone(),
                    algorithm: c.label,
                    nodes: result.spec.scenario.workers(),
                    time_s: c.report.wall_clock_s,
                    speedup: baseline / c.report.wall_clock_s,
                });
            }
        }
    }
    rows
}

/// Prints the rows and writes the CSV.
pub fn print(ctx: &ExpCtx, p: &Params, rows: &[Row]) {
    let fig = if p.heterogeneous { "Fig. 10" } else { "Fig. 11" };
    println!(
        "{fig} — speedup vs worker count ({}; baseline: Allreduce@4)",
        if p.heterogeneous { "heterogeneous" } else { "homogeneous" }
    );
    println!(
        "{:<20} {:<12} {:>6} {:>12} {:>9}",
        "workload", "algorithm", "nodes", "time(s)", "speedup"
    );
    let mut csv = Vec::new();
    for r in rows {
        println!(
            "{:<20} {:<12} {:>6} {:>12.1} {:>9.2}",
            r.model, r.algorithm, r.nodes, r.time_s, r.speedup
        );
        csv.push(format!(
            "{},{},{},{:.2},{:.4}",
            r.model, r.algorithm, r.nodes, r.time_s, r.speedup
        ));
    }
    let name = if p.heterogeneous { "fig10_scalability_hetero" } else { "fig11_scalability_homo" };
    ctx.write_csv(name, "workload,algorithm,nodes,time_s,speedup", &csv);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netmax_speedup_dominates_at_every_node_count() {
        let p = Params {
            heterogeneous: true,
            node_counts: vec![4, 8],
            epochs: 5.0,
            seed: 3,
        };
        let rows = run(&p);
        for &nodes in &p.node_counts {
            {
                let model = "resnet18/cifar10";
                let get = |algo: &str| {
                    rows.iter()
                        .find(|r| r.model == model && r.nodes == nodes && r.algorithm == algo)
                        .unwrap()
                        .speedup
                };
                let netmax = get("NetMax");
                assert!(netmax >= get("Prague"), "nodes={nodes}");
                assert!(netmax >= get("Allreduce"), "nodes={nodes}");
            }
        }
    }

    #[test]
    fn allreduce4_speedup_is_exactly_one() {
        let p = Params { heterogeneous: false, node_counts: vec![4], epochs: 3.0, seed: 3 };
        let rows = run(&p);
        let base = rows
            .iter()
            .find(|r| r.nodes == 4 && r.algorithm == "Allreduce" && r.model == "resnet18/cifar10")
            .unwrap();
        assert!((base.speedup - 1.0).abs() < 1e-9);
    }
}
