//! Fig. 5 / Fig. 6 — average epoch time split into computation and
//! communication cost, 8 workers, ResNet18 and VGG19.
//!
//! Heterogeneous (Fig. 5): NetMax must incur the lowest communication
//! cost, Prague the highest, computation costs near-identical across
//! algorithms. Homogeneous (Fig. 6): everything compresses, NetMax and
//! AD-PSGD nearly tie.

use crate::common::{self, ExpCtx};
use crate::runner;
use crate::spec::{Arm, ExperimentSpec, MetricKind};
use netmax_core::engine::{AlgorithmKind, Scenario};
use netmax_ml::workload::WorkloadSpec;
use netmax_net::NetworkKind;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Heterogeneous (Fig. 5) or homogeneous (Fig. 6).
    pub heterogeneous: bool,
    /// Worker count (paper: 8).
    pub workers: usize,
    /// Epoch budget per run.
    pub epochs: f64,
    /// Master seed.
    pub seed: u64,
}

impl Params {
    /// Full reproduction scale.
    pub fn full(heterogeneous: bool) -> Self {
        Self { heterogeneous, workers: 8, epochs: 24.0, seed: 7 }
    }

    /// Mode-scaled parameters.
    pub fn for_mode(ctx: &ExpCtx, heterogeneous: bool) -> Self {
        let mut p = Self::full(heterogeneous);
        p.epochs = ctx.mode.epochs(p.epochs);
        p
    }
}

/// One bar of the figure.
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload name ("resnet18/cifar10", …).
    pub model: String,
    /// Algorithm label.
    pub algorithm: String,
    /// Computation cost per epoch (s).
    pub comp_s: f64,
    /// Communication cost per epoch (s).
    pub comm_s: f64,
    /// Total epoch time (s).
    pub epoch_s: f64,
}

/// The registry entries: one spec per workload panel.
pub fn specs(p: &Params) -> Vec<ExperimentSpec> {
    let group = if p.heterogeneous { "fig05" } else { "fig06" };
    [WorkloadSpec::resnet18_cifar10(p.seed), WorkloadSpec::vgg19_cifar10(p.seed)]
        .into_iter()
        .map(|workload| {
            let name = format!("{group}/{}", workload.kind.name());
            let scenario = Scenario::builder()
                .workers(p.workers)
                .network(if p.heterogeneous {
                    NetworkKind::HeterogeneousDynamic
                } else {
                    NetworkKind::Homogeneous
                })
                .workload(workload)
                .slowdown(common::slowdown())
                .train_config(common::train_config(p.epochs, p.seed))
                .build();
            ExperimentSpec {
                name,
                group: group.into(),
                title: format!(
                    "{} — average epoch time split, {} workers, {} network",
                    if p.heterogeneous { "Fig. 5" } else { "Fig. 6" },
                    p.workers,
                    if p.heterogeneous { "heterogeneous" } else { "homogeneous" }
                ),
                scenario,
                arms: AlgorithmKind::headline_four().map(Arm::new).to_vec(),
                seeds: vec![p.seed],
                metrics: vec![MetricKind::EpochCost],
            }
        })
        .collect()
}

/// Runs the experiment: 2 workloads × 4 algorithms.
pub fn run(p: &Params) -> Vec<Row> {
    let mut rows = Vec::new();
    for spec in specs(p) {
        let result = runner::execute_with_threads(&spec, runner::default_threads());
        for c in result.cells {
            rows.push(Row {
                model: c.report.workload.clone(),
                algorithm: c.label,
                comp_s: c.report.comp_cost_per_epoch_s(),
                comm_s: c.report.comm_cost_per_epoch_s(),
                epoch_s: c.report.epoch_time_avg_s(),
            });
        }
    }
    rows
}

/// Prints the rows and writes the CSV.
pub fn print(ctx: &ExpCtx, p: &Params, rows: &[Row]) {
    let fig = if p.heterogeneous { "Fig. 5" } else { "Fig. 6" };
    let net = if p.heterogeneous { "heterogeneous" } else { "homogeneous" };
    println!("{fig} — average epoch time, {} workers, {net} network", p.workers);
    println!(
        "{:<20} {:<12} {:>10} {:>10} {:>10}",
        "workload", "algorithm", "comp(s)", "comm(s)", "epoch(s)"
    );
    let mut csv = Vec::new();
    for r in rows {
        println!(
            "{:<20} {:<12} {:>10.2} {:>10.2} {:>10.2}",
            r.model, r.algorithm, r.comp_s, r.comm_s, r.epoch_s
        );
        csv.push(format!(
            "{},{},{:.3},{:.3},{:.3}",
            r.model, r.algorithm, r.comp_s, r.comm_s, r.epoch_s
        ));
    }
    let name = if p.heterogeneous { "fig05_epoch_time_hetero" } else { "fig06_epoch_time_homo" };
    ctx.write_csv(name, "workload,algorithm,comp_s,comm_s,epoch_s", &csv);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Mode;

    #[test]
    fn hetero_ordering_matches_paper() {
        let p = Params { heterogeneous: true, workers: 8, epochs: 6.0, seed: 7 };
        let rows = run(&p);
        // Communication ordering for ResNet18: NetMax < AD-PSGD and
        // Prague the worst (Fig. 5's headline).
        let get = |algo: &str| {
            rows.iter()
                .find(|r| r.model == "resnet18/cifar10" && r.algorithm == algo)
                .unwrap()
        };
        assert!(get("NetMax").comm_s <= get("AD-PSGD").comm_s * 1.05);
        assert!(get("Prague").comm_s > get("NetMax").comm_s);
        assert!(get("Allreduce").comm_s > get("AD-PSGD").comm_s);
        // Computation costs nearly identical across algorithms.
        let comps: Vec<f64> = ["NetMax", "AD-PSGD", "Allreduce", "Prague"]
            .iter()
            .map(|a| get(a).comp_s)
            .collect();
        let (lo, hi) = (
            comps.iter().copied().fold(f64::INFINITY, f64::min),
            comps.iter().copied().fold(0.0f64, f64::max),
        );
        assert!(hi / lo < 1.25, "comp costs should be near-identical: {comps:?}");
    }

    #[test]
    fn mode_scaling_applies() {
        let ctx = ExpCtx::with_mode(Mode::Tiny);
        let p = Params::for_mode(&ctx, true);
        assert_eq!(p.epochs, 2.0);
    }
}
