//! Table II / Table III — test accuracy of the trained models across
//! worker counts (heterogeneous and homogeneous networks).
//!
//! The paper's point is parity: "all the approaches can achieve around
//! 90% test accuracy for both ResNet18 and VGG19, while NetMax performs
//! slightly better" (§V-D). Accuracy must *not* be the axis NetMax wins
//! on — time is.

use crate::common::{self, ExpCtx};
use netmax_core::engine::{AlgorithmKind, Scenario};
use netmax_ml::workload::Workload;
use netmax_net::NetworkKind;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Heterogeneous (Table II) or homogeneous (Table III).
    pub heterogeneous: bool,
    /// Worker counts (paper: 4/8/16 heterogeneous, 4/6/8 homogeneous).
    pub node_counts: Vec<usize>,
    /// Epoch budget per run.
    pub epochs: f64,
    /// Master seed.
    pub seed: u64,
}

impl Params {
    /// Full reproduction scale.
    pub fn full(heterogeneous: bool) -> Self {
        Self {
            heterogeneous,
            node_counts: if heterogeneous { vec![4, 8, 16] } else { vec![4, 6, 8] },
            epochs: 24.0,
            seed: 5,
        }
    }

    /// Mode-scaled parameters.
    pub fn for_mode(ctx: &ExpCtx, heterogeneous: bool) -> Self {
        let mut p = Self::full(heterogeneous);
        p.epochs = ctx.mode.epochs(p.epochs);
        if ctx.mode == crate::common::Mode::Tiny {
            p.node_counts.truncate(1);
        }
        p
    }
}

/// One table cell group (a row of the paper's table).
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload name.
    pub model: String,
    /// Worker count.
    pub nodes: usize,
    /// `(algorithm label, final test accuracy)`.
    pub accuracy: Vec<(String, f64)>,
}

/// Runs the table.
pub fn run(p: &Params) -> Vec<Row> {
    let mut rows = Vec::new();
    for make in [Workload::resnet18_cifar10 as fn(u64) -> Workload, Workload::vgg19_cifar10] {
        for &nodes in &p.node_counts {
            let workload = make(p.seed);
            let alpha = workload.optim.lr;
            let model = workload.name.clone();
            let sc = Scenario::builder()
                .workers(nodes)
                .network(if p.heterogeneous {
                    NetworkKind::HeterogeneousDynamic
                } else {
                    NetworkKind::Homogeneous
                })
                .workload(workload)
                .slowdown(common::slowdown())
                .train_config(common::train_config(p.epochs, p.seed))
                .build();
            let accuracy = common::compare(&sc, &AlgorithmKind::headline_four(), alpha)
                .into_iter()
                .map(|(k, r)| (k.label().to_string(), r.final_test_accuracy))
                .collect();
            rows.push(Row { model, nodes, accuracy });
        }
    }
    rows
}

/// Prints the table and writes the CSV.
pub fn print(ctx: &ExpCtx, p: &Params, rows: &[Row]) {
    let tab = if p.heterogeneous { "Table II" } else { "Table III" };
    println!(
        "{tab} — test accuracy over a {} network",
        if p.heterogeneous { "heterogeneous" } else { "homogeneous" }
    );
    println!(
        "{:<20} {:>6} {:>10} {:>10} {:>10} {:>10}",
        "workload", "nodes", "Prague", "Allreduce", "AD-PSGD", "NetMax"
    );
    let mut csv = Vec::new();
    for r in rows {
        let get = |name: &str| {
            r.accuracy
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, a)| *a)
                .unwrap_or(f64::NAN)
        };
        println!(
            "{:<20} {:>6} {:>9.2}% {:>9.2}% {:>9.2}% {:>9.2}%",
            r.model,
            r.nodes,
            100.0 * get("Prague"),
            100.0 * get("Allreduce"),
            100.0 * get("AD-PSGD"),
            100.0 * get("NetMax"),
        );
        csv.push(format!(
            "{},{},{:.4},{:.4},{:.4},{:.4}",
            r.model,
            r.nodes,
            get("Prague"),
            get("Allreduce"),
            get("AD-PSGD"),
            get("NetMax")
        ));
    }
    let name = if p.heterogeneous { "tab02_accuracy_hetero" } else { "tab03_accuracy_homo" };
    ctx.write_csv(name, "workload,nodes,prague,allreduce,ad_psgd,netmax", &csv);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_algorithms_reach_comparable_accuracy() {
        let p = Params { heterogeneous: true, node_counts: vec![4], epochs: 8.0, seed: 5 };
        let rows = run(&p);
        for r in &rows {
            let accs: Vec<f64> = r.accuracy.iter().map(|(_, a)| *a).collect();
            let lo = accs.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = accs.iter().copied().fold(0.0f64, f64::max);
            assert!(lo > 0.70, "{}: accuracy too low {accs:?}", r.model);
            assert!(hi - lo < 0.10, "{}: accuracy spread too wide {accs:?}", r.model);
        }
    }
}
