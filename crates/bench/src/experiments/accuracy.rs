//! Table II / Table III — test accuracy of the trained models across
//! worker counts (heterogeneous and homogeneous networks).
//!
//! The paper's point is parity: "all the approaches can achieve around
//! 90% test accuracy for both ResNet18 and VGG19, while NetMax performs
//! slightly better" (§V-D). Accuracy must *not* be the axis NetMax wins
//! on — time is.

use crate::common::{self, ExpCtx};
use crate::runner;
use crate::spec::{Arm, ExperimentSpec, MetricKind};
use netmax_core::engine::{AlgorithmKind, Scenario};
use netmax_ml::workload::WorkloadSpec;
use netmax_net::NetworkKind;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Heterogeneous (Table II) or homogeneous (Table III).
    pub heterogeneous: bool,
    /// Worker counts (paper: 4/8/16 heterogeneous, 4/6/8 homogeneous).
    pub node_counts: Vec<usize>,
    /// Epoch budget per run.
    pub epochs: f64,
    /// Master seed.
    pub seed: u64,
}

impl Params {
    /// Full reproduction scale.
    pub fn full(heterogeneous: bool) -> Self {
        Self {
            heterogeneous,
            node_counts: if heterogeneous { vec![4, 8, 16] } else { vec![4, 6, 8] },
            epochs: 24.0,
            seed: 5,
        }
    }

    /// Mode-scaled parameters.
    pub fn for_mode(ctx: &ExpCtx, heterogeneous: bool) -> Self {
        let mut p = Self::full(heterogeneous);
        p.epochs = ctx.mode.epochs(p.epochs);
        if ctx.mode == crate::common::Mode::Tiny {
            p.node_counts.truncate(1);
        }
        p
    }
}

/// One table cell group (a row of the paper's table).
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload name.
    pub model: String,
    /// Worker count.
    pub nodes: usize,
    /// `(algorithm label, final test accuracy)`.
    pub accuracy: Vec<(String, f64)>,
}

/// The registry entries: one spec per (workload, node count).
pub fn specs(p: &Params) -> Vec<ExperimentSpec> {
    let group = if p.heterogeneous { "tab02" } else { "tab03" };
    let mut out = Vec::new();
    for make in [WorkloadSpec::resnet18_cifar10 as fn(u64) -> WorkloadSpec, WorkloadSpec::vgg19_cifar10] {
        for &nodes in &p.node_counts {
            let workload = make(p.seed);
            let name = format!("{group}/{}/n{nodes}", workload.kind.name());
            let scenario = Scenario::builder()
                .workers(nodes)
                .network(if p.heterogeneous {
                    NetworkKind::HeterogeneousDynamic
                } else {
                    NetworkKind::Homogeneous
                })
                .workload(workload)
                .slowdown(common::slowdown())
                .train_config(common::train_config(p.epochs, p.seed))
                .build();
            out.push(ExperimentSpec {
                name,
                group: group.into(),
                title: format!(
                    "{} — test accuracy over a {} network",
                    if p.heterogeneous { "Table II" } else { "Table III" },
                    if p.heterogeneous { "heterogeneous" } else { "homogeneous" }
                ),
                scenario,
                arms: AlgorithmKind::headline_four().map(Arm::new).to_vec(),
                seeds: vec![p.seed],
                metrics: vec![MetricKind::Accuracy],
            });
        }
    }
    out
}

/// Runs the table.
pub fn run(p: &Params) -> Vec<Row> {
    specs(p)
        .iter()
        .map(|spec| {
            let result = runner::execute_with_threads(spec, runner::default_threads());
            Row {
                model: result.cells[0].report.workload.clone(),
                nodes: result.spec.scenario.workers(),
                accuracy: result
                    .cells
                    .into_iter()
                    .map(|c| (c.label, c.report.final_test_accuracy))
                    .collect(),
            }
        })
        .collect()
}

/// Prints the table and writes the CSV.
pub fn print(ctx: &ExpCtx, p: &Params, rows: &[Row]) {
    let tab = if p.heterogeneous { "Table II" } else { "Table III" };
    println!(
        "{tab} — test accuracy over a {} network",
        if p.heterogeneous { "heterogeneous" } else { "homogeneous" }
    );
    println!(
        "{:<20} {:>6} {:>10} {:>10} {:>10} {:>10}",
        "workload", "nodes", "Prague", "Allreduce", "AD-PSGD", "NetMax"
    );
    let mut csv = Vec::new();
    for r in rows {
        let get = |name: &str| {
            r.accuracy
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, a)| *a)
                .unwrap_or(f64::NAN)
        };
        println!(
            "{:<20} {:>6} {:>9.2}% {:>9.2}% {:>9.2}% {:>9.2}%",
            r.model,
            r.nodes,
            100.0 * get("Prague"),
            100.0 * get("Allreduce"),
            100.0 * get("AD-PSGD"),
            100.0 * get("NetMax"),
        );
        csv.push(format!(
            "{},{},{:.4},{:.4},{:.4},{:.4}",
            r.model,
            r.nodes,
            get("Prague"),
            get("Allreduce"),
            get("AD-PSGD"),
            get("NetMax")
        ));
    }
    let name = if p.heterogeneous { "tab02_accuracy_hetero" } else { "tab03_accuracy_homo" };
    ctx.write_csv(name, "workload,nodes,prague,allreduce,ad_psgd,netmax", &csv);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_algorithms_reach_comparable_accuracy() {
        let p = Params { heterogeneous: true, node_counts: vec![4], epochs: 8.0, seed: 5 };
        let rows = run(&p);
        for r in &rows {
            let accs: Vec<f64> = r.accuracy.iter().map(|(_, a)| *a).collect();
            let lo = accs.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = accs.iter().copied().fold(0.0f64, f64::max);
            assert!(lo > 0.70, "{}: accuracy too low {accs:?}", r.model);
            assert!(hi - lo < 0.10, "{}: accuracy spread too wide {accs:?}", r.model);
        }
    }
}
