//! Fig. 7 — source of NetMax's improvement: serial vs parallel execution
//! × uniform vs adaptive neighbour selection (§V-C).
//!
//! The paper's finding: adaptive probabilities contribute the majority of
//! the gain; the compute/communication overlap is marginal because GPU
//! compute is much shorter than communication.

use crate::common::{self, ExpCtx};
use crate::runner;
use crate::spec::{Arm, ExperimentSpec, MetricKind};
use netmax_core::engine::{AlgorithmKind, ExecutionMode, Scenario};
use netmax_ml::workload::WorkloadSpec;
use netmax_net::NetworkKind;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Worker count (paper: 8).
    pub workers: usize,
    /// Epoch budget per run.
    pub epochs: f64,
    /// Master seed.
    pub seed: u64,
}

impl Params {
    /// Full reproduction scale.
    pub fn full() -> Self {
        Self { workers: 8, epochs: 24.0, seed: 11 }
    }

    /// Mode-scaled parameters.
    pub fn for_mode(ctx: &ExpCtx) -> Self {
        let mut p = Self::full();
        p.epochs = ctx.mode.epochs(p.epochs);
        p
    }
}

/// One bar of the figure.
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload name.
    pub model: String,
    /// Setting label ("serial+uniform", …).
    pub setting: String,
    /// Average per-node epoch time (s).
    pub epoch_s: f64,
    /// Simulated seconds to the common loss target (the Fig. 8-style
    /// convergence view of the same four settings).
    pub t_target_s: f64,
}

/// The registry entries: one spec per (workload, execution mode), each
/// with the uniform and adaptive arms.
pub fn specs(p: &Params) -> Vec<ExperimentSpec> {
    let mut out = Vec::new();
    for workload in [WorkloadSpec::resnet18_cifar10(p.seed), WorkloadSpec::vgg19_cifar10(p.seed)] {
        for exec in [ExecutionMode::Serial, ExecutionMode::Parallel] {
            let mut cfg = common::train_config(p.epochs, p.seed);
            cfg.execution = exec;
            let scenario = Scenario::builder()
                .workers(p.workers)
                .network(NetworkKind::HeterogeneousDynamic)
                .workload(workload.clone())
                .slowdown(common::slowdown())
                .train_config(cfg)
                .build();
            out.push(ExperimentSpec {
                name: format!("fig07/{}/{}", workload.kind.name(), exec.name()),
                group: "fig07".into(),
                title: "Fig. 7 — execution/selection ablation (heterogeneous, 8 workers)".into(),
                scenario,
                arms: vec![
                    Arm::new(AlgorithmKind::NetMaxUniform)
                        .labeled(format!("{}+uniform", exec.name())),
                    Arm::new(AlgorithmKind::NetMax).labeled(format!("{}+adaptive", exec.name())),
                ],
                seeds: vec![p.seed],
                metrics: vec![MetricKind::EpochCost, MetricKind::TimeToTarget],
            });
        }
    }
    out
}

/// Runs the 4 settings × 2 workloads.
pub fn run(p: &Params) -> Vec<Row> {
    let mut rows = Vec::new();
    // Two specs (serial, parallel) per workload share one loss target.
    for pair in specs(p).chunks(2) {
        let results: Vec<_> = pair
            .iter()
            .map(|s| runner::execute_with_threads(s, runner::default_threads()))
            .collect();
        let target = common::common_loss_target_of(
            results.iter().flat_map(|r| r.cells.iter().map(|c| &c.report)),
        );
        for result in results {
            for c in result.cells {
                rows.push(Row {
                    model: c.report.workload.clone(),
                    setting: c.label,
                    epoch_s: c.report.epoch_time_avg_s(),
                    t_target_s: c.report.time_to_loss(target).unwrap_or(c.report.wall_clock_s),
                });
            }
        }
    }
    rows
}

/// Prints the rows and writes the CSV.
pub fn print(ctx: &ExpCtx, rows: &[Row]) {
    println!("Fig. 7 — execution/selection ablation (heterogeneous, 8 workers)");
    println!("{:<20} {:<20} {:>10} {:>12}", "workload", "setting", "epoch(s)", "t@target(s)");
    let mut csv = Vec::new();
    for r in rows {
        println!(
            "{:<20} {:<20} {:>10.2} {:>12.1}",
            r.model, r.setting, r.epoch_s, r.t_target_s
        );
        csv.push(format!("{},{},{:.3},{:.2}", r.model, r.setting, r.epoch_s, r.t_target_s));
    }
    ctx.write_csv("fig07_ablation", "workload,setting,epoch_s,t_target_s", &csv);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_beats_uniform_and_parallel_beats_serial() {
        let p = Params { workers: 8, epochs: 8.0, seed: 11 };
        let rows = run(&p);
        let get = |model: &str, setting: &str| {
            rows.iter()
                .find(|r| r.model == model && r.setting == setting)
                .map(|r| r.epoch_s)
                .unwrap()
        };
        for model in ["resnet18/cifar10", "vgg19/cifar10"] {
            // Full NetMax (parallel+adaptive) is the fastest setting.
            let full = get(model, "parallel+adaptive");
            assert!(full <= get(model, "serial+uniform") * 1.02, "{model}");
            // Parallel beats serial within the same selection policy.
            assert!(get(model, "parallel+uniform") <= get(model, "serial+uniform"));
            // Adaptive beats uniform within the same execution mode.
            assert!(
                get(model, "parallel+adaptive") <= get(model, "parallel+uniform") * 1.05,
                "{model}: adaptive should not lose to uniform"
            );
        }
    }
}
