//! Fig. 7 — source of NetMax's improvement: serial vs parallel execution
//! × uniform vs adaptive neighbour selection (§V-C).
//!
//! The paper's finding: adaptive probabilities contribute the majority of
//! the gain; the compute/communication overlap is marginal because GPU
//! compute is much shorter than communication.

use crate::common::{self, ExpCtx};
use netmax_core::engine::{AlgorithmKind, ExecutionMode, Scenario};
use netmax_ml::workload::Workload;
use netmax_net::NetworkKind;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Worker count (paper: 8).
    pub workers: usize,
    /// Epoch budget per run.
    pub epochs: f64,
    /// Master seed.
    pub seed: u64,
}

impl Params {
    /// Full reproduction scale.
    pub fn full() -> Self {
        Self { workers: 8, epochs: 24.0, seed: 11 }
    }

    /// Mode-scaled parameters.
    pub fn for_mode(ctx: &ExpCtx) -> Self {
        let mut p = Self::full();
        p.epochs = ctx.mode.epochs(p.epochs);
        p
    }
}

/// One bar of the figure.
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload name.
    pub model: String,
    /// Setting label ("serial+uniform", …).
    pub setting: String,
    /// Average per-node epoch time (s).
    pub epoch_s: f64,
    /// Simulated seconds to the common loss target (the Fig. 8-style
    /// convergence view of the same four settings).
    pub t_target_s: f64,
}

/// Runs the 4 settings × 2 workloads.
pub fn run(p: &Params) -> Vec<Row> {
    let settings = [
        ("serial+uniform", ExecutionMode::Serial, AlgorithmKind::NetMaxUniform),
        ("parallel+uniform", ExecutionMode::Parallel, AlgorithmKind::NetMaxUniform),
        ("serial+adaptive", ExecutionMode::Serial, AlgorithmKind::NetMax),
        ("parallel+adaptive", ExecutionMode::Parallel, AlgorithmKind::NetMax),
    ];
    let mut rows = Vec::new();
    for workload in [Workload::resnet18_cifar10(p.seed), Workload::vgg19_cifar10(p.seed)] {
        let alpha = workload.optim.lr;
        let name = workload.name.clone();
        let mut reports = Vec::new();
        for (label, exec, kind) in settings {
            let mut cfg = common::train_config(p.epochs, p.seed);
            cfg.execution = exec;
            let sc = Scenario::builder()
                .workers(p.workers)
                .network(NetworkKind::HeterogeneousDynamic)
                .workload(workload.clone())
                .slowdown(common::slowdown())
                .train_config(cfg)
                .build();
            let mut algo = common::tuned_algorithm(kind, alpha);
            reports.push((label, sc.run_with(algo.as_mut())));
        }
        // A loss level every setting reached, clear of plateau noise.
        let target = common::common_loss_target_of(reports.iter().map(|(_, r)| r));
        for (label, report) in reports {
            rows.push(Row {
                model: name.clone(),
                setting: label.to_string(),
                epoch_s: report.epoch_time_avg_s(),
                t_target_s: report.time_to_loss(target).unwrap_or(report.wall_clock_s),
            });
        }
    }
    rows
}

/// Prints the rows and writes the CSV.
pub fn print(ctx: &ExpCtx, rows: &[Row]) {
    println!("Fig. 7 — execution/selection ablation (heterogeneous, 8 workers)");
    println!("{:<20} {:<20} {:>10} {:>12}", "workload", "setting", "epoch(s)", "t@target(s)");
    let mut csv = Vec::new();
    for r in rows {
        println!(
            "{:<20} {:<20} {:>10.2} {:>12.1}",
            r.model, r.setting, r.epoch_s, r.t_target_s
        );
        csv.push(format!("{},{},{:.3},{:.2}", r.model, r.setting, r.epoch_s, r.t_target_s));
    }
    ctx.write_csv("fig07_ablation", "workload,setting,epoch_s,t_target_s", &csv);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_beats_uniform_and_parallel_beats_serial() {
        let p = Params { workers: 8, epochs: 8.0, seed: 11 };
        let rows = run(&p);
        let get = |model: &str, setting: &str| {
            rows.iter()
                .find(|r| r.model == model && r.setting == setting)
                .map(|r| r.epoch_s)
                .unwrap()
        };
        for model in ["resnet18/cifar10", "vgg19/cifar10"] {
            // Full NetMax (parallel+adaptive) is the fastest setting.
            let full = get(model, "parallel+adaptive");
            assert!(full <= get(model, "serial+uniform") * 1.02, "{model}");
            // Parallel beats serial within the same selection policy.
            assert!(get(model, "parallel+uniform") <= get(model, "serial+uniform"));
            // Adaptive beats uniform within the same execution mode.
            assert!(
                get(model, "parallel+adaptive") <= get(model, "parallel+uniform") * 1.05,
                "{model}: adaptive should not lose to uniform"
            );
        }
    }
}
