//! Table V — test accuracy with non-uniform data partitioning across all
//! five datasets.
//!
//! Accuracy parity again (NetMax comparable or slightly ahead), with the
//! paper's two notable absolute levels preserved in shape: MNIST non-IID
//! lands well below the usual ~99% (the label-removal cost), and
//! Tiny-ImageNet sits lowest overall.

use crate::common::ExpCtx;
use crate::experiments::nonuniform::{self, Case};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Which dataset rows to produce (all five by default).
    pub cases: Vec<Case>,
    /// Epoch budget override; `None` keeps each case's own budget.
    pub epochs: Option<f64>,
    /// Master seed.
    pub seed: u64,
}

impl Params {
    /// Full reproduction scale: all five datasets.
    pub fn full() -> Self {
        Self {
            cases: vec![
                Case::Cifar10,
                Case::Cifar100,
                Case::MnistNonIid,
                Case::TinyImageNet,
                Case::ImageNet,
            ],
            epochs: None,
            seed: 13,
        }
    }

    /// Mode-scaled parameters (tiny keeps two cheap datasets).
    pub fn for_mode(ctx: &ExpCtx) -> Self {
        let mut p = Self::full();
        match ctx.mode {
            crate::common::Mode::Full => {}
            crate::common::Mode::Quick => p.epochs = Some(6.0),
            crate::common::Mode::Tiny => {
                p.cases = vec![Case::Cifar10, Case::MnistNonIid];
                p.epochs = Some(2.0);
            }
        }
        p
    }
}

/// The registry entries: the five non-uniform cases re-registered as
/// Table V rows (same scenarios as the per-figure `nonuniform` entries,
/// but under each case's own Table V budget/seed).
pub fn specs(p: &Params) -> Vec<crate::spec::ExperimentSpec> {
    p.cases
        .iter()
        .map(|&case| {
            let mut np = nonuniform::Params::full(case);
            np.seed = p.seed;
            if let Some(e) = p.epochs {
                np.epochs = e;
            }
            let mut spec = nonuniform::spec_for(&np, "tab05");
            spec.title = "Table V — accuracy with non-uniform data partitioning".into();
            spec
        })
        .collect()
}

/// One row of Table V.
#[derive(Debug, Clone)]
pub struct Row {
    /// Dataset/model label.
    pub workload: String,
    /// `(algorithm, accuracy)` cells.
    pub accuracy: Vec<(String, f64)>,
}

/// Runs every case and extracts final accuracies.
pub fn run(p: &Params) -> Vec<Row> {
    p.cases
        .iter()
        .map(|&case| {
            let mut np = nonuniform::Params::full(case);
            np.seed = p.seed;
            if let Some(e) = p.epochs {
                np.epochs = e;
            }
            let out = nonuniform::run(&np);
            Row {
                workload: out.model,
                accuracy: out
                    .results
                    .into_iter()
                    .map(|(k, r)| (k.label().to_string(), r.final_test_accuracy))
                    .collect(),
            }
        })
        .collect()
}

/// Prints the table and writes the CSV.
pub fn print(ctx: &ExpCtx, rows: &[Row]) {
    println!("Table V — accuracy with non-uniform data partitioning");
    println!(
        "{:<24} {:>10} {:>10} {:>10} {:>10}",
        "workload", "Prague", "Allreduce", "AD-PSGD", "NetMax"
    );
    let mut csv = Vec::new();
    for r in rows {
        let get = |name: &str| {
            r.accuracy
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, a)| *a)
                .unwrap_or(f64::NAN)
        };
        println!(
            "{:<24} {:>9.2}% {:>9.2}% {:>9.2}% {:>9.2}%",
            r.workload,
            100.0 * get("Prague"),
            100.0 * get("Allreduce"),
            100.0 * get("AD-PSGD"),
            100.0 * get("NetMax"),
        );
        csv.push(format!(
            "{},{:.4},{:.4},{:.4},{:.4}",
            r.workload,
            get("Prague"),
            get("Allreduce"),
            get("AD-PSGD"),
            get("NetMax")
        ));
    }
    ctx.write_csv("tab05_accuracy_nonuniform", "workload,prague,allreduce,ad_psgd,netmax", &csv);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_row_per_case() {
        let p = Params {
            cases: vec![Case::Cifar10, Case::MnistNonIid],
            epochs: Some(2.0),
            seed: 13,
        };
        let rows = run(&p);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.accuracy.len(), 4);
            for (_, acc) in &r.accuracy {
                assert!((0.0..=1.0).contains(acc));
            }
        }
    }
}
