//! `faults/*` — elastic-network stress suite: drifting links, node
//! crash, rolling churn, and straggler compute, far beyond the paper's
//! single re-drawn slow link.
//!
//! The paper's thesis is that adaptive selection should track a network
//! whose condition drifts (§I, §V-H). This group turns that claim into
//! measurable results under regimes the paper never ran: Markov-modulated
//! links drifting slower/faster than the Monitor period, a worker crash
//! mid-run, rolling crash/rejoin churn, and permanent compute
//! stragglers. Every experiment compares the headline four (NetMax,
//! AD-PSGD, Allreduce, Prague); the paper-claim tests assert that
//! adaptive selection degrades most gracefully — synchronous collectives
//! pay for every fault, NetMax routes around them.

use crate::common::{self, ExpCtx};
use crate::spec::{Arm, ExperimentSpec, MetricKind};
use netmax_core::engine::{AlgorithmKind, Scenario};
use netmax_ml::workload::WorkloadSpec;
use netmax_net::{
    FaultPlan, LinkDynamics, MarkovConfig, NetworkKind, NodeFault, Straggler,
};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Epoch budget per run.
    pub epochs: f64,
    /// Master seed.
    pub seed: u64,
}

/// Rough simulated seconds per epoch of the scaled ResNet18 workload on
/// the heterogeneous fabric for the *fastest* arm (NetMax; the
/// synchronous arms take longer) — used to place fault times mid-run.
const SEC_PER_EPOCH_EST: f64 = 15.0;

impl Params {
    /// Full reproduction scale.
    pub fn full() -> Self {
        Self { epochs: 12.0, seed: 23 }
    }

    /// Mode-scaled parameters.
    pub fn for_mode(ctx: &ExpCtx) -> Self {
        let mut p = Self::full();
        p.epochs = ctx.mode.epochs(p.epochs);
        p
    }

    /// Virtual time roughly `frac` of the way through the run.
    fn at(&self, frac: f64) -> f64 {
        frac * self.epochs * SEC_PER_EPOCH_EST
    }
}

fn base(p: &Params, dynamics: Option<LinkDynamics>, faults: FaultPlan) -> Scenario {
    let mut b = Scenario::builder()
        .workers(8)
        .network(NetworkKind::HeterogeneousDynamic)
        .workload(WorkloadSpec::resnet18_cifar10(p.seed).time_scaled(0.25))
        .slowdown(common::slowdown())
        .train_config(common::train_config(p.epochs, p.seed))
        .faults(faults);
    if let Some(d) = dynamics {
        b = b.dynamics(d);
    }
    b.build()
}

fn spec(
    p: &Params,
    name: &str,
    title: &str,
    dynamics: Option<LinkDynamics>,
    faults: FaultPlan,
) -> ExperimentSpec {
    ExperimentSpec {
        name: format!("faults/{name}"),
        group: "faults".into(),
        title: title.into(),
        scenario: base(p, dynamics, faults),
        arms: AlgorithmKind::headline_four().map(Arm::new).to_vec(),
        seeds: vec![p.seed],
        metrics: vec![MetricKind::TimeToTarget, MetricKind::EpochCost],
    }
}

/// The crash experiment's victim worker (exposed for the claim tests).
pub const CRASHED_NODE: usize = 5;

/// The registry entries: slow-drift and fast-drift Markov links, a
/// single mid-run crash, rolling churn, and a permanent straggler.
pub fn specs(p: &Params) -> Vec<ExperimentSpec> {
    let churn = FaultPlan {
        node_faults: (0..3)
            .map(|k| NodeFault {
                node: 1 + 2 * k,
                crash_s: p.at(0.25) + k as f64 * p.at(0.15),
                rejoin_s: Some(p.at(0.25) + k as f64 * p.at(0.15) + p.at(0.2)),
            })
            .collect(),
        ..FaultPlan::none()
    };
    vec![
        spec(
            p,
            "slow-drift",
            "Faults — Markov-modulated links drifting slower than the Monitor period",
            Some(LinkDynamics::MarkovModulated(MarkovConfig::slow_drift())),
            FaultPlan::none(),
        ),
        spec(
            p,
            "fast-drift",
            "Faults — Markov-modulated links drifting faster than the Monitor period",
            Some(LinkDynamics::MarkovModulated(MarkovConfig::fast_drift())),
            FaultPlan::none(),
        ),
        spec(
            p,
            "crash",
            "Faults — one worker crashes mid-run and never returns",
            None,
            FaultPlan {
                node_faults: vec![NodeFault {
                    node: CRASHED_NODE,
                    crash_s: p.at(0.4),
                    rejoin_s: None,
                }],
                ..FaultPlan::none()
            },
        ),
        spec(
            p,
            "churn",
            "Faults — rolling churn: three workers crash and rejoin in sequence",
            None,
            churn,
        ),
        spec(
            p,
            "straggler",
            "Faults — one worker computes 4x slower for the whole run",
            None,
            FaultPlan {
                stragglers: vec![Straggler { node: 2, factor: 4.0 }],
                ..FaultPlan::none()
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner;

    fn tiny() -> Params {
        Params { epochs: 2.0, seed: 23 }
    }

    fn run_named(name: &str) -> runner::ExperimentResult {
        let p = tiny();
        let spec = specs(&p)
            .into_iter()
            .find(|s| s.name.ends_with(name))
            .expect("registered experiment");
        runner::execute_with_threads(&spec, runner::default_threads())
    }

    fn wall(result: &runner::ExperimentResult, kind: AlgorithmKind) -> f64 {
        result.cell(kind).expect("arm present").report.wall_clock_s
    }

    #[test]
    fn crash_run_completes_truthfully_for_every_algorithm() {
        let result = run_named("crash");
        assert_eq!(result.cells.len(), 4);
        for cell in &result.cells {
            let r = &cell.report;
            assert!(r.global_steps > 0, "{}: no progress", cell.label);
            assert!(
                r.epochs_completed >= 2.0,
                "{}: live fleet stopped at {} epochs",
                cell.label,
                r.epochs_completed
            );
            // The dead worker's clock froze at the crash; the survivors
            // ran on.
            let dead = r.per_node[CRASHED_NODE].clock_s;
            let live_max = r
                .per_node
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != CRASHED_NODE)
                .map(|(_, n)| n.clock_s)
                .fold(0.0f64, f64::max);
            assert!(
                dead < live_max,
                "{}: dead clock {dead} does not trail the fleet ({live_max})",
                cell.label
            );
        }
    }

    #[test]
    fn adaptive_selection_degrades_most_gracefully_under_crash() {
        // The paper-claim shape: the synchronous collectives pay for the
        // crash (and the heterogeneous fabric) every round; adaptive
        // asynchronous selection routes around both.
        let result = run_named("crash");
        let netmax = wall(&result, AlgorithmKind::NetMax);
        assert!(
            netmax < wall(&result, AlgorithmKind::AllreduceSgd),
            "NetMax must finish before the synchronous collective"
        );
        assert!(
            netmax < wall(&result, AlgorithmKind::Prague),
            "NetMax must finish before Prague's contended partial-allreduces"
        );
    }

    #[test]
    fn drifting_links_favour_the_adaptive_policy() {
        for name in ["slow-drift", "fast-drift"] {
            let result = run_named(name);
            let netmax = wall(&result, AlgorithmKind::NetMax);
            assert!(
                netmax < wall(&result, AlgorithmKind::AllreduceSgd),
                "{name}: NetMax must beat the synchronous collective"
            );
            assert!(
                netmax < wall(&result, AlgorithmKind::Prague),
                "{name}: NetMax must beat Prague"
            );
        }
    }

    #[test]
    fn churn_run_completes_and_rejoined_workers_resume() {
        let result = run_named("churn");
        for cell in &result.cells {
            let r = &cell.report;
            assert!(
                r.epochs_completed >= 2.0,
                "{}: stopped at {} epochs",
                cell.label,
                r.epochs_completed
            );
            // Every churned worker rejoined and kept accumulating clock.
            for k in 0..3usize {
                let node = 1 + 2 * k;
                assert!(
                    r.per_node[node].epochs > 0.0,
                    "{}: churned node {node} never trained",
                    cell.label
                );
            }
        }
    }

    #[test]
    fn straggler_slows_the_synchronous_round_most() {
        let p = tiny();
        let strag = run_named("straggler");
        // Same scenario without the straggler.
        let clean_spec = ExperimentSpec {
            scenario: base(&p, None, FaultPlan::none()),
            ..specs(&p).into_iter().find(|s| s.name.ends_with("straggler")).unwrap()
        };
        let clean = runner::execute_with_threads(&clean_spec, runner::default_threads());
        let ratio = |k: AlgorithmKind| wall(&strag, k) / wall(&clean, k);
        // Allreduce pays the 4x straggler in every round; NetMax only
        // when it visits the straggler.
        assert!(
            ratio(AlgorithmKind::AllreduceSgd) > ratio(AlgorithmKind::NetMax),
            "the synchronous collective must degrade more than the adaptive policy \
             (allreduce {:.2}x vs netmax {:.2}x)",
            ratio(AlgorithmKind::AllreduceSgd),
            ratio(AlgorithmKind::NetMax)
        );
    }

    #[test]
    fn fault_specs_round_trip_through_json() {
        use netmax_json::{FromJson, Json, ToJson};
        for s in specs(&tiny()) {
            let text = s.to_json().pretty();
            let back = ExperimentSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, s, "{}", s.name);
        }
    }
}
