//! One module per reproduced table/figure plus the ablations.
//!
//! | module | reproduces |
//! |---|---|
//! | [`fig03`] | Fig. 3 — intra vs inter machine iteration time |
//! | [`epoch_time`] | Fig. 5 (heterogeneous) and Fig. 6 (homogeneous) epoch-time split |
//! | [`fig07`] | Fig. 7 — serial/parallel × uniform/adaptive ablation |
//! | [`loss_curves`] | Fig. 8 (heterogeneous) and Fig. 9 (homogeneous) loss vs time |
//! | [`scalability`] | Fig. 10 / Fig. 11 — speedup vs worker count |
//! | [`accuracy`] | Table II / Table III — final accuracy per node count |
//! | [`nonuniform`] | Fig. 12/13/16/17/18 — non-uniform & non-IID loss curves |
//! | [`tab05`] | Table V — accuracy under non-uniform partitioning |
//! | [`fig14`] | Fig. 14 + Table VI — MobileNet/CIFAR100 incl. PS baselines |
//! | [`fig15`] | Fig. 15 — AD-PSGD + Network Monitor extension |
//! | [`fig19`] | Fig. 19 — cross-cloud (WAN) test accuracy vs time |
//! | [`ablations`] | weighting / Ts / β ablations from DESIGN.md |
//! | [`faults`] | elastic-network stress suite: drift, crash, churn, stragglers |
//! | [`scale`] | fleet-scale sweep (32–4 096 workers) on the sparse control plane |
//! | [`equivalence`] | strict-vs-fast numerics-tier statistical-equivalence gates |

pub mod ablations;
pub mod accuracy;
pub mod epoch_time;
pub mod equivalence;
pub mod faults;
pub mod fig03;
pub mod fig07;
pub mod fig14;
pub mod fig15;
pub mod fig19;
pub mod loss_curves;
pub mod nonuniform;
pub mod scale;
pub mod scalability;
pub mod tab05;
