//! Fig. 8 / Fig. 9 — training loss versus wall-clock time, 8 workers,
//! ResNet18 and VGG19 on CIFAR10.
//!
//! This is the paper's headline result: on the heterogeneous network
//! NetMax reaches the convergence target ~3.7× / 3.4× / 1.9× faster than
//! Prague / Allreduce-SGD / AD-PSGD (§V-D). On the homogeneous network
//! NetMax and AD-PSGD nearly coincide, and both beat the collectives.

use crate::common::{self, ExpCtx};
use crate::runner;
use crate::spec::{Arm, ExperimentSpec, MetricKind};
use netmax_core::engine::{AlgorithmKind, RunReport, Scenario};
use netmax_ml::workload::WorkloadSpec;
use netmax_net::NetworkKind;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Heterogeneous (Fig. 8) or homogeneous (Fig. 9).
    pub heterogeneous: bool,
    /// Worker count (paper: 8).
    pub workers: usize,
    /// Epoch budget per run.
    pub epochs: f64,
    /// Master seed.
    pub seed: u64,
}

impl Params {
    /// Full reproduction scale.
    pub fn full(heterogeneous: bool) -> Self {
        Self { heterogeneous, workers: 8, epochs: 48.0, seed: 7 }
    }

    /// Mode-scaled parameters.
    pub fn for_mode(ctx: &ExpCtx, heterogeneous: bool) -> Self {
        let mut p = Self::full(heterogeneous);
        p.epochs = ctx.mode.epochs(p.epochs);
        p
    }
}

/// Results for one workload panel.
pub struct Panel {
    /// Workload name.
    pub model: String,
    /// Per-algorithm full run reports (loss curves inside).
    pub results: Vec<(AlgorithmKind, RunReport)>,
}

/// The registry entries: one spec per workload panel.
pub fn specs(p: &Params) -> Vec<ExperimentSpec> {
    let group = if p.heterogeneous { "fig08" } else { "fig09" };
    [WorkloadSpec::resnet18_cifar10(p.seed), WorkloadSpec::vgg19_cifar10(p.seed)]
        .into_iter()
        .map(|workload| {
            let name = format!("{group}/{}", workload.kind.name());
            let scenario = Scenario::builder()
                .workers(p.workers)
                .network(if p.heterogeneous {
                    NetworkKind::HeterogeneousDynamic
                } else {
                    NetworkKind::Homogeneous
                })
                .workload(workload)
                .slowdown(common::slowdown())
                .train_config(common::train_config(p.epochs, p.seed))
                .build();
            ExperimentSpec {
                name,
                group: group.into(),
                title: format!(
                    "{} — training loss vs time ({} network, {} workers)",
                    if p.heterogeneous { "Fig. 8" } else { "Fig. 9" },
                    if p.heterogeneous { "heterogeneous" } else { "homogeneous" },
                    p.workers
                ),
                scenario,
                arms: AlgorithmKind::headline_four().map(Arm::new).to_vec(),
                seeds: vec![p.seed],
                metrics: vec![MetricKind::TimeToTarget, MetricKind::EpochCost, MetricKind::Accuracy],
            }
        })
        .collect()
}

/// Runs both panels (ResNet18 and VGG19) through the spec executor.
pub fn run(p: &Params) -> Vec<Panel> {
    specs(p)
        .iter()
        .map(|spec| {
            let result = runner::execute_with_threads(spec, runner::default_threads());
            Panel {
                model: result.cells[0].report.workload.clone(),
                results: result
                    .cells
                    .into_iter()
                    .map(|c| (c.algorithm, c.report))
                    .collect(),
            }
        })
        .collect()
}

/// Prints speedup tables and writes the curve CSVs.
pub fn print(ctx: &ExpCtx, p: &Params, panels: &[Panel]) {
    let fig = if p.heterogeneous { "Fig. 8" } else { "Fig. 9" };
    println!("{fig} — training loss vs time ({} network, {} workers)",
        if p.heterogeneous { "heterogeneous" } else { "homogeneous" }, p.workers);
    for panel in panels {
        println!("\n[{}]", panel.model);
        println!(
            "{:<12} {:>12} {:>12} {:>10} {:>8}",
            "algorithm", "t@target(s)", "wall(s)", "loss", "slower×"
        );
        for ((label, t, speedup), (_, r)) in
            common::speedup_rows(&panel.results).iter().zip(&panel.results)
        {
            println!(
                "{:<12} {:>12.1} {:>12.1} {:>10.4} {:>8.2}",
                label, t, r.wall_clock_s, r.final_train_loss, speedup
            );
        }
        let csv_name = format!(
            "{}_loss_{}_{}",
            if p.heterogeneous { "fig08" } else { "fig09" },
            if p.heterogeneous { "hetero" } else { "homo" },
            panel.model.replace('/', "_")
        );
        common::write_curves(ctx, &csv_name, &panel.results);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netmax_fastest_to_target_on_heterogeneous() {
        let p = Params { heterogeneous: true, workers: 8, epochs: 12.0, seed: 7 };
        let panels = run(&p);
        for panel in &panels {
            // Claim 1 (Fig. 8): among the asynchronous gossip family,
            // NetMax reaches the common loss target first. (Allreduce can
            // win *shallow* targets in the early transient through its
            // 8×-batch averaged gradients; the paper's speedup is read at
            // the convergence plateau, checked by the full harness.)
            let rows = common::speedup_rows(&panel.results);
            let t = |name: &str| rows.iter().find(|(n, _, _)| n == name).unwrap().1;
            assert!(
                t("NetMax") <= t("AD-PSGD") * 1.02,
                "{}: NetMax {} vs AD-PSGD {}",
                panel.model,
                t("NetMax"),
                t("AD-PSGD")
            );
            assert!(t("NetMax") <= t("Prague") * 1.02, "{}", panel.model);
            // Claim 2 (Fig. 5): NetMax has the lowest wall-clock for the
            // fixed epoch budget.
            let wall = |kind: AlgorithmKind| {
                panel.results.iter().find(|(k, _)| *k == kind).unwrap().1.wall_clock_s
            };
            let nm = wall(AlgorithmKind::NetMax);
            assert!(nm <= wall(AlgorithmKind::AdPsgd), "{}", panel.model);
            assert!(nm <= wall(AlgorithmKind::AllreduceSgd), "{}", panel.model);
            assert!(nm <= wall(AlgorithmKind::Prague), "{}", panel.model);
        }
    }

    #[test]
    fn homogeneous_netmax_and_adpsgd_comparable() {
        let p = Params { heterogeneous: false, workers: 8, epochs: 8.0, seed: 7 };
        let panels = run(&p);
        let panel = &panels[0];
        let rows = common::speedup_rows(&panel.results);
        let t = |name: &str| rows.iter().find(|(n, _, _)| n == name).unwrap().1;
        // Within 40% of each other (the paper's curves nearly coincide).
        let (nm, ad) = (t("NetMax"), t("AD-PSGD"));
        assert!(nm / ad < 1.4 && ad / nm < 1.4, "NetMax {nm} vs AD-PSGD {ad}");
        // And the gossip pair beats the collectives on wall-clock for the
        // same epoch budget (the Fig. 6 epoch-time view; on this fast
        // network every curve hits the loss target within the first few
        // samples, so time-to-target cannot separate the families).
        let wall = |kind: AlgorithmKind| {
            panel.results.iter().find(|(k, _)| *k == kind).unwrap().1.wall_clock_s
        };
        let nm_wall = wall(AlgorithmKind::NetMax);
        assert!(wall(AlgorithmKind::AllreduceSgd) > nm_wall);
        assert!(wall(AlgorithmKind::Prague) > nm_wall);
    }
}
