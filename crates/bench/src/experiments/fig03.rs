//! Fig. 3 — average iteration time for intra-machine (fast) and
//! inter-machine (slow) communication, ResNet18 and VGG19.
//!
//! The paper measures these on its real cluster; here they follow from
//! the calibrated link presets and model profiles. The claim under test:
//! inter-machine iterations are several-fold slower, so "network
//! communication through a fast link can result in reduced iteration
//! time" (§II-B).

use crate::common::ExpCtx;
use crate::spec::{ExperimentSpec, MetricKind};
use netmax_core::engine::{ExecutionMode, Scenario};
use netmax_ml::profile::ModelProfile;
use netmax_ml::workload::WorkloadSpec;
use netmax_net::LinkQuality;

/// One bar pair of the figure.
#[derive(Debug, Clone)]
pub struct Row {
    /// Model name.
    pub model: String,
    /// Iteration time over an intra-machine link (s).
    pub intra_s: f64,
    /// Iteration time over an inter-machine link (s).
    pub inter_s: f64,
}

impl Row {
    /// Inter/intra slowdown factor.
    pub fn ratio(&self) -> f64 {
        self.inter_s / self.intra_s
    }
}

/// The registry entry. Fig. 3 is a timing identity computed from the
/// calibrated profiles, so the spec declares no arms — the executor runs
/// zero training cells and the artifact carries the
/// [`MetricKind::IterationTime`] summary.
pub fn specs() -> Vec<ExperimentSpec> {
    vec![ExperimentSpec {
        name: "fig03/iteration-time".into(),
        group: "fig03".into(),
        title: "Fig. 3 — iteration time, intra- vs inter-machine (batch 128)".into(),
        scenario: Scenario::builder()
            .workers(2)
            .workload(WorkloadSpec::resnet18_cifar10(1))
            .max_epochs(0.1)
            .build(),
        arms: Vec::new(),
        seeds: Vec::new(),
        metrics: vec![MetricKind::IterationTime],
    }]
}

/// Computes the figure (no training needed — this is a timing identity).
pub fn run() -> Vec<Row> {
    let intra = LinkQuality::intra_machine();
    let inter = LinkQuality::gbit_ethernet();
    [ModelProfile::resnet18(), ModelProfile::vgg19()]
        .into_iter()
        .map(|p| {
            let c = p.compute_time(128);
            let bytes = p.param_bytes();
            Row {
                model: p.name.clone(),
                intra_s: ExecutionMode::Parallel.iteration_time(c, intra.transfer_time(bytes)),
                inter_s: ExecutionMode::Parallel.iteration_time(c, inter.transfer_time(bytes)),
            }
        })
        .collect()
}

/// Prints the figure rows and writes the CSV.
pub fn print(ctx: &ExpCtx, rows: &[Row]) {
    println!("Fig. 3 — iteration time, intra- vs inter-machine (batch 128)");
    println!("{:<10} {:>10} {:>10} {:>8}", "model", "intra(s)", "inter(s)", "ratio");
    let mut csv = Vec::new();
    for r in rows {
        println!(
            "{:<10} {:>10.3} {:>10.3} {:>8.2}",
            r.model,
            r.intra_s,
            r.inter_s,
            r.ratio()
        );
        csv.push(format!("{},{:.4},{:.4},{:.3}", r.model, r.intra_s, r.inter_s, r.ratio()));
    }
    ctx.write_csv("fig03_iteration_time", "model,intra_s,inter_s,ratio", &csv);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inter_is_severalfold_slower() {
        let rows = run();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.ratio() > 2.0, "{}: ratio {} too small", r.model, r.ratio());
        }
        // ResNet18's ratio lands near the paper's "up to 4×".
        let resnet = &rows[0];
        assert!(resnet.ratio() > 3.0 && resnet.ratio() < 5.0, "ratio {}", resnet.ratio());
    }

    #[test]
    fn vgg_is_slower_than_resnet_on_both_links() {
        let rows = run();
        assert!(rows[1].intra_s > rows[0].intra_s);
        assert!(rows[1].inter_s > rows[0].inter_s);
    }
}
