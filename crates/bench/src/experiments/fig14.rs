//! Fig. 14 + Table VI — training a small model (MobileNet) on a complex
//! dataset (CIFAR100), with parameter-server baselines included (§V-G).
//!
//! The paper's findings reproduced here: PS-async has the worst
//! convergence *per epoch* (fast co-located workers dominate the global
//! model), PS-sync the worst *wall-clock* (slowest-link pacing plus the
//! central bottleneck), and NetMax leads on time at comparable accuracy
//! (Table VI: all six approaches within ~1%).

use crate::common::{self, ExpCtx};
use crate::runner;
use crate::spec::{Arm, ExperimentSpec, MetricKind};
use netmax_core::engine::{AlgorithmKind, PartitionKind, RunReport, Scenario};
use netmax_ml::workload::WorkloadSpec;
use netmax_net::NetworkKind;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Epoch budget per run.
    pub epochs: f64,
    /// Master seed.
    pub seed: u64,
}

impl Params {
    /// Full reproduction scale (paper's 120-epoch schedule compressed 4×).
    pub fn full() -> Self {
        Self { epochs: 30.0, seed: 17 }
    }

    /// Mode-scaled parameters.
    pub fn for_mode(ctx: &ExpCtx) -> Self {
        let mut p = Self::full();
        p.epochs = ctx.mode.epochs(p.epochs);
        p
    }
}

/// The six algorithms of Fig. 14.
pub fn algorithms() -> [AlgorithmKind; 6] {
    [
        AlgorithmKind::Prague,
        AlgorithmKind::AllreduceSgd,
        AlgorithmKind::AdPsgd,
        AlgorithmKind::PsSync,
        AlgorithmKind::PsAsync,
        AlgorithmKind::NetMax,
    ]
}

/// The registry entry.
pub fn specs(p: &Params) -> Vec<ExperimentSpec> {
    let scenario = Scenario::builder()
        .workers(8)
        .servers(2)
        .network(NetworkKind::HeterogeneousDynamic)
        .workload(WorkloadSpec::mobilenet_cifar100(p.seed).time_scaled(0.25))
        .partition(PartitionKind::Paper8Segments)
        .slowdown(common::slowdown())
        .train_config(common::train_config(p.epochs, p.seed))
        .build();
    vec![ExperimentSpec {
        name: "fig14/mobilenet-cifar100".into(),
        group: "fig14".into(),
        title: "Fig. 14 + Table VI — MobileNet on CIFAR100 incl. PS baselines (§V-G)".into(),
        scenario,
        arms: algorithms().map(Arm::new).to_vec(),
        seeds: vec![p.seed],
        metrics: vec![MetricKind::TimeToTarget, MetricKind::Accuracy],
    }]
}

/// Runs MobileNet/CIFAR100 with the §V-F non-uniform setting plus the two
/// PS baselines.
pub fn run(p: &Params) -> Vec<(AlgorithmKind, RunReport)> {
    let spec = &specs(p)[0];
    runner::execute_with_threads(spec, runner::default_threads())
        .cells
        .into_iter()
        .map(|c| (c.algorithm, c.report))
        .collect()
}

/// Prints the summary/Table VI row and writes the curves CSV.
pub fn print(ctx: &ExpCtx, results: &[(AlgorithmKind, RunReport)]) {
    println!("Fig. 14 — MobileNet on CIFAR100 (8 workers, 2 servers, incl. PS baselines)");
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>10} {:>8}",
        "algorithm", "epochs", "wall(s)", "t@target(s)", "loss", "acc"
    );
    for ((label, t, _), (_, r)) in common::speedup_rows(results).iter().zip(results) {
        println!(
            "{:<12} {:>10.1} {:>12.1} {:>12.1} {:>10.4} {:>7.2}%",
            label,
            r.epochs_completed,
            r.wall_clock_s,
            t,
            r.final_train_loss,
            100.0 * r.final_test_accuracy
        );
    }
    common::write_curves(ctx, "fig14_mobilenet_ps", results);

    println!("\nTable VI — accuracy of MobileNet on CIFAR100");
    let cells: Vec<String> = results
        .iter()
        .map(|(k, r)| format!("{}={:.2}%", k.label(), 100.0 * r.final_test_accuracy))
        .collect();
    println!("{}", cells.join("  "));
    let csv: Vec<String> = results
        .iter()
        .map(|(k, r)| format!("{},{:.4}", k.label(), r.final_test_accuracy))
        .collect();
    ctx.write_csv("tab06_accuracy_mobilenet", "algorithm,accuracy", &csv);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_algorithms_run_and_ps_sync_is_slowest_family() {
        let p = Params { epochs: 3.0, seed: 17 };
        let results = run(&p);
        assert_eq!(results.len(), 6);
        let wall = |kind: AlgorithmKind| {
            results.iter().find(|(k, _)| *k == kind).unwrap().1.wall_clock_s
        };
        // PS-sync pays the central bottleneck *and* slowest-link pacing:
        // it must be slower than NetMax by a clear margin.
        assert!(wall(AlgorithmKind::PsSync) > 1.5 * wall(AlgorithmKind::NetMax));
        // Async PS escapes the round barrier.
        assert!(wall(AlgorithmKind::PsAsync) < wall(AlgorithmKind::PsSync));
    }
}
