//! Figs. 12, 13, 16, 17, 18 — non-uniform data partitioning (§V-F and
//! Appendix F): loss versus epochs *and* versus time.
//!
//! The paper's claim: with segmented (⟨2,1,2,1⟩-style) or non-IID
//! label-removed data, NetMax matches the baselines per epoch and beats
//! them decisively on wall-clock. Each figure is one case of this module:
//!
//! * Fig. 12 — ResNet18 / CIFAR100, 8 workers, segments;
//! * Fig. 13 — ResNet50 / ImageNet, 16 workers, segments;
//! * Fig. 16 — ResNet18 / CIFAR10, 8 workers, segments;
//! * Fig. 17 — ResNet18 / Tiny-ImageNet, 8 workers, segments;
//! * Fig. 18 — MobileNet / MNIST, 8 workers, Table IV non-IID labels.

use crate::common::{self, ExpCtx};
use crate::runner;
use crate::spec::{Arm, ExperimentSpec, MetricKind};
use netmax_core::engine::{AlgorithmKind, PartitionKind, RunReport, Scenario};
use netmax_ml::workload::WorkloadSpec;
use netmax_net::NetworkKind;

/// Which paper figure to reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Case {
    /// Fig. 12: ResNet18 on CIFAR100.
    Cifar100,
    /// Fig. 13: ResNet50 on ImageNet (16 workers).
    ImageNet,
    /// Fig. 16: ResNet18 on CIFAR10.
    Cifar10,
    /// Fig. 17: ResNet18 on Tiny-ImageNet.
    TinyImageNet,
    /// Fig. 18: MobileNet on MNIST with Table IV label removal.
    MnistNonIid,
}

impl Case {
    /// Figure number in the paper.
    pub fn figure(&self) -> &'static str {
        match self {
            Case::Cifar100 => "Fig. 12",
            Case::ImageNet => "Fig. 13",
            Case::Cifar10 => "Fig. 16",
            Case::TinyImageNet => "Fig. 17",
            Case::MnistNonIid => "Fig. 18",
        }
    }

    /// CSV artefact stem.
    pub fn csv_stem(&self) -> &'static str {
        match self {
            Case::Cifar100 => "fig12_cifar100_nonuniform",
            Case::ImageNet => "fig13_imagenet_nonuniform",
            Case::Cifar10 => "fig16_cifar10_nonuniform",
            Case::TinyImageNet => "fig17_tiny_imagenet",
            Case::MnistNonIid => "fig18_mnist_noniid",
        }
    }

    fn workers(&self) -> usize {
        match self {
            Case::ImageNet => 16,
            _ => 8,
        }
    }

    fn workload(&self, seed: u64) -> WorkloadSpec {
        // The paper's 120/75-epoch schedules compressed 4× (decay
        // milestones scale along, see `Workload::time_scaled`).
        match self {
            Case::Cifar100 => WorkloadSpec::resnet18_cifar100(seed).time_scaled(0.25),
            Case::ImageNet => WorkloadSpec::resnet50_imagenet(seed).time_scaled(0.25),
            Case::Cifar10 => WorkloadSpec::resnet18_cifar10(seed).time_scaled(0.5),
            Case::TinyImageNet => WorkloadSpec::resnet18_tiny_imagenet(seed).time_scaled(0.5),
            Case::MnistNonIid => WorkloadSpec::mobilenet_mnist(seed),
        }
    }

    fn partition(&self) -> PartitionKind {
        match self {
            Case::ImageNet => PartitionKind::Paper16Segments,
            Case::MnistNonIid => PartitionKind::PaperTable4,
            _ => PartitionKind::Paper8Segments,
        }
    }
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Which figure.
    pub case: Case,
    /// Epoch budget (defaults to the case workload's scaled target).
    pub epochs: f64,
    /// Master seed.
    pub seed: u64,
}

impl Params {
    /// Full reproduction scale.
    pub fn full(case: Case) -> Self {
        let epochs = case.workload(1).instantiate().target_epochs;
        Self { case, epochs, seed: 13 }
    }

    /// Mode-scaled parameters.
    pub fn for_mode(ctx: &ExpCtx, case: Case) -> Self {
        let mut p = Self::full(case);
        p.epochs = ctx.mode.epochs(p.epochs);
        p
    }
}

/// The experiment result: per-algorithm reports (curves inside).
pub struct Outcome {
    /// Workload name.
    pub model: String,
    /// Per-algorithm reports.
    pub results: Vec<(AlgorithmKind, RunReport)>,
}

/// The registry entry for one case (optionally under a different group,
/// e.g. `tab05` re-registers the same runs as table rows).
pub fn spec_for(p: &Params, group: &str) -> ExperimentSpec {
    let mut cfg = common::train_config(p.epochs, p.seed);
    if p.case == Case::ImageNet {
        // 16-node ImageNet runs are the most expensive; sample lighter.
        cfg.record_every_steps = 100;
        cfg.loss_sample_size = 256;
    }
    let scenario = Scenario::builder()
        .workers(p.case.workers())
        .servers(2)
        .network(NetworkKind::HeterogeneousDynamic)
        .workload(p.case.workload(p.seed))
        .partition(p.case.partition())
        .slowdown(common::slowdown())
        .train_config(cfg)
        .build();
    ExperimentSpec {
        name: format!("{group}/{}", p.case.workload(p.seed).kind.name()),
        group: group.into(),
        title: format!(
            "{} — non-uniform partitioning, {} workers on 2 servers",
            p.case.figure(),
            p.case.workers()
        ),
        scenario,
        arms: AlgorithmKind::headline_four().map(Arm::new).to_vec(),
        seeds: vec![p.seed],
        metrics: vec![MetricKind::TimeToTarget, MetricKind::Accuracy],
    }
}

/// The registry entry for this case under its own figure group.
pub fn specs(p: &Params) -> Vec<ExperimentSpec> {
    vec![spec_for(p, p.case.csv_stem().split('_').next().unwrap_or("nonuniform"))]
}

/// Runs the case with the four headline algorithms, two GPU servers
/// hosting the workers (the §V-F deployment).
pub fn run(p: &Params) -> Outcome {
    let spec = spec_for(p, "nonuniform");
    let result = runner::execute_with_threads(&spec, runner::default_threads());
    Outcome {
        model: result.cells[0].report.workload.clone(),
        results: result.cells.into_iter().map(|c| (c.algorithm, c.report)).collect(),
    }
}

/// Prints the convergence summary and writes the curve CSV.
pub fn print(ctx: &ExpCtx, p: &Params, out: &Outcome) {
    println!(
        "{} — {} with non-uniform partitioning ({} workers on 2 servers)",
        p.case.figure(),
        out.model,
        p.case.workers()
    );
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>10} {:>8}",
        "algorithm", "epochs", "wall(s)", "t@target(s)", "loss", "acc"
    );
    for ((label, t, _), (_, r)) in
        common::speedup_rows(&out.results).iter().zip(&out.results)
    {
        println!(
            "{:<12} {:>10.1} {:>12.1} {:>12.1} {:>10.4} {:>7.2}%",
            label,
            r.epochs_completed,
            r.wall_clock_s,
            t,
            r.final_train_loss,
            100.0 * r.final_test_accuracy
        );
    }
    common::write_curves(ctx, p.case.csv_stem(), &out.results);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnist_noniid_runs_and_netmax_leads_on_time() {
        let p = Params { case: Case::MnistNonIid, epochs: 4.0, seed: 13 };
        let out = run(&p);
        let rows = common::speedup_rows(&out.results);
        let t = |name: &str| rows.iter().find(|(n, _, _)| n == name).unwrap().1;
        assert!(t("NetMax") <= t("Allreduce"), "NetMax should beat Allreduce on time");
        assert!(t("NetMax") <= t("Prague"));
    }

    #[test]
    fn segmented_case_loses_no_data() {
        let p = Params { case: Case::Cifar100, epochs: 2.0, seed: 13 };
        let out = run(&p);
        for (_, r) in &out.results {
            assert!(r.final_train_loss.is_finite());
            assert!(r.epochs_completed >= 2.0);
        }
    }

    #[test]
    fn cases_have_expected_worker_counts() {
        assert_eq!(Case::ImageNet.workers(), 16);
        assert_eq!(Case::Cifar100.workers(), 8);
        assert_eq!(Case::MnistNonIid.partition(), PartitionKind::PaperTable4);
    }
}
