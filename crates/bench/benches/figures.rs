//! One criterion bench per reproduced table/figure, running the `tiny`
//! preset of each experiment so `cargo bench` regenerates every result's
//! machinery end-to-end with bounded runtime. The full-scale rows/series
//! come from the registry CLI (`cargo run --release -p netmax-bench
//! --bin netmax-bench -- run fig08`, …).

use criterion::{criterion_group, criterion_main, Criterion};
use netmax_bench::common::{ExpCtx, Mode};
use netmax_bench::experiments::*;
use std::hint::black_box;
use std::time::Duration;

fn tiny_ctx() -> ExpCtx {
    ExpCtx::with_mode(Mode::Tiny)
}

fn group<'a>(c: &'a mut Criterion, name: &str) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(5));
    g.warm_up_time(Duration::from_secs(1));
    g
}

fn bench_fig03(c: &mut Criterion) {
    let mut g = group(c, "figures");
    g.bench_function("fig03_iteration_time", |b| b.iter(|| black_box(fig03::run())));
    g.finish();
}

fn bench_fig05_fig06(c: &mut Criterion) {
    let ctx = tiny_ctx();
    let mut g = group(c, "figures");
    let p5 = epoch_time::Params::for_mode(&ctx, true);
    g.bench_function("fig05_epoch_time_hetero", |b| b.iter(|| black_box(epoch_time::run(&p5))));
    let p6 = epoch_time::Params::for_mode(&ctx, false);
    g.bench_function("fig06_epoch_time_homo", |b| b.iter(|| black_box(epoch_time::run(&p6))));
    g.finish();
}

fn bench_fig07(c: &mut Criterion) {
    let ctx = tiny_ctx();
    let mut g = group(c, "figures");
    let p = fig07::Params::for_mode(&ctx);
    g.bench_function("fig07_ablation", |b| b.iter(|| black_box(fig07::run(&p))));
    g.finish();
}

fn bench_fig08_fig09(c: &mut Criterion) {
    let ctx = tiny_ctx();
    let mut g = group(c, "figures");
    let p8 = loss_curves::Params::for_mode(&ctx, true);
    g.bench_function("fig08_loss_hetero", |b| b.iter(|| black_box(loss_curves::run(&p8).len())));
    let p9 = loss_curves::Params::for_mode(&ctx, false);
    g.bench_function("fig09_loss_homo", |b| b.iter(|| black_box(loss_curves::run(&p9).len())));
    g.finish();
}

fn bench_fig10_fig11(c: &mut Criterion) {
    let ctx = tiny_ctx();
    let mut g = group(c, "figures");
    let p10 = scalability::Params::for_mode(&ctx, true);
    g.bench_function("fig10_scalability_hetero", |b| {
        b.iter(|| black_box(scalability::run(&p10).len()))
    });
    let p11 = scalability::Params::for_mode(&ctx, false);
    g.bench_function("fig11_scalability_homo", |b| {
        b.iter(|| black_box(scalability::run(&p11).len()))
    });
    g.finish();
}

fn bench_tab02_tab03(c: &mut Criterion) {
    let ctx = tiny_ctx();
    let mut g = group(c, "tables");
    let p2 = accuracy::Params::for_mode(&ctx, true);
    g.bench_function("tab02_accuracy_hetero", |b| b.iter(|| black_box(accuracy::run(&p2).len())));
    let p3 = accuracy::Params::for_mode(&ctx, false);
    g.bench_function("tab03_accuracy_homo", |b| b.iter(|| black_box(accuracy::run(&p3).len())));
    g.finish();
}

fn bench_nonuniform_figs(c: &mut Criterion) {
    let ctx = tiny_ctx();
    let mut g = group(c, "figures");
    for (name, case) in [
        ("fig12_cifar100_nonuniform", nonuniform::Case::Cifar100),
        ("fig13_imagenet_nonuniform", nonuniform::Case::ImageNet),
        ("fig16_cifar10_nonuniform", nonuniform::Case::Cifar10),
        ("fig17_tiny_imagenet", nonuniform::Case::TinyImageNet),
        ("fig18_mnist_noniid", nonuniform::Case::MnistNonIid),
    ] {
        let p = nonuniform::Params::for_mode(&ctx, case);
        g.bench_function(name, |b| b.iter(|| black_box(nonuniform::run(&p).results.len())));
    }
    g.finish();
}

fn bench_tab05(c: &mut Criterion) {
    let ctx = tiny_ctx();
    let mut g = group(c, "tables");
    let p = tab05::Params::for_mode(&ctx);
    g.bench_function("tab05_accuracy_nonuniform", |b| b.iter(|| black_box(tab05::run(&p).len())));
    g.finish();
}

fn bench_fig14(c: &mut Criterion) {
    let ctx = tiny_ctx();
    let mut g = group(c, "figures");
    let p = fig14::Params::for_mode(&ctx);
    g.bench_function("fig14_mobilenet_ps_tab06", |b| b.iter(|| black_box(fig14::run(&p).len())));
    g.finish();
}

fn bench_fig15(c: &mut Criterion) {
    let ctx = tiny_ctx();
    let mut g = group(c, "figures");
    let p = fig15::Params::for_mode(&ctx);
    g.bench_function("fig15_adpsgd_monitor", |b| b.iter(|| black_box(fig15::run(&p).len())));
    g.finish();
}

fn bench_fig19(c: &mut Criterion) {
    let ctx = tiny_ctx();
    let mut g = group(c, "figures");
    let p = fig19::Params::for_mode(&ctx);
    g.bench_function("fig19_cross_cloud", |b| b.iter(|| black_box(fig19::run(&p).len())));
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let ctx = tiny_ctx();
    let mut g = group(c, "ablations");
    let p = ablations::Params::for_mode(&ctx);
    g.bench_function("abl_weighting", |b| b.iter(|| black_box(ablations::weighting(&p).len())));
    g.bench_function("abl_ts_period", |b| b.iter(|| black_box(ablations::ts_period(&p).len())));
    g.bench_function("abl_ema_beta", |b| b.iter(|| black_box(ablations::ema_beta(&p).len())));
    g.finish();
}

criterion_group!(
    figures,
    bench_fig03,
    bench_fig05_fig06,
    bench_fig07,
    bench_fig08_fig09,
    bench_fig10_fig11,
    bench_tab02_tab03,
    bench_nonuniform_figs,
    bench_tab05,
    bench_fig14,
    bench_fig15,
    bench_fig19,
    bench_ablations
);
criterion_main!(figures);
