//! Micro-benchmarks of the computational kernels behind NetMax: the
//! symmetric eigensolver, the policy LP, full Algorithm-3 policy
//! generation, `Y_P` construction, and raw engine throughput.
//!
//! These answer the operational question the paper leaves implicit: how
//! expensive is one Network-Monitor round, and how does it scale with the
//! fleet size M?

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netmax_core::gossip_matrix::build_y;
use netmax_core::policy::{solve_policy_lp, PolicyGenerator, PolicySearchConfig};
use netmax_linalg::{second_largest_eigenvalue, Matrix};
use netmax_net::Topology;
use std::hint::black_box;

/// Two-island iteration-time matrix (the standard heterogeneous shape).
fn times(m: usize) -> Matrix {
    let mut t = Matrix::zeros(m, m);
    for i in 0..m {
        for j in 0..m {
            if i != j {
                t[(i, j)] = if (i / (m / 2)) == (j / (m / 2)) { 0.2 } else { 1.0 };
            }
        }
    }
    t
}

/// A feasible uniform policy for eigen benchmarks.
fn uniform_policy(m: usize) -> Matrix {
    let q = 0.8 / (m as f64 - 1.0);
    let mut p = Matrix::zeros(m, m);
    for i in 0..m {
        for j in 0..m {
            p[(i, j)] = if i == j { 0.2 } else { q };
        }
    }
    p
}

fn bench_eigensolver(c: &mut Criterion) {
    let mut g = c.benchmark_group("eig_lambda2");
    for m in [8usize, 16, 32] {
        let topo = Topology::fully_connected(m);
        let p = uniform_policy(m);
        let p_node = vec![1.0 / m as f64; m];
        let y = build_y(&p, &topo, &p_node, 0.05, 1.0);
        g.bench_with_input(BenchmarkId::from_parameter(m), &y, |b, y| {
            b.iter(|| second_largest_eigenvalue(black_box(y)))
        });
    }
    g.finish();
}

fn bench_build_y(c: &mut Criterion) {
    let mut g = c.benchmark_group("build_y");
    for m in [8usize, 16, 32] {
        let topo = Topology::fully_connected(m);
        let p = uniform_policy(m);
        let p_node = vec![1.0 / m as f64; m];
        g.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| build_y(black_box(&p), &topo, &p_node, 0.05, 1.0))
        });
    }
    g.finish();
}

fn bench_policy_lp(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_lp");
    for m in [8usize, 16] {
        let topo = Topology::fully_connected(m);
        let t = times(m);
        // A t̄ in the feasible band.
        let t_bar = 0.9 / m as f64;
        g.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| solve_policy_lp(0.1, 0.2, black_box(t_bar), &t, &topo))
        });
    }
    g.finish();
}

fn bench_policy_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithm3_full");
    g.sample_size(10);
    for m in [8usize, 16] {
        let topo = Topology::fully_connected(m);
        let t = times(m);
        let gen = PolicyGenerator::new(PolicySearchConfig::new(0.1));
        g.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| gen.generate(black_box(&t), &topo))
        });
    }
    g.finish();
}

fn bench_search_resolution(c: &mut Criterion) {
    // DESIGN.md ablation 4: Algorithm 3 cost vs search resolution (K, R).
    let mut g = c.benchmark_group("algorithm3_resolution");
    g.sample_size(10);
    let topo = Topology::fully_connected(8);
    let t = times(8);
    for kr in [5usize, 10, 20] {
        let cfg = PolicySearchConfig { outer_k: kr, inner_r: kr, ..PolicySearchConfig::new(0.1) };
        let gen = PolicyGenerator::new(cfg);
        g.bench_with_input(BenchmarkId::from_parameter(kr), &kr, |b, _| {
            b.iter(|| gen.generate(black_box(&t), &topo))
        });
    }
    g.finish();
}

fn bench_engine_throughput(c: &mut Criterion) {
    use netmax_core::engine::{Scenario, TrainConfig};
    use netmax_ml::workload::WorkloadSpec;
    use netmax_net::NetworkKind;

    let mut g = c.benchmark_group("engine_steps");
    g.sample_size(10);
    let sc = Scenario::builder()
        .workers(8)
        .network(NetworkKind::HeterogeneousDynamic)
        .workload(WorkloadSpec::convex_ridge(1))
        .train_config(TrainConfig { max_epochs: 1.0, ..TrainConfig::quick_test() })
        .build();
    g.bench_function("gossip_1_epoch_8_workers", |b| {
        b.iter(|| {
            let mut algo = netmax_baselines::AdPsgd::new();
            use netmax_core::engine::Algorithm;
            let mut env = sc.build_env();
            black_box(algo.run(&mut env).global_steps)
        })
    });
    g.finish();
}

criterion_group!(
    kernels,
    bench_eigensolver,
    bench_build_y,
    bench_policy_lp,
    bench_policy_generation,
    bench_search_resolution,
    bench_engine_throughput
);
criterion_main!(kernels);
