//! Communication/compute profiles of the paper's deep-learning models.
//!
//! The evaluation's *timing* behaviour depends on two numbers per model:
//! how many bytes a parameter pull moves (Algorithm 2 line 10) and how
//! long one mini-batch gradient computation takes (`C_i` of §II-B). The
//! parameter counts below are the paper's own (§V-A: "MobileNet, ResNet18,
//! ResNet50, and VGG19 whose numbers of parameters are approximately 4.2M,
//! 11.7M, 25.6M, and 143.7M"; Appendix G adds GoogLeNet at 6.8M).
//!
//! Per-batch GPU compute times are calibrated so the simulated Fig. 3
//! (intra- vs inter-machine iteration time on 1000 Mbps Ethernet)
//! reproduces the paper's shape: communication dominates, and the gap is
//! several-fold on slow links.

use netmax_json::{FromJson, Json, JsonError, ToJson};
use serde::{Deserialize, Serialize};

/// Timing profile of a training model: message size and per-batch compute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Human-readable name ("resnet18", …).
    pub name: String,
    /// Number of trainable parameters.
    pub param_count: u64,
    /// Seconds of GPU compute for one mini-batch of `reference_batch`.
    pub compute_time_s: f64,
    /// Batch size at which `compute_time_s` was calibrated.
    pub reference_batch: usize,
}

impl ModelProfile {
    /// ResNet18 (11.7M parameters).
    pub fn resnet18() -> Self {
        Self {
            name: "resnet18".into(),
            param_count: 11_700_000,
            compute_time_s: 0.25,
            reference_batch: 128,
        }
    }

    /// ResNet50 (25.6M parameters).
    pub fn resnet50() -> Self {
        Self {
            name: "resnet50".into(),
            param_count: 25_600_000,
            compute_time_s: 0.40,
            reference_batch: 128,
        }
    }

    /// VGG19 (143.7M parameters).
    pub fn vgg19() -> Self {
        Self {
            name: "vgg19".into(),
            param_count: 143_700_000,
            compute_time_s: 0.90,
            reference_batch: 128,
        }
    }

    /// MobileNet (4.2M parameters).
    pub fn mobilenet() -> Self {
        Self {
            name: "mobilenet".into(),
            param_count: 4_200_000,
            compute_time_s: 0.08,
            reference_batch: 128,
        }
    }

    /// GoogLeNet (6.8M parameters), used in the cross-cloud experiment.
    pub fn googlenet() -> Self {
        Self {
            name: "googlenet".into(),
            param_count: 6_800_000,
            compute_time_s: 0.09,
            reference_batch: 128,
        }
    }

    /// Bytes on the wire for one full-model transfer (fp32).
    pub fn param_bytes(&self) -> u64 {
        self.param_count * 4
    }

    /// Compute time `C_i` for a mini-batch of `batch` examples (linear in
    /// batch size, as GPU throughput saturates at the paper's batch 128).
    pub fn compute_time(&self, batch: usize) -> f64 {
        self.compute_time_s * batch as f64 / self.reference_batch as f64
    }

    /// Looks a profile up by name (used by the CLI harnesses).
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "resnet18" => Some(Self::resnet18()),
            "resnet50" => Some(Self::resnet50()),
            "vgg19" => Some(Self::vgg19()),
            "mobilenet" => Some(Self::mobilenet()),
            "googlenet" => Some(Self::googlenet()),
            _ => None,
        }
    }
}

impl ToJson for ModelProfile {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("param_count", self.param_count.to_json()),
            ("compute_time_s", self.compute_time_s.to_json()),
            ("reference_batch", self.reference_batch.to_json()),
        ])
    }
}

impl FromJson for ModelProfile {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            name: String::from_json(v.field("name")?)?,
            param_count: u64::from_json(v.field("param_count")?)?,
            compute_time_s: f64::from_json(v.field("compute_time_s")?)?,
            reference_batch: usize::from_json(v.field("reference_batch")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let p = ModelProfile::vgg19();
        let back =
            ModelProfile::from_json(&Json::parse(&p.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn paper_parameter_counts() {
        assert_eq!(ModelProfile::mobilenet().param_count, 4_200_000);
        assert_eq!(ModelProfile::resnet18().param_count, 11_700_000);
        assert_eq!(ModelProfile::resnet50().param_count, 25_600_000);
        assert_eq!(ModelProfile::vgg19().param_count, 143_700_000);
        assert_eq!(ModelProfile::googlenet().param_count, 6_800_000);
    }

    #[test]
    fn bytes_are_fp32() {
        assert_eq!(ModelProfile::resnet18().param_bytes(), 46_800_000);
    }

    #[test]
    fn compute_scales_with_batch() {
        let p = ModelProfile::resnet18();
        assert!((p.compute_time(128) - 0.25).abs() < 1e-12);
        assert!((p.compute_time(64) - 0.125).abs() < 1e-12);
        assert!((p.compute_time(256) - 0.50).abs() < 1e-12);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(ModelProfile::by_name("vgg19").unwrap().name, "vgg19");
        assert!(ModelProfile::by_name("transformer").is_none());
    }

    /// The core premise of Fig. 3: on 1 Gbps Ethernet, communication time
    /// dominates compute for every paper model.
    #[test]
    fn communication_dominates_on_gbit() {
        let gbit_bw = 125e6; // bytes/s
        for p in [
            ModelProfile::mobilenet(),
            ModelProfile::resnet18(),
            ModelProfile::resnet50(),
            ModelProfile::vgg19(),
        ] {
            let comm = p.param_bytes() as f64 / gbit_bw;
            assert!(
                comm > p.compute_time(128),
                "{}: comm {comm} should exceed compute {}",
                p.name,
                p.compute_time(128)
            );
        }
    }
}
