//! In-memory classification dataset.
//!
//! Features are stored as one flat `f32` buffer (row = one example) for
//! cache-friendly batch gradient loops. Labels are class indices.

/// A dense, in-memory labelled dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    features: Vec<f32>,
    labels: Vec<u32>,
    dim: usize,
    num_classes: usize,
}

impl Dataset {
    /// Builds a dataset from a flat feature buffer.
    ///
    /// # Panics
    /// Panics if the buffer length is not `labels.len() * dim`, if any
    /// label is ≥ `num_classes`, or if `dim == 0`.
    pub fn new(features: Vec<f32>, labels: Vec<u32>, dim: usize, num_classes: usize) -> Self {
        assert!(dim > 0, "dataset dim must be positive");
        assert_eq!(features.len(), labels.len() * dim, "feature buffer size mismatch");
        assert!(
            labels.iter().all(|&l| (l as usize) < num_classes),
            "label out of range"
        );
        Self { features, labels, dim, num_classes }
    }

    /// Number of examples.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if the dataset has no examples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Feature vector of example `i`.
    #[inline]
    pub fn feature(&self, i: usize) -> &[f32] {
        &self.features[i * self.dim..(i + 1) * self.dim]
    }

    /// Label of example `i`.
    #[inline]
    pub fn label(&self, i: usize) -> u32 {
        self.labels[i]
    }

    /// The raw sample-major feature storage (example `i` occupies
    /// `features()[i·dim .. (i+1)·dim]`) — the zero-copy view the
    /// fast-tier blocked kernels index directly.
    #[inline]
    pub fn features(&self) -> &[f32] {
        &self.features
    }

    /// All labels.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Indices of all examples whose label is in `keep` (used by the
    /// non-IID label-removal partitioner of Tables IV/VII).
    pub fn indices_with_labels(&self, keep: impl Fn(u32) -> bool) -> Vec<usize> {
        (0..self.len()).filter(|&i| keep(self.labels[i])).collect()
    }

    /// Per-class example counts.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.num_classes];
        for &l in &self.labels {
            h[l as usize] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::new(
            vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0],
            vec![0, 1, 0],
            2,
            2,
        )
    }

    #[test]
    fn accessors() {
        let d = tiny();
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.dim(), 2);
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.feature(1), &[2.0, 3.0]);
        assert_eq!(d.label(2), 0);
    }

    #[test]
    fn histogram_and_filter() {
        let d = tiny();
        assert_eq!(d.class_histogram(), vec![2, 1]);
        assert_eq!(d.indices_with_labels(|l| l == 0), vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn rejects_bad_buffer() {
        let _ = Dataset::new(vec![1.0; 5], vec![0, 1], 2, 2);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_label() {
        let _ = Dataset::new(vec![1.0; 4], vec![0, 7], 2, 2);
    }
}
