//! The fast-tier kernel family: reassociated, SIMD-friendly numerics.
//!
//! Everything in this module trades bit-stability for throughput under an
//! explicit, bounded error contract (the strict family in
//! [`crate::params`]/[`crate::model`] stays byte-identical to the
//! committed baselines):
//!
//! * **Reductions** ([`dot_fast`], [`norm_sq_fast`], [`mean_into_fast`])
//!   accumulate across [`FAST_CHUNK`] independent lanes with explicit
//!   [`f32::mul_add`] bodies and combine the lanes pairwise, so the inner
//!   loop vectorises (to FMA where available) and the rounding error grows
//!   like a pairwise sum: `|fast − exact| ≲ (n/16)·ε·Σ|terms|`.
//! * **Transcendentals** ([`exp_fast`], [`ln_fast`]) are Cephes-style
//!   polynomial kernels (degree-5 `expf`, degree-8 `logf`): branch-free
//!   range reduction plus a Horner body written as explicit [`f32::mul_add`]
//!   chains, so whole softmax rows evaluate without a libm call and the
//!   body compiles to fused multiply-adds where the target has them.
//!   Relative error is
//!   a few ULP (≤ ~2·10⁻⁷ for `exp_fast` over its domain; `ln_fast` has
//!   absolute error ≲ 2·10⁻⁷ near 1 and relative error ≲ 1·10⁻⁶
//!   elsewhere).
//! * **Blocked model kernels** ([`batch_logits_fast`],
//!   [`softmax_block_fast`], [`softmax_xent_grad_fast`]) restructure the
//!   softmax forward/backward as contiguous sample-major sweeps: logits
//!   accumulate two feature rows per pass, and the backward is a
//!   (class, feature)-outer matrix product over a precomputed coefficient
//!   row instead of a per-sample scatter.
//!
//! The family is deliberately *disjoint* from the strict kernels: no
//! function here is reachable from the `strict_numerics` audit closure
//! and vice versa — the `tier-isolation` rule in `netmax-audit` fails the
//! build if the two tiers ever share an accumulation code path.

// The Cephes coefficient strings carry more digits than an f32 holds, and
// the split ln(2) constants deliberately approximate LN_2.
#![allow(clippy::excessive_precision, clippy::approx_constant)]

/// Accumulator-lane count of the fast reductions — the chunking
/// threshold: inputs at or under this length reduce sequentially (the
/// remainder path), longer inputs use the multi-lane body.
pub const FAST_CHUNK: usize = 16;

/// Pairwise fold of the accumulator lanes.
#[inline(always)]
fn fold_lanes(acc: &[f32; FAST_CHUNK]) -> f32 {
    let mut a = *acc;
    let mut stride = FAST_CHUNK / 2;
    while stride > 0 {
        for j in 0..stride {
            a[j] += a[j + stride];
        }
        stride /= 2;
    }
    a[0]
}

/// Reassociated dot product: [`FAST_CHUNK`] independent accumulator
/// lanes, sequential tail, pairwise lane fold.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot_fast(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot_fast: length mismatch");
    let mut acc = [0.0f32; FAST_CHUNK];
    let xc = x.chunks_exact(FAST_CHUNK);
    let yc = y.chunks_exact(FAST_CHUNK);
    let (xr, yr) = (xc.remainder(), yc.remainder());
    for (cx, cy) in xc.zip(yc) {
        for ((a, &u), &v) in acc.iter_mut().zip(cx).zip(cy) {
            *a = u.mul_add(v, *a);
        }
    }
    let mut tail = 0.0f32;
    for (&u, &v) in xr.iter().zip(yr) {
        tail = u.mul_add(v, tail);
    }
    fold_lanes(&acc) + tail
}

/// Reassociated squared L2 norm (same lane structure as [`dot_fast`]).
#[inline]
pub fn norm_sq_fast(x: &[f32]) -> f32 {
    let mut acc = [0.0f32; FAST_CHUNK];
    let xc = x.chunks_exact(FAST_CHUNK);
    let xr = xc.remainder();
    for cx in xc {
        for (a, &u) in acc.iter_mut().zip(cx) {
            *a = u.mul_add(u, *a);
        }
    }
    let mut tail = 0.0f32;
    for &u in xr {
        tail = u.mul_add(u, tail);
    }
    fold_lanes(&acc) + tail
}

/// Reassociated slice sum (lanes + tail + pairwise fold).
#[inline]
fn sum_fast(x: &[f32]) -> f32 {
    let mut acc = [0.0f32; FAST_CHUNK];
    let xc = x.chunks_exact(FAST_CHUNK);
    let xr = xc.remainder();
    for cx in xc {
        for (a, &u) in acc.iter_mut().zip(cx) {
            *a += u;
        }
    }
    let mut tail = 0.0f32;
    for &u in xr {
        tail += u;
    }
    fold_lanes(&acc) + tail
}

/// `y += a · x`, fast family. Elementwise (no accumulation chain), so the
/// result actually matches the strict [`crate::params::axpy`] bit-for-bit
/// — it exists so the fast tier never calls into the strict family.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy_fast(a: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy_fast: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// Elementwise mean of equally-long vectors into `out`: one running sum
/// per element (element accumulators are independent, so the loop
/// vectorises across the vector width), one scale pass at the end.
///
/// # Panics
/// Panics if `vectors` is empty or lengths mismatch.
pub fn mean_into_fast(vectors: &[&[f32]], out: &mut [f32]) {
    assert!(!vectors.is_empty(), "mean_into_fast: need at least one vector");
    out.fill(0.0);
    for v in vectors {
        assert_eq!(v.len(), out.len(), "mean_into_fast: length mismatch");
        for (o, &x) in out.iter_mut().zip(*v) {
            *o += x;
        }
    }
    let inv = 1.0 / vectors.len() as f32;
    for o in out.iter_mut() {
        *o *= inv;
    }
}

// --------------------------------------------------------------------------
// Polynomial exp / ln (Cephes expf/logf shapes, ≈ 2–3 ULP)
// --------------------------------------------------------------------------

/// Adding then subtracting `1.5·2²³` rounds an f32 in `(−2²², 2²²)` to
/// the nearest integer using only FP adds — no `floor` libm call, no
/// SSE4.1 `roundps`, so the reduction vectorises on baseline x86-64.
const ROUND_MAGIC: f32 = 12_582_912.0;

/// `ln 2` split hi/lo for two-step Cody–Waite range reduction: `hi` has
/// trailing zero bits, so `n·hi` is exact for the |n| ≤ 127 in play.
const LN2_HI: f32 = 0.693_359_375;
const LN2_LO: f32 = -2.121_944_40e-4;

/// Polynomial `eˣ` (Cephes `expf` shape): round `x/ln 2` to the nearest
/// integer `n` with the `ROUND_MAGIC` trick, reduce `r = x − n·ln 2`
/// by split constants, evaluate a degree-5 Horner body on
/// `r ∈ [−ln 2/2, ln 2/2]`, and scale by `2ⁿ` via exponent-bit
/// construction. Relative error ≤ ~2 ULP; inputs outside
/// `[−87, 88]` saturate to `e^∓87⁄88` (never ±∞ or 0).
///
/// The body is deliberately free of float→int casts: Rust's saturating
/// `as i32` lowers to a scalar convert that blocks loop vectorisation, so
/// `2ⁿ` is read straight out of the round-magic sum's low mantissa bits
/// (`t = 1.5·2²³ + n` holds `n` exactly in its mantissa), leaving only
/// bitcasts and integer adds/shifts the vectoriser handles.
#[inline(always)]
pub fn exp_fast(x: f32) -> f32 {
    let x = x.clamp(-87.0, 88.0);
    let t = x.mul_add(std::f32::consts::LOG2_E, ROUND_MAGIC);
    let n = t - ROUND_MAGIC;
    let r = n.mul_add(-LN2_LO, n.mul_add(-LN2_HI, x));
    let r2 = r * r;
    let mut p = 1.987_569_150_0e-4f32;
    p = p.mul_add(r, 1.398_199_950_7e-3);
    p = p.mul_add(r, 8.333_451_907_3e-3);
    p = p.mul_add(r, 4.166_579_589_4e-2);
    p = p.mul_add(r, 1.666_666_545_9e-1);
    p = p.mul_add(r, 5.000_000_120_1e-1);
    let y = p.mul_add(r2, r) + 1.0;
    // (n + 127) << 23, with n taken from t's mantissa: t.bits − bits(1.5·2²³)
    // equals n for the |n| ≤ 127 in play, and the shift discards the borrow.
    let scale = f32::from_bits(
        t.to_bits().wrapping_sub(ROUND_MAGIC.to_bits().wrapping_sub(127)).wrapping_shl(23),
    );
    y * scale
}

/// Polynomial `ln x` (Cephes `logf` shape): split `x = m·2ᵉ` with
/// `m ∈ [√½, √2)` by exponent-bit surgery, evaluate a degree-8 Horner
/// body on `z = m − 1`, and add `e·ln 2` by split constants. Inputs
/// ≤ 0 clamp to the smallest positive normal (the call sites feed
/// strictly positive exp-sums). Absolute error ≲ 2·10⁻⁷ near 1,
/// relative error ≲ 1·10⁻⁶ elsewhere.
#[inline(always)]
pub fn ln_fast(x: f32) -> f32 {
    let x = x.max(f32::MIN_POSITIVE);
    let bits = x.to_bits();
    let mut e = ((bits >> 23) as i32) - 126;
    let mut m = f32::from_bits((bits & 0x007F_FFFF) | 0x3F00_0000);
    // Branch-free mantissa renormalisation into [√½, √2): doubling an f32
    // in [0.5, 1) is exactly an exponent-bit increment, so the whole
    // function is straight-line code and vectorises inside block loops.
    let below = (m < std::f32::consts::FRAC_1_SQRT_2) as u32;
    e -= below as i32;
    m = f32::from_bits(m.to_bits() + (below << 23));
    let z = m - 1.0;
    let z2 = z * z;
    let mut p = 7.037_683_629_2e-2f32;
    p = p.mul_add(z, -1.151_461_031_0e-1);
    p = p.mul_add(z, 1.167_699_874_0e-1);
    p = p.mul_add(z, -1.242_014_084_6e-1);
    p = p.mul_add(z, 1.424_932_278_7e-1);
    p = p.mul_add(z, -1.666_805_766_5e-1);
    p = p.mul_add(z, 2.000_071_476_5e-1);
    p = p.mul_add(z, -2.499_999_399_3e-1);
    p = p.mul_add(z, 3.333_333_117_4e-1);
    let ef = e as f32;
    let mut y = (z * z2) * p;
    y = ef.mul_add(LN2_LO, y);
    y = z2.mul_add(-0.5, y);
    ef.mul_add(LN2_HI, z + y)
}

// --------------------------------------------------------------------------
// Blocked softmax forward/backward
// --------------------------------------------------------------------------

/// Fast-tier batch transpose: gathers the chunk's feature rows into the
/// feature-major block `xb[d·nb + s] = feats[chunk[s]·dim + d]`.
///
/// Eight samples per tile: each feature index writes eight contiguous
/// outputs (one merged vector store) instead of eight scalar stores
/// `nb·4` bytes apart, and each sample's row is read sequentially. Pure
/// data movement — bit-identical to the strict transpose — but it lives
/// in the fast family so the tiers share no code path.
pub fn transpose_block_fast(feats: &[f32], chunk: &[usize], dim: usize, xb: &mut Vec<f32>) {
    let nb = chunk.len();
    xb.clear();
    xb.resize(dim * nb, 0.0);
    let tiles = chunk.chunks_exact(8);
    let rem = tiles.remainder();
    for (t, oct) in tiles.enumerate() {
        let s0 = t * 8;
        let r0 = &feats[oct[0] * dim..oct[0] * dim + dim];
        let r1 = &feats[oct[1] * dim..oct[1] * dim + dim];
        let r2 = &feats[oct[2] * dim..oct[2] * dim + dim];
        let r3 = &feats[oct[3] * dim..oct[3] * dim + dim];
        let r4 = &feats[oct[4] * dim..oct[4] * dim + dim];
        let r5 = &feats[oct[5] * dim..oct[5] * dim + dim];
        let r6 = &feats[oct[6] * dim..oct[6] * dim + dim];
        let r7 = &feats[oct[7] * dim..oct[7] * dim + dim];
        for d in 0..dim {
            let o = &mut xb[d * nb + s0..d * nb + s0 + 8];
            o[0] = r0[d];
            o[1] = r1[d];
            o[2] = r2[d];
            o[3] = r3[d];
            o[4] = r4[d];
            o[5] = r5[d];
            o[6] = r6[d];
            o[7] = r7[d];
        }
    }
    for (r, &i) in rem.iter().enumerate() {
        let s = nb - rem.len() + r;
        let row = &feats[i * dim..(i + 1) * dim];
        for (d, &v) in row.iter().enumerate() {
            xb[d * nb + s] = v;
        }
    }
}

/// Fast-tier batch logits: `out[c·B + s] = Σ_d w[c·D + d]·xb[d·B + s] + b[c]`.
///
/// Accumulators initialise to the bias (one pass saved) and consume four
/// feature rows per sweep as a fused multiply-add chain, quartering the
/// accumulator-row traffic relative to the strict kernel; each sample's
/// terms therefore combine in a reassociated order.
pub fn batch_logits_fast(w: &[f32], b: &[f32], xb: &[f32], dim: usize, nb: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), b.len() * nb);
    debug_assert_eq!(xb.len(), dim * nb);
    let classes = b.len();
    // Two classes per sweep: each feature row is loaded once and feeds
    // both accumulator rows, turning the kernel FMA-bound instead of
    // load-bound.
    let mut c = 0;
    while c + 1 < classes {
        let row0 = &w[c * dim..(c + 1) * dim];
        let row1 = &w[(c + 1) * dim..(c + 2) * dim];
        let (lo, hi) = out.split_at_mut((c + 1) * nb);
        let acc0 = &mut lo[c * nb..];
        let acc1 = &mut hi[..nb];
        acc0.fill(b[c]);
        acc1.fill(b[c + 1]);
        let mut d = 0;
        while d + 3 < dim {
            let (a0, a1, a2, a3) = (row0[d], row0[d + 1], row0[d + 2], row0[d + 3]);
            let (b0, b1, b2, b3) = (row1[d], row1[d + 1], row1[d + 2], row1[d + 3]);
            let x0 = &xb[d * nb..(d + 1) * nb];
            let x1 = &xb[(d + 1) * nb..(d + 2) * nb];
            let x2 = &xb[(d + 2) * nb..(d + 3) * nb];
            let x3 = &xb[(d + 3) * nb..(d + 4) * nb];
            for (((((p, q), &u0), &u1), &u2), &u3) in
                acc0.iter_mut().zip(acc1.iter_mut()).zip(x0).zip(x1).zip(x2).zip(x3)
            {
                *p = a3.mul_add(u3, a2.mul_add(u2, a1.mul_add(u1, a0.mul_add(u0, *p))));
                *q = b3.mul_add(u3, b2.mul_add(u2, b1.mul_add(u1, b0.mul_add(u0, *q))));
            }
            d += 4;
        }
        while d < dim {
            let (wa, wb) = (row0[d], row1[d]);
            for ((p, q), &u) in
                acc0.iter_mut().zip(acc1.iter_mut()).zip(&xb[d * nb..(d + 1) * nb])
            {
                *p = wa.mul_add(u, *p);
                *q = wb.mul_add(u, *q);
            }
            d += 1;
        }
        c += 2;
    }
    if c < classes {
        let row = &w[c * dim..(c + 1) * dim];
        let acc = &mut out[c * nb..(c + 1) * nb];
        acc.fill(b[c]);
        let mut d = 0;
        while d + 3 < dim {
            let (w0, w1, w2, w3) = (row[d], row[d + 1], row[d + 2], row[d + 3]);
            let x0 = &xb[d * nb..(d + 1) * nb];
            let x1 = &xb[(d + 1) * nb..(d + 2) * nb];
            let x2 = &xb[(d + 2) * nb..(d + 3) * nb];
            let x3 = &xb[(d + 3) * nb..(d + 4) * nb];
            for ((((a, &u0), &u1), &u2), &u3) in
                acc.iter_mut().zip(x0).zip(x1).zip(x2).zip(x3)
            {
                *a = w3.mul_add(u3, w2.mul_add(u2, w1.mul_add(u1, w0.mul_add(u0, *a))));
            }
            d += 4;
        }
        while d < dim {
            let wd = row[d];
            for (a, &u) in acc.iter_mut().zip(&xb[d * nb..(d + 1) * nb]) {
                *a = wd.mul_add(u, *a);
            }
            d += 1;
        }
    }
}

/// Shared softmax body: turns a `classes × nb` logits block into
/// **unnormalised** shifted exponentials, filling `maxs[s]` with sample
/// `s`'s logit maximum and `sums[s]` with the **reciprocal** of its
/// exp-sum. Callers either normalise the block ([`softmax_block_fast`])
/// or fold the reciprocal into downstream coefficients
/// ([`softmax_xent_grad_fast`]), saving the normalise pass.
fn exp_block_fast(block: &mut [f32], nb: usize, maxs: &mut Vec<f32>, sums: &mut Vec<f32>) {
    debug_assert_eq!(block.len() % nb, 0);
    maxs.clear();
    maxs.resize(nb, f32::NEG_INFINITY);
    for row in block.chunks(nb) {
        for (m, &v) in maxs.iter_mut().zip(row) {
            *m = m.max(v);
        }
    }
    sums.clear();
    sums.resize(nb, 0.0);
    for row in block.chunks_mut(nb) {
        for ((l, &m), s) in row.iter_mut().zip(&*maxs).zip(sums.iter_mut()) {
            *l = exp_fast(*l - m);
            *s += *l;
        }
    }
    for s in sums.iter_mut() {
        *s = 1.0 / *s;
    }
}

/// Fast-tier in-place softmax over a `classes × nb` logits block, one
/// sample per column: vectorised max fold, [`exp_fast`] rows, and a
/// reciprocal-multiply normalise. On return `sums[s]` holds the
/// **reciprocal** of sample `s`'s exp-sum (so the caller's loss term
/// `ln Σ exp` is `−ln_fast(sums[s])`).
pub fn softmax_block_fast(block: &mut [f32], nb: usize, maxs: &mut Vec<f32>, sums: &mut Vec<f32>) {
    exp_block_fast(block, nb, maxs, sums);
    for row in block.chunks_mut(nb) {
        for (l, &is) in row.iter_mut().zip(&*sums) {
            *l *= is;
        }
    }
}

/// Fast-tier softmax cross-entropy forward + backward over one
/// feature-major batch block.
///
/// Inputs: weights `w` (`C×D`), bias `b` (`C`), transposed features `xb`
/// (`D×nb`), the dataset's raw sample-major feature storage `feats` with
/// the chunk's example indices `chunk` (row `s` is
/// `feats[chunk[s]·D ..][..D]` — the same rows `xb` transposes), per-sample
/// `labels` (`nb`), and the chunk's weight `inv` (`1/total_batch`).
/// Accumulates the mean-gradient contribution into `gw`/`gb` and returns
/// the **summed** (not yet averaged) loss of the block.
/// `probs`/`maxs`/`sums`/`coefs` are reusable scratch buffers.
///
/// The backward folds the softmax normalisation straight into the
/// coefficient block — `probs` is rewritten in place to
/// `coef[c·nb+s] = (p_cs − 1{y_s=c})·inv` without ever materialising the
/// normalised probabilities — then `gb[c] += Σ_s coef[c·nb+s]` runs as a
/// reassociated row sum and `gw[c·D..]` accumulates a sample-major outer
/// product `coef[c·nb+s] · x_s` over the original (untransposed) feature
/// rows: pure fused multiply-add streams with no per-output reduction
/// fold and no zero-coefficient branch.
#[allow(clippy::too_many_arguments)]
pub fn softmax_xent_grad_fast(
    w: &[f32],
    b: &[f32],
    xb: &[f32],
    feats: &[f32],
    chunk: &[usize],
    labels: &[u32],
    dim: usize,
    nb: usize,
    probs: &mut Vec<f32>,
    maxs: &mut Vec<f32>,
    sums: &mut Vec<f32>,
    coefs: &mut Vec<f32>,
    gw: &mut [f32],
    gb: &mut [f32],
    inv: f32,
) -> f32 {
    let classes = b.len();
    debug_assert_eq!(labels.len(), nb);
    debug_assert_eq!(chunk.len(), nb);
    probs.clear();
    probs.resize(classes * nb, 0.0);
    batch_logits_fast(w, b, xb, dim, nb, probs);
    // True-class raw logits, captured before the exps overwrite the block.
    coefs.clear();
    coefs.resize(nb, 0.0);
    for (s, &y) in labels.iter().enumerate() {
        coefs[s] = probs[y as usize * nb + s];
    }
    exp_block_fast(probs, nb, maxs, sums);
    // −ln p_y = ln Σexp + max − raw_y, with the reciprocal sum carrying
    // ln Σexp = −ln(1/Σexp). Per-sample terms land in `coefs` (one
    // straight-line vector pass — `ln_fast` is branch-free) and reduce
    // through the reassociated lane sum.
    for ((cf, &m), &rs) in coefs.iter_mut().zip(&*maxs).zip(&*sums) {
        *cf = m - *cf - ln_fast(rs);
    }
    let loss = sum_fast(coefs);
    // Per-sample scale (1/Σexp)·inv, then the whole block becomes the
    // coefficient matrix in one vector pass plus a scalar label fix-up.
    for (cf, &rs) in coefs.iter_mut().zip(&*sums) {
        *cf = rs * inv;
    }
    for row in probs.chunks_mut(nb) {
        for (p, &sc) in row.iter_mut().zip(&*coefs) {
            *p *= sc;
        }
    }
    for (s, &y) in labels.iter().enumerate() {
        probs[y as usize * nb + s] -= inv;
    }
    for (c, g) in gb.iter_mut().enumerate() {
        *g += sum_fast(&probs[c * nb..(c + 1) * nb]);
    }
    // Sample-major outer product over the original feature rows (warm in
    // cache from the transpose pass): four samples fold into each
    // accumulator row per pass, so the row's load/store traffic is paid
    // once per quad and the body is a pure fused multiply-add chain with
    // no fold step.
    let quads = chunk.chunks_exact(4);
    let rem = quads.remainder();
    for (q, quad) in quads.enumerate() {
        let s = q * 4;
        let x0 = &feats[quad[0] * dim..quad[0] * dim + dim];
        let x1 = &feats[quad[1] * dim..quad[1] * dim + dim];
        let x2 = &feats[quad[2] * dim..quad[2] * dim + dim];
        let x3 = &feats[quad[3] * dim..quad[3] * dim + dim];
        for c in 0..classes {
            let base = c * nb + s;
            let (c0, c1, c2, c3) =
                (probs[base], probs[base + 1], probs[base + 2], probs[base + 3]);
            let grow = &mut gw[c * dim..(c + 1) * dim];
            for ((((g, &v0), &v1), &v2), &v3) in
                grow.iter_mut().zip(x0).zip(x1).zip(x2).zip(x3)
            {
                *g = c3.mul_add(v3, c2.mul_add(v2, c1.mul_add(v1, c0.mul_add(v0, *g))));
            }
        }
    }
    for (r, &i) in rem.iter().enumerate() {
        let s = nb - rem.len() + r;
        let x = &feats[i * dim..(i + 1) * dim];
        for c in 0..classes {
            let cf = probs[c * nb + s];
            let grow = &mut gw[c * dim..(c + 1) * dim];
            for (g, &v) in grow.iter_mut().zip(x) {
                *g = cf.mul_add(v, *g);
            }
        }
    }
    loss
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fill (splitmix-style), matching the
    /// `params` test helper.
    fn pseudo(n: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        (0..n)
            .map(|_| {
                state ^= state >> 30;
                state = state.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                state ^= state >> 27;
                ((state >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0
            })
            .collect()
    }

    #[test]
    fn dot_fast_tracks_f64_reference() {
        for n in [0usize, 1, 15, 16, 17, 31, 32, 33, 100, 1000] {
            let x = pseudo(n, 1);
            let y = pseudo(n, 2);
            let reference: f64 =
                x.iter().zip(&y).map(|(&a, &b)| a as f64 * b as f64).sum();
            let bound: f64 =
                x.iter().zip(&y).map(|(&a, &b)| (a as f64 * b as f64).abs()).sum();
            let got = dot_fast(&x, &y) as f64;
            assert!(
                (got - reference).abs() <= 1e-5 * bound + 1e-30,
                "n={n}: {got} vs {reference}"
            );
        }
    }

    #[test]
    fn norm_sq_fast_tracks_f64_reference() {
        for n in [1usize, 16, 17, 100, 4096] {
            let x = pseudo(n, 3);
            let reference: f64 = x.iter().map(|&a| (a as f64) * a as f64).sum();
            let got = norm_sq_fast(&x) as f64;
            assert!(
                (got - reference).abs() <= 1e-5 * reference + 1e-30,
                "n={n}: {got} vs {reference}"
            );
        }
    }

    #[test]
    fn axpy_fast_is_bitwise_equal_to_strict_axpy() {
        for n in [1usize, 7, 16, 33, 128, 129] {
            let x = pseudo(n, 4);
            let mut ya = pseudo(n, 5);
            let mut yb = ya.clone();
            axpy_fast(0.37, &x, &mut ya);
            crate::params::axpy(0.37, &x, &mut yb);
            for (a, b) in ya.iter().zip(&yb) {
                assert_eq!(a.to_bits(), b.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn mean_into_fast_tracks_f64_reference() {
        let vecs: Vec<Vec<f32>> = (0..13).map(|k| pseudo(37, 100 + k)).collect();
        let views: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        let mut out = vec![0.0f32; 37];
        mean_into_fast(&views, &mut out);
        for (j, &o) in out.iter().enumerate() {
            let reference: f64 =
                vecs.iter().map(|v| v[j] as f64).sum::<f64>() / vecs.len() as f64;
            assert!((o as f64 - reference).abs() < 1e-6, "elem {j}: {o} vs {reference}");
        }
    }

    #[test]
    fn exp_fast_relative_error_is_bounded() {
        let mut worst = 0.0f64;
        let mut x = -87.0f64;
        while x <= 88.0 {
            let xf = x as f32;
            let got = exp_fast(xf) as f64;
            let reference = (xf as f64).exp();
            let rel = ((got - reference) / reference).abs();
            worst = worst.max(rel);
            x += 0.0173;
        }
        assert!(worst < 1e-6, "worst relative error {worst}");
        // Saturation, not overflow/underflow.
        assert!(exp_fast(1e5).is_finite());
        assert!(exp_fast(-1e5) > 0.0);
        assert_eq!(exp_fast(0.0), 1.0);
    }

    #[test]
    fn ln_fast_error_is_bounded() {
        let mut x = 1e-30f64;
        while x <= 1e30 {
            let got = ln_fast(x as f32) as f64;
            let reference = (x as f32) as f64;
            let reference = reference.ln();
            let err = (got - reference).abs();
            let tol = 1e-6 * reference.abs().max(1.0);
            assert!(err <= tol, "x={x}: {got} vs {reference}");
            x *= 1.7;
        }
        // Dense sweep near 1, where relative error degenerates.
        let mut x = 0.5f64;
        while x <= 2.0 {
            let got = ln_fast(x as f32) as f64;
            let reference = x.ln();
            assert!((got - reference).abs() < 3e-7, "x={x}: {got} vs {reference}");
            x += 0.003;
        }
        // Non-positive inputs clamp instead of returning NaN/−∞.
        assert!(ln_fast(0.0).is_finite());
        assert!(ln_fast(-1.0).is_finite());
    }

    #[test]
    fn batch_logits_fast_matches_a_plain_matmul() {
        let (classes, dim, nb) = (5usize, 7usize, 9usize);
        let w = pseudo(classes * dim, 8);
        let b = pseudo(classes, 9);
        let xb = pseudo(dim * nb, 10);
        let mut out = vec![0.0f32; classes * nb];
        batch_logits_fast(&w, &b, &xb, dim, nb, &mut out);
        for c in 0..classes {
            for s in 0..nb {
                let reference: f64 = (0..dim)
                    .map(|d| w[c * dim + d] as f64 * xb[d * nb + s] as f64)
                    .sum::<f64>()
                    + b[c] as f64;
                let got = out[c * nb + s] as f64;
                assert!((got - reference).abs() < 1e-5, "({c},{s}): {got} vs {reference}");
            }
        }
    }

    #[test]
    fn softmax_block_fast_produces_normalised_rows() {
        let (classes, nb) = (10usize, 17usize);
        let mut block = pseudo(classes * nb, 11);
        let (mut maxs, mut sums) = (Vec::new(), Vec::new());
        softmax_block_fast(&mut block, nb, &mut maxs, &mut sums);
        for s in 0..nb {
            let total: f64 = (0..classes).map(|c| block[c * nb + s] as f64).sum();
            assert!((total - 1.0).abs() < 1e-5, "sample {s} sums to {total}");
            for c in 0..classes {
                let p = block[c * nb + s];
                assert!(p > 0.0 && p < 1.0 + 1e-6, "p[{c},{s}] = {p}");
            }
        }
    }
}
