//! Seeded synthetic dataset generators.
//!
//! The paper evaluates on MNIST, CIFAR10, CIFAR100, Tiny-ImageNet, and
//! ImageNet. Those corpora are unavailable here, and the results never
//! depend on pixel statistics — only on class counts, dataset sizes, and
//! separability (which drives the achievable accuracy plateau). Each
//! generator below produces a Gaussian-mixture classification problem with
//! the class count of its namesake and a noise level tuned so that the
//! models in [`crate::model`] plateau in a realistic accuracy band.
//!
//! All generators are seeded and fully deterministic.

// Index-based loops are kept where they mirror the matrix maths.
#![allow(clippy::needless_range_loop)]

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Specification of a Gaussian-mixture classification problem.
#[derive(Debug, Clone, Copy)]
pub struct MixtureSpec {
    /// Number of classes.
    pub num_classes: usize,
    /// Feature dimensionality.
    pub dim: usize,
    /// Training examples (total across all classes).
    pub train_n: usize,
    /// Test examples.
    pub test_n: usize,
    /// Distance of class means from the origin.
    pub mean_scale: f32,
    /// Standard deviation of the within-class noise; the ratio
    /// `mean_scale / noise` controls the accuracy ceiling.
    pub noise: f32,
}

/// Generates `(train, test)` datasets from a mixture spec.
///
/// Class means are drawn once from a scaled normal; train and test sets are
/// sampled from the same mixture so test accuracy measures generalisation
/// over the noise, not distribution shift.
pub fn gaussian_mixture(spec: MixtureSpec, seed: u64) -> (Dataset, Dataset) {
    assert!(spec.num_classes >= 2, "need at least two classes");
    assert!(spec.dim > 0 && spec.train_n > 0 && spec.test_n > 0);
    let mut rng = StdRng::seed_from_u64(seed);

    // Class means.
    let means: Vec<Vec<f32>> = (0..spec.num_classes)
        .map(|_| (0..spec.dim).map(|_| normal(&mut rng) * spec.mean_scale).collect())
        .collect();

    let sample = |n: usize, rng: &mut StdRng| -> (Vec<f32>, Vec<u32>) {
        let mut feats = Vec::with_capacity(n * spec.dim);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            // Round-robin over classes keeps class balance exact.
            let c = i % spec.num_classes;
            labels.push(c as u32);
            for d in 0..spec.dim {
                feats.push(means[c][d] + normal(rng) * spec.noise);
            }
        }
        (feats, labels)
    };

    let (tf, tl) = sample(spec.train_n, &mut rng);
    let (vf, vl) = sample(spec.test_n, &mut rng);
    (
        Dataset::new(tf, tl, spec.dim, spec.num_classes),
        Dataset::new(vf, vl, spec.dim, spec.num_classes),
    )
}

/// Standard normal via Box–Muller (avoids needing `rand_distr`).
fn normal(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// MNIST-like: 10 well-separated classes (the paper reaches ~99% IID /
/// ~93% non-IID on MNIST).
pub fn mnist_like(seed: u64) -> (Dataset, Dataset) {
    gaussian_mixture(
        MixtureSpec {
            num_classes: 10,
            dim: 32,
            train_n: 20_000,
            test_n: 2500,
            mean_scale: 1.0,
            noise: 1.1,
        },
        seed,
    )
}

/// CIFAR10-like: 10 moderately separated classes (paper plateau ~90%).
pub fn cifar10_like(seed: u64) -> (Dataset, Dataset) {
    gaussian_mixture(
        MixtureSpec {
            num_classes: 10,
            dim: 32,
            train_n: 24_000,
            test_n: 2500,
            mean_scale: 1.0,
            noise: 1.9,
        },
        seed,
    )
}

/// CIFAR100-like: 100 classes, harder (paper plateau ~72% with ResNet18,
/// ~64% with MobileNet).
pub fn cifar100_like(seed: u64) -> (Dataset, Dataset) {
    gaussian_mixture(
        MixtureSpec {
            num_classes: 100,
            dim: 64,
            train_n: 24_000,
            test_n: 4000,
            mean_scale: 1.0,
            noise: 2.3,
        },
        seed,
    )
}

/// Tiny-ImageNet-like: 200 classes, few examples per class (paper plateau
/// ~57%).
pub fn tiny_imagenet_like(seed: u64) -> (Dataset, Dataset) {
    gaussian_mixture(
        MixtureSpec {
            num_classes: 200,
            dim: 64,
            train_n: 20_000,
            test_n: 4000,
            mean_scale: 1.0,
            noise: 2.6,
        },
        seed,
    )
}

/// ImageNet-like: 1000 classes (paper plateau ~73% with ResNet50).
pub fn imagenet_like(seed: u64) -> (Dataset, Dataset) {
    gaussian_mixture(
        MixtureSpec {
            num_classes: 1000,
            dim: 96,
            train_n: 30_000,
            test_n: 5000,
            mean_scale: 1.0,
            noise: 2.1,
        },
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let (a, _) = cifar10_like(7);
        let (b, _) = cifar10_like(7);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.feature(13), b.feature(13));
        assert_eq!(a.label(13), b.label(13));
    }

    #[test]
    fn different_seeds_differ() {
        let (a, _) = cifar10_like(1);
        let (b, _) = cifar10_like(2);
        assert_ne!(a.feature(0), b.feature(0));
    }

    #[test]
    fn class_balance_exact() {
        let (train, test) = mnist_like(3);
        let h = train.class_histogram();
        assert!(h.iter().all(|&c| c == train.len() / 10));
        assert_eq!(test.class_histogram().iter().sum::<usize>(), test.len());
    }

    #[test]
    fn shapes_match_spec() {
        let (train, test) = cifar100_like(5);
        assert_eq!(train.num_classes(), 100);
        assert_eq!(train.dim(), 64);
        assert_eq!(train.len(), 24_000);
        assert_eq!(test.len(), 4000);
    }

    #[test]
    fn mixture_is_separable() {
        // Nearest-class-mean on the *noiseless* means classifies training
        // data far above chance, i.e. the generator really encodes classes.
        let spec = MixtureSpec {
            num_classes: 5,
            dim: 16,
            train_n: 500,
            test_n: 100,
            mean_scale: 1.5,
            noise: 0.5,
        };
        let (train, _) = gaussian_mixture(spec, 11);
        // Estimate class means from data.
        let mut means = vec![vec![0.0f32; 16]; 5];
        let mut counts = vec![0usize; 5];
        for i in 0..train.len() {
            let c = train.label(i) as usize;
            counts[c] += 1;
            for (m, x) in means[c].iter_mut().zip(train.feature(i)) {
                *m += x;
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c as f32;
            }
        }
        let mut correct = 0;
        for i in 0..train.len() {
            let x = train.feature(i);
            let pred = (0..5)
                .min_by(|&a, &b| {
                    let da: f32 = x.iter().zip(&means[a]).map(|(u, v)| (u - v).powi(2)).sum();
                    let db: f32 = x.iter().zip(&means[b]).map(|(u, v)| (u - v).powi(2)).sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if pred == train.label(i) as usize {
                correct += 1;
            }
        }
        let acc = correct as f64 / train.len() as f64;
        assert!(acc > 0.8, "nearest-mean accuracy {acc} too low — generator broken");
    }
}
