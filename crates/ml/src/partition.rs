//! Data partitioning across worker nodes.
//!
//! The paper evaluates three regimes:
//!
//! * **Uniform** (§V-B–E): the dataset is split evenly.
//! * **Segmented non-uniform** (§V-F): the dataset is cut into `S` equal
//!   segments and node `i` receives `segments[i]` of them; batch size is
//!   proportional to the segment count ("The batch size of each worker
//!   node is set to 64 × the segment number").
//! * **Non-IID label removal** (Tables IV and VII): each node drops all
//!   examples of a per-node list of "lost labels".

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A partition of dataset example indices across worker nodes.
#[derive(Debug, Clone)]
pub struct Partition {
    per_node: Vec<Vec<usize>>,
    /// Relative data share of each node (segments, or example fraction),
    /// used to scale per-node batch sizes like the paper does.
    weights: Vec<f64>,
}

impl Partition {
    /// Splits `dataset` evenly across `nodes` workers (shuffled, seeded).
    pub fn uniform(dataset: &Dataset, nodes: usize, seed: u64) -> Self {
        assert!(nodes > 0, "need at least one node");
        let mut idx: Vec<usize> = (0..dataset.len()).collect();
        idx.shuffle(&mut StdRng::seed_from_u64(seed));
        let mut per_node = vec![Vec::new(); nodes];
        for (k, i) in idx.into_iter().enumerate() {
            per_node[k % nodes].push(i);
        }
        Self { per_node, weights: vec![1.0; nodes] }
    }

    /// Segmented split: the dataset is cut into `segments.iter().sum()`
    /// equal segments and node `i` gets `segments[i]` of them. Mirrors the
    /// paper's ⟨1,1,1,1,2,1,2,1⟩-style distributions of §V-F.
    pub fn segmented(dataset: &Dataset, segments: &[usize], seed: u64) -> Self {
        assert!(!segments.is_empty() && segments.iter().all(|&s| s > 0));
        let total: usize = segments.iter().sum();
        let mut idx: Vec<usize> = (0..dataset.len()).collect();
        idx.shuffle(&mut StdRng::seed_from_u64(seed));
        let seg_len = dataset.len() / total;
        assert!(seg_len > 0, "dataset too small for {total} segments");

        let mut per_node = Vec::with_capacity(segments.len());
        let mut cursor = 0usize;
        for (node, &s) in segments.iter().enumerate() {
            let take = if node + 1 == segments.len() {
                // Last node absorbs the rounding remainder.
                dataset.len() - cursor
            } else {
                s * seg_len
            };
            per_node.push(idx[cursor..cursor + take].to_vec());
            cursor += take;
        }
        let weights = segments.iter().map(|&s| s as f64).collect();
        Self { per_node, weights }
    }

    /// Non-IID label removal: node `i` keeps only examples whose label is
    /// **not** in `lost_labels[i]`. This is exactly the construction of
    /// Tables IV and VII.
    pub fn label_skew(dataset: &Dataset, lost_labels: &[Vec<u32>]) -> Self {
        assert!(!lost_labels.is_empty());
        let per_node: Vec<Vec<usize>> = lost_labels
            .iter()
            .map(|lost| dataset.indices_with_labels(|l| !lost.contains(&l)))
            .collect();
        let total: usize = per_node.iter().map(Vec::len).sum();
        let mean = total as f64 / per_node.len() as f64;
        let weights = per_node.iter().map(|p| p.len() as f64 / mean).collect();
        Self { per_node, weights }
    }

    /// The paper's Table IV MNIST distribution: 8 workers on two servers,
    /// each missing three digit labels.
    pub fn paper_table4(dataset: &Dataset) -> Self {
        let lost: Vec<Vec<u32>> = vec![
            vec![0, 1, 2], // w0, server 1
            vec![0, 1, 3], // w1
            vec![0, 1, 4], // w2
            vec![0, 1, 5], // w3
            vec![5, 6, 7], // w4, server 2
            vec![5, 6, 8], // w5
            vec![5, 6, 9], // w6
            vec![5, 6, 0], // w7
        ];
        Self::label_skew(dataset, &lost)
    }

    /// The paper's Table VII cross-cloud distribution: six regions, each
    /// missing three labels.
    pub fn paper_table7(dataset: &Dataset) -> Self {
        let lost: Vec<Vec<u32>> = vec![
            vec![0, 1, 2], // US West
            vec![1, 2, 3], // US East
            vec![2, 3, 4], // Ireland
            vec![4, 5, 6], // Mumbai
            vec![5, 6, 7], // Singapore
            vec![6, 7, 8], // Tokyo
        ];
        Self::label_skew(dataset, &lost)
    }

    /// The §V-F 8-node segmented pattern ⟨1,1,1,1,2,1,2,1⟩.
    pub fn paper_8node_segments(dataset: &Dataset, seed: u64) -> Self {
        Self::segmented(dataset, &[1, 1, 1, 1, 2, 1, 2, 1], seed)
    }

    /// The §V-F 16-node segmented pattern: first server's 8 nodes get one
    /// segment each, second server's get ⟨2,1,2,1,2,1,2,1⟩.
    pub fn paper_16node_segments(dataset: &Dataset, seed: u64) -> Self {
        Self::segmented(
            dataset,
            &[1, 1, 1, 1, 1, 1, 1, 1, 2, 1, 2, 1, 2, 1, 2, 1],
            seed,
        )
    }

    /// Number of worker nodes.
    pub fn num_nodes(&self) -> usize {
        self.per_node.len()
    }

    /// Example indices owned by node `i`.
    pub fn node(&self, i: usize) -> &[usize] {
        &self.per_node[i]
    }

    /// Relative data weight of node `i` (≥ 0; 1.0 = average share).
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Per-node batch size following the paper's rule
    /// `batch = base × segment-count` (§V-F). For uniform partitions this
    /// is just `base`.
    pub fn batch_size(&self, i: usize, base: usize) -> usize {
        ((base as f64 * self.weights[i]).round() as usize).max(1)
    }

    /// Total number of examples across nodes (double-counting overlaps,
    /// which only occur for label-skew partitions).
    pub fn total_examples(&self) -> usize {
        self.per_node.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::mnist_like;

    #[test]
    fn uniform_splits_evenly() {
        let (train, _) = mnist_like(1);
        let p = Partition::uniform(&train, 8, 99);
        assert_eq!(p.num_nodes(), 8);
        let sizes: Vec<usize> = (0..8).map(|i| p.node(i).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), train.len());
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        // No index appears twice.
        let mut all: Vec<usize> = (0..8).flat_map(|i| p.node(i).to_vec()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), train.len());
    }

    #[test]
    fn segmented_respects_ratios() {
        let (train, _) = mnist_like(2);
        let p = Partition::segmented(&train, &[1, 2, 1], 5);
        let n0 = p.node(0).len() as f64;
        let n1 = p.node(1).len() as f64;
        assert!((n1 / n0 - 2.0).abs() < 0.1, "ratio {} should be ~2", n1 / n0);
        assert_eq!(p.total_examples(), train.len());
        assert_eq!(p.batch_size(0, 64), 64);
        assert_eq!(p.batch_size(1, 64), 128);
    }

    #[test]
    fn paper_8node_pattern() {
        let (train, _) = mnist_like(3);
        let p = Partition::paper_8node_segments(&train, 1);
        assert_eq!(p.num_nodes(), 8);
        // Nodes 4 and 6 have double share.
        assert_eq!(p.batch_size(4, 64), 128);
        assert_eq!(p.batch_size(5, 64), 64);
        assert_eq!(p.batch_size(6, 64), 128);
    }

    #[test]
    fn label_skew_removes_labels() {
        let (train, _) = mnist_like(4);
        let p = Partition::paper_table4(&train);
        assert_eq!(p.num_nodes(), 8);
        // w0 must have no examples labelled 0, 1 or 2.
        for &i in p.node(0) {
            assert!(![0, 1, 2].contains(&train.label(i)));
        }
        // w7 must have no 5, 6 or 0 but must still see label 1.
        assert!(p.node(7).iter().any(|&i| train.label(i) == 1));
        for &i in p.node(7) {
            assert!(![5, 6, 0].contains(&train.label(i)));
        }
    }

    #[test]
    fn table7_has_six_regions_covering_all_labels() {
        let (train, _) = mnist_like(5);
        let p = Partition::paper_table7(&train);
        assert_eq!(p.num_nodes(), 6);
        // Union of nodes must cover every label (9 is never lost).
        let mut covered = [false; 10];
        for n in 0..6 {
            for &i in p.node(n) {
                covered[train.label(i) as usize] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "some label lost everywhere");
    }

    #[test]
    fn weights_reflect_share() {
        let (train, _) = mnist_like(6);
        let p = Partition::uniform(&train, 4, 0);
        for i in 0..4 {
            assert_eq!(p.weight(i), 1.0);
        }
    }
}
