//! # netmax-ml
//!
//! Machine-learning substrate for the NetMax reproduction.
//!
//! The paper trains PyTorch CNNs (MobileNet, ResNet18/50, VGG19, GoogLeNet)
//! on MNIST/CIFAR/ImageNet over a GPU cluster. The Rust deep-learning
//! ecosystem is not a viable substrate for that, and none of the paper's
//! conclusions depend on convolutions: what the evaluation measures is
//! (a) the *timing* of iterations — a function of parameter bytes on the
//! wire and per-batch compute — and (b) the *convergence dynamics* of
//! distributed SGD — a function of the consensus algorithm. This crate
//! therefore supplies:
//!
//! * real, trainable models ([`model::SoftmaxRegression`], [`model::Mlp`],
//!   [`model::LeastSquares`]) optimised with a from-scratch SGD
//!   ([`optim`]) so every loss/accuracy curve in the reproduction is a
//!   genuine optimisation trajectory, and
//! * [`profile::ModelProfile`]s carrying the paper's exact parameter
//!   counts (4.2M…143.7M) so message sizes and compute times on the
//!   simulated network match the paper's setup.
//!
//! Datasets are seeded synthetic Gaussian mixtures ([`datasets`]) with the
//! class counts of the originals, partitioned by the paper's three schemes
//! ([`partition`]): uniform, segmented non-uniform (§V-F), and non-IID
//! label removal (Tables IV and VII).
//!
//! Gradient numerics run under an explicit [`tier::NumericsTier`]: the
//! default **strict** tier is bit-stable against the committed baselines,
//! while the opt-in **fast** tier dispatches through a
//! [`tier::KernelTable`] to the reassociated kernel family in [`fast`]
//! (bounded-error polynomial `exp`/`ln`, multi-lane reductions). The two
//! families never share accumulation code paths.

#![forbid(unsafe_code)]

pub mod batch;
pub mod dataset;
pub mod datasets;
pub mod fast;
pub mod metrics;
pub mod model;
pub mod optim;
pub mod params;
pub mod partition;
pub mod profile;
pub mod tier;
pub mod workload;

pub use dataset::Dataset;
pub use model::{LeastSquares, Mlp, Model, ModelKind, SoftmaxRegression};
pub use tier::{KernelTable, NumericsTier};
pub use optim::{SgdConfig, SgdState};
pub use partition::Partition;
pub use profile::ModelProfile;
pub use workload::{Workload, WorkloadKind, WorkloadSpec};
