//! The numerics-tier seam: [`NumericsTier`] and the tier-carrying
//! [`KernelTable`].
//!
//! The reproduction's headline guarantee is *byte-identity*: the strict
//! tier re-runs the committed `BENCH_sanity.json` bit-for-bit, which pins
//! scalar `exp`/`ln` and the exact FP accumulation order of every kernel.
//! The paper's claims, however, are statistical — loss/accuracy
//! trajectories and time-to-target orderings — so an opt-in **fast** tier
//! may reassociate sums and use polynomial `exp`/`ln` with bounded error,
//! as long as the two tiers are validated against each other by the
//! `equivalence/*` benchmark group.
//!
//! The seam is a *kernel table*, not a per-call-site flag: a
//! [`Scratch`](crate::model::Scratch) carries a `&'static KernelTable`
//! chosen once from the training configuration, model entry points branch
//! a single time on [`KernelTable::tier`], and everything downstream
//! dispatches through the table's function pointers. The strict and fast
//! kernel families never share accumulation code paths — an invariant the
//! audit's `tier-isolation` closure rule enforces statically.

use crate::{fast, params};
use netmax_json::{FromJson, Json, JsonError, ToJson};
use serde::{Deserialize, Serialize};

/// Which numerics contract the training hot path runs under.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum NumericsTier {
    /// Bit-stable reference numerics: scalar `exp`/`ln`, strictly
    /// sequential accumulation order. Re-runs the committed baselines
    /// byte-for-byte; the CI reference tier.
    #[default]
    Strict,
    /// Reassociated throughput numerics: multi-accumulator reductions and
    /// polynomial `exp`/`ln` with bounded relative error
    /// (see [`crate::fast`]). Statistically equivalent, not bit-equal.
    Fast,
}

impl NumericsTier {
    /// Stable lowercase name (JSON tag and CLI value).
    pub fn tier_name(self) -> &'static str {
        match self {
            NumericsTier::Strict => "strict",
            NumericsTier::Fast => "fast",
        }
    }

    /// Parses a CLI/JSON tag; `None` for anything but `strict`/`fast`.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "strict" => Some(NumericsTier::Strict),
            "fast" => Some(NumericsTier::Fast),
            _ => None,
        }
    }

    /// The kernel table this tier dispatches through.
    pub fn kernels(self) -> &'static KernelTable {
        match self {
            NumericsTier::Strict => &STRICT,
            NumericsTier::Fast => &FAST,
        }
    }
}

impl ToJson for NumericsTier {
    fn to_json(&self) -> Json {
        Json::Str(self.tier_name().into())
    }
}

impl FromJson for NumericsTier {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let name = v.as_str()?;
        NumericsTier::from_name(name).ok_or_else(|| {
            JsonError::schema(format!("unknown numerics tier `{name}` (strict|fast)"))
        })
    }
}

/// One tier's kernel family behind function pointers.
///
/// A table is selected once (per [`Scratch`](crate::model::Scratch), from
/// the session's `TrainConfig`) and threaded through the hot path; model
/// code calls `(table.dot)(…)` instead of branching on the tier at every
/// call site. The `STRICT` table points at the crate's public strict
/// kernels ([`crate::params`]); the `FAST` table points at the
/// reassociated family ([`crate::fast`]). The two families are disjoint
/// by construction and by audit.
#[derive(Debug)]
pub struct KernelTable {
    /// Which tier these kernels implement.
    pub tier: NumericsTier,
    /// Dot product.
    pub dot: fn(&[f32], &[f32]) -> f32,
    /// Squared L2 norm.
    pub norm_sq: fn(&[f32]) -> f32,
    /// `y += a · x`.
    pub axpy: fn(f32, &[f32], &mut [f32]),
    /// Elementwise mean of equally-long vectors into `out`.
    pub mean_into: fn(&[&[f32]], &mut [f32]),
    /// Scalar `eˣ`.
    pub exp: fn(f32) -> f32,
    /// Scalar `ln x`.
    pub ln: fn(f32) -> f32,
}

#[inline]
fn exp_strict(x: f32) -> f32 {
    x.exp()
}

#[inline]
fn ln_strict(x: f32) -> f32 {
    x.ln()
}

/// The bit-stable reference kernels.
pub static STRICT: KernelTable = KernelTable {
    tier: NumericsTier::Strict,
    dot: params::dot,
    norm_sq: params::norm_sq,
    axpy: params::axpy,
    mean_into: params::mean_into,
    exp: exp_strict,
    ln: ln_strict,
};

/// The reassociated throughput kernels.
pub static FAST: KernelTable = KernelTable {
    tier: NumericsTier::Fast,
    dot: fast::dot_fast,
    norm_sq: fast::norm_sq_fast,
    axpy: fast::axpy_fast,
    mean_into: fast::mean_into_fast,
    exp: fast::exp_fast,
    ln: fast::ln_fast,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for t in [NumericsTier::Strict, NumericsTier::Fast] {
            assert_eq!(NumericsTier::from_name(t.tier_name()), Some(t));
            let back = NumericsTier::from_json(&t.to_json()).unwrap();
            assert_eq!(back, t);
        }
        assert_eq!(NumericsTier::from_name("fastest"), None);
        assert!(NumericsTier::from_json(&Json::Str("ludicrous".into())).is_err());
        assert!(NumericsTier::from_json(&Json::Num(1.0)).is_err());
    }

    #[test]
    fn default_is_strict() {
        assert_eq!(NumericsTier::default(), NumericsTier::Strict);
    }

    #[test]
    fn tables_carry_their_tier() {
        assert_eq!(STRICT.tier, NumericsTier::Strict);
        assert_eq!(FAST.tier, NumericsTier::Fast);
        assert_eq!(NumericsTier::Strict.kernels().tier, NumericsTier::Strict);
        assert_eq!(NumericsTier::Fast.kernels().tier, NumericsTier::Fast);
    }

    #[test]
    fn strict_table_matches_the_reference_kernels() {
        let x = [1.0f32, 2.0, 3.0, 4.0];
        let y = [0.5f32, -1.0, 2.0, 0.25];
        assert_eq!((STRICT.dot)(&x, &y).to_bits(), params::dot(&x, &y).to_bits());
        assert_eq!((STRICT.norm_sq)(&x).to_bits(), params::norm_sq(&x).to_bits());
        assert_eq!((STRICT.exp)(1.5).to_bits(), 1.5f32.exp().to_bits());
        assert_eq!((STRICT.ln)(1.5).to_bits(), 1.5f32.ln().to_bits());
    }
}
