//! Seeded mini-batch sampling.
//!
//! Each worker node samples batches from its own shard (`D_{i,n}` sampled
//! from `D_i` in the paper's Eq. 5). The sampler reshuffles the shard at
//! each epoch boundary, which is both what the reference PyTorch loaders
//! do and what keeps epoch accounting exact.

use netmax_json::{codec, CodecError, FromJson, Json, JsonError, ToJson};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Epoch-aware shuffling batch sampler over a fixed set of example indices.
#[derive(Debug, Clone)]
pub struct BatchSampler {
    indices: Vec<usize>,
    batch_size: usize,
    cursor: usize,
    epoch: u64,
    samples_drawn: u64,
    rng: StdRng,
}

impl BatchSampler {
    /// Creates a sampler over `indices` with the given batch size.
    ///
    /// # Panics
    /// Panics if `indices` is empty or `batch_size == 0`.
    pub fn new(indices: Vec<usize>, batch_size: usize, seed: u64) -> Self {
        assert!(!indices.is_empty(), "sampler needs at least one example");
        assert!(batch_size > 0, "batch size must be positive");
        let mut s = Self {
            indices,
            batch_size,
            cursor: 0,
            epoch: 0,
            samples_drawn: 0,
            rng: StdRng::seed_from_u64(seed),
        };
        s.indices.shuffle(&mut s.rng);
        s
    }

    /// Draws the next mini-batch (clipped at the epoch boundary; a new
    /// epoch reshuffles). Returns a view into the sampler's shuffle order —
    /// no allocation per draw — valid until the next call.
    pub fn next_batch(&mut self) -> &[usize] {
        if self.cursor >= self.indices.len() {
            self.indices.shuffle(&mut self.rng);
            self.cursor = 0;
            self.epoch += 1;
        }
        let start = self.cursor;
        let end = (start + self.batch_size).min(self.indices.len());
        self.cursor = end;
        self.samples_drawn += (end - start) as u64;
        &self.indices[start..end]
    }

    /// Completed epochs plus the fraction of the current one.
    pub fn epochs_elapsed(&self) -> f64 {
        self.samples_drawn as f64 / self.indices.len() as f64
    }

    /// Number of examples in the shard.
    pub fn shard_len(&self) -> usize {
        self.indices.len()
    }

    /// The shard's example indices (restore-time validation hook).
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Serializes the sampler's full state — the current shuffle order,
    /// cursor, epoch counters, and RNG stream — for checkpoint/resume.
    /// [`BatchSampler::restore`] rebuilds a sampler whose future draws are
    /// byte-identical to this one's.
    pub fn checkpoint(&self) -> Json {
        Json::obj([
            ("indices", self.indices.to_json()),
            ("batch_size", self.batch_size.to_json()),
            ("cursor", self.cursor.to_json()),
            ("epoch", self.epoch.to_json()),
            ("samples_drawn", self.samples_drawn.to_json()),
            ("rng", self.rng.state().to_vec().to_json()),
        ])
    }

    /// Streams the sampler's checkpoint state into `out` in the binary
    /// codec's wire form — byte-identical to
    /// `codec::encode_value(out, &self.checkpoint())` but without
    /// materializing the intermediate [`Json`] (no per-snapshot
    /// allocation beyond `out`'s own growth). The field layout knowledge
    /// stays here, next to [`BatchSampler::checkpoint`].
    pub fn encode_checkpoint_into(&self, out: &mut Vec<u8>) -> Result<(), CodecError> {
        codec::write_obj_header(out, 6)?;
        codec::write_key(out, "indices")?;
        codec::write_usize_slice(out, &self.indices)?;
        codec::write_key(out, "batch_size")?;
        codec::write_int(out, self.batch_size as i128);
        codec::write_key(out, "cursor")?;
        codec::write_int(out, self.cursor as i128);
        codec::write_key(out, "epoch")?;
        codec::write_int(out, self.epoch as i128);
        codec::write_key(out, "samples_drawn")?;
        codec::write_int(out, self.samples_drawn as i128);
        codec::write_key(out, "rng")?;
        codec::write_u64_slice(out, &self.rng.state())
    }

    /// Rebuilds a sampler from [`BatchSampler::checkpoint`] state.
    pub fn restore(state: &Json) -> Result<Self, JsonError> {
        let indices: Vec<usize> = Vec::from_json(state.field("indices")?)?;
        if indices.is_empty() {
            return Err(JsonError::schema("sampler checkpoint has no indices".into()));
        }
        let rng_words: Vec<u64> = Vec::from_json(state.field("rng")?)?;
        let rng_state: [u64; 4] = rng_words
            .try_into()
            .map_err(|_| JsonError::schema("sampler rng state must have 4 words".into()))?;
        // A live generator can never reach the all-zero state; reject it
        // as a schema error rather than tripping the shim's assert.
        if rng_state.iter().all(|&w| w == 0) {
            return Err(JsonError::schema("sampler rng state must not be all-zero".into()));
        }
        let batch_size = usize::from_json(state.field("batch_size")?)?;
        if batch_size == 0 {
            return Err(JsonError::schema("sampler batch size must be positive".into()));
        }
        Ok(Self {
            indices,
            batch_size,
            cursor: usize::from_json(state.field("cursor")?)?,
            epoch: u64::from_json(state.field("epoch")?)?,
            samples_drawn: u64::from_json(state.field("samples_drawn")?)?,
            rng: StdRng::from_state(rng_state),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_example_each_epoch() {
        let mut s = BatchSampler::new((0..10).collect(), 3, 1);
        let mut seen: Vec<usize> = Vec::new();
        for _ in 0..4 {
            seen.extend(s.next_batch());
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert!((s.epochs_elapsed() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn batches_have_requested_size_mid_epoch() {
        let mut s = BatchSampler::new((0..100).collect(), 32, 2);
        assert_eq!(s.next_batch().len(), 32);
        assert_eq!(s.next_batch().len(), 32);
        assert_eq!(s.next_batch().len(), 32);
        assert_eq!(s.next_batch().len(), 4); // epoch tail
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = BatchSampler::new((0..20).collect(), 5, 9);
        let mut b = BatchSampler::new((0..20).collect(), 5, 9);
        for _ in 0..8 {
            assert_eq!(a.next_batch(), b.next_batch());
        }
    }

    #[test]
    fn checkpoint_restore_resumes_identically() {
        let mut a = BatchSampler::new((0..23).collect(), 4, 7);
        for _ in 0..9 {
            a.next_batch();
        }
        let state = a.checkpoint();
        let text = state.to_string();
        let mut b =
            BatchSampler::restore(&netmax_json::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(b.epochs_elapsed(), a.epochs_elapsed());
        for _ in 0..20 {
            assert_eq!(a.next_batch(), b.next_batch());
        }
    }

    #[test]
    fn binary_encode_matches_generic_codec_on_checkpoint_json() {
        let mut s = BatchSampler::new((0..23).collect(), 4, 7);
        for _ in 0..9 {
            s.next_batch();
        }
        let mut typed = Vec::new();
        s.encode_checkpoint_into(&mut typed).unwrap();
        let mut generic = Vec::new();
        codec::encode_value(&mut generic, &s.checkpoint()).unwrap();
        assert_eq!(typed, generic);
        // And the decoded bytes restore an identical sampler.
        let mut back = BatchSampler::restore(&codec::decode_value(&typed).unwrap()).unwrap();
        for _ in 0..20 {
            assert_eq!(s.next_batch(), back.next_batch());
        }
    }

    #[test]
    fn epochs_accumulate_fractionally() {
        let mut s = BatchSampler::new((0..8).collect(), 2, 0);
        s.next_batch();
        assert!((s.epochs_elapsed() - 0.25).abs() < 1e-12);
        for _ in 0..7 {
            s.next_batch();
        }
        assert!((s.epochs_elapsed() - 2.0).abs() < 1e-12);
    }
}
