//! Named training workloads: dataset + model + hyper-parameters.
//!
//! A [`Workload`] bundles everything a distributed-training run needs
//! other than the network and the algorithm: the (synthetic stand-in)
//! dataset, the trainable model kind, the SGD configuration, and the
//! communication [`ModelProfile`]. The constructors mirror the paper's
//! experiment table: `resnet18_cifar10`, `resnet50_imagenet`, etc.

use crate::dataset::Dataset;
use crate::datasets;
use crate::model::{Model, ModelKind};
use crate::optim::SgdConfig;
use crate::profile::ModelProfile;
use netmax_json::{FromJson, Json, JsonError, ToJson};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A *reference* to one of the named workloads — pure data, no datasets.
///
/// [`Workload`] carries the instantiated (synthetic) datasets and is
/// therefore neither cheap to clone deeply nor serializable; scenario
/// specs store a `WorkloadKind` (inside a [`WorkloadSpec`]) instead and
/// instantiate the real thing at environment-build time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// ResNet18 on CIFAR10 (§V-B–E headline workload).
    Resnet18Cifar10,
    /// VGG19 on CIFAR10.
    Vgg19Cifar10,
    /// ResNet18 on CIFAR100 (§V-F).
    Resnet18Cifar100,
    /// ResNet18 on Tiny-ImageNet (§V-F).
    Resnet18TinyImagenet,
    /// ResNet50 on ImageNet (§V-F, 16 workers).
    Resnet50Imagenet,
    /// MobileNet on MNIST (§V-F non-IID).
    MobilenetMnist,
    /// MobileNet on CIFAR100 (§V-G).
    MobilenetCifar100,
    /// GoogLeNet on MNIST (Appendix G cross-cloud).
    GooglenetMnist,
    /// Convex ridge regression (theory tests and quick benches).
    ConvexRidge,
}

impl WorkloadKind {
    /// Every named workload, in paper order.
    pub fn all() -> [WorkloadKind; 9] {
        [
            WorkloadKind::Resnet18Cifar10,
            WorkloadKind::Vgg19Cifar10,
            WorkloadKind::Resnet18Cifar100,
            WorkloadKind::Resnet18TinyImagenet,
            WorkloadKind::Resnet50Imagenet,
            WorkloadKind::MobilenetMnist,
            WorkloadKind::MobilenetCifar100,
            WorkloadKind::GooglenetMnist,
            WorkloadKind::ConvexRidge,
        ]
    }

    /// Stable CLI/JSON identifier (`resnet18-cifar10`, …).
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Resnet18Cifar10 => "resnet18-cifar10",
            WorkloadKind::Vgg19Cifar10 => "vgg19-cifar10",
            WorkloadKind::Resnet18Cifar100 => "resnet18-cifar100",
            WorkloadKind::Resnet18TinyImagenet => "resnet18-tiny-imagenet",
            WorkloadKind::Resnet50Imagenet => "resnet50-imagenet",
            WorkloadKind::MobilenetMnist => "mobilenet-mnist",
            WorkloadKind::MobilenetCifar100 => "mobilenet-cifar100",
            WorkloadKind::GooglenetMnist => "googlenet-mnist",
            WorkloadKind::ConvexRidge => "ridge",
        }
    }

    /// Inverse of [`WorkloadKind::name`].
    pub fn by_name(name: &str) -> Option<WorkloadKind> {
        WorkloadKind::all().into_iter().find(|k| k.name() == name)
    }

    /// Instantiates the workload (datasets included) with `seed`.
    pub fn instantiate(self, seed: u64) -> Workload {
        match self {
            WorkloadKind::Resnet18Cifar10 => Workload::resnet18_cifar10(seed),
            WorkloadKind::Vgg19Cifar10 => Workload::vgg19_cifar10(seed),
            WorkloadKind::Resnet18Cifar100 => Workload::resnet18_cifar100(seed),
            WorkloadKind::Resnet18TinyImagenet => Workload::resnet18_tiny_imagenet(seed),
            WorkloadKind::Resnet50Imagenet => Workload::resnet50_imagenet(seed),
            WorkloadKind::MobilenetMnist => Workload::mobilenet_mnist(seed),
            WorkloadKind::MobilenetCifar100 => Workload::mobilenet_cifar100(seed),
            WorkloadKind::GooglenetMnist => Workload::googlenet_mnist(seed),
            WorkloadKind::ConvexRidge => Workload::convex_ridge(seed),
        }
    }
}

impl ToJson for WorkloadKind {
    fn to_json(&self) -> Json {
        Json::Str(self.name().to_string())
    }
}

impl FromJson for WorkloadKind {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let name = v.as_str()?;
        WorkloadKind::by_name(name)
            .ok_or_else(|| JsonError::schema(format!("unknown workload kind `{name}`")))
    }
}

/// A fully serializable workload description: which named workload, the
/// dataset seed, an optional epoch-schedule compression, an optional
/// learning-rate scale, and an optional communication-profile override.
/// Identical specs instantiate byte-identical [`Workload`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Which named workload.
    pub kind: WorkloadKind,
    /// Dataset-generation seed (distinct from the training seed).
    pub seed: u64,
    /// Epoch-budget compression applied via [`Workload::time_scaled`]
    /// (1.0 = the paper's schedule).
    pub time_scale: f64,
    /// Multiplier on the workload's base learning rate (1.0 = the
    /// paper's rate). Scenarios that shrink per-node shards far below
    /// the workloads' tuning point (the fleet-scale sweeps) use this to
    /// stay inside the SGD stability region for every arm.
    pub lr_scale: f64,
    /// Overrides the workload's communication/compute profile when set.
    pub profile: Option<ModelProfile>,
}

impl WorkloadSpec {
    /// A spec for `kind` with dataset seed `seed` and no overrides.
    pub fn new(kind: WorkloadKind, seed: u64) -> Self {
        Self { kind, seed, time_scale: 1.0, lr_scale: 1.0, profile: None }
    }

    /// ResNet18 on CIFAR10.
    pub fn resnet18_cifar10(seed: u64) -> Self {
        Self::new(WorkloadKind::Resnet18Cifar10, seed)
    }

    /// VGG19 on CIFAR10.
    pub fn vgg19_cifar10(seed: u64) -> Self {
        Self::new(WorkloadKind::Vgg19Cifar10, seed)
    }

    /// ResNet18 on CIFAR100.
    pub fn resnet18_cifar100(seed: u64) -> Self {
        Self::new(WorkloadKind::Resnet18Cifar100, seed)
    }

    /// ResNet18 on Tiny-ImageNet.
    pub fn resnet18_tiny_imagenet(seed: u64) -> Self {
        Self::new(WorkloadKind::Resnet18TinyImagenet, seed)
    }

    /// ResNet50 on ImageNet.
    pub fn resnet50_imagenet(seed: u64) -> Self {
        Self::new(WorkloadKind::Resnet50Imagenet, seed)
    }

    /// MobileNet on MNIST.
    pub fn mobilenet_mnist(seed: u64) -> Self {
        Self::new(WorkloadKind::MobilenetMnist, seed)
    }

    /// MobileNet on CIFAR100.
    pub fn mobilenet_cifar100(seed: u64) -> Self {
        Self::new(WorkloadKind::MobilenetCifar100, seed)
    }

    /// GoogLeNet on MNIST.
    pub fn googlenet_mnist(seed: u64) -> Self {
        Self::new(WorkloadKind::GooglenetMnist, seed)
    }

    /// Convex ridge regression.
    pub fn convex_ridge(seed: u64) -> Self {
        Self::new(WorkloadKind::ConvexRidge, seed)
    }

    /// CIFAR10-like convenience spec matching [`Workload::cifar10_like`].
    pub fn cifar10_like() -> Self {
        Self::resnet18_cifar10(0xC1FA_0010)
    }

    /// Returns a copy with the epoch schedule compressed by `f`
    /// (multiplied into any scale already present).
    pub fn time_scaled(mut self, f: f64) -> Self {
        assert!(f > 0.0, "scale must be positive");
        self.time_scale *= f;
        self
    }

    /// Returns a copy with the base learning rate scaled by `f`
    /// (multiplied into any scale already present).
    pub fn lr_scaled(mut self, f: f64) -> Self {
        assert!(f > 0.0, "scale must be positive");
        self.lr_scale *= f;
        self
    }

    /// Returns a copy with the communication profile overridden.
    pub fn with_profile(mut self, p: ModelProfile) -> Self {
        self.profile = Some(p);
        self
    }

    /// Instantiates the described [`Workload`] (pure: same spec, same
    /// datasets and hyper-parameters).
    pub fn instantiate(&self) -> Workload {
        let mut w = self.kind.instantiate(self.seed);
        if self.time_scale != 1.0 {
            w = w.time_scaled(self.time_scale);
        }
        if self.lr_scale != 1.0 {
            w.optim.lr *= self.lr_scale;
        }
        if let Some(p) = &self.profile {
            w.profile = p.clone();
        }
        w
    }
}

impl ToJson for WorkloadSpec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("kind", self.kind.to_json()),
            ("seed", self.seed.to_json()),
            ("time_scale", self.time_scale.to_json()),
            ("lr_scale", self.lr_scale.to_json()),
            ("profile", self.profile.to_json()),
        ])
    }
}

impl FromJson for WorkloadSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            kind: WorkloadKind::from_json(v.field("kind")?)?,
            seed: u64::from_json(v.field("seed")?)?,
            time_scale: f64::from_json(v.field("time_scale")?)?,
            // Absent in pre-scale-sweep documents: those specs never
            // scaled the rate.
            lr_scale: match v.field("lr_scale") {
                Ok(f) => f64::from_json(f)?,
                Err(_) => 1.0,
            },
            profile: Option::from_json(v.field("profile")?)?,
        })
    }
}

/// A complete training workload.
#[derive(Clone)]
pub struct Workload {
    /// Human-readable name, e.g. `"resnet18/cifar10"`.
    pub name: String,
    /// Training data (shared across all simulated workers).
    pub train: Arc<Dataset>,
    /// Held-out test data.
    pub test: Arc<Dataset>,
    /// Which trainable model each replica instantiates.
    pub model: ModelKind,
    /// Optimiser configuration.
    pub optim: SgdConfig,
    /// Base batch size (per-node batches may scale with data share).
    pub batch_size: usize,
    /// Target epochs for a full run (paper: 64 for ResNet18, 82 for VGG19…).
    pub target_epochs: f64,
    /// Communication/compute profile used for simulated timing.
    pub profile: ModelProfile,
}

impl Workload {
    /// Builds one model replica with replica-specific init seed.
    pub fn build_model(&self, seed: u64) -> Box<dyn Model> {
        self.model.build(self.train.dim(), self.train.num_classes(), seed)
    }

    /// ResNet18 on CIFAR10 (the main §V-B–E workload; 64 epochs).
    pub fn resnet18_cifar10(seed: u64) -> Self {
        let (train, test) = datasets::cifar10_like(seed);
        Self {
            name: "resnet18/cifar10".into(),
            train: Arc::new(train),
            test: Arc::new(test),
            model: ModelKind::Softmax,
            optim: SgdConfig::paper_default(),
            batch_size: 128,
            target_epochs: 64.0,
            profile: ModelProfile::resnet18(),
        }
    }

    /// VGG19 on CIFAR10 (82 epochs).
    pub fn vgg19_cifar10(seed: u64) -> Self {
        let (train, test) = datasets::cifar10_like(seed);
        Self {
            name: "vgg19/cifar10".into(),
            train: Arc::new(train),
            test: Arc::new(test),
            model: ModelKind::Softmax,
            optim: SgdConfig::paper_default(),
            batch_size: 128,
            target_epochs: 82.0,
            profile: ModelProfile::vgg19(),
        }
    }

    /// ResNet18 on CIFAR100 (§V-F non-uniform runs; 120 epochs, lr decay
    /// at 80).
    pub fn resnet18_cifar100(seed: u64) -> Self {
        let (train, test) = datasets::cifar100_like(seed);
        Self {
            name: "resnet18/cifar100".into(),
            train: Arc::new(train),
            test: Arc::new(test),
            model: ModelKind::Softmax,
            optim: SgdConfig {
                lr_milestones: vec![80.0],
                ..SgdConfig::paper_default()
            },
            batch_size: 64,
            target_epochs: 120.0,
            profile: ModelProfile::resnet18(),
        }
    }

    /// ResNet18 on Tiny-ImageNet (§V-F).
    pub fn resnet18_tiny_imagenet(seed: u64) -> Self {
        let (train, test) = datasets::tiny_imagenet_like(seed);
        Self {
            name: "resnet18/tiny-imagenet".into(),
            train: Arc::new(train),
            test: Arc::new(test),
            model: ModelKind::Softmax,
            optim: SgdConfig {
                lr_milestones: vec![40.0],
                ..SgdConfig::paper_default()
            },
            batch_size: 64,
            target_epochs: 60.0,
            profile: ModelProfile::resnet18(),
        }
    }

    /// ResNet50 on ImageNet with 16 workers (§V-F; 75 epochs, decay at 40).
    pub fn resnet50_imagenet(seed: u64) -> Self {
        let (train, test) = datasets::imagenet_like(seed);
        Self {
            name: "resnet50/imagenet".into(),
            train: Arc::new(train),
            test: Arc::new(test),
            model: ModelKind::Softmax,
            optim: SgdConfig {
                lr_milestones: vec![40.0],
                ..SgdConfig::paper_default()
            },
            batch_size: 64,
            target_epochs: 75.0,
            profile: ModelProfile::resnet50(),
        }
    }

    /// MobileNet on MNIST non-IID (§V-F extreme condition; batch 32,
    /// lr 0.01).
    pub fn mobilenet_mnist(seed: u64) -> Self {
        let (train, test) = datasets::mnist_like(seed);
        Self {
            name: "mobilenet/mnist".into(),
            train: Arc::new(train),
            test: Arc::new(test),
            model: ModelKind::Softmax,
            optim: SgdConfig {
                lr: 0.01,
                lr_milestones: vec![],
                ..SgdConfig::paper_default()
            },
            batch_size: 32,
            target_epochs: 30.0,
            profile: ModelProfile::mobilenet(),
        }
    }

    /// MobileNet on CIFAR100 (§V-G small-model-complex-data study).
    pub fn mobilenet_cifar100(seed: u64) -> Self {
        let (train, test) = datasets::cifar100_like(seed);
        Self {
            name: "mobilenet/cifar100".into(),
            train: Arc::new(train),
            test: Arc::new(test),
            // Deliberately weaker trainable model than the
            // ResNet18/CIFAR100 workload (it plateaus lower on this
            // mixture), matching the paper's ~63% vs ~72% gap.
            model: ModelKind::Mlp { hidden: 64 },
            optim: SgdConfig {
                lr_milestones: vec![80.0],
                ..SgdConfig::paper_default()
            },
            batch_size: 64,
            target_epochs: 120.0,
            profile: ModelProfile::mobilenet(),
        }
    }

    /// GoogLeNet on MNIST for the cross-cloud run (Appendix G).
    pub fn googlenet_mnist(seed: u64) -> Self {
        let (train, test) = datasets::mnist_like(seed);
        Self {
            name: "googlenet/mnist".into(),
            train: Arc::new(train),
            test: Arc::new(test),
            model: ModelKind::Mlp { hidden: 48 },
            optim: SgdConfig {
                lr: 0.01,
                lr_milestones: vec![],
                ..SgdConfig::paper_default()
            },
            batch_size: 32,
            target_epochs: 30.0,
            profile: ModelProfile::googlenet(),
        }
    }

    /// Small convex workload used by theory tests and quick benches: ridge
    /// regression, which satisfies the paper's Assumption 1 exactly.
    pub fn convex_ridge(seed: u64) -> Self {
        let (train, test) = datasets::mnist_like(seed);
        Self {
            name: "ridge/synthetic".into(),
            train: Arc::new(train),
            test: Arc::new(test),
            model: ModelKind::LeastSquares { l2: 0.05 },
            optim: SgdConfig::plain(0.05),
            batch_size: 32,
            target_epochs: 10.0,
            profile: ModelProfile::mobilenet(),
        }
    }

    /// CIFAR10-like convenience constructor used in doc examples.
    pub fn cifar10_like() -> Self {
        Self::resnet18_cifar10(0xC1FA_0010)
    }

    /// Returns a copy with the epoch budget (and learning-rate milestones)
    /// scaled by `f`. The figure harness runs time-compressed versions of
    /// the paper's schedules — e.g. the 120-epoch CIFAR100 runs at
    /// `f = 0.25` become 30 epochs with the decay at epoch 20 — preserving
    /// the schedule's *shape* while keeping the full sweep tractable.
    pub fn time_scaled(mut self, f: f64) -> Self {
        assert!(f > 0.0, "scale must be positive");
        self.target_epochs *= f;
        for m in &mut self.optim.lr_milestones {
            *m *= f;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_workloads_build() {
        for w in [
            Workload::resnet18_cifar10(1),
            Workload::vgg19_cifar10(1),
            Workload::resnet18_cifar100(1),
            Workload::resnet18_tiny_imagenet(1),
            Workload::resnet50_imagenet(1),
            Workload::mobilenet_mnist(1),
            Workload::mobilenet_cifar100(1),
            Workload::googlenet_mnist(1),
            Workload::convex_ridge(1),
        ] {
            let m = w.build_model(7);
            assert!(m.num_params() > 0, "{}: no params", w.name);
            assert!(!w.train.is_empty() && !w.test.is_empty(), "{}: empty data", w.name);
            assert!(w.batch_size > 0 && w.target_epochs > 0.0);
        }
    }

    #[test]
    fn replica_seeds_differ() {
        let w = Workload::resnet18_cifar10(1);
        let a = w.build_model(0);
        let b = w.build_model(1);
        assert_ne!(a.params(), b.params());
    }

    #[test]
    fn workload_kinds_cover_constructors_and_round_trip() {
        for kind in WorkloadKind::all() {
            let w = kind.instantiate(3);
            assert!(!w.name.is_empty());
            assert_eq!(WorkloadKind::by_name(kind.name()), Some(kind), "{}", kind.name());
            let spec = WorkloadSpec::new(kind, 3);
            let json = spec.to_json().to_string();
            let back = WorkloadSpec::from_json(&Json::parse(&json).unwrap()).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn spec_instantiation_is_pure_and_applies_overrides() {
        let spec = WorkloadSpec::resnet18_cifar100(9)
            .time_scaled(0.25)
            .with_profile(ModelProfile::mobilenet());
        let a = spec.instantiate();
        let b = spec.instantiate();
        assert_eq!(a.target_epochs, 30.0, "120-epoch schedule compressed 4x");
        assert_eq!(a.optim.lr_milestones, vec![20.0]);
        assert_eq!(a.profile, ModelProfile::mobilenet());
        assert_eq!(a.train.len(), b.train.len());
        assert_eq!(a.build_model(7).params(), b.build_model(7).params());
    }

    #[test]
    fn lr_scale_applies_and_round_trips() {
        let spec = WorkloadSpec::convex_ridge(11).lr_scaled(0.2);
        let w = spec.instantiate();
        assert!((w.optim.lr - 0.01).abs() < 1e-12, "0.05 scaled by 0.2");
        let back = WorkloadSpec::from_json(&Json::parse(&spec.to_json().to_string()).unwrap());
        assert_eq!(back.unwrap(), spec);
        // Documents written before the field existed parse at scale 1.
        let legacy =
            WorkloadSpec::convex_ridge(11).to_json().to_string().replace("lr_scale", "lr_scale_v0");
        let back = WorkloadSpec::from_json(&Json::parse(&legacy).unwrap()).unwrap();
        assert_eq!(back, WorkloadSpec::convex_ridge(11));
    }

    #[test]
    fn paper_hyperparams_respected() {
        let w = Workload::mobilenet_mnist(1);
        assert_eq!(w.batch_size, 32);
        assert!((w.optim.lr - 0.01).abs() < 1e-12);
        let w = Workload::resnet18_cifar10(1);
        assert_eq!(w.batch_size, 128);
        assert!((w.optim.lr - 0.1).abs() < 1e-12);
        assert_eq!(w.target_epochs, 64.0);
        let w = Workload::vgg19_cifar10(1);
        assert_eq!(w.target_epochs, 82.0);
    }
}
