//! SGD with momentum, weight decay, and step-decay learning-rate schedule.
//!
//! Hyper-parameters mirror the paper's configuration (§V-A): "the models
//! are trained with batch size 128, momentum 0.9, and weight decay 10⁻⁴.
//! The learning rate starts from 0.1 and decays by a factor of 10 once the
//! loss does not decrease any more" (reproduced here as explicit epoch
//! milestones, as the paper itself does in §V-F: "decays by a factor of 10
//! at epoch 80").

use serde::{Deserialize, Serialize};

/// SGD hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Initial learning rate α.
    pub lr: f64,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f64,
    /// Weight decay (L2) coefficient.
    pub weight_decay: f64,
    /// Epochs at which the learning rate is multiplied by `lr_decay`.
    pub lr_milestones: Vec<f64>,
    /// Multiplicative decay applied at each milestone (paper: 0.1).
    pub lr_decay: f64,
}

impl SgdConfig {
    /// The paper's §V-A defaults.
    pub fn paper_default() -> Self {
        Self {
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 1e-4,
            lr_milestones: vec![80.0],
            lr_decay: 0.1,
        }
    }

    /// Plain SGD with a fixed learning rate (used by the theory tests).
    pub fn plain(lr: f64) -> Self {
        Self { lr, momentum: 0.0, weight_decay: 0.0, lr_milestones: Vec::new(), lr_decay: 1.0 }
    }

    /// Learning rate in effect at fractional `epoch`.
    pub fn lr_at(&self, epoch: f64) -> f64 {
        let passed = self.lr_milestones.iter().filter(|&&m| epoch >= m).count();
        self.lr * self.lr_decay.powi(passed as i32)
    }
}

/// Per-replica optimiser state (momentum buffer).
#[derive(Debug, Clone)]
pub struct SgdState {
    velocity: Vec<f32>,
}

impl SgdState {
    /// Creates zeroed state for `num_params` parameters.
    pub fn new(num_params: usize) -> Self {
        Self { velocity: vec![0.0; num_params] }
    }

    /// The momentum buffer (checkpointing hook).
    pub fn velocity(&self) -> &[f32] {
        &self.velocity
    }

    /// Mutable momentum buffer (checkpoint restore hook).
    ///
    /// # Panics
    /// Callers must preserve the length; [`SgdState::step`] asserts it.
    pub fn velocity_mut(&mut self) -> &mut [f32] {
        &mut self.velocity
    }

    /// Applies one SGD step: `v ← µv + (g + wd·θ)`, `θ ← θ − lr·v`.
    ///
    /// This is the PyTorch-convention momentum update the paper's
    /// implementation uses.
    ///
    /// # Panics
    /// Panics if buffer sizes disagree.
    pub fn step(&mut self, cfg: &SgdConfig, lr: f64, params: &mut [f32], grad: &[f32]) {
        assert_eq!(params.len(), grad.len(), "step: grad/params mismatch");
        assert_eq!(params.len(), self.velocity.len(), "step: state mismatch");
        let mu = cfg.momentum as f32;
        let wd = cfg.weight_decay as f32;
        let lr = lr as f32;
        for ((v, p), g) in self.velocity.iter_mut().zip(params.iter_mut()).zip(grad) {
            let g_eff = g + wd * *p;
            *v = mu * *v + g_eff;
            *p -= lr * *v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = SgdConfig::paper_default();
        assert_eq!(c.lr, 0.1);
        assert_eq!(c.momentum, 0.9);
        assert_eq!(c.weight_decay, 1e-4);
    }

    #[test]
    fn lr_schedule_steps_down() {
        let mut c = SgdConfig::paper_default();
        c.lr_milestones = vec![10.0, 20.0];
        assert!((c.lr_at(0.0) - 0.1).abs() < 1e-12);
        assert!((c.lr_at(9.99) - 0.1).abs() < 1e-12);
        assert!((c.lr_at(10.0) - 0.01).abs() < 1e-12);
        assert!((c.lr_at(25.0) - 0.001).abs() < 1e-12);
    }

    #[test]
    fn plain_sgd_descends_quadratic() {
        // minimise ½θ² by gradient θ.
        let cfg = SgdConfig::plain(0.1);
        let mut st = SgdState::new(1);
        let mut p = vec![10.0f32];
        for _ in 0..100 {
            let g = vec![p[0]];
            st.step(&cfg, cfg.lr, &mut p, &g);
        }
        assert!(p[0].abs() < 1e-3, "did not descend: {}", p[0]);
    }

    #[test]
    fn momentum_accelerates_on_quadratic() {
        let run = |mu: f64| {
            let cfg = SgdConfig { momentum: mu, ..SgdConfig::plain(0.02) };
            let mut st = SgdState::new(1);
            let mut p = vec![10.0f32];
            let mut steps = 0;
            while p[0].abs() > 0.01 && steps < 10_000 {
                let g = vec![p[0]];
                st.step(&cfg, cfg.lr, &mut p, &g);
                steps += 1;
            }
            steps
        };
        assert!(run(0.9) < run(0.0), "momentum should converge in fewer steps");
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let cfg = SgdConfig {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.1,
            lr_milestones: vec![],
            lr_decay: 1.0,
        };
        let mut st = SgdState::new(1);
        let mut p = vec![1.0f32];
        // Zero data gradient: only decay acts.
        for _ in 0..10 {
            st.step(&cfg, cfg.lr, &mut p, &[0.0]);
        }
        assert!(p[0] < 1.0 && p[0] > 0.0);
    }
}
