//! Trainable models.
//!
//! Every model exposes its parameters as one flat `f32` slice — that flat
//! vector is the `x_i` of the paper: it is what SGD updates, what gossip
//! partners exchange, and what the consensus distance ‖x_i − x_m‖ is
//! measured on.
//!
//! Three models are provided:
//!
//! * [`SoftmaxRegression`] — multinomial logistic regression; convex, the
//!   workhorse for the figure reproductions.
//! * [`Mlp`] — a one-hidden-layer ReLU network; non-convex, used where the
//!   paper's point involves escaping sharp minima (§V-D's accuracy
//!   discussion) and for the larger "model" workloads.
//! * [`LeastSquares`] — L2-regularised linear regression; **µ-strongly
//!   convex with L-Lipschitz gradients**, exactly Assumption 1 of the
//!   paper, so the convergence-theory tests (Theorems 1–3) can be checked
//!   against a model that satisfies their hypotheses.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A supervised model with flat parameters.
pub trait Model: Send {
    /// Number of parameters.
    fn num_params(&self) -> usize;

    /// Flat parameter vector.
    fn params(&self) -> &[f32];

    /// Mutable flat parameter vector.
    fn params_mut(&mut self) -> &mut [f32];

    /// Computes the mean loss over `batch` (example indices into `data`)
    /// and writes the mean gradient into `grad`.
    ///
    /// # Panics
    /// Implementations panic if `grad.len() != self.num_params()` or the
    /// dataset shape does not match the model.
    fn loss_grad(&self, data: &Dataset, batch: &[usize], grad: &mut [f32]) -> f32;

    /// Mean loss over `batch` without computing gradients.
    fn loss(&self, data: &Dataset, batch: &[usize]) -> f32;

    /// Predicted class for a feature vector. Regression models return 0.
    fn predict(&self, x: &[f32]) -> u32;

    /// Clones the model behind a trait object (each worker node holds its
    /// own replica).
    fn clone_box(&self) -> Box<dyn Model>;
}

impl Clone for Box<dyn Model> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Which model a workload trains; a cheap, serialisable factory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ModelKind {
    /// Multinomial logistic regression.
    Softmax,
    /// One-hidden-layer ReLU MLP with the given hidden width.
    Mlp {
        /// Hidden-layer width.
        hidden: usize,
    },
    /// Ridge regression with the given L2 coefficient.
    LeastSquares {
        /// L2 regularisation weight (µ-strong convexity constant).
        l2: f64,
    },
}

impl ModelKind {
    /// Instantiates the model for a dataset shape with seeded init.
    pub fn build(self, dim: usize, num_classes: usize, seed: u64) -> Box<dyn Model> {
        match self {
            ModelKind::Softmax => Box::new(SoftmaxRegression::new(dim, num_classes, seed)),
            ModelKind::Mlp { hidden } => Box::new(Mlp::new(dim, hidden, num_classes, seed)),
            ModelKind::LeastSquares { l2 } => Box::new(LeastSquares::new(dim, l2 as f32, seed)),
        }
    }
}

fn seeded_init(n: usize, scale: f32, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-scale..scale)).collect()
}

// ---------------------------------------------------------------------------
// Softmax regression
// ---------------------------------------------------------------------------

/// Multinomial logistic regression: `logit_c = W_c · x + b_c`.
///
/// Parameter layout: `[W (C×D row-major) | b (C)]`.
#[derive(Debug, Clone)]
pub struct SoftmaxRegression {
    dim: usize,
    classes: usize,
    params: Vec<f32>,
}

impl SoftmaxRegression {
    /// Creates a model with small seeded random weights.
    pub fn new(dim: usize, classes: usize, seed: u64) -> Self {
        assert!(classes >= 2, "softmax needs ≥ 2 classes");
        let scale = (1.0 / dim as f32).sqrt() * 0.1;
        let mut params = seeded_init(dim * classes, scale, seed);
        params.extend(std::iter::repeat_n(0.0f32, classes));
        Self { dim, classes, params }
    }

    /// Class probabilities for a feature vector (softmax of the logits).
    pub fn probabilities(&self, x: &[f32]) -> Vec<f32> {
        let mut logits = self.logits(x);
        softmax_inplace(&mut logits);
        logits
    }

    fn logits(&self, x: &[f32]) -> Vec<f32> {
        debug_assert_eq!(x.len(), self.dim);
        let (w, b) = self.params.split_at(self.dim * self.classes);
        (0..self.classes)
            .map(|c| {
                let row = &w[c * self.dim..(c + 1) * self.dim];
                crate::params::dot(row, x) + b[c]
            })
            .collect()
    }
}

/// Numerically stable in-place softmax.
fn softmax_inplace(logits: &mut [f32]) {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for l in logits.iter_mut() {
        *l = (*l - max).exp();
        sum += *l;
    }
    for l in logits.iter_mut() {
        *l /= sum;
    }
}

impl Model for SoftmaxRegression {
    fn num_params(&self) -> usize {
        self.params.len()
    }

    fn params(&self) -> &[f32] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    fn loss_grad(&self, data: &Dataset, batch: &[usize], grad: &mut [f32]) -> f32 {
        assert_eq!(grad.len(), self.num_params(), "grad buffer size mismatch");
        assert_eq!(data.dim(), self.dim, "dataset dim mismatch");
        assert!(!batch.is_empty(), "empty batch");
        grad.fill(0.0);
        let inv = 1.0 / batch.len() as f32;
        let mut loss = 0.0f32;
        let (gw, gb) = grad.split_at_mut(self.dim * self.classes);
        for &i in batch {
            let x = data.feature(i);
            let y = data.label(i) as usize;
            let mut p = self.logits(x);
            softmax_inplace(&mut p);
            loss -= (p[y].max(1e-12)).ln();
            for c in 0..self.classes {
                let coef = (p[c] - if c == y { 1.0 } else { 0.0 }) * inv;
                if coef == 0.0 {
                    continue;
                }
                let row = &mut gw[c * self.dim..(c + 1) * self.dim];
                crate::params::axpy(coef, x, row);
                gb[c] += coef;
            }
        }
        loss * inv
    }

    fn loss(&self, data: &Dataset, batch: &[usize]) -> f32 {
        assert!(!batch.is_empty(), "empty batch");
        let mut loss = 0.0f32;
        for &i in batch {
            let p = self.probabilities(data.feature(i));
            loss -= (p[data.label(i) as usize].max(1e-12)).ln();
        }
        loss / batch.len() as f32
    }

    fn predict(&self, x: &[f32]) -> u32 {
        let logits = self.logits(x);
        argmax(&logits)
    }

    fn clone_box(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

fn argmax(v: &[f32]) -> u32 {
    let mut best = 0usize;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best as u32
}

// ---------------------------------------------------------------------------
// One-hidden-layer MLP
// ---------------------------------------------------------------------------

/// One-hidden-layer ReLU network: `logits = W2 · relu(W1 x + b1) + b2`.
///
/// Parameter layout: `[W1 (H×D) | b1 (H) | W2 (C×H) | b2 (C)]`.
#[derive(Debug, Clone)]
pub struct Mlp {
    dim: usize,
    hidden: usize,
    classes: usize,
    params: Vec<f32>,
}

impl Mlp {
    /// Creates a model with He-style seeded init.
    pub fn new(dim: usize, hidden: usize, classes: usize, seed: u64) -> Self {
        assert!(hidden > 0 && classes >= 2);
        let s1 = (2.0 / dim as f32).sqrt() * 0.5;
        let s2 = (2.0 / hidden as f32).sqrt() * 0.5;
        let mut params = seeded_init(hidden * dim, s1, seed);
        params.extend(std::iter::repeat_n(0.0f32, hidden));
        params.extend(seeded_init(classes * hidden, s2, seed.wrapping_add(1)));
        params.extend(std::iter::repeat_n(0.0f32, classes));
        Self { dim, hidden, classes, params }
    }

    fn split(&self) -> (&[f32], &[f32], &[f32], &[f32]) {
        let (w1, rest) = self.params.split_at(self.hidden * self.dim);
        let (b1, rest) = rest.split_at(self.hidden);
        let (w2, b2) = rest.split_at(self.classes * self.hidden);
        (w1, b1, w2, b2)
    }

    /// Forward pass; returns (hidden activations post-ReLU, logits).
    fn forward(&self, x: &[f32]) -> (Vec<f32>, Vec<f32>) {
        let (w1, b1, w2, b2) = self.split();
        let mut h = vec![0.0f32; self.hidden];
        for (j, hj) in h.iter_mut().enumerate() {
            let row = &w1[j * self.dim..(j + 1) * self.dim];
            *hj = (crate::params::dot(row, x) + b1[j]).max(0.0);
        }
        let mut logits = vec![0.0f32; self.classes];
        for (c, lc) in logits.iter_mut().enumerate() {
            let row = &w2[c * self.hidden..(c + 1) * self.hidden];
            *lc = crate::params::dot(row, &h) + b2[c];
        }
        (h, logits)
    }
}

impl Model for Mlp {
    fn num_params(&self) -> usize {
        self.params.len()
    }

    fn params(&self) -> &[f32] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    fn loss_grad(&self, data: &Dataset, batch: &[usize], grad: &mut [f32]) -> f32 {
        assert_eq!(grad.len(), self.num_params(), "grad buffer size mismatch");
        assert_eq!(data.dim(), self.dim, "dataset dim mismatch");
        assert!(!batch.is_empty(), "empty batch");
        grad.fill(0.0);
        let inv = 1.0 / batch.len() as f32;
        let mut loss = 0.0f32;

        let (w1_len, b1_len, w2_len) =
            (self.hidden * self.dim, self.hidden, self.classes * self.hidden);
        let (_, _, w2, _) = self.split();
        let w2 = w2.to_vec(); // borrow w2 while writing into grad

        for &i in batch {
            let x = data.feature(i);
            let y = data.label(i) as usize;
            let (h, mut p) = self.forward(x);
            softmax_inplace(&mut p);
            loss -= (p[y].max(1e-12)).ln();

            // dL/dlogit_c = p_c - 1{c=y}
            let (gw1, rest) = grad.split_at_mut(w1_len);
            let (gb1, rest) = rest.split_at_mut(b1_len);
            let (gw2, gb2) = rest.split_at_mut(w2_len);

            // Output layer grads + backprop into hidden.
            let mut dh = vec![0.0f32; self.hidden];
            for c in 0..self.classes {
                let d = (p[c] - if c == y { 1.0 } else { 0.0 }) * inv;
                if d == 0.0 {
                    continue;
                }
                let row = &mut gw2[c * self.hidden..(c + 1) * self.hidden];
                crate::params::axpy(d, &h, row);
                gb2[c] += d;
                let w2row = &w2[c * self.hidden..(c + 1) * self.hidden];
                crate::params::axpy(d, w2row, &mut dh);
            }
            // ReLU gate, then input layer grads.
            for (j, dhj) in dh.iter().enumerate() {
                if h[j] <= 0.0 || *dhj == 0.0 {
                    continue;
                }
                let row = &mut gw1[j * self.dim..(j + 1) * self.dim];
                crate::params::axpy(*dhj, x, row);
                gb1[j] += *dhj;
            }
        }
        loss * inv
    }

    fn loss(&self, data: &Dataset, batch: &[usize]) -> f32 {
        assert!(!batch.is_empty(), "empty batch");
        let mut loss = 0.0f32;
        for &i in batch {
            let (_, mut p) = self.forward(data.feature(i));
            softmax_inplace(&mut p);
            loss -= (p[data.label(i) as usize].max(1e-12)).ln();
        }
        loss / batch.len() as f32
    }

    fn predict(&self, x: &[f32]) -> u32 {
        let (_, logits) = self.forward(x);
        argmax(&logits)
    }

    fn clone_box(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Ridge regression (the Assumption-1 model)
// ---------------------------------------------------------------------------

/// L2-regularised least squares: `loss = ½(w·x + b − y)² + ½λ‖w‖²`,
/// treating the integer label as the regression target.
///
/// With `λ > 0` this loss is λ-strongly convex with Lipschitz gradients —
/// the exact hypotheses of the paper's Assumption 1 — so the convergence
/// bound of Theorem 1 can be tested against it quantitatively.
#[derive(Debug, Clone)]
pub struct LeastSquares {
    dim: usize,
    l2: f32,
    /// Layout: `[w (dim) | b]`.
    params: Vec<f32>,
}

impl LeastSquares {
    /// Creates a model with small seeded random weights.
    pub fn new(dim: usize, l2: f32, seed: u64) -> Self {
        assert!(l2 >= 0.0);
        let mut params = seeded_init(dim, 0.1, seed);
        params.push(0.0);
        Self { dim, l2, params }
    }

    fn value(&self, x: &[f32]) -> f32 {
        crate::params::dot(&self.params[..self.dim], x) + self.params[self.dim]
    }
}

impl Model for LeastSquares {
    fn num_params(&self) -> usize {
        self.params.len()
    }

    fn params(&self) -> &[f32] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    fn loss_grad(&self, data: &Dataset, batch: &[usize], grad: &mut [f32]) -> f32 {
        assert_eq!(grad.len(), self.num_params(), "grad buffer size mismatch");
        assert!(!batch.is_empty(), "empty batch");
        grad.fill(0.0);
        let inv = 1.0 / batch.len() as f32;
        let mut loss = 0.0f32;
        for &i in batch {
            let x = data.feature(i);
            let y = data.label(i) as f32;
            let r = self.value(x) - y;
            loss += 0.5 * r * r;
            crate::params::axpy(r * inv, x, &mut grad[..self.dim]);
            grad[self.dim] += r * inv;
        }
        // L2 term on weights (not bias).
        let w = &self.params[..self.dim];
        loss += 0.5 * self.l2 * crate::params::norm_sq(w) * batch.len() as f32;
        crate::params::axpy(self.l2, w, &mut grad[..self.dim]);
        loss * inv + 0.0 // already averaged data term; reg term below
    }

    fn loss(&self, data: &Dataset, batch: &[usize]) -> f32 {
        assert!(!batch.is_empty(), "empty batch");
        let mut loss = 0.0f32;
        for &i in batch {
            let r = self.value(data.feature(i)) - data.label(i) as f32;
            loss += 0.5 * r * r;
        }
        loss / batch.len() as f32
            + 0.5 * self.l2 * crate::params::norm_sq(&self.params[..self.dim])
    }

    fn predict(&self, x: &[f32]) -> u32 {
        self.value(x).round().max(0.0) as u32
    }

    fn clone_box(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{gaussian_mixture, MixtureSpec};

    fn small_data() -> Dataset {
        gaussian_mixture(
            MixtureSpec {
                num_classes: 3,
                dim: 8,
                train_n: 120,
                test_n: 30,
                mean_scale: 2.0,
                noise: 0.3,
            },
            42,
        )
        .0
    }

    /// Central-difference gradient check for any model.
    fn grad_check(model: &mut dyn Model, data: &Dataset, tol: f32) {
        let batch: Vec<usize> = (0..16).collect();
        let n = model.num_params();
        let mut grad = vec![0.0f32; n];
        model.loss_grad(data, &batch, &mut grad);
        let eps = 1e-3f32;
        // Check a spread of parameter coordinates.
        for k in (0..n).step_by((n / 13).max(1)) {
            let orig = model.params()[k];
            model.params_mut()[k] = orig + eps;
            let lp = model.loss(data, &batch);
            model.params_mut()[k] = orig - eps;
            let lm = model.loss(data, &batch);
            model.params_mut()[k] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - grad[k]).abs() < tol * (1.0 + num.abs()),
                "param {k}: numeric {num} vs analytic {}",
                grad[k]
            );
        }
    }

    #[test]
    fn softmax_gradient_is_correct() {
        let data = small_data();
        let mut m = SoftmaxRegression::new(8, 3, 7);
        grad_check(&mut m, &data, 2e-2);
    }

    #[test]
    fn mlp_gradient_is_correct() {
        let data = small_data();
        let mut m = Mlp::new(8, 12, 3, 7);
        grad_check(&mut m, &data, 3e-2);
    }

    #[test]
    fn least_squares_gradient_is_correct() {
        let data = small_data();
        let mut m = LeastSquares::new(8, 0.01, 7);
        grad_check(&mut m, &data, 2e-2);
    }

    #[test]
    fn sgd_reduces_softmax_loss() {
        let data = small_data();
        let mut m = SoftmaxRegression::new(8, 3, 1);
        let batch: Vec<usize> = (0..data.len()).collect();
        let mut grad = vec![0.0f32; m.num_params()];
        let l0 = m.loss(&data, &batch);
        for _ in 0..50 {
            m.loss_grad(&data, &batch, &mut grad);
            crate::params::axpy(-0.5, &grad, m.params_mut());
        }
        let l1 = m.loss(&data, &batch);
        assert!(l1 < 0.5 * l0, "full-batch GD failed to reduce loss: {l0} -> {l1}");
    }

    #[test]
    fn trained_softmax_beats_chance() {
        let (train, test) = gaussian_mixture(
            MixtureSpec {
                num_classes: 4,
                dim: 10,
                train_n: 400,
                test_n: 200,
                mean_scale: 1.5,
                noise: 0.5,
            },
            3,
        );
        let mut m = SoftmaxRegression::new(10, 4, 1);
        let batch: Vec<usize> = (0..train.len()).collect();
        let mut grad = vec![0.0f32; m.num_params()];
        for _ in 0..200 {
            m.loss_grad(&train, &batch, &mut grad);
            crate::params::axpy(-0.5, &grad, m.params_mut());
        }
        let correct = (0..test.len())
            .filter(|&i| m.predict(test.feature(i)) == test.label(i))
            .count();
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.8, "test accuracy {acc} too low");
    }

    #[test]
    fn model_kind_builds_expected_sizes() {
        let s = ModelKind::Softmax.build(10, 4, 0);
        assert_eq!(s.num_params(), 10 * 4 + 4);
        let m = ModelKind::Mlp { hidden: 16 }.build(10, 4, 0);
        assert_eq!(m.num_params(), 16 * 10 + 16 + 4 * 16 + 4);
        let l = ModelKind::LeastSquares { l2: 0.1 }.build(10, 4, 0);
        assert_eq!(l.num_params(), 11);
    }

    #[test]
    fn clone_box_is_independent() {
        let m = SoftmaxRegression::new(4, 2, 9);
        let mut c = m.clone_box();
        c.params_mut()[0] += 1.0;
        assert_ne!(m.params()[0], c.params()[0]);
    }

    #[test]
    fn deterministic_init() {
        let a = SoftmaxRegression::new(6, 3, 5);
        let b = SoftmaxRegression::new(6, 3, 5);
        assert_eq!(a.params(), b.params());
        let c = SoftmaxRegression::new(6, 3, 6);
        assert_ne!(a.params(), c.params());
    }
}
