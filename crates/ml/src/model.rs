//! Trainable models.
//!
//! Every model exposes its parameters as one flat `f32` slice — that flat
//! vector is the `x_i` of the paper: it is what SGD updates, what gossip
//! partners exchange, and what the consensus distance ‖x_i − x_m‖ is
//! measured on.
//!
//! Three models are provided:
//!
//! * [`SoftmaxRegression`] — multinomial logistic regression; convex, the
//!   workhorse for the figure reproductions.
//! * [`Mlp`] — a one-hidden-layer ReLU network; non-convex, used where the
//!   paper's point involves escaping sharp minima (§V-D's accuracy
//!   discussion) and for the larger "model" workloads.
//! * [`LeastSquares`] — L2-regularised linear regression; **µ-strongly
//!   convex with L-Lipschitz gradients**, exactly Assumption 1 of the
//!   paper, so the convergence-theory tests (Theorems 1–3) can be checked
//!   against a model that satisfies their hypotheses.

use crate::dataset::Dataset;
use crate::fast::{softmax_xent_grad_fast, transpose_block_fast};
use crate::tier::{KernelTable, NumericsTier};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Reusable workspace for the gradient hot path.
///
/// One `Scratch` per worker replica makes `loss_grad_scratch` free of
/// heap traffic at steady state: the forward/backward buffers (`h`,
/// `logits`, `dh`) and the batch-mean gradient (`grad`) are sized on
/// first use and reused on every subsequent call. Buffers only ever grow,
/// so a scratch can be shared across models of different shapes (the
/// largest shape wins).
///
/// The scratch also carries the session's [`KernelTable`]: gradient entry
/// points branch **once** on [`KernelTable::tier`] and dispatch either to
/// the strict cores (bit-stable, the default) or to the fast-tier cores,
/// which reach every reassociated kernel through the table. Evaluation
/// entry points (`loss_scratch`, `count_correct_scratch`, `predict`) stay
/// strict under both tiers, so recorded metric curves differ between
/// tiers only through the trained parameters.
#[derive(Debug, Clone)]
pub struct Scratch {
    /// Batch-mean gradient output of the last
    /// [`Model::loss_grad_scratch`] call (`num_params` long).
    pub grad: Vec<f32>,
    /// Hidden activations (MLP forward pass).
    h: Vec<f32>,
    /// Logits / class probabilities.
    logits: Vec<f32>,
    /// Backpropagated hidden-layer gradient.
    dh: Vec<f32>,
    /// Feature-major (transposed) batch block for [`batch_logits`].
    xb: Vec<f32>,
    /// Per-batch logits block (`classes × chunk`).
    logits_all: Vec<f32>,
    /// Per-sample running maxima for [`softmax_block`].
    maxs: Vec<f32>,
    /// Per-sample exp-sums for [`softmax_block`].
    sums: Vec<f32>,
    /// Example-index buffer for evaluation subsampling
    /// ([`crate::metrics::subsampled_loss_scratch`]).
    pub(crate) idx: Vec<usize>,
    /// Per-sample coefficient row for the fast-tier backward
    /// ([`softmax_xent_grad_fast`]).
    coefs: Vec<f32>,
    /// Per-chunk label buffer for the fast-tier forward.
    labels: Vec<u32>,
    /// The tier's kernel family; chosen once at construction.
    pub kernels: &'static KernelTable,
}

impl Default for Scratch {
    fn default() -> Self {
        Self::for_tier(NumericsTier::Strict)
    }
}

impl Scratch {
    /// Creates an empty strict-tier workspace; buffers are sized lazily
    /// by the first `loss_grad_scratch` call.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty workspace dispatching through `tier`'s kernels.
    pub fn for_tier(tier: NumericsTier) -> Self {
        Self {
            grad: Vec::new(),
            h: Vec::new(),
            logits: Vec::new(),
            dh: Vec::new(),
            xb: Vec::new(),
            logits_all: Vec::new(),
            maxs: Vec::new(),
            sums: Vec::new(),
            idx: Vec::new(),
            coefs: Vec::new(),
            labels: Vec::new(),
            kernels: tier.kernels(),
        }
    }
}

/// Samples per block in the batched forward kernels: bounds the
/// feature-major scratch block (`BATCH_CHUNK · dim` floats) to stay
/// cache-resident regardless of batch size.
const BATCH_CHUNK: usize = 256;

/// Writes the feature-major transpose of a batch block into `xb`:
/// `xb[d·B + s] = feature(batch[s])[d]`.
fn transpose_batch(data: &Dataset, batch: &[usize], dim: usize, xb: &mut Vec<f32>) {
    let nb = batch.len();
    xb.clear();
    xb.resize(dim * nb, 0.0);
    for (s, &i) in batch.iter().enumerate() {
        for (d, &v) in data.feature(i).iter().enumerate() {
            xb[d * nb + s] = v;
        }
    }
}

/// Logits for a whole batch block at once:
/// `out[c·B + s] = Σ_d w[c·D + d] · xb[d·B + s] + b[c]`.
///
/// Every output accumulates its terms in ascending-`d` order — exactly
/// the sequential `dot(row, x) + b[c]` it replaces, so each logit is
/// **bitwise identical** (Rust float semantics permit no reassociation).
/// The difference is purely mechanical: the batch dimension is contiguous
/// and its accumulators are independent, so the inner loop vectorises
/// across samples instead of serialising one latency-bound add chain per
/// dot product. This kernel is why the simulation's per-step cost is
/// dominated by `exp`/`ln` rather than by the mat-vecs.
/// In-place softmax over a `classes × nb` logits block, one sample per
/// column.
///
/// For each sample the operations and their order are exactly those of
/// [`softmax_inplace`] on its logit column — max-fold over ascending
/// class index from `NEG_INFINITY`, exp-and-accumulate in class order
/// from `0.0`, then one divide per class — so every probability is
/// **bitwise identical**. Laying the loops class-outer makes the
/// max/sum/divide passes vectorise across the contiguous sample
/// dimension; only the `exp` calls remain scalar, which is the
/// irreducible cost of a bit-stable softmax.
fn softmax_block(
    block: &mut [f32],
    nb: usize,
    maxs: &mut Vec<f32>,
    sums: &mut Vec<f32>,
) {
    debug_assert_eq!(block.len() % nb, 0);
    maxs.clear();
    maxs.resize(nb, f32::NEG_INFINITY);
    for row in block.chunks(nb) {
        for (m, &v) in maxs.iter_mut().zip(row) {
            *m = m.max(v);
        }
    }
    sums.clear();
    sums.resize(nb, 0.0);
    for row in block.chunks_mut(nb) {
        for ((l, &m), s) in row.iter_mut().zip(&*maxs).zip(sums.iter_mut()) {
            *l = (*l - m).exp();
            *s += *l;
        }
    }
    for row in block.chunks_mut(nb) {
        for (l, &s) in row.iter_mut().zip(&*sums) {
            *l /= s;
        }
    }
}

fn batch_logits(w: &[f32], b: &[f32], xb: &[f32], dim: usize, nb: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), b.len() * nb);
    debug_assert_eq!(xb.len(), dim * nb);
    for (c, &bc) in b.iter().enumerate() {
        let row = &w[c * dim..(c + 1) * dim];
        let acc = &mut out[c * nb..(c + 1) * nb];
        acc.fill(0.0);
        for (d, &wcd) in row.iter().enumerate() {
            let xrow = &xb[d * nb..(d + 1) * nb];
            for (a, &xv) in acc.iter_mut().zip(xrow) {
                *a += wcd * xv;
            }
        }
        for a in acc.iter_mut() {
            *a += bc;
        }
    }
}


/// A supervised model with flat parameters.
pub trait Model: Send {
    /// Number of parameters.
    fn num_params(&self) -> usize;

    /// Flat parameter vector.
    fn params(&self) -> &[f32];

    /// Mutable flat parameter vector.
    fn params_mut(&mut self) -> &mut [f32];

    /// Computes the mean loss over `batch` (example indices into `data`)
    /// and writes the mean gradient into `grad`.
    ///
    /// # Panics
    /// Implementations panic if `grad.len() != self.num_params()` or the
    /// dataset shape does not match the model.
    fn loss_grad(&self, data: &Dataset, batch: &[usize], grad: &mut [f32]) -> f32;

    /// [`Model::loss_grad`] through a reusable workspace: the mean
    /// gradient lands in `scratch.grad` and the result is bitwise
    /// identical to `loss_grad`. The provided implementations allocate
    /// nothing once `scratch` is warm; the default falls back to
    /// `loss_grad` (which may use per-call temporaries).
    fn loss_grad_scratch(&self, data: &Dataset, batch: &[usize], scratch: &mut Scratch) -> f32 {
        scratch.grad.resize(self.num_params(), 0.0);
        self.loss_grad(data, batch, &mut scratch.grad)
    }

    /// Mean loss over `batch` without computing gradients.
    fn loss(&self, data: &Dataset, batch: &[usize]) -> f32;

    /// [`Model::loss`] through the reusable workspace — bitwise identical
    /// result, but the provided implementations allocate nothing once the
    /// scratch is warm and run the transposed batch kernel. The metric
    /// recorder evaluates loss curves through this entry point.
    fn loss_scratch(&self, data: &Dataset, batch: &[usize], scratch: &mut Scratch) -> f32 {
        let _ = scratch;
        self.loss(data, batch)
    }

    /// Number of correctly classified examples over the whole `data` set,
    /// through the reusable workspace — bitwise identical to counting
    /// [`Model::predict`] hits, without the per-sample temporaries.
    fn count_correct_scratch(&self, data: &Dataset, scratch: &mut Scratch) -> usize {
        let _ = scratch;
        (0..data.len())
            .filter(|&i| self.predict(data.feature(i)) == data.label(i))
            .count()
    }

    /// Predicted class for a feature vector. Regression models return 0.
    fn predict(&self, x: &[f32]) -> u32;

    /// Clones the model behind a trait object (each worker node holds its
    /// own replica).
    fn clone_box(&self) -> Box<dyn Model>;
}

impl Clone for Box<dyn Model> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Which model a workload trains; a cheap, serialisable factory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ModelKind {
    /// Multinomial logistic regression.
    Softmax,
    /// One-hidden-layer ReLU MLP with the given hidden width.
    Mlp {
        /// Hidden-layer width.
        hidden: usize,
    },
    /// Ridge regression with the given L2 coefficient.
    LeastSquares {
        /// L2 regularisation weight (µ-strong convexity constant).
        l2: f64,
    },
}

impl ModelKind {
    /// Instantiates the model for a dataset shape with seeded init.
    pub fn build(self, dim: usize, num_classes: usize, seed: u64) -> Box<dyn Model> {
        match self {
            ModelKind::Softmax => Box::new(SoftmaxRegression::new(dim, num_classes, seed)),
            ModelKind::Mlp { hidden } => Box::new(Mlp::new(dim, hidden, num_classes, seed)),
            ModelKind::LeastSquares { l2 } => Box::new(LeastSquares::new(dim, l2 as f32, seed)),
        }
    }
}

fn seeded_init(n: usize, scale: f32, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-scale..scale)).collect()
}

// ---------------------------------------------------------------------------
// Softmax regression
// ---------------------------------------------------------------------------

/// Multinomial logistic regression: `logit_c = W_c · x + b_c`.
///
/// Parameter layout: `[W (C×D row-major) | b (C)]`.
#[derive(Debug, Clone)]
pub struct SoftmaxRegression {
    dim: usize,
    classes: usize,
    params: Vec<f32>,
}

impl SoftmaxRegression {
    /// Creates a model with small seeded random weights.
    pub fn new(dim: usize, classes: usize, seed: u64) -> Self {
        assert!(classes >= 2, "softmax needs ≥ 2 classes");
        let scale = (1.0 / dim as f32).sqrt() * 0.1;
        let mut params = seeded_init(dim * classes, scale, seed);
        params.extend(std::iter::repeat_n(0.0f32, classes));
        Self { dim, classes, params }
    }

    /// Class probabilities for a feature vector (softmax of the logits).
    pub fn probabilities(&self, x: &[f32]) -> Vec<f32> {
        let mut logits = self.logits(x);
        softmax_inplace(&mut logits);
        logits
    }

    fn logits(&self, x: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        self.logits_into(x, &mut out);
        out
    }

    fn logits_into(&self, x: &[f32], out: &mut Vec<f32>) {
        debug_assert_eq!(x.len(), self.dim);
        let (w, b) = self.params.split_at(self.dim * self.classes);
        out.clear();
        out.extend((0..self.classes).map(|c| {
            let row = &w[c * self.dim..(c + 1) * self.dim];
            crate::params::dot_sequential(row, x) + b[c]
        }));
    }

    /// The gradient kernel behind both `loss_grad` entry points; the
    /// forward runs through the batched [`batch_logits`] kernel (bitwise
    /// identical to per-sample dots, but vectorised across samples).
    fn loss_grad_core(
        &self,
        data: &Dataset,
        batch: &[usize],
        grad: &mut [f32],
        scratch_bufs: (&mut Vec<f32>, &mut Vec<f32>, &mut Vec<f32>, &mut Vec<f32>),
    ) -> f32 {
        let (xb, logits_all, maxs, sums) = scratch_bufs;
        assert_eq!(grad.len(), self.num_params(), "grad buffer size mismatch");
        assert_eq!(data.dim(), self.dim, "dataset dim mismatch");
        assert!(!batch.is_empty(), "empty batch");
        grad.fill(0.0);
        let (w, b) = self.params.split_at(self.dim * self.classes);
        let inv = 1.0 / batch.len() as f32;
        let mut loss = 0.0f32;
        let (gw, gb) = grad.split_at_mut(self.dim * self.classes);
        for chunk in batch.chunks(BATCH_CHUNK) {
            let nb = chunk.len();
            transpose_batch(data, chunk, self.dim, xb);
            logits_all.resize(self.classes * nb, 0.0);
            batch_logits(w, b, xb, self.dim, nb, logits_all);
            softmax_block(logits_all, nb, maxs, sums);
            for (s, &i) in chunk.iter().enumerate() {
                loss -= (logits_all[data.label(i) as usize * nb + s].max(1e-12)).ln();
            }
            // Backward, class-outer: every `gw[c][d]` (and `gb[c]`) still
            // accumulates its per-sample contributions in ascending sample
            // order — each (c, s) pair contributes exactly once, so the
            // sums are bitwise identical to the sample-outer loop — but
            // the probability row is now a contiguous slice and the
            // gradient row stays resident across the chunk.
            for c in 0..self.classes {
                let prow = &logits_all[c * nb..(c + 1) * nb];
                let row = &mut gw[c * self.dim..(c + 1) * self.dim];
                for (s, &i) in chunk.iter().enumerate() {
                    let y = data.label(i) as usize;
                    let coef = (prow[s] - if c == y { 1.0 } else { 0.0 }) * inv;
                    if coef == 0.0 {
                        continue;
                    }
                    // Inline axpy: element-independent, vectorises.
                    for (yi, xi) in row.iter_mut().zip(data.feature(i)) {
                        *yi += coef * xi;
                    }
                    gb[c] += coef;
                }
            }
        }
        loss * inv
    }

    /// The loss kernel behind [`Model::loss_scratch`]; bitwise identical
    /// to [`Model::loss`].
    fn loss_core(
        &self,
        data: &Dataset,
        batch: &[usize],
        xb: &mut Vec<f32>,
        logits_all: &mut Vec<f32>,
        maxs: &mut Vec<f32>,
        sums: &mut Vec<f32>,
    ) -> f32 {
        assert!(!batch.is_empty(), "empty batch");
        let (w, b) = self.params.split_at(self.dim * self.classes);
        let mut loss = 0.0f32;
        for chunk in batch.chunks(BATCH_CHUNK) {
            let nb = chunk.len();
            transpose_batch(data, chunk, self.dim, xb);
            logits_all.resize(self.classes * nb, 0.0);
            batch_logits(w, b, xb, self.dim, nb, logits_all);
            softmax_block(logits_all, nb, maxs, sums);
            for (s, &i) in chunk.iter().enumerate() {
                loss -= (logits_all[data.label(i) as usize * nb + s].max(1e-12)).ln();
            }
        }
        loss / batch.len() as f32
    }

    /// Fast-tier gradient core: same chunking as [`Self::loss_grad_core`],
    /// but the whole forward/backward runs through the reassociated block
    /// kernel ([`softmax_xent_grad_fast`]). Statistically equivalent to
    /// the strict core, not bit-equal.
    fn loss_grad_fast(&self, data: &Dataset, batch: &[usize], scratch: &mut Scratch) -> f32 {
        let Scratch { grad, xb, logits_all, maxs, sums, coefs, labels, .. } = scratch;
        grad.resize(self.num_params(), 0.0);
        assert_eq!(data.dim(), self.dim, "dataset dim mismatch");
        assert!(!batch.is_empty(), "empty batch");
        grad.fill(0.0);
        let (w, b) = self.params.split_at(self.dim * self.classes);
        let (gw, gb) = grad.split_at_mut(self.dim * self.classes);
        let inv = 1.0 / batch.len() as f32;
        let mut loss = 0.0f32;
        for chunk in batch.chunks(BATCH_CHUNK) {
            let nb = chunk.len();
            transpose_block_fast(data.features(), chunk, self.dim, xb);
            labels.clear();
            labels.extend(chunk.iter().map(|&i| data.label(i)));
            loss += softmax_xent_grad_fast(
                w,
                b,
                xb,
                data.features(),
                chunk,
                labels,
                self.dim,
                nb,
                logits_all,
                maxs,
                sums,
                coefs,
                gw,
                gb,
                inv,
            );
        }
        loss * inv
    }
}

/// Numerically stable in-place softmax over a compile-time length —
/// identical operations in identical order to the dynamic loop (bitwise
/// equal), but the known trip count lets the compiler unroll the max
/// fold and the normalisation.
#[inline]
fn softmax_fixed<const N: usize>(logits: &mut [f32; N]) {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for l in logits.iter_mut() {
        *l = (*l - max).exp();
        sum += *l;
    }
    for l in logits.iter_mut() {
        *l /= sum;
    }
}

/// Numerically stable in-place softmax.
#[inline]
fn softmax_inplace(logits: &mut [f32]) {
    // Class counts of the benchmark registry get unrolled bodies.
    match logits.len() {
        10 => softmax_fixed::<10>(logits.try_into().expect("len checked")),
        100 => softmax_fixed::<100>(logits.try_into().expect("len checked")),
        _ => {
            let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for l in logits.iter_mut() {
                *l = (*l - max).exp();
                sum += *l;
            }
            for l in logits.iter_mut() {
                *l /= sum;
            }
        }
    }
}

impl Model for SoftmaxRegression {
    fn num_params(&self) -> usize {
        self.params.len()
    }

    fn params(&self) -> &[f32] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    fn loss_grad(&self, data: &Dataset, batch: &[usize], grad: &mut [f32]) -> f32 {
        let (mut xb, mut logits_all) = (Vec::new(), Vec::new());
        let (mut maxs, mut sums) = (Vec::new(), Vec::new());
        self.loss_grad_core(data, batch, grad, (&mut xb, &mut logits_all, &mut maxs, &mut sums))
    }

    fn loss_grad_scratch(&self, data: &Dataset, batch: &[usize], scratch: &mut Scratch) -> f32 {
        if scratch.kernels.tier == NumericsTier::Fast {
            return self.loss_grad_fast(data, batch, scratch);
        }
        let Scratch { grad, xb, logits_all, maxs, sums, .. } = scratch;
        grad.resize(self.num_params(), 0.0);
        self.loss_grad_core(data, batch, grad, (xb, logits_all, maxs, sums))
    }

    fn loss(&self, data: &Dataset, batch: &[usize]) -> f32 {
        assert!(!batch.is_empty(), "empty batch");
        let mut loss = 0.0f32;
        for &i in batch {
            let p = self.probabilities(data.feature(i));
            loss -= (p[data.label(i) as usize].max(1e-12)).ln();
        }
        loss / batch.len() as f32
    }

    fn loss_scratch(&self, data: &Dataset, batch: &[usize], scratch: &mut Scratch) -> f32 {
        let Scratch { xb, logits_all, maxs, sums, .. } = scratch;
        self.loss_core(data, batch, xb, logits_all, maxs, sums)
    }

    fn count_correct_scratch(&self, data: &Dataset, scratch: &mut Scratch) -> usize {
        let Scratch { logits, xb, logits_all, idx, .. } = scratch;
        logits.resize(self.classes, 0.0);
        let (w, b) = self.params.split_at(self.dim * self.classes);
        let mut correct = 0usize;
        let mut start = 0usize;
        while start < data.len() {
            let end = (start + BATCH_CHUNK).min(data.len());
            let nb = end - start;
            idx.clear();
            idx.extend(start..end);
            transpose_batch(data, idx, self.dim, xb);
            logits_all.resize(self.classes * nb, 0.0);
            batch_logits(w, b, xb, self.dim, nb, logits_all);
            for s in 0..nb {
                for (c, lc) in logits.iter_mut().enumerate() {
                    *lc = logits_all[c * nb + s];
                }
                if argmax(logits) == data.label(start + s) {
                    correct += 1;
                }
            }
            start = end;
        }
        correct
    }

    fn predict(&self, x: &[f32]) -> u32 {
        let logits = self.logits(x);
        argmax(&logits)
    }

    fn clone_box(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

fn argmax(v: &[f32]) -> u32 {
    let mut best = 0usize;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best as u32
}

// ---------------------------------------------------------------------------
// One-hidden-layer MLP
// ---------------------------------------------------------------------------

/// One-hidden-layer ReLU network: `logits = W2 · relu(W1 x + b1) + b2`.
///
/// Parameter layout: `[W1 (H×D) | b1 (H) | W2 (C×H) | b2 (C)]`.
#[derive(Debug, Clone)]
pub struct Mlp {
    dim: usize,
    hidden: usize,
    classes: usize,
    params: Vec<f32>,
}

impl Mlp {
    /// Creates a model with He-style seeded init.
    pub fn new(dim: usize, hidden: usize, classes: usize, seed: u64) -> Self {
        assert!(hidden > 0 && classes >= 2);
        let s1 = (2.0 / dim as f32).sqrt() * 0.5;
        let s2 = (2.0 / hidden as f32).sqrt() * 0.5;
        let mut params = seeded_init(hidden * dim, s1, seed);
        params.extend(std::iter::repeat_n(0.0f32, hidden));
        params.extend(seeded_init(classes * hidden, s2, seed.wrapping_add(1)));
        params.extend(std::iter::repeat_n(0.0f32, classes));
        Self { dim, hidden, classes, params }
    }

    fn split(&self) -> (&[f32], &[f32], &[f32], &[f32]) {
        let (w1, rest) = self.params.split_at(self.hidden * self.dim);
        let (b1, rest) = rest.split_at(self.hidden);
        let (w2, b2) = rest.split_at(self.classes * self.hidden);
        (w1, b1, w2, b2)
    }

    /// Forward pass; returns (hidden activations post-ReLU, logits).
    fn forward(&self, x: &[f32]) -> (Vec<f32>, Vec<f32>) {
        let mut h = vec![0.0f32; self.hidden];
        let mut logits = vec![0.0f32; self.classes];
        self.forward_into(x, &mut h, &mut logits);
        (h, logits)
    }

    /// Forward pass into caller-provided buffers (`h` and `logits` must
    /// already have the right lengths).
    fn forward_into(&self, x: &[f32], h: &mut [f32], logits: &mut [f32]) {
        let (w1, b1, w2, b2) = self.split();
        for (j, hj) in h.iter_mut().enumerate() {
            let row = &w1[j * self.dim..(j + 1) * self.dim];
            *hj = (crate::params::dot_sequential(row, x) + b1[j]).max(0.0);
        }
        for (c, lc) in logits.iter_mut().enumerate() {
            let row = &w2[c * self.hidden..(c + 1) * self.hidden];
            *lc = crate::params::dot_sequential(row, h) + b2[c];
        }
    }

    /// The gradient kernel behind both `loss_grad` entry points; `h`,
    /// `logits`, and `dh` are the only temporaries it needs.
    fn loss_grad_core(
        &self,
        data: &Dataset,
        batch: &[usize],
        grad: &mut [f32],
        h: &mut Vec<f32>,
        logits: &mut Vec<f32>,
        dh: &mut Vec<f32>,
    ) -> f32 {
        assert_eq!(grad.len(), self.num_params(), "grad buffer size mismatch");
        assert_eq!(data.dim(), self.dim, "dataset dim mismatch");
        assert!(!batch.is_empty(), "empty batch");
        grad.fill(0.0);
        h.resize(self.hidden, 0.0);
        logits.resize(self.classes, 0.0);
        dh.resize(self.hidden, 0.0);
        let inv = 1.0 / batch.len() as f32;
        let mut loss = 0.0f32;

        let (w1_len, b1_len, w2_len) =
            (self.hidden * self.dim, self.hidden, self.classes * self.hidden);
        // `grad` is caller-owned, so the weight views below coexist with
        // it without copies (the old implementation cloned `w2` here).
        let (_, _, w2, _) = self.split();
        let (gw1, rest) = grad.split_at_mut(w1_len);
        let (gb1, rest) = rest.split_at_mut(b1_len);
        let (gw2, gb2) = rest.split_at_mut(w2_len);

        for &i in batch {
            let x = data.feature(i);
            let y = data.label(i) as usize;
            self.forward_into(x, h, logits);
            softmax_inplace(logits);
            loss -= (logits[y].max(1e-12)).ln();

            // dL/dlogit_c = p_c - 1{c=y}; output layer grads + backprop
            // into the hidden layer.
            dh.fill(0.0);
            for c in 0..self.classes {
                let d = (logits[c] - if c == y { 1.0 } else { 0.0 }) * inv;
                if d == 0.0 {
                    continue;
                }
                let row = &mut gw2[c * self.hidden..(c + 1) * self.hidden];
                crate::params::axpy(d, h, row);
                gb2[c] += d;
                let w2row = &w2[c * self.hidden..(c + 1) * self.hidden];
                crate::params::axpy(d, w2row, dh);
            }
            // ReLU gate, then input layer grads.
            for (j, dhj) in dh.iter().enumerate() {
                if h[j] <= 0.0 || *dhj == 0.0 {
                    continue;
                }
                let row = &mut gw1[j * self.dim..(j + 1) * self.dim];
                crate::params::axpy(*dhj, x, row);
                gb1[j] += *dhj;
            }
        }
        loss * inv
    }

    /// Fast-tier gradient core: the per-sample structure of
    /// [`Self::loss_grad_core`], but every dot/axpy/exp/ln dispatches
    /// through the scratch's [`KernelTable`] function pointers, so the
    /// whole pass runs on the reassociated family without touching the
    /// strict kernels.
    fn loss_grad_fast(&self, data: &Dataset, batch: &[usize], scratch: &mut Scratch) -> f32 {
        let k = scratch.kernels;
        let Scratch { grad, h, logits, dh, .. } = scratch;
        grad.resize(self.num_params(), 0.0);
        assert_eq!(data.dim(), self.dim, "dataset dim mismatch");
        assert!(!batch.is_empty(), "empty batch");
        grad.fill(0.0);
        h.resize(self.hidden, 0.0);
        logits.resize(self.classes, 0.0);
        dh.resize(self.hidden, 0.0);
        let inv = 1.0 / batch.len() as f32;
        let mut loss = 0.0f32;

        let (w1_len, b1_len, w2_len) =
            (self.hidden * self.dim, self.hidden, self.classes * self.hidden);
        let (w1, b1, w2, b2) = self.split();
        let (gw1, rest) = grad.split_at_mut(w1_len);
        let (gb1, rest) = rest.split_at_mut(b1_len);
        let (gw2, gb2) = rest.split_at_mut(w2_len);

        for &i in batch {
            let x = data.feature(i);
            let y = data.label(i) as usize;
            for (j, hj) in h.iter_mut().enumerate() {
                let row = &w1[j * self.dim..(j + 1) * self.dim];
                *hj = ((k.dot)(row, x) + b1[j]).max(0.0);
            }
            for (c, lc) in logits.iter_mut().enumerate() {
                let row = &w2[c * self.hidden..(c + 1) * self.hidden];
                *lc = (k.dot)(row, h) + b2[c];
            }
            let maxv = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for l in logits.iter_mut() {
                *l = (k.exp)(*l - maxv);
                sum += *l;
            }
            let isum = 1.0 / sum;
            for l in logits.iter_mut() {
                *l *= isum;
            }
            loss -= (k.ln)(logits[y].max(1e-12));

            dh.fill(0.0);
            for c in 0..self.classes {
                let d = (logits[c] - if c == y { 1.0 } else { 0.0 }) * inv;
                if d == 0.0 {
                    continue;
                }
                let row = &mut gw2[c * self.hidden..(c + 1) * self.hidden];
                (k.axpy)(d, h, row);
                gb2[c] += d;
                let w2row = &w2[c * self.hidden..(c + 1) * self.hidden];
                (k.axpy)(d, w2row, dh);
            }
            for (j, dhj) in dh.iter().enumerate() {
                if h[j] <= 0.0 || *dhj == 0.0 {
                    continue;
                }
                let row = &mut gw1[j * self.dim..(j + 1) * self.dim];
                (k.axpy)(*dhj, x, row);
                gb1[j] += *dhj;
            }
        }
        loss * inv
    }
}

impl Model for Mlp {
    fn num_params(&self) -> usize {
        self.params.len()
    }

    fn params(&self) -> &[f32] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    fn loss_grad(&self, data: &Dataset, batch: &[usize], grad: &mut [f32]) -> f32 {
        let (mut h, mut logits, mut dh) = (Vec::new(), Vec::new(), Vec::new());
        self.loss_grad_core(data, batch, grad, &mut h, &mut logits, &mut dh)
    }

    fn loss_grad_scratch(&self, data: &Dataset, batch: &[usize], scratch: &mut Scratch) -> f32 {
        if scratch.kernels.tier == NumericsTier::Fast {
            return self.loss_grad_fast(data, batch, scratch);
        }
        let Scratch { grad, h, logits, dh, .. } = scratch;
        grad.resize(self.num_params(), 0.0);
        self.loss_grad_core(data, batch, grad, h, logits, dh)
    }

    fn loss(&self, data: &Dataset, batch: &[usize]) -> f32 {
        assert!(!batch.is_empty(), "empty batch");
        let mut loss = 0.0f32;
        for &i in batch {
            let (_, mut p) = self.forward(data.feature(i));
            softmax_inplace(&mut p);
            loss -= (p[data.label(i) as usize].max(1e-12)).ln();
        }
        loss / batch.len() as f32
    }

    fn loss_scratch(&self, data: &Dataset, batch: &[usize], scratch: &mut Scratch) -> f32 {
        assert!(!batch.is_empty(), "empty batch");
        let Scratch { h, logits, .. } = scratch;
        h.resize(self.hidden, 0.0);
        logits.resize(self.classes, 0.0);
        let mut loss = 0.0f32;
        for &i in batch {
            self.forward_into(data.feature(i), h, logits);
            softmax_inplace(logits);
            loss -= (logits[data.label(i) as usize].max(1e-12)).ln();
        }
        loss / batch.len() as f32
    }

    fn count_correct_scratch(&self, data: &Dataset, scratch: &mut Scratch) -> usize {
        let Scratch { h, logits, .. } = scratch;
        h.resize(self.hidden, 0.0);
        logits.resize(self.classes, 0.0);
        (0..data.len())
            .filter(|&i| {
                self.forward_into(data.feature(i), h, logits);
                argmax(logits) == data.label(i)
            })
            .count()
    }

    fn predict(&self, x: &[f32]) -> u32 {
        let (_, logits) = self.forward(x);
        argmax(&logits)
    }

    fn clone_box(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Ridge regression (the Assumption-1 model)
// ---------------------------------------------------------------------------

/// L2-regularised least squares: `loss = ½(w·x + b − y)² + ½λ‖w‖²`,
/// treating the integer label as the regression target.
///
/// With `λ > 0` this loss is λ-strongly convex with Lipschitz gradients —
/// the exact hypotheses of the paper's Assumption 1 — so the convergence
/// bound of Theorem 1 can be tested against it quantitatively.
#[derive(Debug, Clone)]
pub struct LeastSquares {
    dim: usize,
    l2: f32,
    /// Layout: `[w (dim) | b]`.
    params: Vec<f32>,
}

impl LeastSquares {
    /// Creates a model with small seeded random weights.
    pub fn new(dim: usize, l2: f32, seed: u64) -> Self {
        assert!(l2 >= 0.0);
        let mut params = seeded_init(dim, 0.1, seed);
        params.push(0.0);
        Self { dim, l2, params }
    }

    fn value(&self, x: &[f32]) -> f32 {
        crate::params::dot(&self.params[..self.dim], x) + self.params[self.dim]
    }

    /// Fast-tier gradient core: [`Model::loss_grad`]'s structure with
    /// every dot/axpy/norm dispatched through the scratch's
    /// [`KernelTable`].
    fn loss_grad_fast(&self, data: &Dataset, batch: &[usize], scratch: &mut Scratch) -> f32 {
        let k = scratch.kernels;
        let grad = &mut scratch.grad;
        grad.resize(self.num_params(), 0.0);
        assert!(!batch.is_empty(), "empty batch");
        grad.fill(0.0);
        let inv = 1.0 / batch.len() as f32;
        let mut loss = 0.0f32;
        for &i in batch {
            let x = data.feature(i);
            let y = data.label(i) as f32;
            let r = (k.dot)(&self.params[..self.dim], x) + self.params[self.dim] - y;
            loss += 0.5 * r * r;
            (k.axpy)(r * inv, x, &mut grad[..self.dim]);
            grad[self.dim] += r * inv;
        }
        let w = &self.params[..self.dim];
        loss += 0.5 * self.l2 * (k.norm_sq)(w) * batch.len() as f32;
        (k.axpy)(self.l2, w, &mut grad[..self.dim]);
        loss * inv
    }
}

impl Model for LeastSquares {
    fn num_params(&self) -> usize {
        self.params.len()
    }

    fn params(&self) -> &[f32] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    fn loss_grad(&self, data: &Dataset, batch: &[usize], grad: &mut [f32]) -> f32 {
        assert_eq!(grad.len(), self.num_params(), "grad buffer size mismatch");
        assert!(!batch.is_empty(), "empty batch");
        grad.fill(0.0);
        let inv = 1.0 / batch.len() as f32;
        let mut loss = 0.0f32;
        for &i in batch {
            let x = data.feature(i);
            let y = data.label(i) as f32;
            let r = self.value(x) - y;
            loss += 0.5 * r * r;
            crate::params::axpy(r * inv, x, &mut grad[..self.dim]);
            grad[self.dim] += r * inv;
        }
        // L2 term on weights (not bias).
        let w = &self.params[..self.dim];
        loss += 0.5 * self.l2 * crate::params::norm_sq(w) * batch.len() as f32;
        crate::params::axpy(self.l2, w, &mut grad[..self.dim]);
        loss * inv + 0.0 // already averaged data term; reg term below
    }

    fn loss_grad_scratch(&self, data: &Dataset, batch: &[usize], scratch: &mut Scratch) -> f32 {
        if scratch.kernels.tier == NumericsTier::Fast {
            return self.loss_grad_fast(data, batch, scratch);
        }
        scratch.grad.resize(self.num_params(), 0.0);
        self.loss_grad(data, batch, &mut scratch.grad)
    }

    fn loss(&self, data: &Dataset, batch: &[usize]) -> f32 {
        assert!(!batch.is_empty(), "empty batch");
        let mut loss = 0.0f32;
        for &i in batch {
            let r = self.value(data.feature(i)) - data.label(i) as f32;
            loss += 0.5 * r * r;
        }
        loss / batch.len() as f32
            + 0.5 * self.l2 * crate::params::norm_sq(&self.params[..self.dim])
    }

    fn predict(&self, x: &[f32]) -> u32 {
        self.value(x).round().max(0.0) as u32
    }

    fn clone_box(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{gaussian_mixture, MixtureSpec};

    fn small_data() -> Dataset {
        gaussian_mixture(
            MixtureSpec {
                num_classes: 3,
                dim: 8,
                train_n: 120,
                test_n: 30,
                mean_scale: 2.0,
                noise: 0.3,
            },
            42,
        )
        .0
    }

    /// Central-difference gradient check for any model.
    fn grad_check(model: &mut dyn Model, data: &Dataset, tol: f32) {
        let batch: Vec<usize> = (0..16).collect();
        let n = model.num_params();
        let mut grad = vec![0.0f32; n];
        model.loss_grad(data, &batch, &mut grad);
        let eps = 1e-3f32;
        // Check a spread of parameter coordinates.
        for k in (0..n).step_by((n / 13).max(1)) {
            let orig = model.params()[k];
            model.params_mut()[k] = orig + eps;
            let lp = model.loss(data, &batch);
            model.params_mut()[k] = orig - eps;
            let lm = model.loss(data, &batch);
            model.params_mut()[k] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - grad[k]).abs() < tol * (1.0 + num.abs()),
                "param {k}: numeric {num} vs analytic {}",
                grad[k]
            );
        }
    }

    #[test]
    fn softmax_gradient_is_correct() {
        let data = small_data();
        let mut m = SoftmaxRegression::new(8, 3, 7);
        grad_check(&mut m, &data, 2e-2);
    }

    #[test]
    fn mlp_gradient_is_correct() {
        let data = small_data();
        let mut m = Mlp::new(8, 12, 3, 7);
        grad_check(&mut m, &data, 3e-2);
    }

    #[test]
    fn least_squares_gradient_is_correct() {
        let data = small_data();
        let mut m = LeastSquares::new(8, 0.01, 7);
        grad_check(&mut m, &data, 2e-2);
    }

    #[test]
    fn sgd_reduces_softmax_loss() {
        let data = small_data();
        let mut m = SoftmaxRegression::new(8, 3, 1);
        let batch: Vec<usize> = (0..data.len()).collect();
        let mut grad = vec![0.0f32; m.num_params()];
        let l0 = m.loss(&data, &batch);
        for _ in 0..50 {
            m.loss_grad(&data, &batch, &mut grad);
            crate::params::axpy(-0.5, &grad, m.params_mut());
        }
        let l1 = m.loss(&data, &batch);
        assert!(l1 < 0.5 * l0, "full-batch GD failed to reduce loss: {l0} -> {l1}");
    }

    #[test]
    fn trained_softmax_beats_chance() {
        let (train, test) = gaussian_mixture(
            MixtureSpec {
                num_classes: 4,
                dim: 10,
                train_n: 400,
                test_n: 200,
                mean_scale: 1.5,
                noise: 0.5,
            },
            3,
        );
        let mut m = SoftmaxRegression::new(10, 4, 1);
        let batch: Vec<usize> = (0..train.len()).collect();
        let mut grad = vec![0.0f32; m.num_params()];
        for _ in 0..200 {
            m.loss_grad(&train, &batch, &mut grad);
            crate::params::axpy(-0.5, &grad, m.params_mut());
        }
        let correct = (0..test.len())
            .filter(|&i| m.predict(test.feature(i)) == test.label(i))
            .count();
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.8, "test accuracy {acc} too low");
    }

    #[test]
    fn model_kind_builds_expected_sizes() {
        let s = ModelKind::Softmax.build(10, 4, 0);
        assert_eq!(s.num_params(), 10 * 4 + 4);
        let m = ModelKind::Mlp { hidden: 16 }.build(10, 4, 0);
        assert_eq!(m.num_params(), 16 * 10 + 16 + 4 * 16 + 4);
        let l = ModelKind::LeastSquares { l2: 0.1 }.build(10, 4, 0);
        assert_eq!(l.num_params(), 11);
    }

    #[test]
    fn clone_box_is_independent() {
        let m = SoftmaxRegression::new(4, 2, 9);
        let mut c = m.clone_box();
        c.params_mut()[0] += 1.0;
        assert_ne!(m.params()[0], c.params()[0]);
    }

    #[test]
    fn scratch_path_is_bitwise_identical_for_all_models() {
        let data = small_data();
        let models: Vec<Box<dyn Model>> = vec![
            Box::new(SoftmaxRegression::new(8, 3, 7)),
            Box::new(Mlp::new(8, 12, 3, 7)),
            Box::new(LeastSquares::new(8, 0.01, 7)),
        ];
        let mut rng = StdRng::seed_from_u64(99);
        for m in &models {
            let mut scratch = Scratch::new();
            let mut grad = vec![0.0f32; m.num_params()];
            for trial in 0..8 {
                let len = rng.gen_range(1..=32usize);
                let batch: Vec<usize> =
                    (0..len).map(|_| rng.gen_range(0..data.len())).collect();
                let loss = m.loss_grad(&data, &batch, &mut grad);
                let loss_s = m.loss_grad_scratch(&data, &batch, &mut scratch);
                assert_eq!(
                    loss.to_bits(),
                    loss_s.to_bits(),
                    "trial {trial}: loss mismatch {loss} vs {loss_s}"
                );
                assert_eq!(scratch.grad.len(), grad.len());
                for (k, (a, b)) in grad.iter().zip(&scratch.grad).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "trial {trial}, param {k}: {a} vs {b}"
                    );
                }
                // Evaluation entry points are bitwise identical too.
                let eval = m.loss(&data, &batch);
                let eval_s = m.loss_scratch(&data, &batch, &mut scratch);
                assert_eq!(
                    eval.to_bits(),
                    eval_s.to_bits(),
                    "trial {trial}: eval loss mismatch {eval} vs {eval_s}"
                );
            }
            let correct = (0..data.len())
                .filter(|&i| m.predict(data.feature(i)) == data.label(i))
                .count();
            assert_eq!(m.count_correct_scratch(&data, &mut scratch), correct);
        }
    }

    #[test]
    fn scratch_parity_holds_beyond_the_pairwise_block() {
        // Feature dims wider than params::PAIRWISE_BLOCK must not break
        // the bitwise guarantee: the forward kernels accumulate strictly
        // sequentially on every path (plain `loss`/`predict` included),
        // never through the pairwise `dot`.
        let (data, _) = gaussian_mixture(
            MixtureSpec {
                num_classes: 3,
                dim: 4100,
                train_n: 12,
                test_n: 3,
                mean_scale: 1.0,
                noise: 0.5,
            },
            5,
        );
        let m = SoftmaxRegression::new(4100, 3, 7);
        let batch: Vec<usize> = (0..data.len()).collect();
        let mut scratch = Scratch::new();
        let plain = m.loss(&data, &batch);
        let scratched = m.loss_scratch(&data, &batch, &mut scratch);
        assert_eq!(plain.to_bits(), scratched.to_bits(), "{plain} vs {scratched}");
        let correct = (0..data.len())
            .filter(|&i| m.predict(data.feature(i)) == data.label(i))
            .count();
        assert_eq!(m.count_correct_scratch(&data, &mut scratch), correct);
    }

    #[test]
    fn scratch_is_reusable_across_model_shapes() {
        // A warm scratch from a big model serves a smaller one (buffers
        // resize down logically; capacity is retained).
        let data = small_data();
        let big = Mlp::new(8, 24, 3, 1);
        let small = SoftmaxRegression::new(8, 3, 1);
        let batch: Vec<usize> = (0..16).collect();
        let mut scratch = Scratch::new();
        let _ = big.loss_grad_scratch(&data, &batch, &mut scratch);
        let mut grad = vec![0.0f32; small.num_params()];
        let loss = small.loss_grad(&data, &batch, &mut grad);
        let loss_s = small.loss_grad_scratch(&data, &batch, &mut scratch);
        assert_eq!(loss.to_bits(), loss_s.to_bits());
        assert_eq!(scratch.grad, grad);
    }

    #[test]
    fn fast_tier_tracks_the_strict_gradient() {
        // The fast tier reassociates sums and uses polynomial exp/ln, so
        // it is *not* bit-equal — but every loss and gradient coordinate
        // must stay within a tight relative band of the strict tier.
        let data = small_data();
        let models: Vec<Box<dyn Model>> = vec![
            Box::new(SoftmaxRegression::new(8, 3, 7)),
            Box::new(Mlp::new(8, 12, 3, 7)),
            Box::new(LeastSquares::new(8, 0.01, 7)),
        ];
        let batch: Vec<usize> = (0..64).collect();
        for m in &models {
            let mut strict = Scratch::new();
            let mut fast = Scratch::for_tier(NumericsTier::Fast);
            let ls = m.loss_grad_scratch(&data, &batch, &mut strict);
            let lf = m.loss_grad_scratch(&data, &batch, &mut fast);
            assert!((ls - lf).abs() <= 5e-4 * (1.0 + ls.abs()), "loss {ls} vs {lf}");
            assert_eq!(strict.grad.len(), fast.grad.len());
            for (k, (a, b)) in strict.grad.iter().zip(&fast.grad).enumerate() {
                assert!((a - b).abs() <= 5e-4 * (1.0 + a.abs()), "param {k}: {a} vs {b}");
            }
            // Evaluation stays strict under both tiers: bit-equal curves
            // for identical parameters.
            let es = m.loss_scratch(&data, &batch, &mut strict);
            let ef = m.loss_scratch(&data, &batch, &mut fast);
            assert_eq!(es.to_bits(), ef.to_bits());
        }
    }

    #[test]
    fn fast_softmax_handles_ragged_and_chunked_batches() {
        // Batch lengths around BATCH_CHUNK exercise the multi-chunk path
        // and a ragged tail; every chunk must contribute exactly once.
        let data = small_data();
        let m = SoftmaxRegression::new(8, 3, 7);
        let mut rng = StdRng::seed_from_u64(3);
        for len in [1usize, 2, BATCH_CHUNK - 1, BATCH_CHUNK, BATCH_CHUNK + 5] {
            let batch: Vec<usize> =
                (0..len).map(|_| rng.gen_range(0..data.len())).collect();
            let mut strict = Scratch::new();
            let mut fast = Scratch::for_tier(NumericsTier::Fast);
            let ls = m.loss_grad_scratch(&data, &batch, &mut strict);
            let lf = m.loss_grad_scratch(&data, &batch, &mut fast);
            assert!((ls - lf).abs() <= 5e-4 * (1.0 + ls.abs()), "len {len}: {ls} vs {lf}");
            for (k, (a, b)) in strict.grad.iter().zip(&fast.grad).enumerate() {
                assert!(
                    (a - b).abs() <= 5e-4 * (1.0 + a.abs()),
                    "len {len}, param {k}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn deterministic_init() {
        let a = SoftmaxRegression::new(6, 3, 5);
        let b = SoftmaxRegression::new(6, 3, 5);
        assert_eq!(a.params(), b.params());
        let c = SoftmaxRegression::new(6, 3, 6);
        assert_ne!(a.params(), c.params());
    }
}
