//! Flat parameter-vector arithmetic.
//!
//! Model parameters travel between workers as flat `f32` buffers (that is
//! exactly what goes over the wire in the paper — `xm` in Algorithm 2
//! line 10). These helpers are the hot loops of the whole simulation, so
//! they are written as simple slice iterations the compiler auto-vectorises.

/// `y += a * x` (BLAS `axpy`).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// `y = a * y`.
pub fn scale(a: f32, y: &mut [f32]) {
    for yi in y.iter_mut() {
        *yi *= a;
    }
}

/// Dot product.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Squared L2 norm.
pub fn norm_sq(x: &[f32]) -> f32 {
    dot(x, x)
}

/// Euclidean distance between two parameter vectors — the paper's model
/// difference `‖x_i − x_m‖` from Eq. (1).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn distance(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "distance: length mismatch");
    x.iter()
        .zip(y)
        .map(|(a, b)| {
            let d = a - b;
            d * d
        })
        .sum::<f32>()
        .sqrt()
}

/// In-place convex blend `x = (1 - w) * x + w * y` — the gossip averaging
/// step used by AD-PSGD/GoSGD and NetMax's second update.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn blend(w: f32, x: &mut [f32], y: &[f32]) {
    assert_eq!(x.len(), y.len(), "blend: length mismatch");
    for (xi, yi) in x.iter_mut().zip(y) {
        *xi = (1.0 - w) * *xi + w * yi;
    }
}

/// Elementwise mean of several equally-long parameter vectors, written into
/// `out` (used by the allreduce collectives).
///
/// # Panics
/// Panics if `vectors` is empty or lengths mismatch.
pub fn mean_into(vectors: &[&[f32]], out: &mut [f32]) {
    assert!(!vectors.is_empty(), "mean_into: need at least one vector");
    for v in vectors {
        assert_eq!(v.len(), out.len(), "mean_into: length mismatch");
    }
    let inv = 1.0 / vectors.len() as f32;
    out.fill(0.0);
    for v in vectors {
        for (o, x) in out.iter_mut().zip(*v) {
            *o += x * inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_basic() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 10.0, 10.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 14.0, 16.0]);
    }

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm_sq(&[3.0, 4.0]), 25.0);
        assert_eq!(distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn blend_endpoints() {
        let mut x = [1.0, 1.0];
        blend(0.0, &mut x, &[5.0, 5.0]);
        assert_eq!(x, [1.0, 1.0]);
        blend(1.0, &mut x, &[5.0, 7.0]);
        assert_eq!(x, [5.0, 7.0]);
        blend(0.5, &mut x, &[1.0, 1.0]);
        assert_eq!(x, [3.0, 4.0]);
    }

    #[test]
    fn mean_into_averages() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 6.0];
        let mut out = [0.0f32; 2];
        mean_into(&[&a, &b], &mut out);
        assert_eq!(out, [2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_length_checked() {
        let mut y = [0.0f32; 2];
        axpy(1.0, &[1.0; 3], &mut y);
    }

    #[test]
    fn scale_basic() {
        let mut y = [2.0f32, -4.0];
        scale(0.5, &mut y);
        assert_eq!(y, [1.0, -2.0]);
    }
}
