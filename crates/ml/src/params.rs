//! Flat parameter-vector arithmetic.
//!
//! Model parameters travel between workers as flat `f32` buffers (that is
//! exactly what goes over the wire in the paper — `xm` in Algorithm 2
//! line 10). These helpers are the hot loops of the whole simulation, so
//! they are written as simple slice iterations the compiler auto-vectorises.

/// Known-length axpy kernel (see [`dot_fixed`] for why the compile-time
/// trip count matters; bitwise identical to the dynamic loop).
#[inline]
fn axpy_fixed<const N: usize>(a: f32, x: &[f32], y: &mut [f32]) {
    for (yi, xi) in y[..N].iter_mut().zip(&x[..N]) {
        *yi += a * xi;
    }
}

/// `y += a * x` (BLAS `axpy`).
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    match x.len() {
        16 => axpy_fixed::<16>(a, x, y),
        32 => axpy_fixed::<32>(a, x, y),
        48 => axpy_fixed::<48>(a, x, y),
        64 => axpy_fixed::<64>(a, x, y),
        96 => axpy_fixed::<96>(a, x, y),
        128 => axpy_fixed::<128>(a, x, y),
        _ => {
            for (yi, xi) in y.iter_mut().zip(x) {
                *yi += a * xi;
            }
        }
    }
}

/// `y = a * y`.
#[inline]
pub fn scale(a: f32, y: &mut [f32]) {
    for yi in y.iter_mut() {
        *yi *= a;
    }
}

/// Block size below which reductions accumulate sequentially. Vectors at
/// or under this length produce **bitwise-identical** results to a plain
/// sequential sum (every model in the benchmark registry is far smaller,
/// which keeps recorded baselines stable); longer vectors combine their
/// blocks pairwise, so the rounding error of [`dot`]/[`norm_sq`]/
/// [`distance`] grows as `O(log(n/B))` instead of `O(n)` — at 10⁶-element
/// parameter vectors a naive sequential f32 sum visibly drifts from the
/// f64 reference, which corrupts the monitor's `‖x_i − x_m‖` distances.
const PAIRWISE_BLOCK: usize = 4096;

/// Known-length dot kernel: the `[..N]` bounds give LLVM a compile-time
/// trip count, so the chain is fully unrolled and software-pipelined.
/// Rust/LLVM float semantics are strict (no reassociation without
/// fast-math), so the result is bitwise identical to the dynamic loop —
/// only the instruction schedule changes.
#[inline]
fn dot_fixed<const N: usize>(x: &[f32], y: &[f32]) -> f32 {
    x[..N].iter().zip(&y[..N]).map(|(a, b)| a * b).sum()
}

/// Strictly sequential dot product — the accumulation order of the
/// model forward kernels. Model code must use this (not [`dot`]) so the
/// plain and batched/scratch evaluation paths stay bitwise identical at
/// *every* dimension: [`dot`] switches to pairwise accumulation above
/// [`PAIRWISE_BLOCK`], which would silently diverge from the batched
/// kernels' sequential order for very wide feature vectors.
#[inline]
pub(crate) fn dot_sequential(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    dot_seq(x, y)
}

#[inline]
fn dot_seq(x: &[f32], y: &[f32]) -> f32 {
    // Length specialisation for the model dimensions of the benchmark
    // registry (feature dims 32/64/96, MLP hidden widths 48/64): the
    // models' forward passes are dominated by these dots, and the
    // runtime-length loop is latency-bound where the unrolled one is not.
    match x.len() {
        16 => dot_fixed::<16>(x, y),
        32 => dot_fixed::<32>(x, y),
        48 => dot_fixed::<48>(x, y),
        64 => dot_fixed::<64>(x, y),
        96 => dot_fixed::<96>(x, y),
        128 => dot_fixed::<128>(x, y),
        _ => x.iter().zip(y).map(|(a, b)| a * b).sum(),
    }
}

#[inline]
fn dot_pairwise(x: &[f32], y: &[f32]) -> f32 {
    if x.len() <= PAIRWISE_BLOCK {
        return dot_seq(x, y);
    }
    let mid = x.len() / 2;
    dot_pairwise(&x[..mid], &y[..mid]) + dot_pairwise(&x[mid..], &y[mid..])
}

/// Dot product (chunked pairwise accumulation; blocks of 4096 sum
/// sequentially, block results combine pairwise).
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    dot_pairwise(x, y)
}

/// Squared L2 norm.
#[inline]
pub fn norm_sq(x: &[f32]) -> f32 {
    dot(x, x)
}

#[inline]
fn dist_sq_seq(x: &[f32], y: &[f32]) -> f32 {
    x.iter()
        .zip(y)
        .map(|(a, b)| {
            let d = a - b;
            d * d
        })
        .sum()
}

#[inline]
fn dist_sq_pairwise(x: &[f32], y: &[f32]) -> f32 {
    if x.len() <= PAIRWISE_BLOCK {
        return dist_sq_seq(x, y);
    }
    let mid = x.len() / 2;
    dist_sq_pairwise(&x[..mid], &y[..mid]) + dist_sq_pairwise(&x[mid..], &y[mid..])
}

/// Euclidean distance between two parameter vectors — the paper's model
/// difference `‖x_i − x_m‖` from Eq. (1). Accumulates chunked-pairwise
/// like [`dot`].
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn distance(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "distance: length mismatch");
    dist_sq_pairwise(x, y).sqrt()
}

/// In-place convex blend `x = (1 - w) * x + w * y` — the gossip averaging
/// step used by AD-PSGD/GoSGD and NetMax's second update.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn blend(w: f32, x: &mut [f32], y: &[f32]) {
    assert_eq!(x.len(), y.len(), "blend: length mismatch");
    for (xi, yi) in x.iter_mut().zip(y) {
        *xi = (1.0 - w) * *xi + w * yi;
    }
}

/// How many vectors [`mean_into`] accumulates sequentially before
/// switching to a pairwise combination tree. Below the threshold the
/// result is bitwise-identical to the historical sequential loop.
const MEAN_PAIRWISE_THRESHOLD: usize = 8;

fn sum_into(vectors: &[&[f32]], out: &mut [f32]) {
    if vectors.len() <= MEAN_PAIRWISE_THRESHOLD {
        out.fill(0.0);
        for v in vectors {
            for (o, x) in out.iter_mut().zip(*v) {
                *o += x;
            }
        }
        return;
    }
    let mid = vectors.len() / 2;
    sum_into(&vectors[..mid], out);
    let mut hi = vec![0.0f32; out.len()];
    sum_into(&vectors[mid..], &mut hi);
    for (o, x) in out.iter_mut().zip(&hi) {
        *o += x;
    }
}

/// Elementwise mean of several equally-long parameter vectors, written into
/// `out` (used by the allreduce collectives). Large fleets accumulate
/// pairwise so the per-element error grows logarithmically in the vector
/// count rather than linearly.
///
/// # Panics
/// Panics if `vectors` is empty or lengths mismatch.
pub fn mean_into(vectors: &[&[f32]], out: &mut [f32]) {
    assert!(!vectors.is_empty(), "mean_into: need at least one vector");
    for v in vectors {
        assert_eq!(v.len(), out.len(), "mean_into: length mismatch");
    }
    let inv = 1.0 / vectors.len() as f32;
    if vectors.len() <= MEAN_PAIRWISE_THRESHOLD {
        out.fill(0.0);
        for v in vectors {
            for (o, x) in out.iter_mut().zip(*v) {
                *o += x * inv;
            }
        }
        return;
    }
    sum_into(vectors, out);
    scale(inv, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_basic() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 10.0, 10.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 14.0, 16.0]);
    }

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm_sq(&[3.0, 4.0]), 25.0);
        assert_eq!(distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn blend_endpoints() {
        let mut x = [1.0, 1.0];
        blend(0.0, &mut x, &[5.0, 5.0]);
        assert_eq!(x, [1.0, 1.0]);
        blend(1.0, &mut x, &[5.0, 7.0]);
        assert_eq!(x, [5.0, 7.0]);
        blend(0.5, &mut x, &[1.0, 1.0]);
        assert_eq!(x, [3.0, 4.0]);
    }

    #[test]
    fn mean_into_averages() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 6.0];
        let mut out = [0.0f32; 2];
        mean_into(&[&a, &b], &mut out);
        assert_eq!(out, [2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_length_checked() {
        let mut y = [0.0f32; 2];
        axpy(1.0, &[1.0; 3], &mut y);
    }

    #[test]
    fn scale_basic() {
        let mut y = [2.0f32, -4.0];
        scale(0.5, &mut y);
        assert_eq!(y, [1.0, -2.0]);
    }

    /// Deterministic pseudo-random f32s in [0, 1) (splitmix-style; no RNG
    /// dependency so the drift fixtures are stable forever).
    fn pseudo(n: usize, mut seed: u64) -> Vec<f32> {
        (0..n)
            .map(|_| {
                seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
                let bits = (seed >> 40) as u32;
                bits as f32 / (1u32 << 24) as f32
            })
            .collect()
    }

    #[test]
    fn small_vectors_match_sequential_bitwise() {
        // Below the block size the chunked reductions must be the exact
        // historical sequential sums — recorded benchmark baselines
        // (BENCH_sanity.json) depend on it.
        let x = pseudo(PAIRWISE_BLOCK, 1);
        let y = pseudo(PAIRWISE_BLOCK, 2);
        assert_eq!(dot(&x, &y).to_bits(), dot_seq(&x, &y).to_bits());
        assert_eq!(
            distance(&x, &y).to_bits(),
            dist_sq_seq(&x, &y).sqrt().to_bits()
        );
    }

    #[test]
    fn chunked_dot_tracks_f64_reference_at_1e6_elements() {
        let n = 1_000_000;
        let x = pseudo(n, 3);
        let y = pseudo(n, 4);
        let reference: f64 = x
            .iter()
            .zip(&y)
            .map(|(a, b)| f64::from(*a) * f64::from(*b))
            .sum();
        let chunked_err = (f64::from(dot(&x, &y)) - reference).abs() / reference;
        let seq_err = (f64::from(dot_seq(&x, &y)) - reference).abs() / reference;
        assert!(chunked_err < 1e-6, "chunked dot drifted: rel err {chunked_err:e}");
        assert!(
            chunked_err <= seq_err,
            "pairwise accumulation must not be worse than sequential: {chunked_err:e} vs {seq_err:e}"
        );
        // norm_sq goes through the same reduction.
        let norm_ref: f64 = x.iter().map(|a| f64::from(*a) * f64::from(*a)).sum();
        let norm_err = (f64::from(norm_sq(&x)) - norm_ref).abs() / norm_ref;
        assert!(norm_err < 1e-6, "chunked norm_sq drifted: rel err {norm_err:e}");
    }

    #[test]
    fn chunked_distance_tracks_f64_reference_at_1e6_elements() {
        let n = 1_000_000;
        let x = pseudo(n, 5);
        let y = pseudo(n, 6);
        let reference: f64 = x
            .iter()
            .zip(&y)
            .map(|(a, b)| {
                let d = f64::from(*a) - f64::from(*b);
                d * d
            })
            .sum::<f64>()
            .sqrt();
        let err = (f64::from(distance(&x, &y)) - reference).abs() / reference;
        assert!(err < 1e-6, "chunked distance drifted: rel err {err:e}");
    }

    #[test]
    fn mean_into_pairwise_tracks_f64_reference() {
        // 64 vectors trip the pairwise tree; compare against an f64 mean.
        let vecs: Vec<Vec<f32>> = (0..64).map(|k| pseudo(1000, 100 + k)).collect();
        let refs: Vec<&[f32]> = vecs.iter().map(Vec::as_slice).collect();
        let mut out = vec![0.0f32; 1000];
        mean_into(&refs, &mut out);
        for j in (0..1000).step_by(97) {
            let reference: f64 =
                vecs.iter().map(|v| f64::from(v[j])).sum::<f64>() / 64.0;
            assert!(
                (f64::from(out[j]) - reference).abs() < 1e-6,
                "element {j}: {} vs {reference}",
                out[j]
            );
        }
        // At or below the threshold the historical sequential loop is
        // reproduced exactly.
        let small: Vec<&[f32]> = refs[..MEAN_PAIRWISE_THRESHOLD].to_vec();
        let mut chunked = vec![0.0f32; 1000];
        mean_into(&small, &mut chunked);
        let inv = 1.0 / small.len() as f32;
        let mut seq = vec![0.0f32; 1000];
        for v in &small {
            for (o, x) in seq.iter_mut().zip(*v) {
                *o += x * inv;
            }
        }
        assert_eq!(chunked, seq);
    }
}
