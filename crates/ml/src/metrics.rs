//! Evaluation metrics: loss and accuracy over datasets or subsamples.
//!
//! The `_scratch` variants route through a reusable
//! [`Scratch`] workspace: numerically **bitwise
//! identical** to their plain counterparts, but free of per-sample
//! temporaries and running the models' transposed batch kernels — the
//! metric recorder samples loss curves thousands of times per run, so
//! this path is as hot as training itself.

use crate::dataset::Dataset;
use crate::model::{Model, Scratch};

/// Classification accuracy of `model` over the whole `data` set.
pub fn accuracy(model: &dyn Model, data: &Dataset) -> f64 {
    assert!(!data.is_empty(), "accuracy over empty dataset");
    let correct = (0..data.len())
        .filter(|&i| model.predict(data.feature(i)) == data.label(i))
        .count();
    correct as f64 / data.len() as f64
}

/// [`accuracy`] through a reusable workspace (bitwise identical).
pub fn accuracy_scratch(model: &dyn Model, data: &Dataset, scratch: &mut Scratch) -> f64 {
    assert!(!data.is_empty(), "accuracy over empty dataset");
    model.count_correct_scratch(data, scratch) as f64 / data.len() as f64
}

/// Mean loss of `model` over the whole `data` set.
pub fn full_loss(model: &dyn Model, data: &Dataset) -> f64 {
    let all: Vec<usize> = (0..data.len()).collect();
    model.loss(data, &all) as f64
}

/// Mean loss over an evenly-spaced subsample of at most `max_n` examples —
/// the engine records loss curves frequently, and full evaluation at every
/// record point would dominate simulation run time.
pub fn subsampled_loss(model: &dyn Model, data: &Dataset, max_n: usize) -> f64 {
    assert!(max_n > 0);
    if data.len() <= max_n {
        return full_loss(model, data);
    }
    let stride = data.len() / max_n;
    let idx: Vec<usize> = (0..max_n).map(|k| k * stride).collect();
    model.loss(data, &idx) as f64
}

/// [`subsampled_loss`] through a reusable workspace (bitwise identical,
/// allocation-free once warm).
pub fn subsampled_loss_scratch(
    model: &dyn Model,
    data: &Dataset,
    max_n: usize,
    scratch: &mut Scratch,
) -> f64 {
    assert!(max_n > 0);
    // The index buffer lives in the scratch; take it out so the batch
    // slice and the workspace can be borrowed simultaneously.
    let mut idx = std::mem::take(&mut scratch.idx);
    idx.clear();
    if data.len() <= max_n {
        idx.extend(0..data.len());
    } else {
        let stride = data.len() / max_n;
        idx.extend((0..max_n).map(|k| k * stride));
    }
    let loss = model.loss_scratch(data, &idx, scratch) as f64;
    scratch.idx = idx;
    loss
}

/// Mean of per-node losses — the global objective `F` of Eq. (1) without
/// the (vanishing-at-consensus) disagreement term.
pub fn mean_loss_across_replicas(models: &[Box<dyn Model>], data: &Dataset, max_n: usize) -> f64 {
    assert!(!models.is_empty());
    models.iter().map(|m| subsampled_loss(m.as_ref(), data, max_n)).sum::<f64>()
        / models.len() as f64
}

/// Maximum pairwise parameter distance among replicas — the consensus
/// residual that Theorems 1–3 drive to (a neighbourhood of) zero.
pub fn consensus_diameter(models: &[Box<dyn Model>]) -> f64 {
    let mut worst = 0.0f64;
    for i in 0..models.len() {
        for j in (i + 1)..models.len() {
            let d = crate::params::distance(models[i].params(), models[j].params()) as f64;
            worst = worst.max(d);
        }
    }
    worst
}

/// [`consensus_diameter`] over raw parameter views — same pair order and
/// arithmetic, usable without cloning replicas behind trait objects.
pub fn consensus_diameter_params(params: &[&[f32]]) -> f64 {
    let mut worst = 0.0f64;
    for i in 0..params.len() {
        for j in (i + 1)..params.len() {
            let d = crate::params::distance(params[i], params[j]) as f64;
            worst = worst.max(d);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{gaussian_mixture, MixtureSpec};
    use crate::model::{ModelKind, SoftmaxRegression};

    fn spec() -> MixtureSpec {
        MixtureSpec { num_classes: 3, dim: 6, train_n: 120, test_n: 60, mean_scale: 2.0, noise: 0.3 }
    }

    #[test]
    fn untrained_accuracy_near_chance() {
        let (train, _) = gaussian_mixture(spec(), 1);
        let m = SoftmaxRegression::new(6, 3, 0);
        let acc = accuracy(&m, &train);
        assert!(acc < 0.7, "untrained model unexpectedly accurate: {acc}");
    }

    #[test]
    fn subsample_approximates_full_loss() {
        let (train, _) = gaussian_mixture(spec(), 2);
        let m = SoftmaxRegression::new(6, 3, 0);
        let full = full_loss(&m, &train);
        let sub = subsampled_loss(&m, &train, 40);
        assert!((full - sub).abs() < 0.3 * full.max(0.1), "sub {sub} vs full {full}");
        // When max_n exceeds dataset size they must agree exactly.
        assert_eq!(subsampled_loss(&m, &train, 10_000), full);
    }

    #[test]
    fn consensus_diameter_zero_iff_identical() {
        let a = ModelKind::Softmax.build(6, 3, 1);
        let b = a.clone();
        let mut c = a.clone();
        assert_eq!(consensus_diameter(&[a.clone(), b]), 0.0);
        c.params_mut()[0] += 2.0;
        assert!(consensus_diameter(&[a, c]) >= 2.0 - 1e-6);
    }

    #[test]
    fn replica_mean_loss_is_mean() {
        let (train, _) = gaussian_mixture(spec(), 3);
        let a = ModelKind::Softmax.build(6, 3, 1);
        let b = ModelKind::Softmax.build(6, 3, 2);
        let la = subsampled_loss(a.as_ref(), &train, 1000);
        let lb = subsampled_loss(b.as_ref(), &train, 1000);
        let mean = mean_loss_across_replicas(&[a, b], &train, 1000);
        assert!((mean - (la + lb) / 2.0).abs() < 1e-9);
    }
}

/// Top-k classification accuracy (the standard ImageNet-style metric):
/// a prediction counts if the true label is among the k highest-scoring
/// classes.
///
/// Requires a scoring model: implemented for [`crate::model::SoftmaxRegression`]
/// (probabilities) via [`top_k_accuracy_softmax`]; generic models fall
/// back to top-1 through [`accuracy`].
pub fn top_k_accuracy_softmax(
    model: &crate::model::SoftmaxRegression,
    data: &Dataset,
    k: usize,
) -> f64 {
    assert!(k >= 1 && k <= data.num_classes(), "k out of range");
    assert!(!data.is_empty(), "top-k over empty dataset");
    let mut correct = 0usize;
    for i in 0..data.len() {
        let probs = model.probabilities(data.feature(i));
        let y = data.label(i) as usize;
        // Rank of the true class: count strictly-greater scores.
        let rank = probs.iter().filter(|&&p| p > probs[y]).count();
        if rank < k {
            correct += 1;
        }
    }
    correct as f64 / data.len() as f64
}

/// Confusion matrix: `confusion[(true, predicted)]` counts.
pub fn confusion_matrix(model: &dyn Model, data: &Dataset) -> Vec<Vec<usize>> {
    let c = data.num_classes();
    let mut m = vec![vec![0usize; c]; c];
    for i in 0..data.len() {
        let t = data.label(i) as usize;
        let p = (model.predict(data.feature(i)) as usize).min(c - 1);
        m[t][p] += 1;
    }
    m
}

/// Per-class recall from a confusion matrix (NaN-free: classes with no
/// examples report 0).
pub fn per_class_recall(confusion: &[Vec<usize>]) -> Vec<f64> {
    confusion
        .iter()
        .enumerate()
        .map(|(t, row)| {
            let total: usize = row.iter().sum();
            if total == 0 {
                0.0
            } else {
                row[t] as f64 / total as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod extended_metric_tests {
    use super::*;
    use crate::datasets::{gaussian_mixture, MixtureSpec};
    use crate::model::SoftmaxRegression;
    use crate::optim::{SgdConfig, SgdState};

    fn trained() -> (SoftmaxRegression, Dataset) {
        let (train, test) = gaussian_mixture(
            MixtureSpec {
                num_classes: 5,
                dim: 8,
                train_n: 300,
                test_n: 150,
                mean_scale: 1.2,
                noise: 0.8,
            },
            9,
        );
        let mut m = SoftmaxRegression::new(8, 5, 1);
        let cfg = SgdConfig::plain(0.5);
        let mut st = SgdState::new(m.num_params());
        let mut grad = vec![0.0f32; m.num_params()];
        let all: Vec<usize> = (0..train.len()).collect();
        for _ in 0..100 {
            m.loss_grad(&train, &all, &mut grad);
            st.step(&cfg, cfg.lr, m.params_mut(), &grad);
        }
        (m, test)
    }

    #[test]
    fn top_k_is_monotone_in_k() {
        let (m, test) = trained();
        let t1 = top_k_accuracy_softmax(&m, &test, 1);
        let t2 = top_k_accuracy_softmax(&m, &test, 2);
        let t5 = top_k_accuracy_softmax(&m, &test, 5);
        assert!(t1 <= t2 && t2 <= t5, "{t1} {t2} {t5}");
        assert!((t5 - 1.0).abs() < 1e-12, "top-C accuracy must be exactly 1");
        // And top-1 must agree with the generic accuracy.
        let a1 = accuracy(&m, &test);
        assert!((t1 - a1).abs() < 1e-12);
    }

    #[test]
    fn confusion_matrix_row_sums_match_class_counts() {
        let (m, test) = trained();
        let conf = confusion_matrix(&m, &test);
        let hist = test.class_histogram();
        for (t, row) in conf.iter().enumerate() {
            assert_eq!(row.iter().sum::<usize>(), hist[t]);
        }
        // Diagonal dominance after training (better than chance).
        let diag: usize = (0..5).map(|c| conf[c][c]).sum();
        assert!(diag as f64 / test.len() as f64 > 0.4);
    }

    #[test]
    fn per_class_recall_bounds() {
        let (m, test) = trained();
        let conf = confusion_matrix(&m, &test);
        for r in per_class_recall(&conf) {
            assert!((0.0..=1.0).contains(&r));
        }
    }
}
