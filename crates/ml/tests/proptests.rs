//! Property-based tests for the ML substrate: gradient correctness on
//! random models/data, optimiser invariants, partitioner conservation
//! laws, and sampler coverage.

use netmax_ml::batch::BatchSampler;
use netmax_ml::dataset::Dataset;
use netmax_ml::fast;
use netmax_ml::model::ModelKind;
use netmax_ml::optim::{SgdConfig, SgdState};
use netmax_ml::partition::Partition;
use proptest::prelude::*;

/// Strategy: a small random dataset with the given shape bounds.
fn dataset(max_n: usize, dim: usize, classes: usize) -> impl Strategy<Value = Dataset> {
    (4..max_n).prop_flat_map(move |n| {
        (
            proptest::collection::vec(-2.0f32..2.0, n * dim),
            proptest::collection::vec(0u32..classes as u32, n),
        )
            .prop_map(move |(feats, labels)| Dataset::new(feats, labels, dim, classes))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Analytic gradients of every model match central differences on
    /// random data (the foundation every training result rests on).
    #[test]
    fn gradients_match_finite_differences(
        data in dataset(24, 6, 3),
        kind_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        let kind = [
            ModelKind::Softmax,
            ModelKind::Mlp { hidden: 8 },
            ModelKind::LeastSquares { l2: 0.01 },
        ][kind_idx];
        let mut model = kind.build(6, 3, seed);
        let batch: Vec<usize> = (0..data.len().min(8)).collect();
        let mut grad = vec![0.0f32; model.num_params()];
        model.loss_grad(&data, &batch, &mut grad);

        let eps = 1e-2f32;
        let n = model.num_params();
        for k in (0..n).step_by((n / 7).max(1)) {
            let orig = model.params()[k];
            model.params_mut()[k] = orig + eps;
            let lp = model.loss(&data, &batch);
            model.params_mut()[k] = orig - eps;
            let lm = model.loss(&data, &batch);
            model.params_mut()[k] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            prop_assert!(
                (numeric - grad[k]).abs() < 0.05 * (1.0 + numeric.abs()),
                "param {k}: numeric {numeric} vs analytic {}", grad[k]
            );
        }
    }

    /// A gradient step at a small learning rate does not increase the
    /// batch loss (descent property on the sampled batch).
    #[test]
    fn small_step_descends(data in dataset(32, 6, 3), seed in 0u64..1000) {
        let mut model = ModelKind::Softmax.build(6, 3, seed);
        let batch: Vec<usize> = (0..data.len().min(16)).collect();
        let mut grad = vec![0.0f32; model.num_params()];
        let before = model.loss_grad(&data, &batch, &mut grad);
        let cfg = SgdConfig::plain(1e-3);
        let mut st = SgdState::new(model.num_params());
        st.step(&cfg, cfg.lr, model.params_mut(), &grad);
        let after = model.loss(&data, &batch);
        prop_assert!(after <= before + 1e-4, "loss rose: {before} -> {after}");
    }

    /// Uniform partitioning conserves every example exactly once.
    #[test]
    fn uniform_partition_conserves_examples(
        data in dataset(64, 4, 2),
        nodes in 2usize..9,
        seed in 0u64..1000,
    ) {
        let p = Partition::uniform(&data, nodes, seed);
        let mut all: Vec<usize> = (0..nodes).flat_map(|i| p.node(i).to_vec()).collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..data.len()).collect();
        prop_assert_eq!(all, expected);
    }

    /// Segmented partitioning conserves examples and respects ratios.
    #[test]
    fn segmented_partition_conserves_examples(
        data in dataset(96, 4, 2),
        seed in 0u64..1000,
    ) {
        let segments = vec![1usize, 2, 1];
        prop_assume!(data.len() >= 8);
        let p = Partition::segmented(&data, &segments, seed);
        prop_assert_eq!(p.total_examples(), data.len());
        // Weights mirror segment counts.
        prop_assert_eq!(p.weight(1), 2.0);
        prop_assert_eq!(p.batch_size(1, 32), 64);
    }

    /// Label-skew partitioning never assigns an example with a lost label.
    #[test]
    fn label_skew_excludes_lost_labels(data in dataset(64, 4, 4), seed in 0u64..4) {
        let lost: Vec<Vec<u32>> = vec![vec![0], vec![1], vec![seed as u32 % 4]];
        let p = Partition::label_skew(&data, &lost);
        for (node, lost_set) in lost.iter().enumerate() {
            for &i in p.node(node) {
                prop_assert!(!lost_set.contains(&data.label(i)));
            }
        }
    }

    /// The batch sampler visits every shard element exactly once per epoch.
    #[test]
    fn sampler_covers_shard_each_epoch(
        shard_len in 2usize..64,
        batch in 1usize..16,
        seed in 0u64..1000,
    ) {
        let mut s = BatchSampler::new((0..shard_len).collect(), batch, seed);
        for epoch in 0..3 {
            let mut seen: Vec<usize> = Vec::new();
            while seen.len() < shard_len {
                seen.extend(s.next_batch());
            }
            seen.sort_unstable();
            prop_assert_eq!(seen.len(), shard_len, "epoch {}", epoch);
            prop_assert_eq!(seen, (0..shard_len).collect::<Vec<_>>());
        }
    }

    /// Fast-tier dot stays within its reassociation error bound of an
    /// f64 sequential reference: `|fast − ref| ≤ 1e-5·Σ|xᵢyᵢ|`. Lengths
    /// straddle the FAST_CHUNK lane width (the chunking threshold), so
    /// the tail-only, exactly-one-chunk, and chunk+tail paths all run.
    #[test]
    fn fast_dot_tracks_f64_reference(
        len in 0usize..20 * fast::FAST_CHUNK,
        extra in proptest::collection::vec(-3.0f32..3.0, 640),
    ) {
        let x = &extra[..len.min(extra.len() / 2)];
        let y = &extra[extra.len() / 2..][..x.len()];
        let reference: f64 = x.iter().zip(y).map(|(&a, &b)| a as f64 * b as f64).sum();
        let bound: f64 = x.iter().zip(y).map(|(&a, &b)| (a as f64 * b as f64).abs()).sum();
        let got = fast::dot_fast(x, y) as f64;
        prop_assert!(
            (got - reference).abs() <= 1e-5 * bound + 1e-30,
            "n={}: {got} vs {reference}", x.len()
        );
    }

    /// Fast-tier norm_sq stays within the same bound (all terms
    /// positive, so the bound is relative to the result itself).
    #[test]
    fn fast_norm_sq_tracks_f64_reference(
        x in proptest::collection::vec(-3.0f32..3.0, 0..5 * fast::FAST_CHUNK),
    ) {
        let reference: f64 = x.iter().map(|&a| a as f64 * a as f64).sum();
        let got = fast::norm_sq_fast(&x) as f64;
        prop_assert!(
            (got - reference).abs() <= 1e-5 * reference + 1e-30,
            "n={}: {got} vs {reference}", x.len()
        );
    }

    /// Fast-tier mean stays within per-element f64-reference bounds for
    /// vector counts straddling the lane width.
    #[test]
    fn fast_mean_into_tracks_f64_reference(
        flat in proptest::collection::vec(-3.0f32..3.0, 24..48 * 7),
        count in 1usize..40,
    ) {
        let dim = (flat.len() / count).clamp(1, 24);
        let vecs: Vec<&[f32]> = (0..count.min(flat.len() / dim))
            .map(|k| &flat[k * dim..(k + 1) * dim])
            .collect();
        prop_assume!(!vecs.is_empty());
        let mut out = vec![0.0f32; dim];
        fast::mean_into_fast(&vecs, &mut out);
        for (j, &o) in out.iter().enumerate() {
            let reference: f64 =
                vecs.iter().map(|v| v[j] as f64).sum::<f64>() / vecs.len() as f64;
            let bound: f64 =
                vecs.iter().map(|v| (v[j] as f64).abs()).sum::<f64>() / vecs.len() as f64;
            prop_assert!(
                (o as f64 - reference).abs() <= 1e-5 * bound + 1e-30,
                "elem {j}: {o} vs {reference}"
            );
        }
    }

    /// Polynomial exp stays within 1e-6 relative error of the f64
    /// reference over the whole clamp domain.
    #[test]
    fn fast_exp_relative_error_bounded(x in -87.0f32..88.0) {
        let got = fast::exp_fast(x) as f64;
        let reference = (x as f64).exp();
        let rel = ((got - reference) / reference).abs();
        prop_assert!(rel < 1e-6, "x={x}: {got} vs {reference} (rel {rel})");
    }

    /// Polynomial ln stays within its stated mixed absolute/relative
    /// bound of the f64 reference across thirty decades.
    #[test]
    fn fast_ln_error_bounded(mantissa in 0.01f32..10.0, exp10 in -15i32..15) {
        let x = mantissa * 10.0f32.powi(exp10);
        prop_assume!(x.is_finite() && x > 0.0 && x >= f32::MIN_POSITIVE);
        let got = fast::ln_fast(x) as f64;
        let reference = (x as f64).ln();
        let tol = 1e-6 * reference.abs().max(1.0);
        prop_assert!((got - reference).abs() <= tol, "x={x}: {got} vs {reference}");
    }

    /// Momentum state keeps parameter updates finite for sane inputs.
    #[test]
    fn sgd_stays_finite(
        lr in 1e-4f64..0.5,
        momentum in 0.0f64..0.99,
        g in proptest::collection::vec(-10.0f32..10.0, 8),
    ) {
        let cfg = SgdConfig { lr, momentum, weight_decay: 1e-4, lr_milestones: vec![], lr_decay: 1.0 };
        let mut st = SgdState::new(8);
        let mut params = vec![1.0f32; 8];
        for _ in 0..50 {
            st.step(&cfg, cfg.lr, &mut params, &g);
        }
        prop_assert!(params.iter().all(|p| p.is_finite()));
    }
}
