//! Property-based tests for the ML substrate: gradient correctness on
//! random models/data, optimiser invariants, partitioner conservation
//! laws, and sampler coverage.

use netmax_ml::batch::BatchSampler;
use netmax_ml::dataset::Dataset;
use netmax_ml::model::ModelKind;
use netmax_ml::optim::{SgdConfig, SgdState};
use netmax_ml::partition::Partition;
use proptest::prelude::*;

/// Strategy: a small random dataset with the given shape bounds.
fn dataset(max_n: usize, dim: usize, classes: usize) -> impl Strategy<Value = Dataset> {
    (4..max_n).prop_flat_map(move |n| {
        (
            proptest::collection::vec(-2.0f32..2.0, n * dim),
            proptest::collection::vec(0u32..classes as u32, n),
        )
            .prop_map(move |(feats, labels)| Dataset::new(feats, labels, dim, classes))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Analytic gradients of every model match central differences on
    /// random data (the foundation every training result rests on).
    #[test]
    fn gradients_match_finite_differences(
        data in dataset(24, 6, 3),
        kind_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        let kind = [
            ModelKind::Softmax,
            ModelKind::Mlp { hidden: 8 },
            ModelKind::LeastSquares { l2: 0.01 },
        ][kind_idx];
        let mut model = kind.build(6, 3, seed);
        let batch: Vec<usize> = (0..data.len().min(8)).collect();
        let mut grad = vec![0.0f32; model.num_params()];
        model.loss_grad(&data, &batch, &mut grad);

        let eps = 1e-2f32;
        let n = model.num_params();
        for k in (0..n).step_by((n / 7).max(1)) {
            let orig = model.params()[k];
            model.params_mut()[k] = orig + eps;
            let lp = model.loss(&data, &batch);
            model.params_mut()[k] = orig - eps;
            let lm = model.loss(&data, &batch);
            model.params_mut()[k] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            prop_assert!(
                (numeric - grad[k]).abs() < 0.05 * (1.0 + numeric.abs()),
                "param {k}: numeric {numeric} vs analytic {}", grad[k]
            );
        }
    }

    /// A gradient step at a small learning rate does not increase the
    /// batch loss (descent property on the sampled batch).
    #[test]
    fn small_step_descends(data in dataset(32, 6, 3), seed in 0u64..1000) {
        let mut model = ModelKind::Softmax.build(6, 3, seed);
        let batch: Vec<usize> = (0..data.len().min(16)).collect();
        let mut grad = vec![0.0f32; model.num_params()];
        let before = model.loss_grad(&data, &batch, &mut grad);
        let cfg = SgdConfig::plain(1e-3);
        let mut st = SgdState::new(model.num_params());
        st.step(&cfg, cfg.lr, model.params_mut(), &grad);
        let after = model.loss(&data, &batch);
        prop_assert!(after <= before + 1e-4, "loss rose: {before} -> {after}");
    }

    /// Uniform partitioning conserves every example exactly once.
    #[test]
    fn uniform_partition_conserves_examples(
        data in dataset(64, 4, 2),
        nodes in 2usize..9,
        seed in 0u64..1000,
    ) {
        let p = Partition::uniform(&data, nodes, seed);
        let mut all: Vec<usize> = (0..nodes).flat_map(|i| p.node(i).to_vec()).collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..data.len()).collect();
        prop_assert_eq!(all, expected);
    }

    /// Segmented partitioning conserves examples and respects ratios.
    #[test]
    fn segmented_partition_conserves_examples(
        data in dataset(96, 4, 2),
        seed in 0u64..1000,
    ) {
        let segments = vec![1usize, 2, 1];
        prop_assume!(data.len() >= 8);
        let p = Partition::segmented(&data, &segments, seed);
        prop_assert_eq!(p.total_examples(), data.len());
        // Weights mirror segment counts.
        prop_assert_eq!(p.weight(1), 2.0);
        prop_assert_eq!(p.batch_size(1, 32), 64);
    }

    /// Label-skew partitioning never assigns an example with a lost label.
    #[test]
    fn label_skew_excludes_lost_labels(data in dataset(64, 4, 4), seed in 0u64..4) {
        let lost: Vec<Vec<u32>> = vec![vec![0], vec![1], vec![seed as u32 % 4]];
        let p = Partition::label_skew(&data, &lost);
        for (node, lost_set) in lost.iter().enumerate() {
            for &i in p.node(node) {
                prop_assert!(!lost_set.contains(&data.label(i)));
            }
        }
    }

    /// The batch sampler visits every shard element exactly once per epoch.
    #[test]
    fn sampler_covers_shard_each_epoch(
        shard_len in 2usize..64,
        batch in 1usize..16,
        seed in 0u64..1000,
    ) {
        let mut s = BatchSampler::new((0..shard_len).collect(), batch, seed);
        for epoch in 0..3 {
            let mut seen: Vec<usize> = Vec::new();
            while seen.len() < shard_len {
                seen.extend(s.next_batch());
            }
            seen.sort_unstable();
            prop_assert_eq!(seen.len(), shard_len, "epoch {}", epoch);
            prop_assert_eq!(seen, (0..shard_len).collect::<Vec<_>>());
        }
    }

    /// Momentum state keeps parameter updates finite for sane inputs.
    #[test]
    fn sgd_stays_finite(
        lr in 1e-4f64..0.5,
        momentum in 0.0f64..0.99,
        g in proptest::collection::vec(-10.0f32..10.0, 8),
    ) {
        let cfg = SgdConfig { lr, momentum, weight_decay: 1e-4, lr_milestones: vec![], lr_decay: 1.0 };
        let mut st = SgdState::new(8);
        let mut params = vec![1.0f32; 8];
        for _ in 0..50 {
            st.step(&cfg, cfg.lr, &mut params, &g);
        }
        prop_assert!(params.iter().all(|p| p.is_finite()));
    }
}
