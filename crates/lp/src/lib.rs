//! # netmax-lp
//!
//! A from-scratch linear-programming solver used by the NetMax
//! communication-policy generator.
//!
//! Algorithm 3 of the paper solves, for every candidate `(ρ, t̄)` pair in
//! its two nested search loops, the linear program of Eq. (14):
//!
//! ```text
//!   minimize    Σᵢ p_{i,i}
//!   subject to  Σₘ t_{i,m} · p_{i,m} · d_{i,m} = M · t̄     ∀ i        (Eq. 10)
//!               p_{i,m} ≥ αρ (d_{i,m} + d_{m,i}) + margin   ∀ edges    (Eq. 11)
//!               p_{i,m} = 0                                 ∀ non-edges (Eq. 12)
//!               Σₘ p_{i,m} = 1                              ∀ i        (Eq. 13)
//! ```
//!
//! The reference implementation would reach for an off-the-shelf `linprog`;
//! here the solver is built from first principles: a **two-phase primal
//! simplex** on a dense tableau with Bland's anti-cycling rule. Problems in
//! this workload are small (≤ a few hundred variables, ≤ a few dozen rows),
//! so a dense tableau is simple, cache-friendly, and plenty fast — the
//! policy generator solves hundreds of these per Network-Monitor round.
//!
//! The public API is deliberately general (arbitrary `≤ / ≥ / =` rows,
//! per-variable lower bounds), so the solver is reusable and can be tested
//! against textbook instances independently of NetMax.

#![forbid(unsafe_code)]

pub mod problem;
pub mod simplex;

pub use problem::{Constraint, LpProblem, Relation};
pub use simplex::{solve, solve_with, LpOutcome, LpSolution, LpWorkspace};

/// Numerical tolerance used for pivoting and feasibility classification.
pub const LP_EPS: f64 = 1e-9;
